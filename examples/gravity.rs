//! The NPAC gravity code (paper §2.1, Figure 1): the motivating example for
//! message combining *beyond* redundancy elimination.
//!
//! The code has no redundant communication at all — redundancy elimination
//! alone saves nothing (8 NNC + 8 SUM before and after). The global
//! algorithm combines the `g` and `glast` ghost exchanges direction by
//! direction (8 → 4 messages) and each group of four partial sums into one
//! reduction call (8 → 2).
//!
//! Run with: `cargo run --example gravity`

use gcomm::{compile, CommKind, Strategy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let src = gcomm::kernels::GRAVITY;

    println!("== gravity (Figure 1) ==");
    for strategy in [Strategy::Original, Strategy::EarliestRE, Strategy::Global] {
        let c = compile(src, strategy)?;
        println!(
            "{:<12} NNC = {:>2}   SUM = {:>2}   (eliminated: {})",
            format!("{strategy:?}"),
            c.schedule.count_kind(CommKind::Nnc),
            c.schedule.count_kind(CommKind::Reduction),
            c.schedule.eliminated()
        );
    }

    let global = compile(src, Strategy::Global)?;
    println!("\n== combined groups ==");
    for g in &global.schedule.groups {
        let members: Vec<&str> = g
            .entries
            .iter()
            .map(|&e| global.schedule.entry(e).label.as_str())
            .collect();
        println!("  {:?} {{{}}}", g.kind, members.join(", "));
    }

    // The paper's claim: "we can combine the eight NN messages into four
    // and the eight global sums into two parallel sets of four global sums."
    assert_eq!(global.schedule.count_kind(CommKind::Nnc), 4);
    assert_eq!(global.schedule.count_kind(CommKind::Reduction), 2);
    println!("\nFigure 1's combining confirmed: 8 NNC -> 4, 8 sums -> 2");
    Ok(())
}
