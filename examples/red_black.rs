//! Red-black Gauss–Seidel relaxation: a classic HPF pattern exercising
//! strided sections — and a deliberately *negative* example: the black
//! half-sweep reads the red sweep's freshly-written points, so the black
//! exchanges can be placed no earlier than after the red statement, the
//! red exchanges no later than before it. Their candidate windows are
//! disjoint: the global algorithm correctly finds **no** combining
//! opportunity and does not force one. The dynamic verifier confirms the
//! four-message schedule at a concrete size.
//!
//! Run with: `cargo run --example red_black`

use std::collections::HashMap;

use gcomm::machine::ProcGrid;
use gcomm::{compile, Strategy};

const RED_BLACK: &str = "
program redblack
param n, nsteps
real u(n,n), f(n,n) distribute (block, *)
do t = 1, nsteps
  u(2:n-1:2, 1:n) = u(1:n-2:2, 1:n) + u(3:n:2, 1:n) + f(2:n-1:2, 1:n)
  u(3:n-1:2, 1:n) = u(2:n-2:2, 1:n) + u(4:n:2, 1:n) + f(3:n-1:2, 1:n)
enddo
end";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (orig, nored, comb) = gcomm::static_counts(RED_BLACK)?;
    println!("red-black relaxation: orig={orig} nored={nored} comb={comb}");

    let c = compile(RED_BLACK, Strategy::Global)?;
    print!("{}", c.report());

    // Both half-sweeps' exchanges stay inside the timestep loop (each
    // colour reads the other's current-iteration values).
    for g in &c.schedule.groups {
        assert_eq!(
            g.pos.level(&c.prog),
            1,
            "red-black exchanges cannot leave the timestep loop"
        );
    }
    // No combining is possible here — and none must be invented: the red
    // and black exchanges have disjoint candidate windows.
    assert_eq!(comb, orig);
    assert!(c.schedule.groups.iter().all(|g| g.entries.len() == 1));

    // Verify the placement dynamically at n = 9.
    let mut params: HashMap<String, i64> = HashMap::new();
    params.insert("n".into(), 9);
    params.insert("nsteps".into(), 3);
    let rep = gcomm_exec::verify_schedule(&c, &ProcGrid::balanced(4, 1), &params)?;
    println!(
        "verify: {} ({} remote elements checked)",
        if rep.ok() { "OK" } else { "VIOLATION" },
        rep.remote_elements_checked
    );
    assert!(rep.ok());
    Ok(())
}
