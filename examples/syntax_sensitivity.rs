//! Syntax sensitivity (paper §2.3, Figure 3): earliest placement is
//! sensitive to how the source is phrased — scalarizing the F90 assignments
//! into separate loops splits the `a` and `b` messages under earliest
//! placement, while the global algorithm combines them in both forms.
//!
//! Run with: `cargo run --example syntax_sensitivity`

use gcomm::{compile, Strategy};

fn show(name: &str, src: &str) -> Result<(usize, usize), Box<dyn std::error::Error>> {
    let nored = compile(src, Strategy::EarliestRE)?;
    let comb = compile(src, Strategy::Global)?;
    println!("== {name} ==");
    println!("earliest placement: {} message(s)", nored.static_messages());
    print!("{}", nored.report());
    println!("global placement:   {} message(s)", comb.static_messages());
    print!("{}", comb.report());
    println!();
    Ok((nored.static_messages(), comb.static_messages()))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (_, comb_f90) = show("Figure 3, F90 source", gcomm::kernels::FIG3_F90)?;
    let (_, comb_scal) = show("Figure 3, scalarized", gcomm::kernels::FIG3_SCALARIZED)?;

    // The global algorithm is robust to the rephrasing: one combined
    // message either way.
    assert_eq!(comb_f90, 1);
    assert_eq!(comb_scal, 1);
    println!("global placement ships one combined message under both phrasings");
    Ok(())
}
