//! Dynamic schedule verification: replay every benchmark kernel at a small
//! concrete size under a block distribution and check — element by element,
//! with write-version counters — that every remote read is served by fresh
//! communicated data, for all three placement strategies.
//!
//! Also demonstrates fault detection: a deliberately corrupted schedule
//! (the message hoisted above the data's definition) is flagged.
//!
//! Run with: `cargo run --example verify_schedules`

use std::collections::HashMap;

use gcomm::ir::Pos;
use gcomm::machine::ProcGrid;
use gcomm::{compile, Strategy};
use gcomm_exec::verify_schedule;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:<10} {:<9} {:<10} {:>7} {:>9} {:>9}  verdict",
        "benchmark", "routine", "strategy", "events", "elements", "checked"
    );
    for (bench, routine, src) in gcomm::kernels::all_kernels() {
        for strategy in [Strategy::Original, Strategy::EarliestRE, Strategy::Global] {
            let c = compile(src, strategy)?;
            let rank = c
                .prog
                .arrays
                .iter()
                .map(|a| a.distributed_dims().len())
                .max()
                .unwrap_or(1)
                .max(1);
            let grid = ProcGrid::balanced(4, rank);
            let mut params: HashMap<String, i64> =
                c.prog.params.iter().map(|p| (p.clone(), 8)).collect();
            params.insert("nsteps".into(), 2);
            let rep = verify_schedule(&c, &grid, &params)?;
            println!(
                "{:<10} {:<9} {:<10} {:>7} {:>9} {:>9}  {}",
                bench,
                routine,
                format!("{strategy:?}"),
                rep.comm_events,
                rep.elements_communicated,
                rep.remote_elements_checked,
                if rep.ok() { "OK" } else { "VIOLATION" }
            );
            assert!(rep.ok());
        }
    }

    // Fault injection: hoist the shallow kernel's first message to program
    // start — the data it carries is redefined every timestep, so the
    // verifier must catch the staleness.
    println!("\nfault injection: hoisting one shallow message above its defs ...");
    let mut c = compile(gcomm::kernels::SHALLOW, Strategy::Global)?;
    c.schedule.groups[0].pos = Pos::top(c.prog.cfg.entry);
    let mut params: HashMap<String, i64> = c.prog.params.iter().map(|p| (p.clone(), 8)).collect();
    params.insert("nsteps".into(), 2);
    let rep = verify_schedule(&c, &ProcGrid::balanced(4, 2), &params)?;
    println!(
        "verifier found {} violation(s); first: {}",
        rep.errors.len(),
        rep.errors
            .first()
            .map(|e| e.message.as_str())
            .unwrap_or("-")
    );
    assert!(!rep.ok());
    Ok(())
}
