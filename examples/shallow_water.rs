//! The NCAR shallow-water benchmark (paper §2.2, Figure 2, and §5):
//! compiles the kernel under the three code versions, reproduces the static
//! message counts of Figure 10's table (20 / 14 / 8), and simulates a run
//! on both evaluation platforms.
//!
//! Run with: `cargo run --example shallow_water`

use gcomm::core::{lower_to_sim, SimConfig};
use gcomm::machine::{simulate, NetworkModel, ProcGrid};
use gcomm::{compile, Strategy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let src = gcomm::kernels::SHALLOW;

    println!("== static communication call sites (paper: 20 / 14 / 8) ==");
    let (orig, nored, comb) = gcomm::static_counts(src)?;
    println!("orig={orig}  nored={nored}  comb={comb}\n");

    println!("== placement under the global algorithm ==");
    let global = compile(src, Strategy::Global)?;
    print!("{}", global.report());

    println!("\n== simulated runtime, n = 512, one timestep loop ==");
    for (name, net, p) in [
        ("SP2 (P=25)", NetworkModel::sp2(), 25u32),
        ("NOW (P=8)", NetworkModel::now_myrinet(), 8),
    ] {
        println!("{name}:");
        let mut base = None;
        for strategy in [Strategy::Original, Strategy::EarliestRE, Strategy::Global] {
            let c = compile(src, strategy)?;
            let cfg = SimConfig::uniform(&c, ProcGrid::balanced(p, 2), 512).with("nsteps", 10);
            let r = simulate(&lower_to_sim(&c, &cfg), &net);
            let total = r.total_us();
            let norm = total / *base.get_or_insert(total);
            println!(
                "  {:<10} total {:>10.0} us  comm {:>9.0} us  ({} msgs)  normalized {:.3}",
                format!("{strategy:?}"),
                total,
                r.comm_us,
                r.messages,
                norm
            );
        }
    }
    Ok(())
}
