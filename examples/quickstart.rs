//! Quickstart: compile a small data-parallel program and inspect where the
//! optimizer places its communication.
//!
//! Run with: `cargo run --example quickstart`

use gcomm::{compile, Strategy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A two-statement stencil: both statements read the same shifted
    // section of `a`. The baseline pays two messages per timestep; the
    // global algorithm sends one.
    let src = "
program quickstart
param n, nsteps
real a(n,n), b(n,n), c(n,n) distribute (block, block)
do t = 1, nsteps
  b(2:n, 1:n) = a(1:n-1, 1:n)
  c(2:n, 1:n) = a(1:n-1, 1:n) * 0.5
  a(1:n, 1:n) = b(1:n, 1:n) + c(1:n, 1:n)
enddo
end";

    for strategy in [Strategy::Original, Strategy::EarliestRE, Strategy::Global] {
        let compiled = compile(src, strategy)?;
        println!(
            "=== {strategy:?}: {} message(s) ===",
            compiled.static_messages()
        );
        print!("{}", compiled.report());
        println!();
    }

    let (orig, nored, comb) = gcomm::static_counts(src)?;
    println!("static message counts: orig={orig} nored={nored} comb={comb}");
    assert!(comb <= nored && nored <= orig);
    Ok(())
}
