//! Placement explorer: walks the paper's running example (Figure 4)
//! through every phase of the analysis, printing `Earliest`, `Latest`, the
//! candidate set, and the final decision for each communication entry.
//!
//! Run with: `cargo run --example placement_explorer`

use gcomm::core::{candidates, commgen, earliest, latest, AnalysisCtx};
use gcomm::{compile, Strategy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let src = gcomm::kernels::FIG4_RUNNING;
    let ast = gcomm::parse_program(src)?;
    let prog = gcomm::ir::lower(&ast)?;
    let entries = commgen::number(commgen::generate(&prog));
    let ctx = AnalysisCtx::new(&prog);

    println!("== Figure 4 running example: per-entry analysis ==");
    for e in &entries {
        let ep = earliest::earliest_pos(&ctx, e);
        let lp = latest::latest(&ctx, e);
        let cands = candidates::candidates(&ctx, e, ep, lp);
        println!(
            "{:<14} use at {}  Earliest = {:?}@{}/{}  Latest = {:?}@{}/{}  |candidates| = {}",
            e.label,
            e.stmt,
            prog.cfg.node(ep.node).kind,
            ep.node,
            ep.slot,
            prog.cfg.node(lp.node).kind,
            lp.node,
            lp.slot,
            cands.len()
        );
    }

    println!("\n== final schedules ==");
    for strategy in [Strategy::Original, Strategy::EarliestRE, Strategy::Global] {
        let c = compile(src, strategy)?;
        println!("{}", c.report());
    }

    // The paper's outcome: earliest placement leaves 3 messages (it cannot
    // catch b1's redundancy); the global algorithm ships a single combined
    // {a, b} message.
    let nored = compile(src, Strategy::EarliestRE)?;
    let comb = compile(src, Strategy::Global)?;
    assert_eq!(nored.static_messages(), 3);
    assert_eq!(comb.static_messages(), 1);
    println!("earliest placement: 3 messages; global placement: 1 combined message");
    Ok(())
}
