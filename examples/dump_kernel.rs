//! Prints a benchmark kernel's mini-HPF source to stdout, for piping into
//! `gcommc`:
//!
//! ```text
//! cargo run --example dump_kernel shallow | cargo run --bin gcommc -- --sim 512 -
//! ```
//!
//! With no argument, lists the available kernel names.

fn main() {
    let want = std::env::args().nth(1);
    let kernels = gcomm::kernels::all_kernels();
    match want {
        Some(name) => {
            for (bench, routine, src) in &kernels {
                if *bench == name || format!("{bench}:{routine}") == name {
                    print!("{src}");
                    return;
                }
            }
            eprintln!("unknown kernel `{name}`; available:");
            for (bench, routine, _) in &kernels {
                eprintln!("  {bench}:{routine}");
            }
            std::process::exit(2);
        }
        None => {
            for (bench, routine, _) in &kernels {
                println!("{bench}:{routine}");
            }
        }
    }
}
