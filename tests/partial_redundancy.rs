//! Partial redundancy elimination (extension; the [14] behaviour that
//! §4.6 contrasts against, and §7's future-work direction).
//!
//! On the paper's running example (Figure 4), earliest placement with
//! partial RE eliminates `a1`, keeps `b1`, and shrinks `b2`'s message to
//! the residual `ASD(b2) − ASD(b1)` — fewer bytes, but still three
//! messages, where the paper's global algorithm ships one. The dynamic
//! verifier confirms the residual data is sufficient.

use std::collections::HashMap;

use gcomm::core::{lower_to_sim, SimConfig};
use gcomm::machine::{simulate, NetworkModel, ProcGrid};
use gcomm::{compile, Strategy};

#[test]
fn figure4_partial_re_shrinks_b2() {
    let src = gcomm::kernels::FIG4_RUNNING;
    let c = compile(src, Strategy::EarliestPartialRE).unwrap();
    // Same message count as plain earliest-RE ...
    assert_eq!(c.static_messages(), 3, "{}", c.report());
    assert_eq!(c.schedule.eliminated(), 1);
    // ... but one entry ships a residual section with stride 2.
    assert_eq!(c.schedule.section_overrides.len(), 1);
    let (_, residual) = &c.schedule.section_overrides[0];
    assert_eq!(residual.dims[1].step(), Some(2));
}

#[test]
fn partial_re_reduces_volume_but_not_messages() {
    let src = gcomm::kernels::FIG4_RUNNING;
    let run = |s| {
        let c = compile(src, s).unwrap();
        let cfg = SimConfig::uniform(&c, ProcGrid::balanced(4, 2), 64);
        simulate(&lower_to_sim(&c, &cfg), &NetworkModel::sp2())
    };
    let nored = run(Strategy::EarliestRE);
    let partial = run(Strategy::EarliestPartialRE);
    let comb = run(Strategy::Global);
    // Volume: partial < plain earliest-RE.
    assert!(
        partial.bytes < nored.bytes,
        "{} !< {}",
        partial.bytes,
        nored.bytes
    );
    // Messages: partial == plain; the global algorithm needs fewer — the
    // §4.6 argument that the global solution "reduces the communication
    // startup overhead" where partial RE only trims volume.
    assert_eq!(partial.messages, nored.messages);
    assert!(comb.messages < partial.messages);
}

#[test]
fn partial_re_schedules_verify_dynamically() {
    // The residual communication plus the covering message must still
    // deliver every remote element — checked at element granularity.
    for src in [
        gcomm::kernels::FIG4_RUNNING,
        gcomm::kernels::SHALLOW,
        gcomm::kernels::HYDFLO_FLUX,
    ] {
        let c = compile(src, Strategy::EarliestPartialRE).unwrap();
        let rank = c
            .prog
            .arrays
            .iter()
            .map(|a| a.distributed_dims().len())
            .max()
            .unwrap_or(1)
            .max(1);
        let mut params: HashMap<String, i64> =
            c.prog.params.iter().map(|p| (p.clone(), 8)).collect();
        params.insert("nsteps".into(), 2);
        let rep = gcomm_exec::verify_schedule(&c, &ProcGrid::balanced(4, rank), &params).unwrap();
        assert!(rep.ok(), "first: {:?}", rep.errors.first());
    }
}

#[test]
fn partial_re_counts_on_all_kernels_match_plain_re() {
    // Partial RE never changes message *counts*, only volumes.
    for (bench, routine, src) in gcomm::kernels::all_kernels() {
        let plain = compile(src, Strategy::EarliestRE).unwrap();
        let partial = compile(src, Strategy::EarliestPartialRE).unwrap();
        assert_eq!(
            plain.static_messages(),
            partial.static_messages(),
            "{bench}:{routine}"
        );
    }
}
