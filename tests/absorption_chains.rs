//! Regression tests for *chained* redundancy absorption: when entry `B`
//! absorbs `C` and entry `A` later absorbs `B`, `A`'s final placement must
//! still cover `C`'s use. The obligations are inherited through the chain
//! (and an absorption is rejected outright when no candidate of the winner
//! can satisfy them).

use std::collections::HashMap;

use gcomm::core::{commgen, strategy, AnalysisCtx, CombinePolicy};
use gcomm::ir::Pos;
use gcomm::machine::ProcGrid;
use gcomm::{compile, Strategy};

/// Three same-shift reads of `a` with strictly growing sections, separated
/// by unrelated statements: absorption chains e0 → e1 → e2.
const CHAIN: &str = "
program chain
param n
real a(n,n), w(n,n), x(n,n), y(n,n), z(n,n) distribute (block, *)
a(1:n, 1:n) = 1
x(3:n, 1:n:2) = a(2:n-1, 1:n:2)
w(1:n, 1:n) = 2
y(3:n, 1:n) = a(2:n-1, 1:n)
z(2:n, 1:n) = a(1:n-1, 1:n)
end";

fn verify(c: &gcomm::core::Compiled) -> gcomm_exec::VerifyReport {
    let mut params = HashMap::new();
    params.insert("n".to_string(), 8i64);
    gcomm_exec::verify_schedule(c, &ProcGrid::balanced(4, 1), &params).unwrap()
}

#[test]
fn chain_collapses_to_one_covering_message() {
    let c = compile(CHAIN, Strategy::Global).unwrap();
    assert_eq!(c.static_messages(), 1, "{}", c.report());
    assert_eq!(c.schedule.eliminated(), 2);
    // The surviving message must dominate ALL three uses, including the
    // transitively absorbed first one.
    let ctx = AnalysisCtx::new(&c.prog);
    let g = &c.schedule.groups[0];
    for e in &c.schedule.entries {
        assert!(
            g.pos.dominates(&Pos::before(&c.prog, e.stmt), &ctx.dt),
            "placement must cover the chained use of {}",
            e.label
        );
    }
    assert!(verify(&c).ok());
}

#[test]
fn chain_safe_without_subset_elimination() {
    // The A3 ablation path (subset elimination off) exposes wider candidate
    // sets where a forgotten chained obligation would let the greedy place
    // the surviving message after the first use.
    let ast = gcomm::parse_program(CHAIN).unwrap();
    let prog = gcomm::ir::lower(&ast).unwrap();
    let entries = commgen::number(commgen::generate(&prog));
    let ctx = AnalysisCtx::new(&prog);
    let sched = strategy::run_global_ablation(&ctx, entries, &CombinePolicy::default(), false);
    for g in &sched.groups {
        for e in &sched.entries {
            let covered_by_group = sched
                .absorptions
                .iter()
                .any(|a| a.absorbed == e.id && g.entries.contains(&a.by))
                || g.entries.contains(&e.id);
            if covered_by_group {
                assert!(
                    g.pos.dominates(&Pos::before(&prog, e.stmt), &ctx.dt),
                    "ablation placement must cover {}",
                    e.label
                );
            }
        }
    }
    let c = gcomm::core::Compiled {
        prog,
        schedule: sched,
        stats: Default::default(),
    };
    assert!(verify(&c).ok(), "{:?}", verify(&c).errors.first());
}

#[test]
fn impossible_obligations_reject_the_absorption() {
    // The covering read sits in a different branch arm: its candidates can
    // never dominate the first use, so the absorption must be rejected and
    // both messages survive.
    let src = "
program rej
param n
real a(n,n), x(n,n), z(n,n) distribute (block, *)
real c
a(1:n, 1:n) = 1
if (c > 0) then
  x(2:n, 1:n) = a(1:n-1, 1:n)
else
  z(2:n, 1:n) = a(1:n-1, 1:n)
endif
end";
    let c = compile(src, Strategy::Global).unwrap();
    // Both reads can be served by one message at the dominating junction
    // (the if head) — OR kept separate; either way every use is covered.
    let ctx = AnalysisCtx::new(&c.prog);
    for e in &c.schedule.entries {
        let covered = c.schedule.groups.iter().any(|g| {
            (g.entries.contains(&e.id)
                || c.schedule
                    .absorptions
                    .iter()
                    .any(|a| a.absorbed == e.id && g.entries.contains(&a.by)))
                && g.pos.dominates(&Pos::before(&c.prog, e.stmt), &ctx.dt)
        });
        assert!(covered, "{} uncovered: {}", e.label, c.report());
    }
    assert!(verify(&c).ok());
}
