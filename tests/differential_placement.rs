//! Differential testing of the greedy placement against the exhaustive
//! optimum: for every paper-figure program, every benchmark kernel, and
//! the example programs, the greedy schedule must cost no more than the
//! best assignment the bounded enumeration finds (the search is seeded
//! with the greedy schedule, so `optimal ≤ greedy` is the invariant the
//! heuristic must uphold — a regression that worsens the greedy shows up
//! as a widened gap, never as a flipped inequality), and both schedules
//! must pass dynamic verification against the reference interpreter.

use std::collections::HashMap;

use gcomm::core::optimal::comm_cost;
use gcomm::core::{optimal_placement, CombinePolicy, Compiled, SimConfig, Strategy};
use gcomm::machine::{NetworkModel, ProcGrid};
use gcomm::{compile, exec};

/// Enumeration budget: small kernels exhaust it, big ones fall back to the
/// greedy-seeded scan — either way the inequality must hold.
const BUDGET: u64 = 5_000;

/// Inline copy of `examples/red_black.rs`'s program (examples are not
/// importable from integration tests).
const RED_BLACK: &str = "
program redblack
param n, nsteps
real u(n,n), f(n,n) distribute (block, *)
do t = 1, nsteps
  u(2:n-1:2, 1:n) = u(1:n-2:2, 1:n) + u(3:n:2, 1:n) + f(2:n-1:2, 1:n)
  u(3:n-1:2, 1:n) = u(2:n-2:2, 1:n) + u(4:n:2, 1:n) + f(3:n-1:2, 1:n)
enddo
end";

/// Inline copy of `examples/quickstart.rs`'s program.
const QUICKSTART: &str = "
program quickstart
param n, nsteps
real a(n,n), b(n,n), c(n,n) distribute (block, block)
do t = 1, nsteps
  b(2:n, 1:n) = a(1:n-1, 1:n)
  c(2:n, 1:n) = a(1:n-1, 1:n) * 0.5
  a(1:n, 1:n) = b(1:n, 1:n) + c(1:n, 1:n)
enddo
end";

fn grid_rank(c: &Compiled) -> usize {
    c.prog
        .arrays
        .iter()
        .map(|a| a.distributed_dims().len())
        .max()
        .unwrap_or(1)
        .max(1)
}

fn verify(name: &str, what: &str, c: &Compiled, n: i64) {
    let grid = ProcGrid::balanced(4, grid_rank(c));
    let mut params: HashMap<String, i64> = c.prog.params.iter().map(|p| (p.clone(), n)).collect();
    params.insert("nsteps".into(), 2);
    let rep = exec::verify_schedule(c, &grid, &params)
        .unwrap_or_else(|e| panic!("{name}: {what} schedule failed to execute: {e}"));
    assert!(
        rep.ok(),
        "{name}: {what} schedule violates the reference semantics: {:?}",
        rep.errors.first()
    );
}

fn check(name: &str, src: &str, n: i64) {
    let c = compile(src, Strategy::Global).unwrap_or_else(|e| panic!("{name}: {e}"));
    let cfg = SimConfig::uniform(&c, ProcGrid::balanced(4, grid_rank(&c)), 32).with("nsteps", 4);
    let net = NetworkModel::sp2();
    let greedy_cost = comm_cost(&c, &cfg, &net);
    let budget = gcomm::guard::Budget::steps(BUDGET);
    let Some(opt) = optimal_placement(&c, &CombinePolicy::default(), &cfg, &net, &budget) else {
        // No communication: nothing to compare, but the (empty) schedule
        // must still verify.
        verify(name, "greedy", &c, n);
        return;
    };
    assert!(
        greedy_cost >= opt.comm_us - 1e-9,
        "{name}: optimal search found cost {} above greedy {greedy_cost} \
         (seeding guarantees optimal ≤ greedy)",
        opt.comm_us
    );

    verify(name, "greedy", &c, n);
    let opt_compiled = Compiled {
        prog: c.prog.clone(),
        schedule: opt.schedule,
        stats: Default::default(),
    };
    verify(name, "optimal", &opt_compiled, n);
}

#[test]
fn kernels_greedy_vs_optimal() {
    for (bench, routine, src) in gcomm::kernels::all_kernels() {
        check(&format!("{bench}:{routine}"), src, 8);
    }
}

#[test]
fn paper_figures_greedy_vs_optimal() {
    for (name, src) in [
        ("fig3-f90", gcomm::kernels::FIG3_F90),
        ("fig3-scalarized", gcomm::kernels::FIG3_SCALARIZED),
        ("fig4-running", gcomm::kernels::FIG4_RUNNING),
    ] {
        check(name, src, 8);
    }
}

#[test]
fn examples_greedy_vs_optimal() {
    // red_black needs an odd n ≥ 9 for its strided half-sweeps.
    check("red_black", RED_BLACK, 9);
    check("quickstart", QUICKSTART, 8);
}
