//! Shape checks for the runtime experiments (Figure 10, panels a–f): who
//! wins, by roughly what factor, and how the gap behaves as sizes grow.
//! Absolute times are simulator outputs, not 1996 hardware — the shapes are
//! what the reproduction asserts (see EXPERIMENTS.md).

use gcomm::core::{lower_to_sim, SimConfig};
use gcomm::machine::{simulate, NetworkModel, ProcGrid, SimResult};
use gcomm::{compile, Strategy};

fn run(
    src: &str,
    p: u32,
    axes: usize,
    n: i64,
    strategy: Strategy,
    net: &NetworkModel,
) -> SimResult {
    let c = compile(src, strategy).unwrap();
    let cfg = SimConfig::uniform(&c, ProcGrid::balanced(p, axes), n).with("nsteps", 10);
    simulate(&lower_to_sim(&c, &cfg), net)
}

type Panel = (
    &'static str,
    &'static str,
    u32,
    usize,
    Vec<i64>,
    NetworkModel,
);

fn panels() -> Vec<Panel> {
    vec![
        (
            "sp2-shallow",
            gcomm::kernels::SHALLOW,
            25,
            2,
            vec![128, 256, 512],
            NetworkModel::sp2(),
        ),
        (
            "sp2-gravity",
            gcomm::kernels::GRAVITY,
            25,
            2,
            vec![100, 200, 325],
            NetworkModel::sp2(),
        ),
        (
            "now-shallow",
            gcomm::kernels::SHALLOW,
            8,
            2,
            vec![400, 450, 500],
            NetworkModel::now_myrinet(),
        ),
        (
            "now-gravity",
            gcomm::kernels::GRAVITY,
            8,
            2,
            vec![100, 174, 274],
            NetworkModel::now_myrinet(),
        ),
        (
            "sp2-hydflo",
            gcomm::kernels::HYDFLO_FLUX,
            25,
            3,
            vec![28, 48, 64],
            NetworkModel::sp2(),
        ),
        (
            "now-trimesh",
            gcomm::kernels::TRIMESH_NORMDOT,
            8,
            2,
            vec![192, 256, 320],
            NetworkModel::now_myrinet(),
        ),
    ]
}

/// comb ≤ nored ≤ orig in communication time, for every panel and size.
#[test]
fn communication_time_ordering() {
    for (name, src, p, axes, sizes, net) in panels() {
        for n in sizes {
            let orig = run(src, p, axes, n, Strategy::Original, &net);
            let nored = run(src, p, axes, n, Strategy::EarliestRE, &net);
            let comb = run(src, p, axes, n, Strategy::Global, &net);
            assert!(
                comb.comm_us <= nored.comm_us + 1e-6 && nored.comm_us <= orig.comm_us + 1e-6,
                "{name} n={n}: comm times {:.0} / {:.0} / {:.0}",
                orig.comm_us,
                nored.comm_us,
                comb.comm_us
            );
            assert!((orig.compute_us - comb.compute_us).abs() < 1e-6);
        }
    }
}

/// "In many cases, the communication cost is reduced by a factor of two."
#[test]
fn communication_cut_by_factor_two_or_more() {
    let mut wins = 0;
    let mut total = 0;
    for (_, src, p, axes, sizes, net) in panels() {
        for n in sizes {
            let orig = run(src, p, axes, n, Strategy::Original, &net);
            let comb = run(src, p, axes, n, Strategy::Global, &net);
            total += 1;
            if orig.comm_us / comb.comm_us.max(1e-12) >= 2.0 {
                wins += 1;
            }
        }
    }
    assert!(
        wins * 2 >= total,
        "2x communication cut in only {wins}/{total} cases"
    );
}

/// Dynamic message counts drop in line with the static table.
#[test]
fn dynamic_message_counts_drop() {
    for (name, src, p, axes, sizes, net) in panels() {
        let n = sizes[0];
        let orig = run(src, p, axes, n, Strategy::Original, &net);
        let comb = run(src, p, axes, n, Strategy::Global, &net);
        assert!(
            comb.messages < orig.messages,
            "{name}: {} !< {}",
            comb.messages,
            orig.messages
        );
    }
}

/// Relative gains shrink as the problem grows (startup amortizes — the
/// visible trend across each Figure 10 panel).
#[test]
fn gains_shrink_with_problem_size() {
    for (name, src, p, axes, sizes, net) in panels() {
        let gain = |n| {
            let orig = run(src, p, axes, n, Strategy::Original, &net);
            let comb = run(src, p, axes, n, Strategy::Global, &net);
            1.0 - comb.total_us() / orig.total_us()
        };
        let small = gain(sizes[0]);
        let large = gain(*sizes.last().unwrap());
        assert!(
            large <= small + 0.02,
            "{name}: gain should not grow with n (small {small:.3}, large {large:.3})"
        );
    }
}

/// The NOW's higher per-message overhead makes combining relatively more
/// valuable there than on the SP2 (§5's cross-platform observation).
#[test]
fn now_benefits_more_than_sp2() {
    let gain = |p: u32, net: &NetworkModel, n: i64| {
        let orig = run(gcomm::kernels::SHALLOW, p, 2, n, Strategy::Original, net);
        let comb = run(gcomm::kernels::SHALLOW, p, 2, n, Strategy::Global, net);
        1.0 - comb.total_us() / orig.total_us()
    };
    let sp2 = gain(25, &NetworkModel::sp2(), 512);
    let now = gain(8, &NetworkModel::now_myrinet(), 512);
    assert!(now > sp2, "NOW gain {now:.3} vs SP2 gain {sp2:.3}");
}
