//! Process-level chaos tests for `gcommc cluster` (DESIGN.md §13): a real
//! router process over real shard processes, with a shard SIGKILLed under
//! load. The contract under fire:
//!
//! * every in-flight request either succeeds via failover or returns a
//!   structured `unavailable` error — never a hang, never a corrupt frame;
//! * SIGTERM to the router drains in-flight requests, shuts down the
//!   shards it spawned, and exits 0.

use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use gcomm::serve::cluster::ShardProc;
use gcomm::serve::json::Json;
use gcomm::serve::{compile_request, Client};
use gcomm::Strategy;

const GCOMMC: &str = env!("CARGO_BIN_EXE_gcommc");

fn source(i: usize) -> String {
    format!(
        "program p{i}\nparam n\nreal a(n,n), b(n,n) distribute (block, block)\n\
         b(2:n, 1:n) = a(1:n-1, 1:n)\nend\n"
    )
}

/// Spawns a router process and returns it plus the address parsed from
/// its startup banner (stderr is drained by a detached thread after).
fn spawn_router(args: &[String]) -> (Child, SocketAddr) {
    let mut child = Command::new(GCOMMC)
        .arg("cluster")
        .args(args)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn gcommc cluster");
    let stderr = child.stderr.take().unwrap();
    let mut reader = BufReader::new(stderr);
    let mut line = String::new();
    let addr = loop {
        line.clear();
        let n = reader.read_line(&mut line).expect("router stderr readable");
        assert_ne!(n, 0, "router exited before announcing its address");
        if let Some(rest) = line.split("cluster on ").nth(1) {
            break rest
                .split_whitespace()
                .next()
                .and_then(|a| a.parse().ok())
                .unwrap_or_else(|| panic!("unparseable banner: {line}"));
        }
    };
    std::thread::spawn(move || {
        let mut sink = std::io::sink();
        let _ = std::io::copy(&mut reader, &mut sink);
    });
    (child, addr)
}

/// A response is acceptable under chaos iff it is a complete, parseable
/// frame that either succeeded or failed *structurally*.
fn acceptable(resp: &str) -> bool {
    let Ok(v) = Json::parse(resp) else {
        return false;
    };
    if v.get("ok").and_then(Json::as_bool) == Some(true) {
        return true;
    }
    v.get("error").and_then(Json::as_str) == Some("unavailable")
}

#[test]
fn sigkilled_shard_under_load_never_hangs_or_corrupts() {
    // The test owns the shard processes (so it can SIGKILL one) and the
    // router attaches to them.
    let mut shards: Vec<ShardProc> = (0..3)
        .map(|_| ShardProc::spawn(GCOMMC, &["--jobs", "2"]).expect("spawn shard"))
        .collect();
    let mut args: Vec<String> = vec!["--addr".into(), "127.0.0.1:0".into()];
    for s in &shards {
        args.push("--attach".into());
        args.push(s.addr().to_string());
    }
    args.push("--jobs".into());
    args.push("4".into());
    let (mut router, addr) = spawn_router(&args);

    const THREADS: usize = 4;
    const BATCHES: usize = 8;
    const PER_BATCH: usize = 6;
    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect router");
                let mut ok = 0usize;
                let mut unavailable = 0usize;
                for b in 0..BATCHES {
                    // Pipeline a batch, then collect it — requests are in
                    // flight when the shard dies.
                    for j in 0..PER_BATCH {
                        let i = (t * BATCHES + b) * PER_BATCH + j;
                        let req =
                            compile_request(i as u64, &source(i), Strategy::Global, None, None);
                        client.send(&req).expect("send");
                    }
                    for _ in 0..PER_BATCH {
                        let resp = client
                            .recv()
                            .expect("complete frame, not a corrupt or hung one")
                            .expect("response before EOF");
                        assert!(acceptable(&resp), "unacceptable response: {resp}");
                        if resp.contains("\"ok\":true") {
                            ok += 1;
                        } else {
                            unavailable += 1;
                        }
                    }
                    std::thread::sleep(Duration::from_millis(25));
                }
                (ok, unavailable)
            })
        })
        .collect();

    // Let the load ramp, then SIGKILL a shard mid-flight.
    std::thread::sleep(Duration::from_millis(300));
    shards[1].kill();

    let mut total_ok = 0;
    let mut total_unavailable = 0;
    for w in workers {
        let (ok, unavailable) = w.join().expect("worker thread");
        total_ok += ok;
        total_unavailable += unavailable;
    }
    assert_eq!(
        total_ok + total_unavailable,
        THREADS * BATCHES * PER_BATCH,
        "every request must be answered"
    );
    // With one replica per key, killing one of three shards must not fail
    // any request: the failover path absorbs the loss entirely.
    assert_eq!(
        total_unavailable, 0,
        "failover should absorb a single shard death"
    );

    // The cluster's stats must show it noticed and recovered.
    let mut client = Client::connect(addr).unwrap();
    let stats = client.request(r#"{"op":"stats","id":1}"#).unwrap();
    assert!(stats.contains("\"cluster.requests\""), "{stats}");
    let resp = client.request(r#"{"op":"shutdown","id":2}"#).unwrap();
    assert!(resp.contains("\"shutting_down\":true"));
    drop(client);
    let status = wait_with_deadline(&mut router, Duration::from_secs(20));
    assert_eq!(status, Some(0), "router must drain and exit cleanly");
}

#[test]
fn sigterm_drains_router_and_spawned_shards_exit_zero() {
    // Here the router spawns and owns its shards (the production shape).
    let (mut router, addr) = spawn_router(&[
        "--addr".into(),
        "127.0.0.1:0".into(),
        "--shards".into(),
        "2".into(),
        "--jobs".into(),
        "2".into(),
    ]);
    let mut client = Client::connect(addr).unwrap();
    // In-flight work at the moment the signal lands.
    const N: u64 = 5;
    for id in 0..N {
        client
            .send(&format!("{{\"op\":\"sleep\",\"id\":{id},\"ms\":200}}"))
            .unwrap();
    }
    std::thread::sleep(Duration::from_millis(50));
    let term = Command::new("kill")
        .args(["-TERM", &router.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(term.success());

    // Every accepted request drains before the router exits.
    let mut got = 0;
    while got < N {
        match client.recv() {
            Ok(Some(resp)) => {
                assert!(resp.contains("\"slept_ms\":200"), "{resp}");
                got += 1;
            }
            other => panic!("lost {} in-flight responses ({other:?})", N - got),
        }
    }
    drop(client);
    let status = wait_with_deadline(&mut router, Duration::from_secs(20));
    assert_eq!(status, Some(0), "SIGTERM must exit 0 after the drain");
}

fn wait_with_deadline(child: &mut Child, deadline: Duration) -> Option<i32> {
    let end = Instant::now() + deadline;
    loop {
        if let Some(status) = child.try_wait().expect("wait on child") {
            return status.code();
        }
        if Instant::now() >= end {
            let _ = child.kill();
            let _ = child.wait();
            panic!("child did not exit within {deadline:?}");
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}
