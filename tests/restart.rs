//! Process-level crash/restart chaos tests against the real `gcommc`
//! binary (DESIGN.md §15): a SIGKILLed persisting server restarts warm
//! and bit-identical, and a supervised cluster shard is respawned —
//! not just failed over — rejoining the ring answering from the cache
//! it recovered off disk.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use gcomm::serve::cluster::{
    supervise, ClusterConfig, Ring, RouterHandle, ShardProc, SupervisePolicy,
};
use gcomm::serve::protocol::{cache_key_material, CompileReq};
use gcomm::serve::{compile_request, fnv1a, Client};
use gcomm::Strategy;

const GCOMMC: &str = env!("CARGO_BIN_EXE_gcommc");

fn tmp_dir(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("gcomm-restart-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    std::fs::create_dir_all(&p).unwrap();
    p
}

fn sources(n: usize) -> Vec<String> {
    (0..n)
        .map(|i| {
            format!(
                "program p{i}\nparam n\nreal a(n,n), b(n,n) distribute (block, block)\n\
                 b(2:n, 1:n) = a(1:n-1, 1:n)\nend\n"
            )
        })
        .collect()
}

/// SIGKILL by pid — the child dies mid-whatever, no drain, no flush.
fn sigkill(pid: u32) {
    let status = std::process::Command::new("kill")
        .arg("-9")
        .arg(pid.to_string())
        .status()
        .expect("kill(1) must exist");
    assert!(status.success(), "kill -9 {pid} failed");
}

fn counter(router: &RouterHandle, name: &str) -> u64 {
    router.registry().snapshot().counter(name)
}

fn wait_for_counter(router: &RouterHandle, name: &str, want: u64) -> u64 {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let got = counter(router, name);
        if got >= want || Instant::now() >= deadline {
            return got;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Pulls one counter value out of a shard's `stats` response (stable
/// form renders sorted `"name":value` pairs).
fn shard_counter(addr: &SocketAddr, name: &str) -> u64 {
    let mut c = Client::connect_timeout(addr, Duration::from_secs(2)).unwrap();
    let resp = c.request(r#"{"op":"stats","id":1,"stable":true}"#).unwrap();
    let key = format!("\"{name}\":");
    let Some(at) = resp.find(&key) else { return 0 };
    resp[at + key.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap_or(0)
}

#[test]
fn sigkilled_persisting_server_restarts_warm_and_bit_identical() {
    let dir = tmp_dir("serve");
    let persist = dir.to_string_lossy().into_owned();
    let args = ["--persist", persist.as_str(), "--jobs", "2"];
    let mut proc = ShardProc::spawn(GCOMMC, &args).unwrap();

    let srcs = sources(8);
    let mut cold: Vec<String> = Vec::new();
    {
        let mut client = Client::connect(proc.addr()).unwrap();
        for (i, src) in srcs.iter().enumerate() {
            let req = compile_request(i as u64, src, Strategy::Global, None, None);
            let resp = client.request(&req).unwrap();
            assert!(resp.contains("\"ok\":true"), "cold compile {i} failed");
            cold.push(resp);
        }
    }

    // Die without any drain; restart on the same directory.
    sigkill(proc.pid());
    let addr = proc.respawn().unwrap();

    // The recovery scan ran before the banner: every record came back
    // clean, and the whole corpus hits warm with zero recompiles —
    // byte-for-byte what the dead process served cold.
    assert_eq!(shard_counter(&addr, "store.recover_ok"), 8);
    assert_eq!(shard_counter(&addr, "store.quarantined"), 0);
    let mut client = Client::connect(addr).unwrap();
    for (i, src) in srcs.iter().enumerate() {
        let req = compile_request(i as u64, src, Strategy::Global, None, None);
        assert_eq!(
            client.request(&req).unwrap(),
            cold[i],
            "source {i}: restart changed bytes"
        );
    }
    assert_eq!(shard_counter(&addr, "cache.hit"), 8);
    assert_eq!(shard_counter(&addr, "serve.compiles"), 0);

    drop(client);
    proc.shutdown_graceful(Duration::from_secs(5)).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn supervised_cluster_shard_respawns_and_answers_from_warmed_cache() {
    let dir = tmp_dir("cluster");
    let mut procs = Vec::new();
    for i in 0..2 {
        let persist = dir
            .join(format!("shard-{i}"))
            .to_string_lossy()
            .into_owned();
        let args = ["--persist", persist.as_str(), "--jobs", "2"];
        procs.push(ShardProc::spawn(GCOMMC, &args).unwrap());
    }
    let pids: Vec<u32> = procs.iter().map(ShardProc::pid).collect();
    let addrs: Vec<SocketAddr> = procs.iter().map(ShardProc::addr).collect();

    let cfg = ClusterConfig {
        jobs: 4,
        retry_base: Duration::from_millis(5),
        retry_cap: Duration::from_millis(50),
        // Fast probes so the kill is detected (and the slot marked down)
        // well before the supervisor's slower poll respawns it.
        check_interval: Duration::from_millis(30),
        ..ClusterConfig::default()
    };
    let default_budget = cfg.default_budget;
    let router = gcomm::serve::spawn_router("127.0.0.1:0", &addrs, cfg.clone()).unwrap();
    let supervisor = supervise(
        procs,
        router.admission(),
        SupervisePolicy {
            poll_interval: Duration::from_millis(500),
            ..SupervisePolicy::default()
        },
        router.shutdown_flag(),
    );

    let srcs = sources(16);
    let primary = |src: &str| {
        let req = CompileReq {
            id: None,
            source: src.to_string(),
            strategy: Strategy::Global,
            budget: None,
            sim: None,
        };
        Ring::new(2, cfg.vnodes)
            .primary(fnv1a(cache_key_material(&req, &default_budget).as_bytes()))
    };
    assert!(
        srcs.iter().any(|s| primary(s) == 0),
        "no source routes to shard 0"
    );

    let mut client = Client::connect(router.addr()).unwrap();
    let mut cold: Vec<String> = Vec::new();
    for (i, src) in srcs.iter().enumerate() {
        let req = compile_request(i as u64, src, Strategy::Global, None, None);
        cold.push(client.request(&req).unwrap());
    }

    // Chaos: SIGKILL shard 0. The prober marks it down, the supervisor
    // respawns it on its original command line (same --persist dir),
    // probes it, and readmits it; the router's prober re-ups the slot.
    sigkill(pids[0]);
    assert!(wait_for_counter(&router, "cluster.marked_down", 1) >= 1);
    assert!(
        wait_for_counter(&router, "cluster.respawn", 1) >= 1,
        "supervisor never respawned the killed shard"
    );
    assert!(
        wait_for_counter(&router, "cluster.marked_up", 1) >= 1,
        "respawned shard was never marked up again"
    );

    // The respawned shard warmed from its own log before its banner.
    let new_addr = router.admission().shard_addr(0);
    assert_ne!(new_addr, addrs[0], "respawn should bind a fresh port");
    assert!(shard_counter(&new_addr, "store.recover_ok") >= 1);
    assert_eq!(shard_counter(&new_addr, "store.quarantined"), 0);

    // Full corpus again, through the ring: bit-identical to the cold
    // run, and the respawned shard answers its keyspace from the cache
    // it recovered — zero compiles since the respawn.
    for (i, src) in srcs.iter().enumerate() {
        let req = compile_request(i as u64, src, Strategy::Global, None, None);
        assert_eq!(
            client.request(&req).unwrap(),
            cold[i],
            "source {i}: respawned cluster changed bytes"
        );
    }
    assert_eq!(counter(&router, "serve.unavailable"), 0);
    assert!(
        shard_counter(&new_addr, "cache.hit") >= 1,
        "the respawned shard served nothing from its warmed cache"
    );
    assert_eq!(
        shard_counter(&new_addr, "serve.compiles"),
        0,
        "the respawned shard recompiled instead of serving warm"
    );

    drop(client);
    router.stop().unwrap();
    let mut procs = supervisor.join();
    for p in &mut procs {
        let _ = p.shutdown_graceful(Duration::from_secs(5));
    }
    let _ = std::fs::remove_dir_all(&dir);
}
