//! Property tests for the topology-aware collective backend
//! (DESIGN.md §17).
//!
//! Two invariants hold for every program, on every topology:
//!
//! * **Payload identity** — a collective algorithm changes *how* bytes
//!   travel (step count, per-step wire traffic), never *what* arrives:
//!   the simulator's accumulated logical payload (`SimResult::bytes`)
//!   and message-kind mix are identical under every `--coll` choice.
//! * **Auto is never worse** — `--coll auto` sweeps every applicable
//!   algorithm per (pattern, size) with the exact simulator cost
//!   expression and breaks ties toward `p2p`, so its simulated
//!   communication time is never above the pure-`p2p` lowering's.
//!
//! Both are checked over the paper's seven kernels and over a stream of
//! fuzzed well-formed programs (200 by default; `GCOMM_COLL_CASES`
//! scales it).

use gcomm::coll::{Algo, CollChoice, CollConfig, Topology};
use gcomm::core::{lower_to_sim, Compiled, SimConfig};
use gcomm::machine::{simulate, NetworkModel, ProcGrid, SimResult};
use gcomm::Strategy;

const FUZZ_SEED_BASE: u64 = 0xc0117;

fn cases() -> u64 {
    std::env::var("GCOMM_COLL_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200)
}

fn topologies() -> Vec<Topology> {
    vec![
        Topology::Flat,
        Topology::parse("fat-tree:4x4").unwrap(),
        Topology::parse("torus:5x5").unwrap(),
    ]
}

fn grid_rank(c: &Compiled) -> usize {
    c.prog
        .arrays
        .iter()
        .map(|a| a.distributed_dims().len())
        .max()
        .unwrap_or(1)
        .max(1)
}

/// Simulates `c` at size `n` on `net` with the given collective choice
/// (`None` = the legacy flat-model sentinel path).
fn sim_with(
    c: &Compiled,
    p: u32,
    n: i64,
    net: &NetworkModel,
    coll: Option<(Topology, CollChoice)>,
) -> SimResult {
    let mut cfg = SimConfig::uniform(c, ProcGrid::balanced(p, grid_rank(c)), n).with("nsteps", 2);
    if let Some((topo, choice)) = coll {
        cfg = cfg.with_coll(CollConfig::new(topo, choice, net.clone()));
    }
    simulate(&lower_to_sim(c, &cfg), net)
}

fn check_program(name: &str, src: &str, p: u32, n: i64, net: &NetworkModel) {
    let c = gcomm::compile(src, Strategy::Global).unwrap_or_else(|e| panic!("{name}: {e}"));
    let legacy = sim_with(&c, p, n, net, None);
    for topo in topologies() {
        let p2p = sim_with(
            &c,
            p,
            n,
            net,
            Some((topo.clone(), CollChoice::Fixed(Algo::P2p))),
        );
        let auto = sim_with(&c, p, n, net, Some((topo.clone(), CollChoice::Auto)));
        // Payload identity: the logical bytes delivered and the message
        // mix never depend on the algorithm — only the wire schedule does.
        for algo in [Algo::Ring, Algo::Rdbl, Algo::Bine] {
            let fixed = sim_with(&c, p, n, net, Some((topo.clone(), CollChoice::Fixed(algo))));
            assert_eq!(
                fixed.bytes,
                p2p.bytes,
                "{name} on {}: {algo:?} changed the delivered payload",
                topo.describe()
            );
        }
        assert_eq!(
            p2p.bytes,
            legacy.bytes,
            "{name} on {}: p2p lowering changed the delivered payload",
            topo.describe()
        );
        assert_eq!(auto.bytes, p2p.bytes, "{name}: auto changed the payload");
        // Auto never loses to p2p. Every message's selected cost uses the
        // exact `Msg::time_us` expression, so the inequality holds per
        // message; the summation tolerance absorbs float reassociation.
        let slack = 1e-9 * p2p.comm_us.abs() + 1e-6;
        assert!(
            auto.comm_us <= p2p.comm_us + slack,
            "{name} on {}: auto ({} us) beat by p2p ({} us)",
            topo.describe(),
            auto.comm_us,
            p2p.comm_us
        );
    }
}

/// The seven paper kernels: the six benchmark routines plus the running
/// example of Figure 4.
fn paper_programs() -> Vec<(String, &'static str)> {
    let mut v: Vec<(String, &'static str)> = gcomm::kernels::all_kernels()
        .into_iter()
        .map(|(b, r, src)| (format!("{b}/{r}"), src))
        .collect();
    v.push(("fig4/running".into(), gcomm::kernels::FIG4_RUNNING));
    v
}

#[test]
fn collectives_preserve_payload_and_auto_never_loses_on_paper_kernels() {
    for (name, src) in paper_programs() {
        for (p, net) in [
            (25u32, NetworkModel::sp2()),
            (8, NetworkModel::now_myrinet()),
        ] {
            check_program(&name, src, p, 64, &net);
        }
    }
}

#[test]
fn collectives_preserve_payload_and_auto_never_loses_on_fuzzed_programs() {
    let net = NetworkModel::sp2();
    for i in 0..cases() {
        let seed = FUZZ_SEED_BASE + i;
        let src = proptest::hpf::generate(seed);
        check_program(&format!("fuzz seed {seed}"), &src, 25, 64, &net);
    }
}

/// A flat topology with the fixed `p2p` algorithm prices every kernel
/// like a config with no collective backend at all: identical payload
/// and round counts, and times equal up to float reassociation (r
/// equal-step additions versus one `r × step` product). The serve path
/// additionally maps flat+p2p onto the no-backend sentinel, so the
/// historical goldens are pinned bit-exactly there.
#[test]
fn flat_p2p_lowering_is_bit_identical_to_the_legacy_path() {
    for (name, src) in paper_programs() {
        let c = gcomm::compile(src, Strategy::Global).unwrap_or_else(|e| panic!("{name}: {e}"));
        let net = NetworkModel::sp2();
        let legacy = sim_with(&c, 25, 64, &net, None);
        let flat = sim_with(
            &c,
            25,
            64,
            &net,
            Some((Topology::Flat, CollChoice::Fixed(Algo::P2p))),
        );
        assert_eq!(legacy.bytes, flat.bytes, "{name}: payload diverged");
        assert_eq!(legacy.messages, flat.messages, "{name}: rounds diverged");
        let tol = 1e-9 * legacy.comm_us.abs();
        assert!(
            (legacy.comm_us - flat.comm_us).abs() <= tol,
            "{name}: comm time diverged: {} vs {}",
            legacy.comm_us,
            flat.comm_us
        );
    }
}
