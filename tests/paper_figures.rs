//! Integration tests locking every compile-time result the paper reports:
//! the static message-count table (Figure 10, top) and the behaviours of
//! the motivating Figures 1–4.

use gcomm::{compile, static_counts, CommKind, Strategy};

/// The static message counts of Figure 10's table, verbatim.
#[test]
fn figure10_table_static_counts() {
    let expected = [
        ("shallow", "main", 20, 14, 8),
        ("trimesh", "normdot", 24, 24, 4),
        ("trimesh", "gauss", 13, 13, 4),
        ("hydflo", "flux", 52, 30, 6),
        ("hydflo", "hydro", 12, 12, 6),
    ];
    for (bench, routine, orig, nored, comb) in expected {
        let src = gcomm::kernels::all_kernels()
            .into_iter()
            .find(|(b, r, _)| *b == bench && *r == routine)
            .map(|(_, _, s)| s)
            .unwrap();
        let (o, n, c) = static_counts(src).unwrap();
        assert_eq!(
            (o, n, c),
            (orig, nored, comb),
            "{bench}:{routine} static counts"
        );
    }
}

/// Gravity reports NNC and SUM rows separately (8/8/4 and 8/8/2).
#[test]
fn figure10_gravity_by_kind() {
    let src = gcomm::kernels::GRAVITY;
    let count = |s, k| compile(src, s).unwrap().schedule.count_kind(k);
    for (kind, orig, nored, comb) in [(CommKind::Nnc, 8, 8, 4), (CommKind::Reduction, 8, 8, 2)] {
        assert_eq!(count(Strategy::Original, kind), orig);
        assert_eq!(count(Strategy::EarliestRE, kind), nored);
        assert_eq!(count(Strategy::Global, kind), comb);
    }
}

/// Figure 1: the NNC for `g` and `glast` combine pairwise by direction,
/// and each set of four partial sums combines into one reduction — but the
/// `g` sums and `glast` sums stay separate (their sections' shapes differ).
#[test]
fn figure1_combining_structure() {
    let c = compile(gcomm::kernels::FIG1_GRAVITY, Strategy::Global).unwrap();
    let nnc: Vec<_> = c
        .schedule
        .groups
        .iter()
        .filter(|g| g.kind == CommKind::Nnc)
        .collect();
    assert_eq!(nnc.len(), 4);
    for g in &nnc {
        assert_eq!(g.entries.len(), 2, "each direction pairs g with glast");
        let arrays: std::collections::HashSet<_> = g
            .entries
            .iter()
            .map(|&e| c.schedule.entry(e).array)
            .collect();
        assert_eq!(arrays.len(), 2, "the pair spans both arrays");
    }
    let sums: Vec<_> = c
        .schedule
        .groups
        .iter()
        .filter(|g| g.kind == CommKind::Reduction)
        .collect();
    assert_eq!(sums.len(), 2);
    for g in &sums {
        assert_eq!(g.entries.len(), 4, "four partial sums per reduction call");
        let arrays: std::collections::HashSet<_> = g
            .entries
            .iter()
            .map(|&e| c.schedule.entry(e).array)
            .collect();
        assert_eq!(arrays.len(), 1, "sums of one array only");
    }
}

/// Figure 2 / §2.2: redundancy elimination alone leaves 14 exchanges;
/// message combining as the guiding profit motive reaches 8, with placement
/// not at the earliest point.
#[test]
fn figure2_shallow_schedule() {
    let (orig, nored, comb) = static_counts(gcomm::kernels::FIG2_SHALLOW).unwrap();
    assert_eq!((orig, nored, comb), (20, 14, 8));
    // The global schedule must contain at least one multi-entry group
    // placed later than some member's earliest point — combining, not just
    // redundancy.
    let c = compile(gcomm::kernels::FIG2_SHALLOW, Strategy::Global).unwrap();
    assert!(c.schedule.groups.iter().any(|g| g.entries.len() >= 2));
}

/// Figure 3: earliest placement separates the messages in both phrasings
/// here (defs in different statements/loops), while the global algorithm
/// combines them into one in both — robustness to syntax.
#[test]
fn figure3_syntax_robustness() {
    for src in [gcomm::kernels::FIG3_F90, gcomm::kernels::FIG3_SCALARIZED] {
        let nored = compile(src, Strategy::EarliestRE).unwrap();
        let comb = compile(src, Strategy::Global).unwrap();
        assert_eq!(nored.static_messages(), 2);
        assert_eq!(comb.static_messages(), 1);
        assert_eq!(comb.schedule.groups[0].entries.len(), 2);
    }
}

/// Figure 4 (running example): 4 entries; earliest placement catches only
/// a1 (3 messages); the global algorithm absorbs both b1 and a1 and ships a
/// single combined {a2, b2} message.
#[test]
fn figure4_full_story() {
    let src = gcomm::kernels::FIG4_RUNNING;
    assert_eq!(
        compile(src, Strategy::Original).unwrap().static_messages(),
        4
    );
    let nored = compile(src, Strategy::EarliestRE).unwrap();
    assert_eq!(nored.static_messages(), 3);
    assert_eq!(nored.schedule.eliminated(), 1);
    let comb = compile(src, Strategy::Global).unwrap();
    assert_eq!(comb.static_messages(), 1);
    assert_eq!(comb.schedule.eliminated(), 2);
    let g = &comb.schedule.groups[0];
    assert_eq!(g.entries.len(), 2);
    assert_eq!(g.kind, CommKind::Nnc);
}

/// The reduction in static counts is monotone for every kernel:
/// comb ≤ nored ≤ orig, with comb strictly better somewhere.
#[test]
fn counts_monotone_across_strategies() {
    for (bench, routine, src) in gcomm::kernels::all_kernels() {
        let (o, n, c) = static_counts(src).unwrap();
        assert!(c <= n && n <= o, "{bench}:{routine}: {c} <= {n} <= {o}");
        assert!(c < o, "{bench}:{routine}: the paper's algorithm must win");
    }
}

/// Reduction in messages reaches the paper's headline "factor of almost
/// nine" on hydflo's flux routine (52 → 6).
#[test]
fn headline_factor_of_nine() {
    let (o, _, c) = static_counts(gcomm::kernels::HYDFLO_FLUX).unwrap();
    let factor = o as f64 / c as f64;
    assert!(factor > 8.5, "got {factor}");
}
