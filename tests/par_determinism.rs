//! Determinism contract of the parallel layer (DESIGN.md §11).
//!
//! Everything `gcomm-par` touches must be **bit-identical** between
//! `--jobs 1` and `--jobs N`:
//!
//! * compiles fanned across the worker pool produce the same schedules,
//!   and per-item stats registries merged in item order produce the same
//!   counters, as a serial loop;
//! * the parallel exhaustive placement search returns the same schedule,
//!   cost bits, node/prune counts, and `truncated` flag for any worker count — the
//!   shared best-cost bound only prunes, and ties resolve by assignment
//!   index;
//! * the memoized section algebra answers exactly like the unmemoized
//!   symbolic comparison.

use std::collections::BTreeMap;

use gcomm::core::{optimal_placement_jobs, CombinePolicy, Compiled, SimConfig};
use gcomm::machine::{NetworkModel, ProcGrid};
use gcomm::sections::{DimSect, Section, SectionAlgebra, SymCtx};
use gcomm::{compile, Budget, Strategy};
use gcomm_ir::Affine;
use proptest::hpf;

const STRATEGIES: [Strategy; 4] = [
    Strategy::Original,
    Strategy::EarliestRE,
    Strategy::EarliestPartialRE,
    Strategy::Global,
];

/// Counter snapshot with the wall-clock-valued entries stripped (any
/// `*.wall_ns` accumulating timer varies run to run by construction).
fn stable_counters(report: &gcomm::obs::StatsReport) -> BTreeMap<String, u64> {
    report
        .counters
        .iter()
        .filter(|(k, _)| !k.ends_with("wall_ns"))
        .map(|(k, v)| (k.clone(), *v))
        .collect()
}

/// Compiles every item on `jobs` workers, each under a fresh registry,
/// and merges the snapshots in item order — the driver pattern of
/// `gcomm_bench::reports::par_report`.
fn compile_matrix(
    jobs: usize,
    work: &[(&str, Strategy)],
) -> (Vec<Compiled>, BTreeMap<String, u64>) {
    let merged = gcomm::obs::Registry::new();
    let results = gcomm::par::map(jobs, work, |_, &(src, strategy)| {
        let reg = gcomm::obs::Registry::new();
        let c = {
            let _scope = gcomm::obs::install(reg.clone());
            compile(src, strategy).expect("kernel compiles")
        };
        (c, reg.snapshot())
    });
    let mut compiled = Vec::new();
    for (c, snap) in results {
        merged.absorb(&snap);
        compiled.push(c);
    }
    (compiled, stable_counters(&merged.snapshot()))
}

/// Every kernel × strategy cell: schedules and merged counters from an
/// 8-worker fan-out are bit-identical to the serial loop.
#[test]
fn kernel_matrix_is_jobs_invariant() {
    let mut work = Vec::new();
    for (_, _, src) in gcomm_kernels::all_kernels() {
        for s in STRATEGIES {
            work.push((src, s));
        }
    }
    let (serial, serial_counters) = compile_matrix(1, &work);
    let (parallel, parallel_counters) = compile_matrix(8, &work);
    assert_eq!(serial.len(), parallel.len());
    for (i, (a, b)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(
            a, b,
            "kernel cell {i} ({:?}) diverged between jobs 1 and 8",
            work[i].1
        );
    }
    assert_eq!(
        serial_counters, parallel_counters,
        "merged stats counters diverged between jobs 1 and 8"
    );
}

/// The branch-and-bound search: same schedule, cost bits, node and prune
/// counts, and truncated flag for any worker count, across complete and
/// truncated budgets (DESIGN.md §16 determinism contract).
#[test]
fn optimal_search_is_jobs_invariant() {
    let cases: [(&str, usize, u64); 3] = [
        (gcomm_kernels::FIG4_RUNNING, 2, 20_000),
        (gcomm_kernels::FIG3_SCALARIZED, 2, 5_000),
        // Tight budget: the truncated path must stay jobs-invariant too.
        (gcomm_kernels::TRIMESH_GAUSS, 2, 100),
    ];
    for (src, axes, budget) in cases {
        let c = compile(src, Strategy::Global).expect("compiles");
        let cfg = SimConfig::uniform(&c, ProcGrid::balanced(8, axes), 48).with("nsteps", 4);
        let net = NetworkModel::sp2();
        let run = |jobs: usize| {
            let b = Budget::steps(budget);
            optimal_placement_jobs(&c, &CombinePolicy::default(), &cfg, &net, &b, jobs)
                .expect("has communication")
        };
        let one = run(1);
        for jobs in [2, 4, 8] {
            let many = run(jobs);
            assert_eq!(
                one.schedule, many.schedule,
                "jobs {jobs}: schedule diverged"
            );
            assert_eq!(
                one.comm_us.to_bits(),
                many.comm_us.to_bits(),
                "jobs {jobs}: cost diverged"
            );
            assert_eq!(one.nodes, many.nodes, "jobs {jobs}: nodes diverged");
            assert_eq!(one.leaves, many.leaves, "jobs {jobs}: leaves diverged");
            assert_eq!(
                (one.pruned_bound, one.pruned_dominance),
                (many.pruned_bound, many.pruned_dominance),
                "jobs {jobs}: prune counts diverged"
            );
            assert_eq!(
                one.truncated, many.truncated,
                "jobs {jobs}: truncated flag diverged"
            );
        }
    }
}

/// 200 fuzzed programs: compiling inside the worker pool is bit-identical
/// to compiling serially.
#[test]
fn fuzz_seeds_are_jobs_invariant() {
    let seeds: Vec<u64> = (0..200).map(|i| 0x9c077 + i).collect();
    let compile_all = |jobs: usize| {
        gcomm::par::map(jobs, &seeds, |_, &seed| {
            let src = hpf::generate(seed);
            STRATEGIES
                .map(|s| compile(&src, s).unwrap_or_else(|e| panic!("seed {seed} {s:?}: {e}")))
        })
    };
    let serial = compile_all(1);
    let parallel = compile_all(8);
    for (seed, (a, b)) in seeds.iter().zip(serial.iter().zip(&parallel)) {
        assert_eq!(a, b, "seed {seed}: schedules diverged between jobs 1 and 8");
    }
}

/// Deterministic splitmix-style generator for random section shapes.
fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn random_section(state: &mut u64) -> Section {
    let rank = 1 + (next(state) % 3) as usize;
    let dims = (0..rank)
        .map(|_| match next(state) % 8 {
            0 => DimSect::Any,
            1 => DimSect::Elem(Affine::constant((next(state) % 10) as i64)),
            _ => {
                let lo = (next(state) % 8) as i64;
                let len = (next(state) % 12) as i64;
                let step = 1 + (next(state) % 3) as i64;
                DimSect::Range {
                    lo: Affine::constant(lo),
                    hi: Affine::constant(lo + len),
                    step,
                }
            }
        })
        .collect();
    Section::new(dims)
}

/// Memoized subsumption ≡ unmemoized symbolic subset on random pairs, and
/// the memoized answer is stable across re-queries.
#[test]
fn memoized_subsumption_matches_unmemoized() {
    let alg = SectionAlgebra::new();
    let ctx = SymCtx::default();
    let budget = Budget::unlimited();
    let mut state = 0x5eed_u64;
    let sections: Vec<Section> = (0..40).map(|_| random_section(&mut state)).collect();
    let ids: Vec<_> = sections.iter().map(|s| alg.intern(s)).collect();
    for (i, a) in sections.iter().enumerate() {
        for (j, b) in sections.iter().enumerate() {
            let direct = a.subset_of(b, &ctx);
            let memo = alg.subset_of_within(a, ids[i], b, ids[j], &ctx, &budget);
            assert_eq!(memo, direct, "pair ({i}, {j}): memoized answer diverged");
            let again = alg.subset_of_within(a, ids[i], b, ids[j], &ctx, &budget);
            assert_eq!(again, direct, "pair ({i}, {j}): memo hit diverged");
        }
    }
}
