//! Concurrency contracts of the compile service (DESIGN.md §12):
//!
//! * responses are a pure function of the request — identical for 1 or 4
//!   workers and under any client-thread interleaving;
//! * the deterministic (`stable`) stats form is jobs-invariant;
//! * a full queue answers `overloaded` immediately instead of
//!   deadlocking or buffering without bound;
//! * shutdown drains: every accepted job's response is written before the
//!   server exits.

use std::collections::BTreeMap;

use gcomm::serve::json::Json;
use gcomm::serve::{compile_request, Client, ServiceConfig};
use gcomm::Strategy;

fn config(jobs: usize) -> ServiceConfig {
    ServiceConfig {
        jobs,
        ..ServiceConfig::default()
    }
}

fn response_id(resp: &str) -> u64 {
    Json::parse(resp)
        .expect("response parses")
        .get("id")
        .and_then(Json::as_u64)
        .expect("response carries its id")
}

/// Drives `per_thread × threads` distinct compile requests through their
/// own connections, pipelined, and returns (id → response, stable stats).
fn run_fleet(jobs: usize, threads: usize, per_thread: usize) -> (BTreeMap<u64, String>, String) {
    let server = gcomm::serve::spawn("127.0.0.1:0", config(jobs)).unwrap();
    let addr = server.addr();
    let workers: Vec<_> = (0..threads)
        .map(|t| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let ids: Vec<u64> = (0..per_thread)
                    .map(|j| (t * per_thread + j) as u64)
                    .collect();
                // Pipeline: send everything, then collect everything (the
                // server may answer out of submission order).
                for &id in &ids {
                    let src = proptest::hpf::generate(1000 + id);
                    client
                        .send(&compile_request(id, &src, Strategy::Global, None, None))
                        .unwrap();
                }
                let mut got = BTreeMap::new();
                for _ in &ids {
                    let resp = client.recv().unwrap().expect("response before EOF");
                    got.insert(response_id(&resp), resp);
                }
                got
            })
        })
        .collect();
    let mut all = BTreeMap::new();
    for w in workers {
        all.extend(w.join().unwrap());
    }
    let mut client = Client::connect(addr).unwrap();
    let stats = client
        .request(r#"{"op":"stats","id":9999,"stable":true}"#)
        .unwrap();
    server.stop().unwrap();
    (all, stats)
}

#[test]
fn responses_and_stable_stats_are_jobs_invariant() {
    let (one, stats_one) = run_fleet(1, 4, 6);
    let (four, stats_four) = run_fleet(4, 4, 6);
    assert_eq!(one.len(), 24);
    assert_eq!(
        one, four,
        "per-id responses must not depend on the worker count"
    );
    // The stats request itself is counted identically in both runs, so
    // the whole stable form must match byte-for-byte (ids match too).
    assert_eq!(stats_one, stats_four);
    assert!(stats_one.contains("\"serve.requests\":25"), "{stats_one}");
}

#[test]
fn full_queue_overloads_instead_of_deadlocking() {
    let server = gcomm::serve::spawn(
        "127.0.0.1:0",
        ServiceConfig {
            jobs: 1,
            queue_cap: 2,
            ..ServiceConfig::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    // One slow job occupies the single worker; the queue holds two more;
    // everything beyond that must be rejected immediately.
    let total = 10u64;
    for id in 0..total {
        client
            .send(&format!("{{\"op\":\"sleep\",\"id\":{id},\"ms\":200}}"))
            .unwrap();
    }
    let mut slept = 0;
    let mut overloaded = 0;
    for _ in 0..total {
        let resp = client.recv().unwrap().expect("every request is answered");
        if resp.contains("\"slept_ms\"") {
            slept += 1;
        } else {
            assert!(resp.contains("\"error\":\"overloaded\""), "{resp}");
            overloaded += 1;
        }
    }
    assert!(
        overloaded > 0,
        "a 2-deep queue cannot absorb 10 pipelined sleeps"
    );
    assert!(slept >= 1, "accepted jobs still complete");
    // The connection (and the server) survived the burst.
    let pong = client.request(r#"{"op":"ping","id":99}"#).unwrap();
    assert!(pong.contains("\"pong\":true"));
    server.stop().unwrap();
}

#[test]
fn shutdown_drains_accepted_jobs() {
    let server = gcomm::serve::spawn("127.0.0.1:0", config(2)).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    client.send(r#"{"op":"sleep","id":1,"ms":150}"#).unwrap();
    client.send(r#"{"op":"shutdown","id":2}"#).unwrap();
    let mut got = Vec::new();
    while let Ok(Some(resp)) = client.recv() {
        got.push(response_id(&resp));
    }
    got.sort_unstable();
    assert_eq!(got, vec![1, 2], "the accepted sleep must drain before exit");
    server.stop().unwrap();
}
