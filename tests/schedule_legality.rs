//! Legality invariants: every schedule any strategy produces must be safe.
//!
//! * every placed group dominates all the uses it serves,
//! * every group's placement lies inside each member's `Earliest..Latest`
//!   window (global strategy),
//! * group members are pairwise mapping-compatible,
//! * absorbed entries are covered: the absorber's final placement dominates
//!   the absorbed use and its data (at the placement's nesting level)
//!   subsumes the absorbed entry's.

use gcomm::core::{candidates, earliest, latest, AnalysisCtx};
use gcomm::ir::Pos;
use gcomm::{compile, Strategy};

fn sources() -> Vec<&'static str> {
    let mut v: Vec<&'static str> = gcomm::kernels::all_kernels()
        .into_iter()
        .map(|(_, _, s)| s)
        .collect();
    v.push(gcomm::kernels::FIG3_F90);
    v.push(gcomm::kernels::FIG3_SCALARIZED);
    v.push(gcomm::kernels::FIG4_RUNNING);
    v
}

#[test]
fn groups_dominate_their_uses() {
    for src in sources() {
        for strategy in [Strategy::Original, Strategy::EarliestRE, Strategy::Global] {
            let c = compile(src, strategy).unwrap();
            let ctx = AnalysisCtx::new(&c.prog);
            for g in &c.schedule.groups {
                for &eid in &g.entries {
                    let e = c.schedule.entry(eid);
                    let before_use = Pos::before(&c.prog, e.stmt);
                    assert!(
                        g.pos.dominates(&before_use, &ctx.dt),
                        "{strategy:?}: group at {:?} must dominate use of {}",
                        g.pos,
                        e.label
                    );
                }
            }
        }
    }
}

#[test]
fn global_placements_lie_in_candidate_windows() {
    for src in sources() {
        let c = compile(src, Strategy::Global).unwrap();
        let ctx = AnalysisCtx::new(&c.prog);
        let absorbed: Vec<_> = c.schedule.absorptions.iter().map(|a| a.absorbed).collect();
        for g in &c.schedule.groups {
            for &eid in &g.entries {
                if absorbed.contains(&eid) {
                    continue;
                }
                let e = c.schedule.entry(eid);
                let ep = earliest::earliest_pos(&ctx, e);
                let lp = latest::latest(&ctx, e);
                let cands = candidates::candidates(&ctx, e, ep, lp);
                assert!(
                    cands.contains(&g.pos),
                    "{}: placement {:?} outside candidate window [{:?} .. {:?}]",
                    e.label,
                    g.pos,
                    ep,
                    lp
                );
            }
        }
    }
}

#[test]
fn group_members_are_mapping_compatible() {
    for src in sources() {
        let c = compile(src, Strategy::Global).unwrap();
        for g in &c.schedule.groups {
            for &a in &g.entries {
                for &b in &g.entries {
                    let (ea, eb) = (c.schedule.entry(a), c.schedule.entry(b));
                    assert!(
                        ea.mapping.compatible(&eb.mapping),
                        "{} and {} share a group but are incompatible",
                        ea.label,
                        eb.label
                    );
                }
            }
        }
    }
}

#[test]
fn absorbed_entries_are_covered() {
    for src in sources() {
        for strategy in [Strategy::EarliestRE, Strategy::Global] {
            let c = compile(src, strategy).unwrap();
            let ctx = AnalysisCtx::new(&c.prog);
            for a in &c.schedule.absorptions {
                // Find the group carrying the absorber.
                let group = c
                    .schedule
                    .groups
                    .iter()
                    .find(|g| g.entries.contains(&a.by))
                    .unwrap_or_else(|| panic!("absorber {:?} must be placed", a.by));
                let absorbed = c.schedule.entry(a.absorbed);
                let before_use = Pos::before(&c.prog, absorbed.stmt);
                assert!(
                    group.pos.dominates(&before_use, &ctx.dt),
                    "{strategy:?}: absorber of {} placed after the absorbed use",
                    absorbed.label
                );
                let lvl = group.pos.level(&c.prog);
                let cover = ctx.asd_at(c.schedule.entry(a.by), lvl);
                let need = ctx.asd_at(absorbed, lvl);
                assert!(
                    need.subsumed_by(&cover, &ctx.sym),
                    "{strategy:?}: data of {} not covered by {}",
                    absorbed.label,
                    c.schedule.entry(a.by).label
                );
            }
        }
    }
}

#[test]
fn every_entry_is_placed_or_absorbed_exactly_once() {
    for src in sources() {
        for strategy in [Strategy::Original, Strategy::EarliestRE, Strategy::Global] {
            let c = compile(src, strategy).unwrap();
            for e in &c.schedule.entries {
                let placed = c
                    .schedule
                    .groups
                    .iter()
                    .filter(|g| g.entries.contains(&e.id))
                    .count();
                let absorbed = c
                    .schedule
                    .absorptions
                    .iter()
                    .filter(|a| a.absorbed == e.id)
                    .count();
                assert_eq!(
                    placed + absorbed,
                    1,
                    "{strategy:?}: entry {} placed {placed}x absorbed {absorbed}x",
                    e.label
                );
            }
        }
    }
}
