//! Legality invariants: every schedule any strategy produces must be safe.
//!
//! The invariants themselves (group dominance, candidate-window
//! containment, mapping compatibility, absorption coverage, and the
//! placed-or-absorbed-exactly-once partition) live in
//! `gcomm::core::check::check_schedule` so the fuzzing harness and the
//! budget-degradation tests share them; this test drives the checker over
//! every paper kernel under every strategy.

use gcomm::core::check_schedule;
use gcomm::{compile, Strategy};

fn sources() -> Vec<&'static str> {
    let mut v: Vec<&'static str> = gcomm::kernels::all_kernels()
        .into_iter()
        .map(|(_, _, s)| s)
        .collect();
    v.push(gcomm::kernels::FIG3_F90);
    v.push(gcomm::kernels::FIG3_SCALARIZED);
    v.push(gcomm::kernels::FIG4_RUNNING);
    v
}

#[test]
fn every_strategy_produces_legal_schedules() {
    for src in sources() {
        for strategy in [
            Strategy::Original,
            Strategy::EarliestRE,
            Strategy::EarliestPartialRE,
            Strategy::Global,
        ] {
            let c = compile(src, strategy).unwrap();
            let rep = check_schedule(&c);
            assert!(rep.ok(), "{strategy:?}: {rep}");
        }
    }
}

#[test]
fn checker_is_not_vacuous() {
    // Sanity-check the factored checker still has teeth: dropping a group
    // violates the placed-exactly-once partition.
    let c = compile(gcomm::kernels::FIG4_RUNNING, Strategy::Global).unwrap();
    let mut broken = c.clone();
    broken.schedule.groups.clear();
    assert!(check_schedule(&c).ok());
    assert!(!check_schedule(&broken).ok());
}
