//! Overlap-mode simulation (§6 future direction): when the CPU and network
//! can proceed concurrently, communication hides under computation, and the
//! relative value of message combining shrinks — the regime in which the
//! paper notes its subset-elimination simplification "would have to be
//! dropped".

use gcomm::core::{lower_to_sim, SimConfig};
use gcomm::machine::{simulate, simulate_overlapped, NetworkModel, ProcGrid};
use gcomm::{compile, Strategy};

fn programs(n: i64, s: Strategy) -> gcomm::machine::CommProgram {
    let c = compile(gcomm::kernels::SHALLOW, s).unwrap();
    let cfg = SimConfig::uniform(&c, ProcGrid::balanced(25, 2), n).with("nsteps", 10);
    lower_to_sim(&c, &cfg)
}

#[test]
fn overlap_never_slower_never_free() {
    for s in [Strategy::Original, Strategy::Global] {
        let prog = programs(512, s);
        let net = NetworkModel::sp2();
        let eager = simulate(&prog, &net);
        let lazy = simulate_overlapped(&prog, &net);
        assert!(lazy.total_us() <= eager.total_us() + 1e-6);
        assert!(lazy.total_us() >= eager.compute_us.max(eager.comm_us) - 1e-6);
    }
}

#[test]
fn overlap_shrinks_the_benefit_of_combining() {
    // At a compute-heavy size, overlap hides most communication, so the
    // gap between the baseline and the optimized schedule narrows.
    let net = NetworkModel::sp2();
    let orig = programs(512, Strategy::Original);
    let comb = programs(512, Strategy::Global);

    let eager_gain = 1.0 - simulate(&comb, &net).total_us() / simulate(&orig, &net).total_us();
    let lazy_gain = 1.0
        - simulate_overlapped(&comb, &net).total_us() / simulate_overlapped(&orig, &net).total_us();
    assert!(
        lazy_gain <= eager_gain + 1e-9,
        "overlap must not increase the relative benefit (eager {eager_gain:.4}, lazy {lazy_gain:.4})"
    );
}

#[test]
fn comm_bound_kernels_still_benefit_under_overlap() {
    // gravity at a small size is communication-bound: even with perfect
    // overlap, combining wins wall-clock.
    let net = NetworkModel::sp2();
    let build = |s| {
        let c = compile(gcomm::kernels::GRAVITY, s).unwrap();
        let cfg = SimConfig::uniform(&c, ProcGrid::balanced(25, 2), 64).with("nsteps", 4);
        lower_to_sim(&c, &cfg)
    };
    let orig = simulate_overlapped(&build(Strategy::Original), &net);
    let comb = simulate_overlapped(&build(Strategy::Global), &net);
    assert!(
        comb.total_us() < orig.total_us(),
        "comb {} !< orig {}",
        comb.total_us(),
        orig.total_us()
    );
}
