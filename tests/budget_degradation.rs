//! Graceful degradation under analysis budgets (DESIGN.md §10).
//!
//! Two bracketing properties on every named kernel and paper figure:
//!
//! * a **near-zero** budget still terminates quickly and produces a
//!   schedule that passes the static legality checker *and* replays
//!   correctly under the reference interpreter — degradation is
//!   conservative, never wrong;
//! * a **generous** budget is transparent: the schedule is bit-identical
//!   to the unbudgeted compile and no `degraded.*` counter fires.

use std::collections::HashMap;
use std::time::Instant;

use gcomm::core::{check_schedule, compile_program_budgeted, CombinePolicy, Compiled};
use gcomm::machine::ProcGrid;
use gcomm::{compile, compile_budgeted, Budget, Strategy};

const STRATEGIES: [Strategy; 4] = [
    Strategy::Original,
    Strategy::EarliestRE,
    Strategy::EarliestPartialRE,
    Strategy::Global,
];

fn corpus() -> Vec<(String, &'static str)> {
    let mut v: Vec<(String, &'static str)> = gcomm::kernels::all_kernels()
        .into_iter()
        .map(|(b, r, s)| (format!("{b}:{r}"), s))
        .collect();
    v.push(("fig3-f90".into(), gcomm::kernels::FIG3_F90));
    v.push(("fig3-scalarized".into(), gcomm::kernels::FIG3_SCALARIZED));
    v.push(("fig4-running".into(), gcomm::kernels::FIG4_RUNNING));
    v
}

fn verify(name: &str, c: &Compiled) {
    let rank = c
        .prog
        .arrays
        .iter()
        .map(|a| a.distributed_dims().len())
        .max()
        .unwrap_or(1)
        .max(1);
    let grid = ProcGrid::balanced(4, rank);
    let mut params: HashMap<String, i64> = c.prog.params.iter().map(|p| (p.clone(), 8)).collect();
    params.insert("nsteps".into(), 2);
    let rep = gcomm::exec::verify_schedule(c, &grid, &params)
        .unwrap_or_else(|e| panic!("{name}: degraded schedule failed to execute: {e}"));
    assert!(
        rep.ok(),
        "{name}: degraded schedule violates reference semantics: {:?}",
        rep.errors.first()
    );
}

#[test]
fn near_zero_budgets_terminate_legal_and_verified() {
    let start = Instant::now();
    for (name, src) in corpus() {
        for s in STRATEGIES {
            for steps in [0u64, 1, 3] {
                let c = compile_budgeted(src, s, Budget::steps(steps))
                    .unwrap_or_else(|e| panic!("{name} {s:?} steps={steps}: {e}"));
                let rep = check_schedule(&c);
                assert!(rep.ok(), "{name} {s:?} steps={steps}:\n{rep}");
                verify(&format!("{name} {s:?} steps={steps}"), &c);
            }
        }
    }
    // "Terminates quickly": the whole corpus × strategies × budgets sweep
    // must not crawl — a hang under exhausted budgets is the bug class
    // this guards against (generous bound to absorb slow CI machines).
    assert!(
        start.elapsed().as_secs() < 120,
        "near-zero-budget sweep took {:?}",
        start.elapsed()
    );
}

#[test]
fn near_zero_budgets_actually_degrade_something() {
    // Sanity for the test above: at steps=0 the degraded paths must fire,
    // otherwise "legal under budget" would be vacuous.
    let reg = gcomm::obs::Registry::new();
    {
        let _scope = gcomm::obs::install(reg.clone());
        for (name, src) in corpus() {
            for s in STRATEGIES {
                compile_budgeted(src, s, Budget::steps(0))
                    .unwrap_or_else(|e| panic!("{name} {s:?}: {e}"));
            }
        }
    }
    let report = reg.snapshot();
    let degraded: u64 = [
        "core.degraded.candidates",
        "core.degraded.subset",
        "core.degraded.redundancy",
        "core.degraded.greedy",
        "sections.degraded.subsume",
    ]
    .iter()
    .map(|c| report.counter(c))
    .sum();
    assert!(
        degraded > 0,
        "steps=0 over the whole corpus degraded nothing"
    );
}

#[test]
fn generous_budgets_are_bit_identical_to_unbudgeted() {
    for (name, src) in corpus() {
        for s in STRATEGIES {
            let full = compile(src, s).unwrap_or_else(|e| panic!("{name} {s:?}: {e}"));
            let ast = gcomm::parse_program(src).unwrap();
            let prog = gcomm::ir::lower(&ast).unwrap();
            let reg = gcomm::obs::Registry::new();
            let budgeted = {
                let _scope = gcomm::obs::install(reg.clone());
                compile_program_budgeted(
                    &prog,
                    s,
                    &CombinePolicy::default(),
                    Budget::steps(50_000_000),
                )
            };
            let report = reg.snapshot();
            for c in [
                "core.degraded.candidates",
                "core.degraded.subset",
                "core.degraded.redundancy",
                "core.degraded.greedy",
                "sections.degraded.subsume",
            ] {
                assert_eq!(
                    report.counter(c),
                    0,
                    "{name} {s:?}: {c} fired under 50M steps"
                );
            }
            assert_eq!(
                full.schedule, budgeted,
                "{name} {s:?}: generous budget changed the schedule"
            );
        }
    }
}
