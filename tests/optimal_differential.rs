//! Differential certification of the branch-and-bound optimal search
//! (DESIGN.md §16) against the retained exhaustive reference.
//!
//! The contract under test:
//!
//! * **Bit-identity when both complete** — on the paper kernels and on
//!   every fuzzed program whose assignment space the enumeration can
//!   cover, branch-and-bound returns the *same* cost bits and the *same*
//!   schedule as exhaustive enumeration, at `jobs = 1` and `jobs = 8`.
//!   Pruning uses a strict floating-point margin, so neither the true
//!   optimum nor any exact cost tie is ever discarded (the companion
//!   admissibility pin lives in `crates/core/src/optimal.rs`).
//! * **Truncated budgets stay deterministic and safe** — with a node
//!   budget too small to finish, `jobs = 1` and `jobs = 8` still agree
//!   bit-for-bit (schedule, cost, node/prune counts), and the result is
//!   never worse than the greedy seed.
//!
//! Seeds are sequential from the shared fuzz base so CI and local runs
//! explore the same programs; `GCOMM_FUZZ_CASES` scales the count.

use gcomm::core::optimal::comm_cost;
use gcomm::core::{
    exhaustive_placement_jobs, optimal_placement_jobs, CombinePolicy, Compiled, SimConfig,
};
use gcomm::machine::{NetworkModel, ProcGrid};
use gcomm::{compile, Budget, Strategy};
use proptest::hpf;

const SEED_BASE: u64 = 0x9c077; // shared with the fuzz suites

/// Spaces up to this size are enumerated outright for the bit-identity
/// check; larger fuzzed spaces are covered by the truncation checks.
const ENUM_LIMIT: u64 = 2_000;

/// Node budget for the branch-and-bound side of the comparison. A search
/// tree over `S` leaves has at most `2S` branching nodes (forced
/// single-candidate bindings are free), so this always suffices for a
/// space the enumeration finished — the margin absorbs allowance
/// rounding across subtrees.
const BNB_LIMIT: u64 = 4 * ENUM_LIMIT + 64;

fn cases() -> u64 {
    std::env::var("GCOMM_FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200)
        .max(200) // the differential floor: at least 200 fuzzed programs
}

fn scoring(c: &Compiled) -> (SimConfig, NetworkModel) {
    let rank = c
        .prog
        .arrays
        .iter()
        .map(|a| a.distributed_dims().len())
        .max()
        .unwrap_or(1)
        .max(1);
    let cfg = SimConfig::uniform(c, ProcGrid::balanced(8, rank), 32).with("nsteps", 2);
    (cfg, NetworkModel::sp2())
}

/// Asserts branch-and-bound ≡ exhaustive (cost bits and schedule) on one
/// compiled program, at jobs 1 and 8. Returns false when the program has
/// no communication or its space exceeds `ENUM_LIMIT`.
fn assert_bnb_matches_exhaustive(c: &Compiled, what: &str) -> bool {
    let (cfg, net) = scoring(c);
    let policy = CombinePolicy::default();
    let Some(ex) = exhaustive_placement_jobs(c, &policy, &cfg, &net, &Budget::steps(ENUM_LIMIT), 1)
    else {
        return false;
    };
    if ex.truncated {
        return false; // space too large for the reference
    }
    for jobs in [1usize, 8] {
        let bb = optimal_placement_jobs(c, &policy, &cfg, &net, &Budget::steps(BNB_LIMIT), jobs)
            .expect("same front half as the reference");
        assert!(
            !bb.truncated,
            "{what} jobs {jobs}: branch-and-bound truncated inside a budget \
             the enumeration finished under (nodes {}, space {})",
            bb.nodes, bb.space
        );
        assert_eq!(
            bb.comm_us.to_bits(),
            ex.comm_us.to_bits(),
            "{what} jobs {jobs}: cost diverged from exhaustive \
             ({} vs {})",
            bb.comm_us,
            ex.comm_us
        );
        assert_eq!(
            bb.schedule, ex.schedule,
            "{what} jobs {jobs}: schedule diverged from exhaustive"
        );
    }
    true
}

/// Asserts the truncated search is jobs-invariant and never worse than
/// the greedy seed.
fn assert_truncated_is_deterministic(c: &Compiled, budget: u64, what: &str) {
    let (cfg, net) = scoring(c);
    let policy = CombinePolicy::default();
    let run =
        |jobs: usize| optimal_placement_jobs(c, &policy, &cfg, &net, &Budget::steps(budget), jobs);
    let Some(one) = run(1) else { return };
    let greedy = comm_cost(c, &cfg, &net);
    assert!(
        one.comm_us <= greedy,
        "{what}: truncated search returned {} above the greedy seed {greedy}",
        one.comm_us
    );
    let eight = run(8).expect("same front half");
    assert_eq!(
        one.comm_us.to_bits(),
        eight.comm_us.to_bits(),
        "{what}: truncated cost diverged between jobs 1 and 8"
    );
    assert_eq!(
        one.schedule, eight.schedule,
        "{what}: truncated schedule diverged between jobs 1 and 8"
    );
    assert_eq!(
        (
            one.nodes,
            one.leaves,
            one.pruned_bound,
            one.pruned_dominance,
            one.truncated
        ),
        (
            eight.nodes,
            eight.leaves,
            eight.pruned_bound,
            eight.pruned_dominance,
            eight.truncated
        ),
        "{what}: truncated search counters diverged between jobs 1 and 8"
    );
}

/// Paper kernels and figures: every enumerable space must be
/// bit-identical, and at least the small figures must actually exercise
/// the comparison.
#[test]
fn kernels_bnb_matches_exhaustive() {
    let figures = [
        ("fig3-f90", gcomm::kernels::FIG3_F90),
        ("fig3-scalarized", gcomm::kernels::FIG3_SCALARIZED),
        ("fig4-running", gcomm::kernels::FIG4_RUNNING),
    ];
    let mut cases: Vec<(String, &str)> = figures
        .iter()
        .map(|&(n, src)| (n.to_string(), src))
        .collect();
    cases.extend(
        gcomm::kernels::all_kernels()
            .into_iter()
            .map(|(bench, routine, src)| (format!("{bench}:{routine}"), src)),
    );
    let mut exercised = 0;
    for (name, src) in cases {
        let c = compile(src, Strategy::Global).unwrap_or_else(|e| panic!("{name}: {e}"));
        if assert_bnb_matches_exhaustive(&c, &name) {
            exercised += 1;
        }
    }
    assert!(
        exercised >= 3,
        "only {exercised} kernels had enumerable spaces — the differential \
         check lost its coverage"
    );
}

/// ≥200 fuzzed programs, complete budgets: wherever the enumeration can
/// cover the space, branch-and-bound must agree bit-for-bit.
#[test]
fn fuzzed_programs_bnb_matches_exhaustive() {
    let seeds: Vec<u64> = (0..cases()).map(|i| SEED_BASE + i).collect();
    let exercised: usize = gcomm::par::map(gcomm::par::default_jobs(), &seeds, |_, &seed| {
        let src = hpf::generate(seed);
        let c =
            compile(&src, Strategy::Global).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
        usize::from(assert_bnb_matches_exhaustive(&c, &format!("seed {seed}")))
    })
    .into_iter()
    .sum();
    // The generator makes mostly small programs; the differential check
    // must actually fire on a meaningful share of them.
    assert!(
        exercised >= 50,
        "only {exercised} fuzzed programs had enumerable spaces"
    );
}

/// ≥200 fuzzed programs, truncated budgets: a node budget far below the
/// space keeps jobs 1 and 8 bit-identical and never loses to the seed.
#[test]
fn fuzzed_programs_truncated_budgets_are_deterministic() {
    let seeds: Vec<u64> = (0..cases()).map(|i| SEED_BASE + i).collect();
    gcomm::par::map(gcomm::par::default_jobs(), &seeds, |_, &seed| {
        let src = hpf::generate(seed);
        let c =
            compile(&src, Strategy::Global).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
        // 37 nodes: small enough to truncate anything non-trivial, odd
        // enough to land mid-subtree.
        assert_truncated_is_deterministic(&c, 37, &format!("seed {seed} budget 37"));
    });
}
