//! `gcommc` argument handling: every malformed invocation must exit with
//! status 2 and a single clear `gcommc:`-prefixed line on stderr — never a
//! panic, never silence.

use std::process::{Command, Output};

fn gcommc(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_gcommc"))
        .args(args)
        .output()
        .expect("failed to spawn gcommc")
}

fn assert_usage_error(args: &[&str], expect_in_stderr: &str) {
    let out = gcommc(args);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(2),
        "{args:?}: expected exit 2, got {:?}\nstderr: {stderr}",
        out.status.code()
    );
    assert!(
        stderr.contains("gcommc:"),
        "{args:?}: stderr missing the gcommc: prefix: {stderr}"
    );
    assert!(
        stderr.contains(expect_in_stderr),
        "{args:?}: stderr missing {expect_in_stderr:?}: {stderr}"
    );
}

#[test]
fn malformed_arguments_exit_two_with_a_message() {
    assert_usage_error(&["--strategy", "bogus", "x.hpf"], "strategy");
    assert_usage_error(&["--strategy"], "--strategy expects a value");
    assert_usage_error(&["--stats-json"], "--stats-json expects a file path");
    assert_usage_error(&["--sim", "not-a-number", "x.hpf"], "--sim");
    assert_usage_error(&["--sim"], "--sim expects an integer");
    assert_usage_error(&["--faults"], "--faults expects a spec");
    assert_usage_error(&["--faults", "loss=banana", "x.hpf"], "fault spec");
    assert_usage_error(&["--budget"], "--budget expects a spec");
    assert_usage_error(&["--budget", "steps=abc", "x.hpf"], "budget");
    assert_usage_error(&["--budget", "frobs=3", "x.hpf"], "budget");
    assert_usage_error(&["--no-such-flag", "x.hpf"], "--no-such-flag");
    assert_usage_error(&["a.hpf", "b.hpf"], "unexpected");
    assert_usage_error(&[], "missing input file");
}

#[test]
fn serve_and_client_arguments_exit_two_with_a_message() {
    assert_usage_error(&["serve", "--addr"], "--addr expects a value");
    assert_usage_error(&["serve", "--addr", "noport"], "--addr expects host:port");
    assert_usage_error(&["serve", "--cache-bytes", "lots"], "--cache-bytes");
    assert_usage_error(&["serve", "--jobs", "zero"], "--jobs");
    assert_usage_error(&["serve", "--budget", "frobs=1"], "budget");
    assert_usage_error(&["serve", "stray"], "unexpected argument");
    assert_usage_error(&["client"], "--addr <host:port> is required");
    assert_usage_error(&["client", "--addr", "1.2.3.4:1", "--op", "frob"], "--op");
    assert_usage_error(
        &["client", "--addr", "1.2.3.4:1", "--sim", "mars"],
        "--sim profile must be sp2 or now",
    );
}

#[test]
fn version_flag_prints_the_workspace_version() {
    let out = gcommc(&["--version"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.starts_with(&format!("gcommc {}", env!("CARGO_PKG_VERSION"))),
        "stdout: {stdout}"
    );
    assert!(stdout.contains("gcomm-serve/v1"), "stdout: {stdout}");
    // The flag wins from any position, even with other arguments around.
    let out = gcommc(&["--counts", "--version", "x.hpf"]);
    assert_eq!(out.status.code(), Some(0));
}

#[test]
fn missing_input_file_is_a_clean_error() {
    let out = gcommc(&["/no/such/file.hpf"]);
    assert_ne!(out.status.code(), Some(0));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("gcommc:"), "stderr: {stderr}");
}

#[test]
fn valid_budget_spec_compiles_from_stdin() {
    use std::io::Write;
    let mut child = Command::new(env!("CARGO_BIN_EXE_gcommc"))
        .args(["--strategy", "comb", "--budget", "steps=50000", "-"])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("failed to spawn gcommc");
    child
        .stdin
        .take()
        .unwrap()
        .write_all(
            b"\nprogram t\nparam n\nreal a(n,n), b(n,n) distribute (block,block)\n\
              b(2:n, 1:n) = a(1:n-1, 1:n)\nend\n",
        )
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}
