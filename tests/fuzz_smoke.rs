//! Structured fuzzing smoke test (DESIGN.md §10).
//!
//! Drives the seeded well-formed mini-HPF generator (`proptest::hpf`)
//! through the whole compiler and checks three properties per program:
//!
//! * **(a) total robustness** — every generated program compiles under all
//!   strategies without a panic, and still terminates (degrading
//!   gracefully) under a near-zero analysis budget;
//! * **(b) degraded legality** — schedules produced under a tight budget
//!   pass every invariant of `core::check::check_schedule` and replay
//!   correctly under `exec::verify_schedule`;
//! * **(c) budget transparency** — a budgeted compile that never tripped a
//!   `degraded.*` counter produces the *same schedule* as the unbudgeted
//!   compile (budgets only change results when they say so).
//!
//! The case count defaults to a fast local smoke and scales up in CI via
//! `GCOMM_FUZZ_CASES` (the workflow runs 2000). Seeds are sequential from
//! a fixed base so every run (local and CI) explores the same programs;
//! any failing seed can be replayed in `tests/fuzz_regressions.rs`.

use std::collections::HashMap;

use gcomm::core::{check_schedule, compile_program_budgeted, CombinePolicy, Compiled};
use gcomm::machine::ProcGrid;
use gcomm::{compile, compile_budgeted, Budget, Strategy};
use proptest::hpf;

const SEED_BASE: u64 = 0x9c077; // fixed: CI and local runs share seeds

const STRATEGIES: [Strategy; 4] = [
    Strategy::Original,
    Strategy::EarliestRE,
    Strategy::EarliestPartialRE,
    Strategy::Global,
];

fn cases() -> u64 {
    std::env::var("GCOMM_FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(150)
}

/// Fans the seed range across the worker pool (`GCOMM_JOBS` / available
/// cores). Seeds are independent, so this only changes wall-clock time;
/// a failing seed panics the pool and the test either way.
fn for_each_seed(f: impl Fn(u64) + Sync) {
    let seeds: Vec<u64> = (0..cases()).map(|i| SEED_BASE + i).collect();
    gcomm::par::map(gcomm::par::default_jobs(), &seeds, |_, &seed| f(seed));
}

/// Runs `exec::verify_schedule` on a compiled program at size 8.
fn verify(c: &Compiled, seed: u64, what: &str) {
    let rank = c
        .prog
        .arrays
        .iter()
        .map(|a| a.distributed_dims().len())
        .max()
        .unwrap_or(1)
        .max(1);
    let grid = ProcGrid::balanced(4, rank);
    let mut params: HashMap<String, i64> = c.prog.params.iter().map(|p| (p.clone(), 8)).collect();
    params.insert("nsteps".into(), 2);
    let rep = gcomm::exec::verify_schedule(c, &grid, &params)
        .unwrap_or_else(|e| panic!("seed {seed} {what}: verify failed to run: {e}"));
    assert!(
        rep.ok(),
        "seed {seed} {what}: {} verify violation(s): {:?}",
        rep.errors.len(),
        rep.errors.first()
    );
}

/// (a) Every generated program compiles under every strategy, both
/// unbudgeted and with a near-zero budget (which must terminate, not hang).
#[test]
fn generated_programs_compile_under_all_strategies() {
    for_each_seed(|seed| {
        let src = hpf::generate(seed);
        for s in STRATEGIES {
            compile(&src, s).unwrap_or_else(|e| {
                panic!("seed {seed} {s:?}: generated program failed to compile: {e}\n{src}")
            });
            compile_budgeted(&src, s, Budget::steps(1))
                .unwrap_or_else(|e| panic!("seed {seed} {s:?} steps=1: {e}\n{src}"));
        }
    });
}

/// (b) Tightly budgeted (degraded) schedules are still legal and replay
/// correctly under the reference interpreter.
#[test]
fn degraded_schedules_stay_legal_and_verifiable() {
    for_each_seed(|seed| {
        let src = hpf::generate(seed);
        // A spread of tight budgets, including 0 (everything degrades).
        let steps = [0, 1, 7, 50][(seed % 4) as usize];
        for s in STRATEGIES {
            let c = compile_budgeted(&src, s, Budget::steps(steps))
                .unwrap_or_else(|e| panic!("seed {seed} {s:?} steps={steps}: {e}\n{src}"));
            let rep = check_schedule(&c);
            assert!(
                rep.ok(),
                "seed {seed} {s:?} steps={steps}: illegal degraded schedule:\n{rep}\n{src}"
            );
            verify(&c, seed, "budgeted");
        }
    });
}

/// (c) When no `degraded.*` counter fires, a budgeted compile is
/// bit-identical to the unbudgeted one.
#[test]
fn budgets_change_nothing_unless_a_degraded_counter_fired() {
    for_each_seed(|seed| {
        let src = hpf::generate(seed);
        // Middling budgets: big enough that small programs fit, small
        // enough that larger ones degrade — both sides get coverage.
        let steps = [200, 1000, 5000][(seed % 3) as usize];
        for s in STRATEGIES {
            let full = compile(&src, s).unwrap_or_else(|e| panic!("seed {seed} {s:?}: {e}\n{src}"));

            let ast = gcomm::parse_program(&src).unwrap();
            let prog = gcomm::ir::lower(&ast).unwrap();
            let reg = gcomm::obs::Registry::new();
            let budgeted = {
                let _scope = gcomm::obs::install(reg.clone());
                compile_program_budgeted(&prog, s, &CombinePolicy::default(), Budget::steps(steps))
            };
            let report = reg.snapshot();
            let degraded: u64 = [
                "core.degraded.candidates",
                "core.degraded.subset",
                "core.degraded.redundancy",
                "core.degraded.greedy",
                "sections.degraded.subsume",
            ]
            .iter()
            .map(|c| report.counter(c))
            .sum();
            if degraded == 0 {
                assert_eq!(
                    full.schedule, budgeted,
                    "seed {seed} {s:?} steps={steps}: schedules diverged with no \
                     degraded.* counter fired\n{src}"
                );
            }
        }
    });
}
