//! HPF ALIGN support: alignment offsets shift an array's elements on the
//! shared template, changing which references are local. These tests cover
//! parsing, communication classification, optimization, and dynamic
//! verification of aligned programs.

use std::collections::HashMap;

use gcomm::machine::ProcGrid;
use gcomm::sections::Mapping;
use gcomm::{compile, Strategy};

/// `b` is aligned one template cell east of `a`: reading `b(i,j)` while
/// computing `a(i,j)` is *not* local, while reading `b(i-1,j)` is.
const ALIGNED: &str = "
program aligned
param n, nsteps
real a(n,n) distribute (block, block)
real b(n,n) distribute (block, block) align (1, 0)
do t = 1, nsteps
  a(2:n, 1:n) = b(2:n, 1:n)
  b(2:n, 1:n) = a(2:n, 1:n) * 0.5
enddo
end";

#[test]
fn parses_align_clause() {
    let p = gcomm::parse_program(ALIGNED).unwrap();
    assert_eq!(p.array("b").unwrap().align, vec![1, 0]);
    assert!(p.array("a").unwrap().align.is_empty());
}

#[test]
fn align_arity_mismatch_rejected() {
    let e = gcomm::parse_program(
        "program t\nparam n\nreal a(n,n) distribute (block,block) align (1)\nend",
    )
    .unwrap_err();
    assert!(e.message.contains("align"));
}

#[test]
fn identical_subscripts_communicate_when_misaligned() {
    // a(2:n,·) = b(2:n,·): same subscripts, but b sits one cell east on the
    // template, so the read crosses processors.
    let c = compile(ALIGNED, Strategy::Global).unwrap();
    assert_eq!(c.static_messages(), 2, "{}", c.report());
    let shifts: Vec<&Mapping> = c.schedule.groups.iter().map(|g| &g.mapping).collect();
    assert!(shifts
        .iter()
        .all(|m| matches!(m, Mapping::Shift { offsets } if offsets.iter().any(|&o| o != 0))));
}

#[test]
fn alignment_can_make_shifted_reads_local() {
    // Reading b(i-1, j) while computing a(i, j): b's +1 alignment cancels
    // the -1 subscript offset — fully local, no messages at all.
    let src = "
program cancel
param n, nsteps
real a(n,n) distribute (block, block)
real b(n,n) distribute (block, block) align (1, 0)
do t = 1, nsteps
  a(2:n, 1:n) = b(1:n-1, 1:n)
  b(1:n, 1:n) = a(1:n, 1:n)
enddo
end";
    let c = compile(src, Strategy::Global).unwrap();
    assert_eq!(c.static_messages(), 1, "{}", c.report());
    // The remaining message is for the second statement (b = a with b's
    // alignment making it non-local), not the first.
    let g = &c.schedule.groups[0];
    let e = c.schedule.entry(g.entries[0]);
    assert_eq!(c.prog.array(e.array).name, "a");
}

#[test]
fn aligned_schedules_verify_dynamically() {
    for strategy in [Strategy::Original, Strategy::EarliestRE, Strategy::Global] {
        let c = compile(ALIGNED, Strategy::Global).unwrap();
        let _ = strategy;
        let mut params: HashMap<String, i64> = HashMap::new();
        params.insert("n".into(), 8);
        params.insert("nsteps".into(), 2);
        let rep = gcomm_exec::verify_schedule(&c, &ProcGrid::balanced(4, 2), &params).unwrap();
        assert!(rep.ok(), "first: {:?}", rep.errors.first());
        assert!(rep.remote_elements_checked > 0);
    }
}

#[test]
fn pretty_print_round_trips_align() {
    let p = gcomm::parse_program(ALIGNED).unwrap();
    let text = gcomm::lang::pretty::pretty(&p);
    let p2 = gcomm::parse_program(&text).unwrap();
    assert_eq!(p2.array("b").unwrap().align, vec![1, 0]);
}
