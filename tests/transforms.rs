//! The §2.3 syntax-sensitivity story, run mechanically: scalarize the F90
//! source with our own scalarizer, optionally fuse, and compare analysis
//! results and *values* (via the reference interpreter) across the three
//! forms the paper's Figure 3 shows.

use std::collections::HashMap;

use gcomm::core::{commgen, earliest, AnalysisCtx};
use gcomm::lang::{fuse_loops, scalarize};
use gcomm::{compile, Strategy};

fn values_of(src_prog: &gcomm::lang::Program, n: i64) -> Vec<(String, Vec<f64>)> {
    let prog = gcomm::ir::lower(src_prog).unwrap();
    let mut params = HashMap::new();
    for p in &prog.params {
        params.insert(p.clone(), n);
    }
    params.insert("nsteps".into(), 2);
    let fs = gcomm_exec::interpret(&prog, &params).unwrap();
    prog.arrays
        .iter()
        .enumerate()
        .map(|(i, a)| (a.name.clone(), fs.state.arrays[i].vals.clone()))
        .collect()
}

#[test]
fn scalarization_preserves_values() {
    for src in [
        gcomm::kernels::FIG3_F90,
        gcomm::kernels::SHALLOW,
        gcomm::kernels::TRIMESH_GAUSS,
    ] {
        let orig = gcomm::parse_program(src).unwrap();
        let scal = scalarize(&orig);
        assert_eq!(
            values_of(&orig, 8),
            values_of(&scal, 8),
            "scalarization changed semantics"
        );
    }
}

#[test]
fn overlapping_self_assignment_scalarizes_correctly() {
    // The aliasing-hazard case: must match F90 semantics exactly.
    let src = "
program alias
param n
real a(n) distribute (block)
do i = 1, n
  a(i) = i
enddo
a(2:n) = a(1:n-1)
end";
    let orig = gcomm::parse_program(src).unwrap();
    let scal = scalarize(&orig);
    assert_eq!(values_of(&orig, 9), values_of(&scal, 9));
}

#[test]
fn fusion_preserves_values() {
    let orig = gcomm::parse_program(gcomm::kernels::FIG3_SCALARIZED).unwrap();
    let fused = fuse_loops(&orig);
    assert_eq!(values_of(&orig, 8), values_of(&fused, 8));
}

#[test]
fn figure3_story_end_to_end() {
    // Column 1 (F90) → our scalarizer → column 2 (scalarized): earliest
    // placement splits the a/b messages; the global algorithm still
    // combines them in every form.
    let f90 = gcomm::parse_program(gcomm::kernels::FIG3_F90).unwrap();
    let scal = scalarize(&f90);
    let fused = fuse_loops(&scal);
    assert!(
        fused.stmt_count() < scal.stmt_count() + 1,
        "independent init loops fuse (column 3)"
    );

    let compile_ast = |p: &gcomm::lang::Program, s| {
        let text = gcomm::lang::pretty::pretty(p);
        compile(&text, s).unwrap()
    };

    for form in [&f90, &scal, &fused] {
        let comb = compile_ast(form, Strategy::Global);
        assert_eq!(
            comb.static_messages(),
            1,
            "global placement is robust to the phrasing"
        );
    }

    // The earliest points of the a- and b-messages: distinct in the
    // scalarized form (separate loops), unified by fusion (column 3 —
    // where a combining-at-earliest compiler succeeds again).
    let earliest_nodes = |p: &gcomm::lang::Program| -> Vec<gcomm::ir::NodeId> {
        let prog = gcomm::ir::lower(p).unwrap();
        let entries = commgen::number(commgen::generate(&prog));
        let ctx = AnalysisCtx::new(&prog);
        entries
            .iter()
            .map(|e| earliest::earliest_pos(&ctx, e).node)
            .collect()
    };
    let scal_nodes = earliest_nodes(&scal);
    assert_eq!(scal_nodes.len(), 2);
    assert_ne!(
        scal_nodes[0], scal_nodes[1],
        "scalarization splits the earliest points"
    );
    let fused_nodes = earliest_nodes(&fused);
    assert_eq!(
        fused_nodes[0], fused_nodes[1],
        "fusion re-unifies the earliest points"
    );
}

#[test]
fn scalarized_kernels_still_optimize() {
    // The full pipeline runs on scalarized forms too, and the global
    // algorithm never does worse than the baseline there.
    for (bench, routine, src) in gcomm::kernels::all_kernels() {
        let ast = gcomm::parse_program(src).unwrap();
        let scal = scalarize(&ast);
        let text = gcomm::lang::pretty::pretty(&scal);
        let orig = compile(&text, Strategy::Original).unwrap();
        let comb = compile(&text, Strategy::Global).unwrap();
        assert!(
            comb.static_messages() <= orig.static_messages(),
            "{bench}:{routine} scalarized: {} > {}",
            comb.static_messages(),
            orig.static_messages()
        );
    }
}
