//! Property-based tests: random structured data-parallel programs must
//! compile under every strategy, produce legal schedules, and never lose to
//! the baseline in static message count.

use proptest::prelude::*;

use gcomm::compile;
use gcomm::core::AnalysisCtx;
use gcomm::ir::Pos;
use gcomm::Strategy as Opt;

/// One random stencil statement: `LHS(sect) = Σ reads(sect shifted)`.
#[derive(Debug, Clone)]
struct RandStmt {
    lhs: usize,
    reads: Vec<(usize, i64, i64)>, // (array, dx, dy) with dx, dy ∈ {-1,0,1}
    reduction: Option<usize>,
}

#[derive(Debug, Clone)]
struct RandProgram {
    arrays: usize,
    in_loop: bool,
    with_if: bool,
    stmts: Vec<RandStmt>,
}

impl RandProgram {
    /// Renders to mini-HPF source.
    fn source(&self) -> String {
        let mut s = String::from("program rnd\nparam n, nsteps\n");
        for a in 0..self.arrays {
            s.push_str(&format!("real v{a}(n,n) distribute (block, block)\n"));
        }
        s.push_str("real scal, cnd\n");
        let mut body = String::new();
        let sect = |dx: i64, dy: i64| {
            let d1 = match dx {
                -1 => "1:n-1",
                1 => "2:n",
                _ => "2:n-1",
            };
            let d2 = match dy {
                -1 => "1:n-1",
                1 => "2:n",
                _ => "2:n-1",
            };
            format!("({d1}, {d2})")
        };
        for st in &self.stmts {
            if let Some(arr) = st.reduction {
                body.push_str(&format!("scal = sum(v{arr}(1, 1:n))\n"));
                continue;
            }
            let mut rhs: Vec<String> = st
                .reads
                .iter()
                .map(|&(a, dx, dy)| format!("v{a}{}", sect(dx, dy)))
                .collect();
            if rhs.is_empty() {
                rhs.push("1.0".to_string());
            }
            body.push_str(&format!(
                "v{}{} = {}\n",
                st.lhs,
                sect(0, 0),
                rhs.join(" + ")
            ));
        }
        let body = if self.with_if {
            format!("if (cnd > 0) then\n{body}else\nscal = 0\nendif\n")
        } else {
            body
        };
        if self.in_loop {
            s.push_str(&format!("do t = 1, nsteps\n{body}enddo\n"));
        } else {
            s.push_str(&body);
        }
        s.push_str("end\n");
        s
    }
}

fn rand_program() -> impl Strategy<Value = RandProgram> {
    let stmt = (
        0usize..4,
        prop::collection::vec((0usize..4, -1i64..=1, -1i64..=1), 0..3),
    )
        .prop_map(|(lhs, reads)| RandStmt {
            lhs,
            reads,
            reduction: None,
        });
    let red = (0usize..4).prop_map(|a| RandStmt {
        lhs: 0,
        reads: vec![],
        reduction: Some(a),
    });
    let any_stmt = prop_oneof![4 => stmt, 1 => red];
    (
        prop::collection::vec(any_stmt, 1..8),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(stmts, in_loop, with_if)| RandProgram {
            arrays: 4,
            in_loop,
            with_if,
            stmts,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every random program compiles under all strategies and static counts
    /// are monotone: comb ≤ orig, nored ≤ orig.
    #[test]
    fn pipeline_counts_monotone(p in rand_program()) {
        let src = p.source();
        let orig = compile(&src, Opt::Original)
            .unwrap_or_else(|e| panic!("orig failed on\n{src}\n{e}"));
        let nored = compile(&src, Opt::EarliestRE).unwrap();
        let comb = compile(&src, Opt::Global).unwrap();
        prop_assert!(comb.static_messages() <= orig.static_messages(),
            "comb {} > orig {} on\n{src}", comb.static_messages(), orig.static_messages());
        prop_assert!(nored.static_messages() <= orig.static_messages());
    }

    /// Every placed group dominates the uses it serves, under every
    /// strategy, on random programs.
    #[test]
    fn placements_dominate_uses(p in rand_program()) {
        let src = p.source();
        for strategy in [Opt::Original, Opt::EarliestRE, Opt::Global] {
            let c = compile(&src, strategy).unwrap();
            let ctx = AnalysisCtx::new(&c.prog);
            for g in &c.schedule.groups {
                for &eid in &g.entries {
                    let e = c.schedule.entry(eid);
                    let before = Pos::before(&c.prog, e.stmt);
                    prop_assert!(g.pos.dominates(&before, &ctx.dt),
                        "{strategy:?} violates dominance for {} on\n{src}", e.label);
                }
            }
        }
    }

    /// Absorptions never dangle: the absorber is always itself placed.
    #[test]
    fn absorbers_are_placed(p in rand_program()) {
        let src = p.source();
        for strategy in [Opt::EarliestRE, Opt::Global] {
            let c = compile(&src, strategy).unwrap();
            for a in &c.schedule.absorptions {
                prop_assert!(
                    c.schedule.groups.iter().any(|g| g.entries.contains(&a.by)),
                    "{strategy:?}: dangling absorber on\n{src}"
                );
            }
        }
    }

    /// The compilation is deterministic: two runs agree exactly.
    #[test]
    fn compilation_is_deterministic(p in rand_program()) {
        let src = p.source();
        let a = compile(&src, Opt::Global).unwrap();
        let b = compile(&src, Opt::Global).unwrap();
        prop_assert_eq!(a.schedule, b.schedule);
    }

    /// Dynamic end-to-end check: replaying every strategy's schedule on a
    /// 2×2 grid at n = 8, every remote read observes fresh communicated
    /// data (the gcomm-exec ghost-version verifier).
    #[test]
    fn schedules_verify_dynamically(p in rand_program()) {
        let src = p.source();
        for strategy in [Opt::Original, Opt::EarliestRE, Opt::Global] {
            let c = compile(&src, strategy).unwrap();
            let grid = gcomm::machine::ProcGrid::balanced(4, 2);
            let mut params = std::collections::HashMap::new();
            params.insert("n".to_string(), 8i64);
            params.insert("nsteps".to_string(), 2i64);
            let rep = gcomm_exec::verify_schedule(&c, &grid, &params)
                .unwrap_or_else(|e| panic!("execution failed on\n{src}\n{e}"));
            prop_assert!(
                rep.ok(),
                "{strategy:?} schedule fails verification on\n{src}\nfirst: {}",
                rep.errors.first().map(|e| e.message.as_str()).unwrap_or("")
            );
        }
    }
}
