//! Edit-storm differential testing of the incremental query engine
//! (DESIGN.md §14).
//!
//! For a stream of fuzzed modules (1–3 well-formed routines each), and a
//! chain of seeded single-routine edits per module
//! (rename/retile/append-statement/delete-routine, from
//! `proptest::hpf::apply_edit`), every intermediate state is compiled
//! twice:
//!
//! * **cold** — `compile_module_cold`, the stage functions with no
//!   memoization, and
//! * **incremental** — through one `IncrCompiler` that persists across
//!   the *entire* storm, so its memo is maximally polluted by previous
//!   cases and edits.
//!
//! The property is bit-identity of every artifact: the lowered program,
//! the schedule, and the generated communication program must be equal,
//! the schedule must pass `check_schedule`, and (sampled, for runtime)
//! `verify_schedule` must replay it correctly. Equality deliberately
//! ignores `CompileStats`, as `Compiled`'s own `PartialEq` does — stats
//! describe the work done, which is exactly what incrementality changes.
//!
//! The case count defaults to 300 (the ISSUE-7 floor) and scales via
//! `GCOMM_INCR_CASES`. Seeds are sequential from a fixed base so every
//! run explores the same modules.

use gcomm::core::incr::{compile_module_cold, IncrCompiler, ModuleOutcome, RoutineArtifacts};
use gcomm::core::{check_schedule, lower_to_sim, Compiled, SimConfig};
use gcomm::guard::BudgetSpec;
use gcomm::machine::ProcGrid;
use gcomm::Strategy;
use proptest::hpf;
use std::collections::HashMap;

const SEED_BASE: u64 = 0x1c4e11;
const EDITS_PER_CASE: u64 = 5;

fn cases() -> u64 {
    std::env::var("GCOMM_INCR_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300)
}

fn as_compiled(a: &RoutineArtifacts) -> Compiled {
    Compiled {
        prog: (*a.prog).clone(),
        schedule: (*a.schedule).clone(),
        stats: Default::default(),
    }
}

/// Deterministic analytical codegen of a compiled routine, as a
/// comparable string.
fn codegen_repr(c: &Compiled) -> String {
    let rank = c
        .prog
        .arrays
        .iter()
        .map(|a| a.distributed_dims().len())
        .max()
        .unwrap_or(1)
        .max(1);
    let cfg = SimConfig::uniform(c, ProcGrid::balanced(4, rank), 8).with("nsteps", 2);
    format!("{:?}", lower_to_sim(c, &cfg))
}

fn verify(c: &Compiled, seed: u64, what: &str) {
    let rank = c
        .prog
        .arrays
        .iter()
        .map(|a| a.distributed_dims().len())
        .max()
        .unwrap_or(1)
        .max(1);
    let grid = ProcGrid::balanced(4, rank);
    let mut params: HashMap<String, i64> = c.prog.params.iter().map(|p| (p.clone(), 8)).collect();
    params.insert("nsteps".into(), 2);
    let rep = gcomm::exec::verify_schedule(c, &grid, &params)
        .unwrap_or_else(|e| panic!("seed {seed} {what}: verify failed to run: {e}"));
    assert!(
        rep.ok(),
        "seed {seed} {what}: {} verify violation(s): {:?}",
        rep.errors.len(),
        rep.errors.first()
    );
}

/// Compares a cold and an incremental compile of the same module, down
/// to the generated communication program.
fn compare(seed: u64, step: u64, module: &str, cold: &ModuleOutcome, warm: &ModuleOutcome) {
    let what = format!("seed {seed} step {step}");
    assert_eq!(
        cold.routines.len(),
        warm.routines.len(),
        "{what}: routine counts diverged\n{module}"
    );
    // Deep verification is sampled: it multiplies runtime by the
    // interpreter's replay cost, and one in seven storms (first and last
    // state) already exercises every edit kind.
    let deep = seed.is_multiple_of(7) && (step == 0 || step == EDITS_PER_CASE);
    for (c, w) in cold.routines.iter().zip(&warm.routines) {
        assert_eq!(c.name, w.name, "{what}\n{module}");
        let (ca, wa) = match (&c.result, &w.result) {
            (Ok(ca), Ok(wa)) => (ca, wa),
            other => panic!("{what}: fuzzed routines must compile, got {other:?}\n{module}"),
        };
        assert_eq!(*ca.prog, *wa.prog, "{what}: IR diverged\n{module}");
        assert_eq!(
            *ca.schedule, *wa.schedule,
            "{what}: schedule diverged\n{module}"
        );
        assert_eq!(ca.degraded, wa.degraded, "{what}\n{module}");
        let cc = as_compiled(ca);
        let wc = as_compiled(wa);
        assert_eq!(
            codegen_repr(&cc),
            codegen_repr(&wc),
            "{what}: codegen diverged\n{module}"
        );
        let rep = check_schedule(&wc);
        assert!(rep.ok(), "{what}: illegal schedule:\n{rep}\n{module}");
        if deep {
            verify(&wc, seed, "incremental");
        }
    }
}

/// The storm: per seed, a module plus a chain of 5 single-routine
/// edits; every state compiled cold and incrementally and compared.
/// One shared engine across all seeds and workers — artifact equality
/// must survive both memo pollution and concurrent compiles.
#[test]
fn edit_storm_incremental_matches_cold() {
    let ic = IncrCompiler::new(64 * 1024 * 1024);
    let spec = BudgetSpec::default();
    let seeds: Vec<u64> = (0..cases()).map(|i| SEED_BASE + i).collect();
    gcomm::par::map(gcomm::par::default_jobs(), &seeds, |_, &seed| {
        let mut module = hpf::generate_module(seed, 1 + (seed % 3) as usize);
        for step in 0..=EDITS_PER_CASE {
            let cold = compile_module_cold(&module, Strategy::Global, &spec);
            let warm = ic.compile_module(&module, Strategy::Global, &spec);
            compare(seed, step, &module, &cold, &warm);
            if step < EDITS_PER_CASE {
                module = hpf::apply_edit(&module, seed.wrapping_mul(1000) + step).0;
            }
        }
    });
    let stats = ic.engine().stats();
    assert!(stats.hits > 0, "storm must exercise reuse: {stats:?}");
    assert!(
        stats.invalidations > 0,
        "storm must exercise invalidation: {stats:?}"
    );
}

/// Strategy × budget keying: the same module under different strategies
/// and budgets must never cross-contaminate.
#[test]
fn strategies_and_budgets_do_not_cross_contaminate() {
    let ic = IncrCompiler::new(16 * 1024 * 1024);
    let module = hpf::generate_module(SEED_BASE, 2);
    let specs = [
        BudgetSpec::default(),
        BudgetSpec::parse("steps=200").unwrap(),
    ];
    for strategy in [Strategy::Original, Strategy::Global] {
        for spec in &specs {
            let cold = compile_module_cold(&module, strategy, spec);
            let warm = ic.compile_module(&module, strategy, spec);
            compare(SEED_BASE, 0, &module, &cold, &warm);
        }
    }
    // And again, now that every (strategy, budget) pair is cached.
    for strategy in [Strategy::Original, Strategy::Global] {
        for spec in &specs {
            let cold = compile_module_cold(&module, strategy, spec);
            let warm = ic.compile_module(&module, strategy, spec);
            compare(SEED_BASE, 1, &module, &cold, &warm);
        }
    }
}
