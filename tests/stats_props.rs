//! Property tests for the observability layer's core guarantees:
//!
//! * the entry-fate partition `candidates == placed + redundant +
//!   combined_away` holds for every kernel × strategy,
//! * a stats-enabled compile is bit-identical in program and schedule to a
//!   stats-disabled compile (collection never influences placement),
//! * every canonical taxonomy counter — including the serve/cluster
//!   robustness counters, the incremental-query counters, and the
//!   persistent-store counters — is zero-filled in every emitted report,
//! * the incremental path (DESIGN.md §14) produces programs and
//!   schedules bit-identical to a stats-enabled cold compile — memo
//!   reuse, like stats collection, never influences placement.

use proptest::prelude::*;

use gcomm::{compile, compile_stats, Strategy as Opt};

/// The canonical counter taxonomy is a contract: every report carries the
/// full key set (zero-filled), so dashboards and diffs never miss a key
/// because a run happened not to exercise it. This pins both halves: the
/// zero-fill mechanism, and membership of the cluster robustness counters
/// added with gcomm-cluster (DESIGN.md §13).
#[test]
fn canonical_taxonomy_is_zero_filled_in_every_report() {
    let empty = gcomm::obs::Registry::new().snapshot().to_json();
    for name in gcomm::obs::CANONICAL_COUNTERS {
        let key = format!("\"{name}\":0");
        assert!(
            empty.contains(&key),
            "canonical counter {name} missing from an empty report"
        );
    }
    for required in [
        "serve.overloaded",
        "serve.unavailable",
        "cluster.requests",
        "cluster.retry",
        "cluster.failover",
        "cluster.replica_hit",
        "cluster.replicated",
        "cluster.conn_lost",
        "cluster.marked_down",
        "cluster.marked_up",
        "cluster.respawn",
        "query.hit",
        "query.miss",
        "query.cutoff",
        "query.invalidate",
        "store.append",
        "store.fsync",
        "store.compact",
        "store.recover_ok",
        "store.recover_torn",
        "store.quarantined",
        "search.nodes",
        "search.pruned_bound",
        "search.pruned_dominance",
        "search.complete",
        "coll.lowered",
        "coll.steps",
        "coll.selected_ring",
        "coll.selected_tree",
        "coll.selected_p2p",
        "coll.fallback",
    ] {
        assert!(
            gcomm::obs::CANONICAL_COUNTERS.contains(&required),
            "{required} must be part of the canonical taxonomy"
        );
    }
}

fn any_kernel() -> impl Strategy<Value = (&'static str, &'static str)> {
    prop::sample::select(
        gcomm::kernels::all_kernels()
            .into_iter()
            .map(|(b, _r, src)| (b, src))
            .collect::<Vec<_>>(),
    )
}

fn any_strategy() -> impl Strategy<Value = Opt> {
    prop::sample::select(vec![
        Opt::Original,
        Opt::EarliestRE,
        Opt::EarliestPartialRE,
        Opt::Global,
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every candidate entry ends in exactly one fate: leading a placed
    /// group, riding combined inside a group, or absorbed as redundant.
    #[test]
    fn entry_fates_partition_candidates(
        kernel in any_kernel(),
        strategy in any_strategy(),
    ) {
        let (name, src) = kernel;
        let c = compile_stats(src, strategy)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let s = &c.stats;
        let candidates = s.counter("core.entries.candidates");
        let placed = s.counter("core.entries.placed");
        let redundant = s.counter("core.entries.redundant");
        let combined = s.counter("core.entries.combined_away");
        prop_assert_eq!(
            candidates, placed + redundant + combined,
            "{}/{:?}: {} candidates != {} placed + {} redundant + {} combined",
            name, strategy, candidates, placed, redundant, combined
        );
        // And the counters agree with the schedule shape itself.
        prop_assert_eq!(candidates as usize, c.schedule.entries.len());
        prop_assert_eq!(placed as usize, c.schedule.groups.len());
        prop_assert_eq!(redundant as usize, c.schedule.absorptions.len());
    }

    /// Stats collection must be observationally free: the compiled program
    /// and schedule are identical with and without it.
    #[test]
    fn stats_run_is_bit_identical(
        kernel in any_kernel(),
        strategy in any_strategy(),
    ) {
        let (name, src) = kernel;
        let plain = compile(src, strategy)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let stats = compile_stats(src, strategy).unwrap();
        prop_assert!(plain.stats.passes().is_empty(), "{}: plain compile collected stats", name);
        prop_assert!(!stats.stats.passes().is_empty(), "{}: stats compile collected nothing", name);
        // `Compiled` equality covers program + schedule and ignores stats.
        prop_assert_eq!(&plain, &stats, "{}/{:?}: schedules differ", name, strategy);
        prop_assert_eq!(
            plain.report(), stats.report(),
            "{}/{:?}: placement reports differ", name, strategy
        );
    }

    /// The incremental path must be observationally free too: compiling
    /// through a warm `IncrCompiler` (twice, so the second pass is pure
    /// memo reuse) yields the same program and schedule as a
    /// stats-enabled cold compile. Equality ignores stats — the work
    /// *done* is exactly what incrementality changes.
    #[test]
    fn incremental_run_is_bit_identical_to_stats_run(
        kernel in any_kernel(),
        strategy in any_strategy(),
    ) {
        let (name, src) = kernel;
        let stats = compile_stats(src, strategy)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let ic = gcomm::core::incr::IncrCompiler::new(16 * 1024 * 1024);
        let spec = gcomm::guard::BudgetSpec::default();
        for pass in 0..2 {
            let out = ic.compile_module(src, strategy, &spec);
            prop_assert_eq!(out.routines.len(), 1, "{}: kernels are single-routine", name);
            let art = out.routines[0].result.as_ref()
                .unwrap_or_else(|e| panic!("{name}/{strategy:?}: {e:?}"));
            let warm = gcomm::core::Compiled {
                prog: (*art.prog).clone(),
                schedule: (*art.schedule).clone(),
                stats: Default::default(),
            };
            // `Compiled` equality covers program + schedule, not stats.
            prop_assert_eq!(
                &warm, &stats,
                "{}/{:?} pass {}: incremental diverged from cold", name, strategy, pass
            );
        }
    }
}
