//! Minimized crashers found by the structured fuzzing harness
//! (`tests/fuzz_smoke.rs`), pinned as permanent regressions.
//!
//! Each test names the generator seed that first exposed the bug
//! (`proptest::hpf::generate(seed)` with the default `GenConfig`) and
//! replays a hand-minimized program reproducing it. The minimized source is
//! kept inline so these tests survive generator changes.

use std::collections::HashMap;

use gcomm::core::check_schedule;
use gcomm::machine::ProcGrid;
use gcomm::{compile, compile_budgeted, Budget, Strategy};

fn verify_ok(src: &str, s: Strategy) {
    let c = compile(src, s).unwrap();
    let rep = check_schedule(&c);
    assert!(rep.ok(), "{s:?}: {rep}");
    let rank = c
        .prog
        .arrays
        .iter()
        .map(|a| a.distributed_dims().len())
        .max()
        .unwrap_or(1)
        .max(1);
    let grid = ProcGrid::balanced(4, rank);
    let mut params: HashMap<String, i64> = c.prog.params.iter().map(|p| (p.clone(), 8)).collect();
    params.insert("nsteps".into(), 2);
    let rep = gcomm::exec::verify_schedule(&c, &grid, &params).unwrap();
    assert!(
        rep.ok(),
        "{s:?}: {} replay violation(s): {:?}",
        rep.errors.len(),
        rep.errors.first()
    );
}

/// Generator seed 639135: a self-updating array read twice in one loop
/// body. `a(3:n, 1:n)` is read by two statements with the array's own
/// write in between; `EarliestRE` used to absorb the second read into the
/// first even though the intervening write staled the fetched rows. The
/// fix requires an absorption cover to sit inside the covered entry's
/// legal `[earliest .. latest]` window (or chain validity through its own
/// use).
#[test]
fn absorption_must_not_cross_a_killing_write() {
    let src = "
program kill
param n, nsteps
real a(n,n), b(n,n) distribute (block, block)
do v = 2, n-1
  a(1:n-2, 1:n) = a(3:n, 1:n) + 1
  b(1:n-2, 1:n) = a(3:n, 1:n) + 2
enddo
end";
    for s in [
        Strategy::Original,
        Strategy::EarliestRE,
        Strategy::EarliestPartialRE,
        Strategy::Global,
    ] {
        verify_ok(src, s);
    }
}

/// Generator seed 641399: two overlapping broadcast reads placed at the
/// same point used to shave *each other* under `EarliestPartialRE`
/// (`a1(1:n-2)` minus `a1(2:n)` and vice versa), so the intersection
/// `a1(2:n-2)` was never shipped; additionally one cover had absorbed a
/// third entry, so shaving it also orphaned that entry's data. Covers now
/// must be unshaved, and absorbers are never shaved.
#[test]
fn partial_re_must_not_shave_mutually_or_shave_an_absorber() {
    let src = "
program shave
param n, nsteps
real a(n), b(n) distribute (block)
real c(n)
do t = 1, nsteps
  c(1:n-2) = a(1:n-2)
  do v = 2, n-1
    c(1:n-2) = a(3:n)
    c(1:n-1) = a(2:n)
  enddo
  b(1:n-2) = b(1:n-2)
enddo
end";
    for s in [Strategy::EarliestRE, Strategy::EarliestPartialRE] {
        verify_ok(src, s);
    }
}

/// Generator seed 645755: an absorption chain (`E0` absorbs `E1`, then
/// `E2` absorbs `E0`). Under `EarliestRE` the chain left `E1`'s data
/// unserved (no obligation inheritance), so absorbers now refuse to be
/// absorbed there; under `Global` the chain is legal (obligations are
/// inherited into the final placement) and the legality checker had to
/// learn to resolve chains before judging coverage.
#[test]
fn absorption_chains_stay_served() {
    let src = "
program chain
param n, nsteps
real a(n) distribute (cyclic)
real b(n) distribute (*)
real s
do v = 2, n-1
  b(1:n-1) = b(2:n) + 0.5 * b(2:n) - a(2:n)
  b(1:n-2) = a(2:n-1) - b(2:n-1) + 0.5 * b(3:n)
  b(v) = a(v-1) + a(v+1)
enddo
s = sum(a(1:n))
end";
    for s in [
        Strategy::Original,
        Strategy::EarliestRE,
        Strategy::EarliestPartialRE,
        Strategy::Global,
    ] {
        verify_ok(src, s);
        // The chain appeared under a tight budget first: re-check there.
        let c = compile_budgeted(src, s, Budget::steps(50)).unwrap();
        let rep = check_schedule(&c);
        assert!(rep.ok(), "{s:?} steps=50: {rep}");
    }
}

/// The exact generated programs for all three seeds, replayed end-to-end
/// (guards against the minimizations drifting from what the generator
/// actually produces).
#[test]
fn original_crasher_seeds_replay_clean() {
    for seed in [639135u64, 641399, 645755] {
        let src = proptest::hpf::generate(seed);
        for s in [
            Strategy::Original,
            Strategy::EarliestRE,
            Strategy::EarliestPartialRE,
            Strategy::Global,
        ] {
            verify_ok(&src, s);
            for steps in [0u64, 1, 7, 50] {
                let c = compile_budgeted(&src, s, Budget::steps(steps)).unwrap();
                let rep = check_schedule(&c);
                assert!(rep.ok(), "seed {seed} {s:?} steps={steps}: {rep}");
            }
        }
    }
}
