//! `gcommc` — command-line driver for the gcomm communication optimizer.
//!
//! ```text
//! gcommc [OPTIONS] <file.hpf | - >      compile one program
//! gcommc serve [OPTIONS]                run the persistent compile service
//! gcommc cluster --addr <host:port> ... run a sharded compile cluster
//! gcommc client --addr <host:port> ...  talk to a running service
//! gcommc --version                      print the toolchain version
//!
//! Compile options:
//!   --strategy orig|nored|partial|comb|optimal
//!                                placement strategy (default: comb); optimal
//!                                runs the branch-and-bound certified search
//!                                (node-budgeted; prints a warning and falls
//!                                back to the greedy seed on truncation)
//!   --counts                     print static message counts for all three
//!   --dot-cfg                    print the augmented CFG as Graphviz DOT
//!   --dot-dom                    print the dominator tree as DOT
//!   --verify                     dynamically verify the schedule (n = 8)
//!   --sim <n>                    simulate at size n on SP2 and NOW
//!   --machine <topo>             interconnect topology for --sim pricing:
//!                                flat | fat-tree[:NxS] | torus[:XxY]
//!                                (default: flat, the paper's 1996 model)
//!   --coll <alg>                 collective algorithm: auto|ring|rdbl|bine|p2p
//!                                (default: p2p; auto sweeps the pareto
//!                                frontier per pattern and size, DESIGN.md §17)
//!   --faults <spec>              inject faults into --sim runs, e.g.
//!                                seed=42,loss=0.01,degrade=0.2:0.5,straggle=0.05:3
//!   --entries                    list communication entries before placement
//!   --stats                      print pass timings + counters to stderr
//!   --stats-json <path>          write the full stats report as JSON
//!   --budget <spec>              bound the placement analyses, e.g.
//!                                steps=50000,ms=200,mem=4m; on exhaustion the
//!                                compile degrades gracefully (see the
//!                                degraded.* counters under --stats)
//!
//! Serve options (DESIGN.md §12):
//!   --addr <host:port>           serve length-delimited frames on TCP;
//!                                without it, NDJSON on stdin/stdout
//!   --jobs <n>                   worker threads (default: GCOMM_JOBS or cores)
//!   --cache-bytes <size>         compile-cache capacity, e.g. 32m
//!   --budget <spec>              default budget for requests without one
//!   --persist <dir>              crash-safe persistent compile cache
//!                                (DESIGN.md §15): cache inserts write through
//!                                to a checksummed segment log and a restart
//!                                warms from it
//!   --persist-fsync <policy>     always | off | interval:N (default: always)
//!
//! Cluster options (DESIGN.md §13):
//!   --addr <host:port>           router listen address (required)
//!   --shards <n>                 shard processes to spawn (default: 2)
//!   --replicas <n>               ring successors for failover and hot-key
//!                                replication (default: 1)
//!   --attach <host:port>         attach a running serve instead of spawning
//!                                (repeatable; overrides --shards)
//!   --jobs <n>                   router workers and per-shard workers
//!   --cache-bytes <size>         per-shard compile-cache capacity
//!   --budget <spec>              default budget — forwarded to shards and
//!                                used for router-side key hashing
//!   --persist <dir>              per-shard persistent caches: spawned shard
//!                                N gets --persist <dir>/shard-N, and a
//!                                crashed shard is respawned by a supervisor
//!                                and readmitted to the ring warm
//!   --persist-fsync <policy>     forwarded to spawned shards
//!
//! Client options:
//!   --addr <host:port>           the server to talk to (required)
//!   --op ping|version|stats|shutdown|compile
//!                                request to send (default: compile with an
//!                                input file, ping without)
//!   --strategy / --budget        forwarded on compile requests
//!   --sim <profile[:n]>          request a simulation, e.g. sp2:128 or now
//!   --machine / --coll           topology + collective algorithm for --sim
//!                                requests (part of the compile-cache key)
//!   --stable                     ask for the deterministic stats form
//!   <file | ->                   source for compile requests
//! ```
//!
//! Example:
//!
//! ```text
//! echo 'program p
//! param n
//! real a(n,n), b(n,n) distribute (block, block)
//! b(2:n, 1:n) = a(1:n-1, 1:n)
//! end' | cargo run --bin gcommc -- --counts -
//! ```

use std::collections::HashMap;
use std::io::Read as _;
use std::process::ExitCode;
use std::sync::Arc;

use gcomm::core::{commgen, compile_diagnostics_budgeted, lower_to_sim, SimConfig};
use gcomm::machine::{simulate_with_faults, FaultPlan, NetworkModel, ProcGrid};
use gcomm::serve::cli;
use gcomm::serve::{Client, ServiceConfig};
use gcomm::{Budget, BudgetSpec, Strategy};

struct Opts {
    strategy: Strategy,
    counts: bool,
    dot_cfg: bool,
    dot_dom: bool,
    verify: bool,
    sim: Option<i64>,
    machine: gcomm::coll::Topology,
    coll: gcomm::coll::CollChoice,
    faults: FaultPlan,
    budget: BudgetSpec,
    entries: bool,
    stats: cli::StatsOpts,
    input: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: gcommc [--strategy orig|nored|partial|comb|optimal] [--counts] [--dot-cfg] [--dot-dom] \
         [--verify] [--sim <n>] [--machine <topo>] [--coll <alg>] [--faults <spec>] \
         [--budget <spec>] [--entries] [--stats] \
         [--stats-json <path>] <file | ->\n\
         \x20      gcommc serve [--addr <host:port>] [--jobs <n>] [--cache-bytes <size>] \
         [--budget <spec>] [--persist <dir>] [--persist-fsync <policy>]\n\
         \x20      gcommc cluster --addr <host:port> [--shards <n>] [--replicas <n>] \
         [--attach <host:port>]... [--jobs <n>] [--cache-bytes <size>] [--budget <spec>] \
         [--persist <dir>] [--persist-fsync <policy>]\n\
         \x20      gcommc client --addr <host:port> [--op ping|version|stats|shutdown|compile] \
         [--strategy <s>] [--budget <spec>] [--sim <profile[:n]>] [--machine <topo>] \
         [--coll <alg>] [--stable] [<file | ->]\n\
         \x20      gcommc --version"
    );
    std::process::exit(2);
}

/// Rejects a malformed command line with one clear message on stderr
/// (exit status 2, like the usage error).
fn bad_args(msg: impl std::fmt::Display) -> ! {
    eprintln!("gcommc: {msg}");
    std::process::exit(2);
}

fn parse_args(mut args: Vec<String>) -> Opts {
    // The cross-cutting flags shared with `serve`, `client`, and the bench
    // binaries come out first via the shared helpers (exit-2 contract).
    let budget = cli::or_exit2("gcommc", cli::take_budget_flag(&mut args));
    let stats = cli::or_exit2("gcommc", cli::StatsOpts::extract(&mut args));
    let mut o = Opts {
        strategy: Strategy::Global,
        counts: false,
        dot_cfg: false,
        dot_dom: false,
        verify: false,
        sim: None,
        machine: gcomm::coll::Topology::Flat,
        coll: gcomm::coll::CollChoice::Fixed(gcomm::coll::Algo::P2p),
        faults: FaultPlan::quiet(),
        budget,
        entries: false,
        stats,
        input: None,
    };
    let mut args = args.into_iter();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--strategy" => {
                o.strategy = match args.next().as_deref() {
                    Some(name) => Strategy::parse(name).unwrap_or_else(|| {
                        bad_args(format_args!(
                            "--strategy expects orig|nored|partial|comb|optimal, got '{name}'"
                        ))
                    }),
                    None => bad_args("--strategy expects a value: orig|nored|partial|comb|optimal"),
                }
            }
            "--counts" => o.counts = true,
            "--dot-cfg" => o.dot_cfg = true,
            "--dot-dom" => o.dot_dom = true,
            "--verify" => o.verify = true,
            "--entries" => o.entries = true,
            "--sim" => match args.next() {
                Some(s) => match s.parse() {
                    Ok(n) => o.sim = Some(n),
                    Err(_) => bad_args(format_args!(
                        "--sim expects an integer problem size, got '{s}'"
                    )),
                },
                None => bad_args("--sim expects an integer problem size"),
            },
            "--machine" => match args.next() {
                Some(t) => {
                    o.machine = gcomm::coll::Topology::parse(&t)
                        .unwrap_or_else(|e| bad_args(format_args!("--machine: {e}")))
                }
                None => bad_args("--machine expects flat | fat-tree[:NxS] | torus[:XxY]"),
            },
            "--coll" => match args.next() {
                Some(c) => {
                    o.coll = gcomm::coll::CollChoice::parse(&c).unwrap_or_else(|| {
                        bad_args(format_args!(
                            "--coll expects auto|ring|rdbl|bine|p2p, got '{c}'"
                        ))
                    })
                }
                None => bad_args("--coll expects auto|ring|rdbl|bine|p2p"),
            },
            "--faults" => {
                let Some(spec) = args.next() else {
                    bad_args("--faults expects a spec, e.g. seed=42,loss=0.01")
                };
                o.faults = match FaultPlan::parse(&spec) {
                    Ok(p) => p,
                    Err(e) => bad_args(e),
                };
            }
            "--help" | "-h" => usage(),
            _ if a.starts_with("--") => bad_args(format_args!(
                "unrecognized option '{a}' (run --help for the option list)"
            )),
            _ if o.input.is_none() => o.input = Some(a),
            _ => bad_args(format_args!(
                "unexpected extra argument '{a}' (input file already given)"
            )),
        }
    }
    if o.input.is_none() {
        bad_args("missing input file (pass a path, or '-' for stdin)");
    }
    o
}

/// Reads the program source from a path, or stdin for `-`.
fn read_source(path: &str) -> Result<String, String> {
    if path == "-" {
        let mut s = String::new();
        std::io::stdin()
            .read_to_string(&mut s)
            .map_err(|_| "failed to read stdin".to_string())?;
        Ok(s)
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if cli::take_version_flag(&mut args) {
        println!("{}", cli::version_line("gcommc"));
        return ExitCode::SUCCESS;
    }
    match args.first().map(String::as_str) {
        Some("serve") => serve_main(args.split_off(1)),
        Some("cluster") => cluster_main(args.split_off(1)),
        Some("client") => client_main(args.split_off(1)),
        _ => compile_main(args),
    }
}

/// `gcommc serve`: the persistent compile service, on TCP with `--addr`
/// or NDJSON over stdio without it. SIGINT/SIGTERM drain gracefully.
fn serve_main(mut args: Vec<String>) -> ExitCode {
    let jobs = cli::or_exit2("gcommc", gcomm::par::take_jobs_flag(&mut args));
    let addr = cli::or_exit2("gcommc", cli::take_addr_flag(&mut args));
    let cache_bytes = cli::or_exit2("gcommc", cli::take_cache_bytes_flag(&mut args));
    let default_budget = cli::or_exit2("gcommc", cli::take_budget_flag(&mut args));
    let persist = cli::or_exit2("gcommc", cli::take_persist_flag(&mut args));
    let persist_fsync = cli::or_exit2("gcommc", cli::take_persist_fsync_flag(&mut args));
    if let Some(extra) = args.first() {
        bad_args(format_args!("serve: unexpected argument '{extra}'"));
    }
    let mut config = ServiceConfig {
        jobs,
        default_budget,
        persist: persist.map(std::path::PathBuf::from),
        ..ServiceConfig::default()
    };
    if let Some(policy) = persist_fsync {
        config.persist_fsync = policy;
    }
    if let Some(bytes) = cache_bytes {
        config.cache_bytes = bytes;
    }
    match addr {
        Some(addr) => {
            let server = match gcomm::serve::Server::bind(&addr, config) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("gcommc: bind {addr}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            #[cfg(unix)]
            {
                gcomm::serve::server::signal::install();
                gcomm::serve::server::signal::watch(server.shutdown_flag());
            }
            if let Ok(local) = server.local_addr() {
                eprintln!("gcommc: serving on {local} ({jobs} jobs)");
            }
            if let Err(e) = server.run() {
                eprintln!("gcommc: serve: {e}");
                return ExitCode::FAILURE;
            }
        }
        None => {
            let svc = match gcomm::serve::Service::open(config) {
                Ok(s) => Arc::new(s),
                Err(e) => {
                    eprintln!("gcommc: serve: opening persistent cache: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let shutdown = gcomm::serve::ShutdownFlag::new();
            #[cfg(unix)]
            {
                gcomm::serve::server::signal::install();
                gcomm::serve::server::signal::watch(shutdown.clone());
            }
            let stdin = std::io::stdin();
            let mut input = stdin.lock();
            if let Err(e) =
                gcomm::serve::serve_lines(&svc, &mut input, Box::new(std::io::stdout()), &shutdown)
            {
                eprintln!("gcommc: serve: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// `gcommc cluster`: the sharded compile service (DESIGN.md §13). Spawns
/// `--shards` child `gcommc serve` processes (or attaches to running ones
/// via `--attach`) and routes the unchanged protocol across them with
/// health checks, retry/backoff, and hot-key replication. SIGINT/SIGTERM
/// drain the router's in-flight requests, then shut the spawned shards
/// down gracefully.
fn cluster_main(mut args: Vec<String>) -> ExitCode {
    let jobs = cli::or_exit2("gcommc", gcomm::par::take_jobs_flag(&mut args));
    let addr = cli::or_exit2("gcommc", cli::take_addr_flag(&mut args));
    let cache_bytes = cli::or_exit2("gcommc", cli::take_cache_bytes_flag(&mut args));
    let default_budget = cli::or_exit2("gcommc", cli::take_budget_flag(&mut args));
    let shards = cli::or_exit2("gcommc", cli::take_count_flag(&mut args, "--shards")).unwrap_or(2);
    let replicas =
        cli::or_exit2("gcommc", cli::take_count_flag(&mut args, "--replicas")).unwrap_or(1);
    let attach = cli::or_exit2("gcommc", cli::take_repeated_flag(&mut args, "--attach"));
    let persist = cli::or_exit2("gcommc", cli::take_persist_flag(&mut args));
    let persist_fsync = cli::or_exit2("gcommc", cli::take_persist_fsync_flag(&mut args));
    if let Some(extra) = args.first() {
        bad_args(format_args!("cluster: unexpected argument '{extra}'"));
    }
    let Some(addr) = addr else {
        bad_args("cluster: --addr <host:port> is required");
    };
    if persist.is_some() && !attach.is_empty() {
        bad_args("cluster: --persist applies to spawned shards, not --attach'ed ones");
    }

    // Attached shards are trusted as-is; otherwise spawn our own children
    // running the same binary, so the cluster needs no external setup.
    let mut procs: Vec<gcomm::serve::cluster::ShardProc> = Vec::new();
    let shard_addrs: Vec<std::net::SocketAddr> = if attach.is_empty() {
        let exe = match std::env::current_exe() {
            Ok(p) => p,
            Err(e) => {
                eprintln!("gcommc: cluster: cannot locate own binary: {e}");
                return ExitCode::FAILURE;
            }
        };
        let jobs_arg = jobs.to_string();
        let mut extra: Vec<String> = vec!["--jobs".into(), jobs_arg];
        if let Some(bytes) = cache_bytes {
            extra.push("--cache-bytes".into());
            extra.push(bytes.to_string());
        }
        if !default_budget.is_unlimited() {
            extra.push("--budget".into());
            extra.push(default_budget.to_string());
        }
        if let Some(policy) = persist_fsync {
            extra.push("--persist-fsync".into());
            extra.push(match policy {
                gcomm::store::FsyncPolicy::Always => "always".into(),
                gcomm::store::FsyncPolicy::Off => "off".into(),
                gcomm::store::FsyncPolicy::Interval(n) => format!("interval:{n}"),
            });
        }
        for i in 0..shards {
            // Each spawned shard gets its own persistence directory, so a
            // respawned shard i always recovers shard i's cache.
            let mut shard_args = extra.clone();
            if let Some(dir) = &persist {
                shard_args.push("--persist".into());
                shard_args.push(format!("{dir}/shard-{i}"));
            }
            let refs: Vec<&str> = shard_args.iter().map(String::as_str).collect();
            match gcomm::serve::cluster::ShardProc::spawn(&exe.to_string_lossy(), &refs) {
                Ok(p) => procs.push(p),
                Err(e) => {
                    eprintln!("gcommc: cluster: spawning shard {i}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        procs
            .iter()
            .map(gcomm::serve::cluster::ShardProc::addr)
            .collect()
    } else {
        let mut addrs = Vec::new();
        for a in &attach {
            match a.parse() {
                Ok(sa) => addrs.push(sa),
                Err(_) => bad_args(format_args!(
                    "cluster: --attach expects host:port, got '{a}'"
                )),
            }
        }
        addrs
    };

    let config = gcomm::serve::ClusterConfig {
        replicas,
        jobs,
        default_budget,
        ..gcomm::serve::ClusterConfig::default()
    };
    let router = match gcomm::serve::Router::bind(&addr, &shard_addrs, config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("gcommc: bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    #[cfg(unix)]
    {
        gcomm::serve::server::signal::install();
        gcomm::serve::server::signal::watch(router.shutdown_flag());
    }
    if let Ok(local) = router.local_addr() {
        eprintln!(
            "gcommc: cluster on {local} ({} shards, {} replica(s), {jobs} jobs)",
            shard_addrs.len(),
            replicas
        );
    }
    // Spawned children are supervised: a crashed shard is respawned on
    // its original command line (same --persist directory), probed, and
    // readmitted to its ring slot. The supervisor shares the router's
    // shutdown flag, so the router's exit winds it down and hands the
    // children back for the graceful drain below.
    let supervisor = (!procs.is_empty()).then(|| {
        gcomm::serve::cluster::supervise(
            std::mem::take(&mut procs),
            router.admission(),
            gcomm::serve::cluster::SupervisePolicy::default(),
            router.shutdown_flag(),
        )
    });
    let result = router.run();
    if let Some(s) = supervisor {
        procs = s.join();
    }
    // The router drained first, so the shards see no more forwards; now
    // drain and stop the children we own (attached shards stay up).
    for (i, p) in procs.iter_mut().enumerate() {
        if let Err(e) = p.shutdown_graceful(std::time::Duration::from_secs(5)) {
            eprintln!("gcommc: cluster: stopping shard {i}: {e}");
        }
    }
    if let Err(e) = result {
        eprintln!("gcommc: cluster: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// `gcommc client`: sends one request to a running service and prints the
/// response line. Exit 0 on an `"ok":true` response, 1 otherwise.
fn client_main(mut args: Vec<String>) -> ExitCode {
    let Some(addr) = cli::or_exit2("gcommc", cli::take_addr_flag(&mut args)) else {
        bad_args("client: --addr <host:port> is required");
    };
    let budget = cli::or_exit2("gcommc", cli::take_budget_flag(&mut args));
    let budget = (!budget.is_unlimited()).then_some(budget);
    let mut op: Option<String> = None;
    let mut strategy = Strategy::Global;
    let mut sim: Option<gcomm::serve::SimSpec> = None;
    let mut machine: Option<String> = None;
    let mut coll: Option<String> = None;
    let mut stable = false;
    let mut input: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--op" => match it.next() {
                Some(v) => op = Some(v),
                None => bad_args("--op expects ping|version|stats|shutdown|compile"),
            },
            "--strategy" => {
                strategy = match it.next().as_deref() {
                    Some(name) => Strategy::parse(name).unwrap_or_else(|| {
                        bad_args(format_args!(
                            "--strategy expects orig|nored|partial|comb|optimal, got '{name}'"
                        ))
                    }),
                    None => bad_args("--strategy expects a value: orig|nored|partial|comb|optimal"),
                }
            }
            "--sim" => {
                let Some(v) = it.next() else {
                    bad_args("--sim expects a profile, e.g. sp2:128 or now")
                };
                let (profile, n) = match v.split_once(':') {
                    Some((p, n)) => match n.parse::<i64>() {
                        Ok(n) if n >= 1 => (p.to_string(), n),
                        _ => bad_args(format_args!("--sim expects profile[:n], got '{v}'")),
                    },
                    None => (v.clone(), 64),
                };
                if profile != "sp2" && profile != "now" {
                    bad_args(format_args!(
                        "--sim profile must be sp2 or now, got '{profile}'"
                    ));
                }
                sim = Some(gcomm::serve::SimSpec::flat(&profile, n));
            }
            "--machine" => {
                let Some(t) = it.next() else {
                    bad_args("--machine expects flat | fat-tree[:NxS] | torus[:XxY]")
                };
                match gcomm::coll::Topology::parse(&t) {
                    // Canonicalize here so the cache key the server derives
                    // matches what other spellings of the same topology get.
                    Ok(topo) => machine = Some(topo.describe()),
                    Err(e) => bad_args(format_args!("--machine: {e}")),
                }
            }
            "--coll" => {
                let Some(c) = it.next() else {
                    bad_args("--coll expects auto|ring|rdbl|bine|p2p")
                };
                match gcomm::coll::CollChoice::parse(&c) {
                    Some(choice) => coll = Some(choice.describe().to_string()),
                    None => bad_args(format_args!(
                        "--coll expects auto|ring|rdbl|bine|p2p, got '{c}'"
                    )),
                }
            }
            "--stable" => stable = true,
            _ if a.starts_with("--") => bad_args(format_args!("client: unrecognized option '{a}'")),
            _ if input.is_none() => input = Some(a),
            _ => bad_args(format_args!("client: unexpected extra argument '{a}'")),
        }
    }
    if machine.is_some() || coll.is_some() {
        let Some(s) = sim.as_mut() else {
            bad_args("client: --machine/--coll only apply to --sim requests");
        };
        if let Some(m) = machine {
            s.machine = m;
        }
        if let Some(c) = coll {
            s.coll = c;
        }
    }
    let op = op.unwrap_or_else(|| if input.is_some() { "compile" } else { "ping" }.to_string());
    let request = match op.as_str() {
        "ping" => r#"{"op":"ping","id":1}"#.to_string(),
        "version" => r#"{"op":"version","id":1}"#.to_string(),
        "shutdown" => r#"{"op":"shutdown","id":1}"#.to_string(),
        "stats" => format!("{{\"op\":\"stats\",\"id\":1,\"stable\":{stable}}}"),
        "compile" => {
            let Some(path) = input.as_deref() else {
                bad_args("client: compile needs a source file (or '-' for stdin)");
            };
            let src = match read_source(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("gcommc: {e}");
                    return ExitCode::FAILURE;
                }
            };
            gcomm::serve::compile_request(1, &src, strategy, budget.as_ref(), sim.as_ref())
        }
        other => bad_args(format_args!(
            "--op expects ping|version|stats|shutdown|compile, got '{other}'"
        )),
    };
    let mut client = match Client::connect(addr.as_str()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("gcommc: connect {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match client.request(&request) {
        Ok(resp) => {
            println!("{resp}");
            let failed = gcomm::serve::json::Json::parse(&resp)
                .map(|v| {
                    v.get("error").is_some() || v.get("ok").and_then(|o| o.as_bool()) == Some(false)
                })
                .unwrap_or(true);
            if failed {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("gcommc: {addr}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn compile_main(args: Vec<String>) -> ExitCode {
    let opts = parse_args(args);
    let path = opts.input.as_deref().unwrap_or("-");
    let src = match read_source(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("gcommc: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Stats collection covers the whole run (compile + sim + verify); the
    // registry is thread-local and opt-in, so without --stats the compile
    // path pays only a thread-local read per instrumentation point. The
    // scope guard renders/writes the report when it drops at return.
    let stats_enabled = opts.stats.enabled();
    let _scope = opts.stats.install();

    // The budget clock starts here, covering the whole compile.
    let budget = Budget::from_spec(&opts.budget);
    let compiled = match compile_diagnostics_budgeted(&src, opts.strategy, budget.clone()) {
        Ok(c) => c,
        Err(errs) => {
            let n = errs.len();
            for e in errs {
                eprintln!("gcommc: {e}");
                // Quote the offending source line under the diagnostic.
                if e.line > 0 {
                    if let Some(text) = src.lines().nth(e.line as usize - 1) {
                        eprintln!("  {:>4} | {}", e.line, text.trim_end());
                    }
                }
            }
            eprintln!("gcommc: {n} error(s), no output");
            return ExitCode::FAILURE;
        }
    };
    if budget.exhausted() {
        eprintln!(
            "gcommc: analysis budget exhausted ({} steps used); \
             schedule degraded conservatively (see degraded.* under --stats)",
            budget.steps_used()
        );
    }
    // Structured truncation warning for --strategy optimal: the schedule
    // is the greedy seed or better, but the space was not fully certified.
    if let Some(search) = &compiled.schedule.search {
        if search.truncated {
            eprintln!(
                "gcommc: optimal search truncated: nodes={} leaves={} \
                 pruned_bound={} pruned_dominance={} space={}; \
                 schedule is the greedy seed or better but NOT certified \
                 optimal (raise --budget steps=N to certify)",
                search.nodes,
                search.leaves,
                search.pruned_bound,
                search.pruned_dominance,
                search.space
            );
        }
    }

    if opts.dot_cfg {
        print!("{}", gcomm::ir::dot::cfg_dot(&compiled.prog));
        return ExitCode::SUCCESS;
    }
    if opts.dot_dom {
        let dt = gcomm::ir::DomTree::compute(&compiled.prog.cfg);
        print!("{}", gcomm::ir::dot::dom_dot(&compiled.prog, &dt));
        return ExitCode::SUCCESS;
    }

    if opts.entries {
        let entries = commgen::number(commgen::generate(&compiled.prog));
        println!("{} communication entr(ies):", entries.len());
        for e in &entries {
            println!("  {:<20} at {} (reads {:?})", e.label, e.stmt, e.reads);
        }
    }

    println!("{}", compiled.report());

    if opts.counts {
        match gcomm::static_counts(&src) {
            Ok((o, n, c)) => println!("static messages: orig={o} nored={n} comb={c}"),
            Err(e) => eprintln!("gcommc: {e}"),
        }
    }

    if let Some(n) = opts.sim {
        let rank = compiled
            .prog
            .arrays
            .iter()
            .map(|a| a.distributed_dims().len())
            .max()
            .unwrap_or(1)
            .max(1);
        for (p, net) in [
            (25u32, NetworkModel::sp2()),
            (8, NetworkModel::now_myrinet()),
        ] {
            let mut cfg =
                SimConfig::uniform(&compiled, ProcGrid::balanced(p, rank), n).with("nsteps", 10);
            // flat + p2p is the legacy flat-model pricing — leave the
            // config on the sentinel path so historical numbers hold exactly.
            if !(opts.machine == gcomm::coll::Topology::Flat
                && opts.coll == gcomm::coll::CollChoice::Fixed(gcomm::coll::Algo::P2p))
            {
                cfg = cfg.with_coll(gcomm::coll::CollConfig::new(
                    opts.machine.clone(),
                    opts.coll,
                    net.clone(),
                ));
            }
            let rep = simulate_with_faults(&lower_to_sim(&compiled, &cfg), &net, &opts.faults);
            let r = rep.result;
            let topo_tag = cfg
                .coll
                .as_ref()
                .map(|c| format!(" [{}]", c.describe()))
                .unwrap_or_default();
            println!(
                "{}{topo_tag} P={p} n={n}: total {:.0} us (compute {:.0}, comm {:.0}, {} msgs, {:.0} B)",
                net.name,
                r.total_us(),
                r.compute_us,
                r.comm_us,
                r.messages,
                r.bytes
            );
            if !opts.faults.is_quiet() {
                let f = rep.faults;
                println!(
                    "  faults: {} retransmitted rounds, {} timeouts, {:.0} us backoff, \
                     {} fallbacks, {} giveups, {} degraded / {} straggled phases",
                    f.retransmits,
                    f.timeouts,
                    f.backoff_us,
                    f.fallbacks,
                    f.giveups,
                    f.degraded_phases,
                    f.straggled_phases
                );
            }
        }
    }

    if opts.verify {
        let rank = compiled
            .prog
            .arrays
            .iter()
            .map(|a| a.distributed_dims().len())
            .max()
            .unwrap_or(1)
            .max(1);
        let grid = ProcGrid::balanced(4, rank);
        let mut params: HashMap<String, i64> = compiled
            .prog
            .params
            .iter()
            .map(|p| (p.clone(), 8))
            .collect();
        params.insert("nsteps".into(), 2);
        match gcomm_exec::verify_schedule(&compiled, &grid, &params) {
            Ok(rep) if rep.ok() => println!(
                "verify: OK ({} remote elements checked, {} comm events)",
                rep.remote_elements_checked, rep.comm_events
            ),
            Ok(rep) => {
                println!("verify: {} violation(s)", rep.errors.len());
                for e in rep.errors.iter().take(5) {
                    println!("  {e}");
                }
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("gcommc: verification failed to run: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if stats_enabled && opts.sim.is_none() {
        // Populate the machine stage even without --sim: one quiet
        // small-size run on the default network (doesn't touch stdout).
        let rank = compiled
            .prog
            .arrays
            .iter()
            .map(|a| a.distributed_dims().len())
            .max()
            .unwrap_or(1)
            .max(1);
        let cfg = SimConfig::uniform(&compiled, ProcGrid::balanced(4, rank), 64).with("nsteps", 2);
        let _ = simulate_with_faults(
            &lower_to_sim(&compiled, &cfg),
            &NetworkModel::sp2(),
            &opts.faults,
        );
    }

    ExitCode::SUCCESS
}
