//! `gcommc` — command-line driver for the gcomm communication optimizer.
//!
//! ```text
//! gcommc [OPTIONS] <file.hpf | - >
//!
//! Options:
//!   --strategy orig|nored|partial|comb   placement strategy (default: comb)
//!   --counts                     print static message counts for all three
//!   --dot-cfg                    print the augmented CFG as Graphviz DOT
//!   --dot-dom                    print the dominator tree as DOT
//!   --verify                     dynamically verify the schedule (n = 8)
//!   --sim <n>                    simulate at size n on SP2 and NOW
//!   --faults <spec>              inject faults into --sim runs, e.g.
//!                                seed=42,loss=0.01,degrade=0.2:0.5,straggle=0.05:3
//!   --entries                    list communication entries before placement
//!   --stats                      print pass timings + counters to stderr
//!   --stats-json <path>          write the full stats report as JSON
//!   --budget <spec>              bound the placement analyses, e.g.
//!                                steps=50000,ms=200,mem=4m; on exhaustion the
//!                                compile degrades gracefully (see the
//!                                degraded.* counters under --stats)
//! ```
//!
//! Example:
//!
//! ```text
//! echo 'program p
//! param n
//! real a(n,n), b(n,n) distribute (block, block)
//! b(2:n, 1:n) = a(1:n-1, 1:n)
//! end' | cargo run --bin gcommc -- --counts -
//! ```

use std::collections::HashMap;
use std::io::Read as _;
use std::process::ExitCode;

use gcomm::core::{commgen, compile_diagnostics_budgeted, lower_to_sim, SimConfig};
use gcomm::machine::{simulate_with_faults, FaultPlan, NetworkModel, ProcGrid};
use gcomm::{Budget, BudgetSpec, Strategy};

struct Opts {
    strategy: Strategy,
    counts: bool,
    dot_cfg: bool,
    dot_dom: bool,
    verify: bool,
    sim: Option<i64>,
    faults: FaultPlan,
    budget: BudgetSpec,
    entries: bool,
    stats: bool,
    stats_json: Option<String>,
    input: Option<String>,
}

impl Opts {
    fn stats_enabled(&self) -> bool {
        self.stats || self.stats_json.is_some()
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: gcommc [--strategy orig|nored|partial|comb] [--counts] [--dot-cfg] [--dot-dom] \
         [--verify] [--sim <n>] [--faults <spec>] [--budget <spec>] [--entries] [--stats] \
         [--stats-json <path>] <file | ->"
    );
    std::process::exit(2);
}

/// Rejects a malformed command line with one clear message on stderr
/// (exit status 2, like the usage error).
fn bad_args(msg: impl std::fmt::Display) -> ! {
    eprintln!("gcommc: {msg}");
    std::process::exit(2);
}

fn parse_args() -> Opts {
    let mut o = Opts {
        strategy: Strategy::Global,
        counts: false,
        dot_cfg: false,
        dot_dom: false,
        verify: false,
        sim: None,
        faults: FaultPlan::quiet(),
        budget: BudgetSpec::default(),
        entries: false,
        stats: false,
        stats_json: None,
        input: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--strategy" => {
                o.strategy = match args.next().as_deref() {
                    Some("orig") => Strategy::Original,
                    Some("nored") => Strategy::EarliestRE,
                    Some("partial") => Strategy::EarliestPartialRE,
                    Some("comb") => Strategy::Global,
                    Some(other) => bad_args(format_args!(
                        "--strategy expects orig|nored|partial|comb, got '{other}'"
                    )),
                    None => bad_args("--strategy expects a value: orig|nored|partial|comb"),
                }
            }
            "--counts" => o.counts = true,
            "--stats" => o.stats = true,
            "--stats-json" => match args.next() {
                Some(p) if !p.starts_with("--") => o.stats_json = Some(p),
                Some(p) => bad_args(format_args!(
                    "--stats-json expects a file path, got option '{p}'"
                )),
                None => bad_args("--stats-json expects a file path"),
            },
            "--dot-cfg" => o.dot_cfg = true,
            "--dot-dom" => o.dot_dom = true,
            "--verify" => o.verify = true,
            "--entries" => o.entries = true,
            "--sim" => match args.next() {
                Some(s) => match s.parse() {
                    Ok(n) => o.sim = Some(n),
                    Err(_) => bad_args(format_args!(
                        "--sim expects an integer problem size, got '{s}'"
                    )),
                },
                None => bad_args("--sim expects an integer problem size"),
            },
            "--faults" => {
                let Some(spec) = args.next() else {
                    bad_args("--faults expects a spec, e.g. seed=42,loss=0.01")
                };
                o.faults = match FaultPlan::parse(&spec) {
                    Ok(p) => p,
                    Err(e) => bad_args(e),
                };
            }
            "--budget" => {
                let Some(spec) = args.next() else {
                    bad_args("--budget expects a spec, e.g. steps=50000,ms=200,mem=4m")
                };
                o.budget = match BudgetSpec::parse(&spec) {
                    Ok(b) => b,
                    Err(e) => bad_args(e),
                };
            }
            "--help" | "-h" => usage(),
            _ if a.starts_with("--") => bad_args(format_args!(
                "unrecognized option '{a}' (run --help for the option list)"
            )),
            _ if o.input.is_none() => o.input = Some(a),
            _ => bad_args(format_args!(
                "unexpected extra argument '{a}' (input file already given)"
            )),
        }
    }
    if o.input.is_none() {
        bad_args("missing input file (pass a path, or '-' for stdin)");
    }
    o
}

fn main() -> ExitCode {
    let opts = parse_args();
    let path = opts.input.as_deref().unwrap_or("-");
    let src = if path == "-" {
        let mut s = String::new();
        if std::io::stdin().read_to_string(&mut s).is_err() {
            eprintln!("gcommc: failed to read stdin");
            return ExitCode::FAILURE;
        }
        s
    } else {
        match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("gcommc: {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    // Stats collection covers the whole run (compile + sim + verify); the
    // registry is thread-local and opt-in, so without --stats the compile
    // path pays only a thread-local read per instrumentation point.
    let reg = gcomm_obs::Registry::new();
    let _scope = opts
        .stats_enabled()
        .then(|| gcomm_obs::install(reg.clone()));

    // The budget clock starts here, covering the whole compile.
    let budget = Budget::from_spec(&opts.budget);
    let compiled = match compile_diagnostics_budgeted(&src, opts.strategy, budget.clone()) {
        Ok(c) => c,
        Err(errs) => {
            let n = errs.len();
            for e in errs {
                eprintln!("gcommc: {e}");
                // Quote the offending source line under the diagnostic.
                if e.line > 0 {
                    if let Some(text) = src.lines().nth(e.line as usize - 1) {
                        eprintln!("  {:>4} | {}", e.line, text.trim_end());
                    }
                }
            }
            eprintln!("gcommc: {n} error(s), no output");
            return ExitCode::FAILURE;
        }
    };
    if budget.exhausted() {
        eprintln!(
            "gcommc: analysis budget exhausted ({} steps used); \
             schedule degraded conservatively (see degraded.* under --stats)",
            budget.steps_used()
        );
    }

    if opts.dot_cfg {
        print!("{}", gcomm::ir::dot::cfg_dot(&compiled.prog));
        return ExitCode::SUCCESS;
    }
    if opts.dot_dom {
        let dt = gcomm::ir::DomTree::compute(&compiled.prog.cfg);
        print!("{}", gcomm::ir::dot::dom_dot(&compiled.prog, &dt));
        return ExitCode::SUCCESS;
    }

    if opts.entries {
        let entries = commgen::number(commgen::generate(&compiled.prog));
        println!("{} communication entr(ies):", entries.len());
        for e in &entries {
            println!("  {:<20} at {} (reads {:?})", e.label, e.stmt, e.reads);
        }
    }

    println!("{}", compiled.report());

    if opts.counts {
        match gcomm::static_counts(&src) {
            Ok((o, n, c)) => println!("static messages: orig={o} nored={n} comb={c}"),
            Err(e) => eprintln!("gcommc: {e}"),
        }
    }

    if let Some(n) = opts.sim {
        let rank = compiled
            .prog
            .arrays
            .iter()
            .map(|a| a.distributed_dims().len())
            .max()
            .unwrap_or(1)
            .max(1);
        for (p, net) in [
            (25u32, NetworkModel::sp2()),
            (8, NetworkModel::now_myrinet()),
        ] {
            let cfg =
                SimConfig::uniform(&compiled, ProcGrid::balanced(p, rank), n).with("nsteps", 10);
            let rep = simulate_with_faults(&lower_to_sim(&compiled, &cfg), &net, &opts.faults);
            let r = rep.result;
            println!(
                "{} P={p} n={n}: total {:.0} us (compute {:.0}, comm {:.0}, {} msgs, {:.0} B)",
                net.name,
                r.total_us(),
                r.compute_us,
                r.comm_us,
                r.messages,
                r.bytes
            );
            if !opts.faults.is_quiet() {
                let f = rep.faults;
                println!(
                    "  faults: {} retransmitted rounds, {} timeouts, {:.0} us backoff, \
                     {} fallbacks, {} giveups, {} degraded / {} straggled phases",
                    f.retransmits,
                    f.timeouts,
                    f.backoff_us,
                    f.fallbacks,
                    f.giveups,
                    f.degraded_phases,
                    f.straggled_phases
                );
            }
        }
    }

    if opts.verify {
        let rank = compiled
            .prog
            .arrays
            .iter()
            .map(|a| a.distributed_dims().len())
            .max()
            .unwrap_or(1)
            .max(1);
        let grid = ProcGrid::balanced(4, rank);
        let mut params: HashMap<String, i64> = compiled
            .prog
            .params
            .iter()
            .map(|p| (p.clone(), 8))
            .collect();
        params.insert("nsteps".into(), 2);
        match gcomm_exec::verify_schedule(&compiled, &grid, &params) {
            Ok(rep) if rep.ok() => println!(
                "verify: OK ({} remote elements checked, {} comm events)",
                rep.remote_elements_checked, rep.comm_events
            ),
            Ok(rep) => {
                println!("verify: {} violation(s)", rep.errors.len());
                for e in rep.errors.iter().take(5) {
                    println!("  {e}");
                }
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("gcommc: verification failed to run: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if opts.stats_enabled() {
        // Populate the machine stage even without --sim: one quiet
        // small-size run on the default network (doesn't touch stdout).
        if opts.sim.is_none() {
            let rank = compiled
                .prog
                .arrays
                .iter()
                .map(|a| a.distributed_dims().len())
                .max()
                .unwrap_or(1)
                .max(1);
            let cfg =
                SimConfig::uniform(&compiled, ProcGrid::balanced(4, rank), 64).with("nsteps", 2);
            let _ = simulate_with_faults(
                &lower_to_sim(&compiled, &cfg),
                &NetworkModel::sp2(),
                &opts.faults,
            );
        }
        let report = reg.snapshot();
        if opts.stats {
            eprint!("{}", report.render_text());
        }
        if let Some(path) = &opts.stats_json {
            if let Err(e) = std::fs::write(path, report.to_json()) {
                eprintln!("gcommc: {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    ExitCode::SUCCESS
}
