//! # gcomm — Global Communication Analysis and Optimization
//!
//! A from-scratch Rust reproduction of *Global Communication Analysis and
//! Optimization* (Soumen Chakrabarti, Manish Gupta, Jong-Deok Choi;
//! PLDI 1996): the IBM pHPF algorithm that places **all** communication of
//! a data-parallel (HPF-like) procedure globally and interdependently,
//! unifying redundancy elimination and message combining.
//!
//! This façade crate re-exports the workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`lang`] | mini-HPF frontend (lexer, parser, AST, validator, builder) |
//! | [`ir`] | statement IR, augmented CFG, loop tree, dominators |
//! | [`ssa`] | whole-array SSA with φ-Enter / φ-Exit definitions |
//! | [`dep`] | dependence testing, direction vectors, access widening |
//! | [`sections`] | symbolic sections, mappings, ASDs |
//! | [`machine`] | processor grids, network models, cost model, simulator |
//! | [`core`] | the placement algorithm and comparison strategies |
//! | [`kernels`] | the paper's benchmark programs |
//! | [`exec`] | reference interpreter + dynamic schedule verification |
//! | [`obs`] | observability: spans, counters, stats reports (DESIGN.md §9) |
//! | [`guard`] | resource budgets + graceful degradation (DESIGN.md §10) |
//! | [`par`] | deterministic scoped worker pool for the drivers (DESIGN.md §11) |
//! | [`serve`] | persistent compile service: caching, batching, backpressure (DESIGN.md §12) |
//! | [`query`] | incremental query engine: content-addressed memoization (DESIGN.md §14) |
//! | [`coll`] | topology-aware collective-algorithm backend (DESIGN.md §17) |
//!
//! # Quickstart
//!
//! ```
//! use gcomm::{compile, Strategy};
//!
//! let compiled = compile(gcomm::kernels::SHALLOW, Strategy::Global)?;
//! assert_eq!(compiled.static_messages(), 8); // paper's Figure 10 table
//! # Ok::<(), gcomm::core::CoreError>(())
//! ```

pub use gcomm_coll as coll;
pub use gcomm_core as core;
pub use gcomm_dep as dep;
pub use gcomm_exec as exec;
pub use gcomm_guard as guard;
pub use gcomm_ir as ir;
pub use gcomm_kernels as kernels;
pub use gcomm_lang as lang;
pub use gcomm_machine as machine;
pub use gcomm_obs as obs;
pub use gcomm_par as par;
pub use gcomm_query as query;
pub use gcomm_sections as sections;
pub use gcomm_serve as serve;
pub use gcomm_ssa as ssa;
pub use gcomm_store as store;

pub use gcomm_core::{
    compile, compile_budgeted, compile_diagnostics, compile_stats, CommKind, Strategy,
};
pub use gcomm_guard::{Budget, BudgetSpec};
pub use gcomm_lang::{parse_program, parse_program_diagnostics};

/// Convenience: compiles a kernel under all three strategies and returns
/// the static message counts as `(orig, nored, comb)`.
///
/// # Errors
///
/// Returns [`gcomm_core::CoreError`] if the source fails to compile.
pub fn static_counts(src: &str) -> Result<(usize, usize, usize), gcomm_core::CoreError> {
    Ok((
        compile(src, Strategy::Original)?.static_messages(),
        compile(src, Strategy::EarliestRE)?.static_messages(),
        compile(src, Strategy::Global)?.static_messages(),
    ))
}
