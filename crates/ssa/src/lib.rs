//! # gcomm-ssa — whole-array SSA form
//!
//! SSA construction in the flavour required by §4.1 of *Global Communication
//! Analysis and Optimization* (PLDI 1996):
//!
//! * variables are **whole arrays** (and scalars); subscripts are ignored at
//!   this level,
//! * every regular (source) definition is **preserving** — it may leave part
//!   of the array untouched — so each definition records the definition
//!   reaching immediately before it (`Reaching(d)` in the paper),
//! * a **pseudo-definition at ENTRY** exists for every variable, which
//!   "simplifies dataflow analyses" (Fig. 8 caption),
//! * φ-definitions appear at loop **headers** (φ-Enter, with an `r_pre`
//!   parameter reaching from outside the loop and an `r_post` parameter
//!   reaching around the backedge), at loop **postexits** (φ-Exit, merging
//!   the zero-trip edge with the loop-exit edge), and at ordinary **join**
//!   points.
//!
//! Because the augmented CFG already contains preheader/postexit nodes and
//! zero-trip edges, placing φs on iterated dominance frontiers yields exactly
//! the φ-Enter/φ-Exit structure the paper describes — no special casing.
//!
//! # Example
//!
//! ```
//! let src = "
//! program p
//! param n
//! real a(n,n) distribute (block,block)
//! do i = 2, n
//!   a(i, 1:n) = a(i-1, 1:n)
//! enddo
//! end";
//! let ast = gcomm_lang::parse_program(src)?;
//! let ir = gcomm_ir::lower(&ast)?;
//! let ssa = gcomm_ssa::SsaForm::build(&ir);
//! // The read of `a` in the loop reaches a phi-Enter at the loop header.
//! let d = ssa.use_def(gcomm_ir::StmtId(0), 0).unwrap();
//! assert!(matches!(ssa.def(d).kind, gcomm_ssa::DefKind::PhiEnter { .. }));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::collections::HashMap;

use gcomm_ir::{ArrayId, DomTree, IrProgram, LoopId, NodeId, NodeKind, Pos, StmtId};

/// Identifier of an SSA definition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DefId(pub u32);

/// The kind of an SSA definition.
#[derive(Debug, Clone, PartialEq)]
pub enum DefKind {
    /// Pseudo-definition at procedure entry (one per variable).
    Entry,
    /// A source definition; **preserving** (partial write). `prev` is the
    /// definition reaching immediately before it (the paper's
    /// `Reaching(d)`).
    Regular {
        /// The defining statement.
        stmt: StmtId,
        /// Definition reaching just before this one.
        prev: DefId,
    },
    /// φ-Enter at a loop header.
    PhiEnter {
        /// The loop whose header carries this φ.
        in_loop: LoopId,
        /// Parameter reaching from outside the loop (via the preheader).
        r_pre: DefId,
        /// Parameter reaching around the backedge.
        r_post: DefId,
    },
    /// φ-Exit at a loop postexit (merges zero-trip and loop-exit values).
    PhiExit {
        /// The loop whose postexit carries this φ.
        of_loop: LoopId,
        /// Incoming definitions, one per predecessor edge.
        args: Vec<DefId>,
    },
    /// φ at an ordinary join point.
    PhiMerge {
        /// Incoming definitions, one per predecessor edge.
        args: Vec<DefId>,
    },
}

impl DefKind {
    /// True for any φ-definition.
    pub fn is_phi(&self) -> bool {
        matches!(
            self,
            DefKind::PhiEnter { .. } | DefKind::PhiExit { .. } | DefKind::PhiMerge { .. }
        )
    }

    /// The φ parameters (empty for non-φ definitions).
    pub fn phi_args(&self) -> Vec<DefId> {
        match self {
            DefKind::PhiEnter { r_pre, r_post, .. } => vec![*r_pre, *r_post],
            DefKind::PhiExit { args, .. } | DefKind::PhiMerge { args } => args.clone(),
            _ => Vec::new(),
        }
    }
}

/// An SSA definition of one (whole-array) variable.
#[derive(Debug, Clone, PartialEq)]
pub struct DefInfo {
    /// The defined variable.
    pub var: ArrayId,
    /// Kind and parameters.
    pub kind: DefKind,
    /// CFG node holding the definition.
    pub node: NodeId,
    /// The definition reaching immediately before this one in dominator
    /// order (`None` only for the ENTRY pseudo-definition). For regular
    /// defs this equals `prev`; for φs it is the value on the renaming
    /// stack when the φ was created. This is the upward chain walked by the
    /// `Earliest` traversal.
    pub dom_prev: Option<DefId>,
    /// Nesting level of `node`.
    pub level: u32,
}

/// SSA form of a program: definitions plus use→def and def-position maps.
#[derive(Debug, Clone)]
pub struct SsaForm {
    defs: Vec<DefInfo>,
    /// Reaching definition for each `(statement, read index)`.
    use_defs: HashMap<(StmtId, usize), DefId>,
    /// φ definitions by node (in creation order).
    phis_by_node: HashMap<NodeId, Vec<DefId>>,
    /// ENTRY pseudo-def per variable.
    entry_defs: Vec<DefId>,
}

impl SsaForm {
    /// Builds SSA form for `prog` (dominators are computed internally).
    pub fn build(prog: &IrProgram) -> SsaForm {
        let dt = DomTree::compute(&prog.cfg);
        Self::build_with(prog, &dt)
    }

    /// Builds SSA form using a precomputed dominator tree.
    pub fn build_with(prog: &IrProgram, dt: &DomTree) -> SsaForm {
        let form = Builder::new(prog, dt).run();
        gcomm_obs::count("ssa.defs", form.defs.len() as u64);
        form
    }

    /// Definition info by id.
    pub fn def(&self, d: DefId) -> &DefInfo {
        &self.defs[d.0 as usize]
    }

    /// Number of definitions.
    pub fn def_count(&self) -> usize {
        self.defs.len()
    }

    /// Iterates all definition ids.
    pub fn def_ids(&self) -> impl Iterator<Item = DefId> {
        (0..self.defs.len() as u32).map(DefId)
    }

    /// The definition reaching read `idx` of statement `s`.
    pub fn use_def(&self, s: StmtId, idx: usize) -> Option<DefId> {
        self.use_defs.get(&(s, idx)).copied()
    }

    /// The ENTRY pseudo-definition of a variable.
    pub fn entry_def(&self, var: ArrayId) -> DefId {
        self.entry_defs[var.0 as usize]
    }

    /// φ definitions at a node.
    pub fn phis_at(&self, node: NodeId) -> &[DefId] {
        self.phis_by_node.get(&node).map_or(&[], |v| v.as_slice())
    }

    /// The program position of a definition: ENTRY and φs sit at the top of
    /// their node, regular defs immediately after their statement.
    pub fn def_pos(&self, prog: &IrProgram, d: DefId) -> Pos {
        let info = self.def(d);
        match &info.kind {
            DefKind::Regular { stmt, .. } => Pos::after(prog, *stmt),
            _ => Pos::top(info.node),
        }
    }

    /// Walks the upward (dominator-order) chain of definitions starting at
    /// `d` and ending at the ENTRY pseudo-definition, inclusive.
    pub fn dom_chain(&self, d: DefId) -> Vec<DefId> {
        let mut out = vec![d];
        let mut cur = d;
        while let Some(p) = self.def(cur).dom_prev {
            out.push(p);
            cur = p;
        }
        out
    }

    /// All regular reaching definitions of a use, found by walking the SSA
    /// graph from the use's reaching definition through φs (each φ explored
    /// once). This is the set "d ranges over the reaching regular defs of u"
    /// in §4.2 — the ENTRY pseudo-def is excluded.
    pub fn reaching_regular_defs(&self, s: StmtId, idx: usize) -> Vec<DefId> {
        let Some(start) = self.use_def(s, idx) else {
            return Vec::new();
        };
        let mut seen = vec![false; self.defs.len()];
        let mut out = Vec::new();
        let mut stack = vec![start];
        while let Some(d) = stack.pop() {
            if seen[d.0 as usize] {
                continue;
            }
            seen[d.0 as usize] = true;
            match &self.def(d).kind {
                DefKind::Entry => {}
                DefKind::Regular { prev, .. } => {
                    out.push(d);
                    // Preserving def: earlier values may still be visible.
                    stack.push(*prev);
                }
                k => stack.extend(k.phi_args()),
            }
        }
        out.sort();
        out
    }
}

struct Builder<'a> {
    prog: &'a IrProgram,
    dt: &'a DomTree,
    defs: Vec<DefInfo>,
    use_defs: HashMap<(StmtId, usize), DefId>,
    phis_by_node: HashMap<NodeId, Vec<DefId>>,
    entry_defs: Vec<DefId>,
    /// For φ filling: per (node, var), the pending φ def and per-pred args.
    phi_slots: HashMap<(NodeId, ArrayId), DefId>,
    /// Collected φ args: (phi def, pred node, incoming def).
    phi_args: Vec<(DefId, NodeId, DefId)>,
    stacks: Vec<Vec<DefId>>,
}

impl<'a> Builder<'a> {
    fn new(prog: &'a IrProgram, dt: &'a DomTree) -> Self {
        Builder {
            prog,
            dt,
            defs: Vec::new(),
            use_defs: HashMap::new(),
            phis_by_node: HashMap::new(),
            entry_defs: Vec::new(),
            phi_slots: HashMap::new(),
            phi_args: Vec::new(),
            stacks: vec![Vec::new(); prog.arrays.len()],
        }
    }

    fn add_def(
        &mut self,
        var: ArrayId,
        kind: DefKind,
        node: NodeId,
        dom_prev: Option<DefId>,
    ) -> DefId {
        let id = DefId(self.defs.len() as u32);
        self.defs.push(DefInfo {
            var,
            kind,
            node,
            dom_prev,
            level: self.prog.cfg.node(node).level,
        });
        id
    }

    fn run(mut self) -> SsaForm {
        let prog = self.prog;
        let nvars = prog.arrays.len();

        // 1. ENTRY pseudo-defs.
        for v in 0..nvars {
            let var = ArrayId(v as u32);
            let d = self.add_def(var, DefKind::Entry, prog.cfg.entry, None);
            self.entry_defs.push(d);
        }

        // 2. φ placement via iterated dominance frontiers. Every variable has
        // a def at ENTRY, so the def-node seed per variable is {entry} ∪
        // {nodes with assignments to it}.
        let mut def_nodes: Vec<Vec<NodeId>> = vec![vec![prog.cfg.entry]; nvars];
        for (sid, info) in prog.stmts.iter().enumerate() {
            let _ = sid;
            if let Some(lhs) = info.kind.def() {
                let list = &mut def_nodes[lhs.array.0 as usize];
                if !list.contains(&info.node) {
                    list.push(info.node);
                }
            }
        }
        #[allow(clippy::needless_range_loop)]
        for v in 0..nvars {
            let var = ArrayId(v as u32);
            let mut work: Vec<NodeId> = def_nodes[v].clone();
            let mut has_phi: Vec<bool> = vec![false; prog.cfg.len()];
            while let Some(n) = work.pop() {
                for &f in self.dt.frontier(n) {
                    if !has_phi[f.0 as usize] {
                        has_phi[f.0 as usize] = true;
                        // Kind is determined at fill time; placeholder now.
                        let kind = match prog.cfg.node(f).kind {
                            NodeKind::Header(l) => DefKind::PhiEnter {
                                in_loop: l,
                                r_pre: DefId(u32::MAX),
                                r_post: DefId(u32::MAX),
                            },
                            NodeKind::PostExit(l) => DefKind::PhiExit {
                                of_loop: l,
                                args: Vec::new(),
                            },
                            _ => DefKind::PhiMerge { args: Vec::new() },
                        };
                        let d = self.add_def(var, kind, f, None);
                        self.phis_by_node.entry(f).or_default().push(d);
                        self.phi_slots.insert((f, var), d);
                        work.push(f);
                    }
                }
            }
        }

        // 3. Renaming over the dominator tree (iterative).
        for v in 0..nvars {
            self.stacks[v].push(self.entry_defs[v]);
        }
        self.rename(prog.cfg.entry);

        // 4. Fill φ argument lists in predecessor order.
        for (phi, pred, incoming) in std::mem::take(&mut self.phi_args) {
            let node = self.defs[phi.0 as usize].node;
            let preds = prog.cfg.node(node).preds.clone();
            let pred_idx = preds.iter().position(|&p| p == pred).unwrap_or(0);
            match &mut self.defs[phi.0 as usize].kind {
                DefKind::PhiEnter {
                    in_loop,
                    r_pre,
                    r_post,
                } => {
                    // The preheader predecessor supplies r_pre; the backedge
                    // (a node inside the loop) supplies r_post.
                    let li = prog.loop_info(*in_loop);
                    if pred == li.preheader {
                        *r_pre = incoming;
                    } else {
                        *r_post = incoming;
                    }
                }
                DefKind::PhiExit { args, .. } | DefKind::PhiMerge { args } => {
                    if args.len() < preds.len() {
                        args.resize(preds.len(), DefId(u32::MAX));
                    }
                    args[pred_idx] = incoming;
                }
                // A non-phi def can only land here through an internal
                // bookkeeping bug; dropping the argument degrades the SSA
                // form instead of aborting the compiler.
                _ => {}
            }
        }
        // Drop unfilled placeholder args (unreachable predecessor edges).
        for d in &mut self.defs {
            if let DefKind::PhiExit { args, .. } | DefKind::PhiMerge { args } = &mut d.kind {
                args.retain(|a| a.0 != u32::MAX);
            }
        }

        SsaForm {
            defs: self.defs,
            use_defs: self.use_defs,
            phis_by_node: self.phis_by_node,
            entry_defs: self.entry_defs,
        }
    }

    /// Current top-of-stack definition for `var`, falling back to the
    /// array's entry definition if the rename stack was over-popped (an
    /// internal inconsistency that must not abort compilation).
    fn top_def(&self, var: ArrayId) -> DefId {
        self.stacks[var.0 as usize]
            .last()
            .copied()
            .unwrap_or(self.entry_defs[var.0 as usize])
    }

    fn rename(&mut self, root: NodeId) {
        // Iterative DFS over the dominator tree, tracking pushes to undo.
        enum Action {
            Visit(NodeId),
            Pop(ArrayId),
        }
        let mut stack = vec![Action::Visit(root)];
        while let Some(action) = stack.pop() {
            match action {
                Action::Pop(var) => {
                    self.stacks[var.0 as usize].pop();
                }
                Action::Visit(n) => {
                    let mut pushes: Vec<ArrayId> = Vec::new();

                    // φ defs at the top of the node.
                    for &phi in self
                        .phis_by_node
                        .get(&n)
                        .cloned()
                        .unwrap_or_default()
                        .iter()
                    {
                        let var = self.defs[phi.0 as usize].var;
                        let top = self.top_def(var);
                        self.defs[phi.0 as usize].dom_prev = Some(top);
                        self.stacks[var.0 as usize].push(phi);
                        pushes.push(var);
                    }

                    // Statements: reads first, then the def.
                    for &sid in &self.prog.cfg.node(n).stmts.clone() {
                        let info = self.prog.stmt(sid);
                        for (i, read) in info.kind.reads().iter().enumerate() {
                            let var = read.access.array;
                            let top = self.top_def(var);
                            self.use_defs.insert((sid, i), top);
                        }
                        if let Some(lhs) = info.kind.def() {
                            let var = lhs.array;
                            let prev = self.top_def(var);
                            let d = self.add_def(
                                var,
                                DefKind::Regular { stmt: sid, prev },
                                n,
                                Some(prev),
                            );
                            self.stacks[var.0 as usize].push(d);
                            pushes.push(var);
                        }
                    }

                    // Feed φ args of CFG successors.
                    for &succ in &self.prog.cfg.node(n).succs.clone() {
                        for &phi in self
                            .phis_by_node
                            .get(&succ)
                            .cloned()
                            .unwrap_or_default()
                            .iter()
                        {
                            let var = self.defs[phi.0 as usize].var;
                            let top = self.top_def(var);
                            self.phi_args.push((phi, n, top));
                        }
                    }

                    // Schedule pops, then children (children processed before
                    // pops since the stack is LIFO).
                    for var in pushes.into_iter().rev() {
                        stack.push(Action::Pop(var));
                    }
                    for &c in self.dt.children(n) {
                        stack.push(Action::Visit(c));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(src: &str) -> (IrProgram, SsaForm) {
        let ast = gcomm_lang::parse_program(src).unwrap();
        let ir = gcomm_ir::lower(&ast).unwrap();
        let ssa = SsaForm::build(&ir);
        (ir, ssa)
    }

    #[test]
    fn straightline_use_reaches_regular_def() {
        let (ir, ssa) = build(
            "
program t
param n
real a(n), b(n) distribute (block)
a(1:n) = 1
b(2:n) = a(1:n-1)
end",
        );
        let d = ssa.use_def(StmtId(1), 0).unwrap();
        match &ssa.def(d).kind {
            DefKind::Regular { stmt, prev } => {
                assert_eq!(*stmt, StmtId(0));
                // prev of the def is the ENTRY pseudo-def.
                assert!(matches!(ssa.def(*prev).kind, DefKind::Entry));
            }
            other => panic!("expected regular def, got {other:?}"),
        }
        let _ = ir;
    }

    #[test]
    fn loop_carried_use_reaches_phi_enter() {
        let (ir, ssa) = build(
            "
program t
param n
real a(n,n) distribute (block,block)
do i = 2, n
  a(i, 1:n) = a(i-1, 1:n)
enddo
end",
        );
        let d = ssa.use_def(StmtId(0), 0).unwrap();
        match &ssa.def(d).kind {
            DefKind::PhiEnter { r_pre, r_post, .. } => {
                assert!(matches!(ssa.def(*r_pre).kind, DefKind::Entry));
                match &ssa.def(*r_post).kind {
                    DefKind::Regular { stmt, .. } => assert_eq!(*stmt, StmtId(0)),
                    other => panic!("r_post should be the loop def, got {other:?}"),
                }
            }
            other => panic!("expected phi-enter, got {other:?}"),
        }
        // The phi must sit at the loop header.
        assert_eq!(ssa.def(d).node, ir.loop_info(LoopId(0)).header);
    }

    #[test]
    fn post_loop_use_reaches_phi_exit() {
        let (ir, ssa) = build(
            "
program t
param n
real a(n,n), b(n,n) distribute (block,block)
do i = 2, n
  a(i, 1:n) = 0
enddo
b(:, :) = a(:, :)
end",
        );
        let d = ssa.use_def(StmtId(1), 0).unwrap();
        match &ssa.def(d).kind {
            DefKind::PhiExit { args, .. } => {
                assert_eq!(args.len(), 2, "zero-trip + loop-exit values");
            }
            other => panic!("expected phi-exit, got {other:?}"),
        }
        assert_eq!(ssa.def(d).node, ir.loop_info(LoopId(0)).postexit);
    }

    #[test]
    fn branch_merge_creates_phi() {
        let (_, ssa) = build(
            "
program t
param n
real a(n,n), d(n,n), c(n,n) distribute (block,block)
real cond
if (cond > 0) then
  a(:, :) = 3
else
  a(:, :) = d(:, :)
endif
c(:, :) = a(:, :)
end",
        );
        // Statement ids: 0 = cond, 1 = then-assign, 2 = else-assign, 3 = use.
        let d = ssa.use_def(StmtId(3), 0).unwrap();
        match &ssa.def(d).kind {
            DefKind::PhiMerge { args } => {
                assert_eq!(args.len(), 2);
                for a in args {
                    assert!(matches!(ssa.def(*a).kind, DefKind::Regular { .. }));
                }
            }
            other => panic!("expected merge phi, got {other:?}"),
        }
    }

    #[test]
    fn dom_chain_terminates_at_entry() {
        let (_, ssa) = build(
            "
program t
param n
real a(n,n) distribute (block,block)
do i = 2, n
  a(i, 1:n) = a(i-1, 1:n)
enddo
end",
        );
        let u = ssa.use_def(StmtId(0), 0).unwrap();
        let chain = ssa.dom_chain(u);
        assert!(matches!(
            ssa.def(*chain.last().unwrap()).kind,
            DefKind::Entry
        ));
        // Chain is strictly upward: ids decrease in dominator depth order is
        // not guaranteed, but it must be acyclic and terminate.
        assert!(chain.len() >= 2);
    }

    #[test]
    fn reaching_regular_defs_through_phis() {
        let (_, ssa) = build(
            "
program t
param n
real a(n,n), d(n,n), c(n,n) distribute (block,block)
real cond
if (cond > 0) then
  a(:, :) = 3
else
  a(:, :) = d(:, :)
endif
c(:, :) = a(:, :)
end",
        );
        let defs = ssa.reaching_regular_defs(StmtId(3), 0);
        // Both branch assignments reach the use.
        assert_eq!(defs.len(), 2);
    }

    #[test]
    fn unassigned_variable_reaches_entry() {
        let (_, ssa) = build(
            "
program t
param n
real a(n), b(n) distribute (block)
b(1:n) = a(1:n)
end",
        );
        let d = ssa.use_def(StmtId(0), 0).unwrap();
        assert!(matches!(ssa.def(d).kind, DefKind::Entry));
        assert!(ssa.reaching_regular_defs(StmtId(0), 0).is_empty());
    }

    #[test]
    fn nested_loops_have_phis_at_both_headers() {
        let (ir, ssa) = build(
            "
program t
param n
real a(n,n) distribute (block,block)
do t1 = 1, 10
  do i = 2, n
    a(i, 1:n) = a(i-1, 1:n)
  enddo
enddo
end",
        );
        let outer = ir.loop_info(LoopId(0));
        let inner = ir.loop_info(LoopId(1));
        assert_eq!(ssa.phis_at(outer.header).len(), 1);
        assert_eq!(ssa.phis_at(inner.header).len(), 1);
        assert_eq!(ssa.phis_at(inner.postexit).len(), 1);
        assert_eq!(ssa.phis_at(outer.postexit).len(), 1);
        // The inner phi's r_pre comes from the outer phi (through the
        // preheader), and its r_post from the loop body def.
        let inner_phi = ssa.phis_at(inner.header)[0];
        match &ssa.def(inner_phi).kind {
            DefKind::PhiEnter { r_pre, r_post, .. } => {
                assert!(ssa.def(*r_pre).kind.is_phi());
                assert!(matches!(ssa.def(*r_post).kind, DefKind::Regular { .. }));
            }
            other => panic!("expected phi-enter, got {other:?}"),
        }
    }
}
