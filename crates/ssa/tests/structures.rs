//! SSA construction on pathological control structures: conditionals inside
//! loops, loops in both branch arms, sequential loops redefining the same
//! array, and empty constructs.

use gcomm_ir::{IrProgram, LoopId, StmtId};
use gcomm_ssa::{DefKind, SsaForm};

fn build(src: &str) -> (IrProgram, SsaForm) {
    let ast = gcomm_lang::parse_program(src).unwrap();
    let ir = gcomm_ir::lower(&ast).unwrap();
    let ssa = SsaForm::build(&ir);
    (ir, ssa)
}

#[test]
fn conditional_def_inside_loop() {
    // a defined only on one arm inside the loop: the use after the if sees
    // a merge φ whose arguments are the arm's def and the header φ.
    let (ir, ssa) = build(
        "
program t
param n
real a(n,n), b(n,n) distribute (block,block)
real c
do i = 1, n
  if (c > 0) then
    a(i, 1:n) = 1
  endif
  b(i, 1:n) = a(i, 1:n)
enddo
end",
    );
    // Statements: 0 = cond, 1 = then-assign, 2 = b assign.
    let d = ssa.use_def(StmtId(2), 0).unwrap();
    match &ssa.def(d).kind {
        DefKind::PhiMerge { args } => {
            assert_eq!(args.len(), 2);
            let kinds: Vec<bool> = args
                .iter()
                .map(|&a| matches!(ssa.def(a).kind, DefKind::Regular { .. }))
                .collect();
            assert!(kinds.contains(&true), "one arg is the then-arm def");
            assert!(
                args.iter()
                    .any(|&a| matches!(ssa.def(a).kind, DefKind::PhiEnter { .. })),
                "the other flows from the loop header"
            );
        }
        other => panic!("expected merge phi, got {other:?}"),
    }
    let _ = ir;
}

#[test]
fn loops_in_both_branches() {
    let (ir, ssa) = build(
        "
program t
param n
real a(n,n), b(n,n) distribute (block,block)
real c
if (c > 0) then
  do i = 1, n
    a(i, 1:n) = 1
  enddo
else
  do j = 1, n
    a(j, 1:n) = 2
  enddo
endif
b(1:n, 1:n) = a(1:n, 1:n)
end",
    );
    assert_eq!(ir.loops.len(), 2);
    // The final use merges two φ-exits (one per arm's loop).
    let d = ssa.use_def(StmtId(3), 0).unwrap();
    match &ssa.def(d).kind {
        DefKind::PhiMerge { args } => {
            assert_eq!(args.len(), 2);
            for &a in args {
                assert!(
                    matches!(ssa.def(a).kind, DefKind::PhiExit { .. }),
                    "each arm contributes its loop's exit value"
                );
            }
        }
        other => panic!("expected merge of exits, got {other:?}"),
    }
}

#[test]
fn sequential_loops_chain_exit_values() {
    let (ir, ssa) = build(
        "
program t
param n
real a(n,n), b(n,n) distribute (block,block)
do i = 1, n
  a(i, 1:n) = 1
enddo
do i = 1, n
  a(i, 1:n) = a(i, 1:n) + 1
enddo
b(1:n, 1:n) = a(1:n, 1:n)
end",
    );
    // The second loop's header φ takes its r_pre from the first loop's
    // φ-exit.
    let hdr2 = ir.loop_info(LoopId(1)).header;
    let phi = ssa.phis_at(hdr2)[0];
    match &ssa.def(phi).kind {
        DefKind::PhiEnter { r_pre, .. } => {
            assert!(matches!(ssa.def(*r_pre).kind, DefKind::PhiExit { .. }));
        }
        other => panic!("expected phi-enter, got {other:?}"),
    }
    // And the final use reads the second loop's exit φ.
    let d = ssa.use_def(StmtId(2), 0).unwrap();
    assert_eq!(ssa.def(d).node, ir.loop_info(LoopId(1)).postexit);
}

#[test]
fn triple_nesting_phi_chain() {
    let (ir, ssa) = build(
        "
program t
param n
real a(n,n) distribute (block,block)
do x = 1, 4
  do y = 1, 4
    do z = 2, n
      a(z, 1:n) = a(z-1, 1:n)
    enddo
  enddo
enddo
end",
    );
    assert_eq!(ir.loops.len(), 3);
    // Every header carries a φ for a; the use chains to the innermost one.
    for l in 0..3u32 {
        assert_eq!(ssa.phis_at(ir.loop_info(LoopId(l)).header).len(), 1);
    }
    let d = ssa.use_def(StmtId(0), 0).unwrap();
    assert_eq!(ssa.def(d).node, ir.loop_info(LoopId(2)).header);
    // The dominator chain from the use's def walks up through all three
    // headers to ENTRY.
    let chain = ssa.dom_chain(d);
    let header_count = chain
        .iter()
        .filter(|&&x| matches!(ssa.def(x).kind, DefKind::PhiEnter { .. }))
        .count();
    assert_eq!(header_count, 3);
}

#[test]
fn use_before_any_def_in_branchy_code() {
    let (_, ssa) = build(
        "
program t
param n
real a(n,n), b(n,n) distribute (block,block)
real c
if (c > 0) then
  b(1:n, 1:n) = a(1:n, 1:n)
endif
a(1:n, 1:n) = 0
end",
    );
    // The read of a inside the branch reaches the ENTRY pseudo-def.
    let d = ssa.use_def(StmtId(1), 0).unwrap();
    assert!(matches!(ssa.def(d).kind, DefKind::Entry));
}

#[test]
fn def_count_scales_linearly() {
    // Sanity: no φ explosion on a moderately nested kernel.
    let (ir, ssa) = build(gcomm_kernels::SHALLOW);
    assert!(
        ssa.def_count() < ir.stmts.len() * 6 + ir.arrays.len() * 4,
        "{} defs for {} statements",
        ssa.def_count(),
        ir.stmts.len()
    );
}
