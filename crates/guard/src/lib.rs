//! # gcomm-guard — resource budgets for graceful degradation
//!
//! A [`Budget`] bounds how much work the expensive analyses may spend on one
//! compile: an abstract **step** counter (each charged step is one unit of
//! super-linear work — a subsumption check, a candidate position, an
//! enumerated assignment), an optional **wall-clock deadline**, and a
//! **memory high-water estimate** for the transient analysis structures.
//!
//! The contract with the passes (DESIGN.md §10) is:
//!
//! * charging is free-running bookkeeping — it never changes an answer;
//! * once a budget is *exhausted* (sticky), every pass must **degrade** to a
//!   conservative-but-legal result instead of erroring: skip the remaining
//!   subsumption/combining opportunities, fall back toward the
//!   `Strategy::Original` placement for unprocessed entries;
//! * an [`unlimited`](Budget::unlimited) budget charges nothing and never
//!   exhausts, so the default compile path is bit-identical to a build
//!   without this crate.
//!
//! Like `gcomm-obs`, this crate has **zero dependencies** and its handles
//! are cheap to clone ([`Budget`] is an `Arc` around atomics), so it can be
//! threaded through every analysis layer (`dep`, `sections`, `core`)
//! without coupling them.
//!
//! # Example
//!
//! ```
//! use gcomm_guard::{Budget, BudgetSpec};
//!
//! let b = Budget::from_spec(&BudgetSpec::parse("steps=3").unwrap());
//! assert!(b.charge(1));
//! assert!(b.charge(1));
//! assert!(!b.charge(1)); // third step hits the cap
//! assert!(b.exhausted());
//! ```

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How often (in charge calls) the wall-clock deadline is re-checked.
/// Deadlines therefore have a resolution of roughly this many steps; step
/// caps are exact.
const DEADLINE_CHECK_PERIOD: u64 = 64;

/// A parsed `--budget` specification: any subset of a step cap, a
/// wall-clock deadline, and a memory-estimate cap.
///
/// The textual form is comma-separated `key=value` pairs:
///
/// ```text
/// steps=20000          abstract analysis steps
/// ms=50                wall-clock deadline in milliseconds
/// mem=4m               memory high-water estimate (k/m/g suffixes)
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BudgetSpec {
    /// Maximum abstract analysis steps (`None` = unbounded).
    pub steps: Option<u64>,
    /// Wall-clock deadline in milliseconds (`None` = unbounded).
    pub ms: Option<u64>,
    /// Maximum memory high-water estimate in bytes (`None` = unbounded).
    pub mem_bytes: Option<u64>,
}

impl BudgetSpec {
    /// Parses a spec like `steps=20000,ms=50,mem=4m`.
    ///
    /// # Errors
    ///
    /// Returns a one-line human-readable message on an unknown key, a bad
    /// number, a duplicate key, or an empty spec.
    pub fn parse(s: &str) -> Result<BudgetSpec, String> {
        let mut spec = BudgetSpec::default();
        let mut any = false;
        for part in s.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, val) = part
                .split_once('=')
                .ok_or_else(|| format!("budget: expected key=value, got '{part}'"))?;
            let (key, val) = (key.trim(), val.trim());
            match key {
                "steps" => {
                    if spec.steps.is_some() {
                        return Err("budget: duplicate 'steps'".into());
                    }
                    spec.steps = Some(parse_u64(val, key)?);
                }
                "ms" => {
                    if spec.ms.is_some() {
                        return Err("budget: duplicate 'ms'".into());
                    }
                    spec.ms = Some(parse_u64(val, key)?);
                }
                "mem" => {
                    if spec.mem_bytes.is_some() {
                        return Err("budget: duplicate 'mem'".into());
                    }
                    spec.mem_bytes = Some(parse_bytes(val)?);
                }
                _ => {
                    return Err(format!(
                        "budget: unknown key '{key}' (expected steps=, ms=, or mem=)"
                    ))
                }
            }
            any = true;
        }
        if !any {
            return Err("budget: empty spec (expected e.g. steps=20000,ms=50,mem=4m)".into());
        }
        Ok(spec)
    }

    /// True when no limit is set (the spec describes an unlimited budget).
    pub fn is_unlimited(&self) -> bool {
        self.steps.is_none() && self.ms.is_none() && self.mem_bytes.is_none()
    }
}

impl fmt::Display for BudgetSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut sep = "";
        if let Some(s) = self.steps {
            write!(f, "steps={s}")?;
            sep = ",";
        }
        if let Some(m) = self.ms {
            write!(f, "{sep}ms={m}")?;
            sep = ",";
        }
        if let Some(b) = self.mem_bytes {
            write!(f, "{sep}mem={b}")?;
        }
        Ok(())
    }
}

fn parse_u64(val: &str, key: &str) -> Result<u64, String> {
    val.parse::<u64>()
        .map_err(|_| format!("budget: invalid number '{val}' for '{key}'"))
}

/// Parses a byte-size literal with optional `k`/`m`/`g` suffix (powers of
/// 1024), e.g. `4m` → 4 MiB. Shared by the `mem=` budget key and the
/// compile service's `--cache-bytes` flag.
///
/// # Errors
///
/// Returns a one-line message on a malformed number or overflow.
pub fn parse_size(val: &str) -> Result<u64, String> {
    let (digits, mult) = match val.as_bytes().last().map(|b| b.to_ascii_lowercase()) {
        Some(b'k') => (&val[..val.len() - 1], 1024u64),
        Some(b'm') => (&val[..val.len() - 1], 1024 * 1024),
        Some(b'g') => (&val[..val.len() - 1], 1024 * 1024 * 1024),
        _ => (val, 1),
    };
    let n = digits
        .parse::<u64>()
        .map_err(|_| format!("invalid size '{val}'"))?;
    n.checked_mul(mult)
        .ok_or_else(|| format!("size '{val}' overflows"))
}

fn parse_bytes(val: &str) -> Result<u64, String> {
    parse_size(val).map_err(|e| format!("budget: {e} for 'mem'"))
}

#[derive(Debug)]
struct Inner {
    /// Abstract steps consumed so far.
    steps: AtomicU64,
    /// Step cap (`u64::MAX` when unbounded).
    step_cap: u64,
    /// Absolute deadline, if any.
    deadline: Option<Instant>,
    /// Memory high-water estimate in bytes (monotone; frees are not
    /// modelled — this tracks peak transient allocation, not live size).
    mem: AtomicU64,
    /// Memory cap (`u64::MAX` when unbounded).
    mem_cap: u64,
    /// Sticky exhaustion flag: once set, every pass degrades.
    exhausted: AtomicBool,
    /// Charge-call counter for amortized deadline checks.
    ticks: AtomicU64,
}

/// A shared, cheaply-clonable resource budget. See the crate docs for the
/// degradation contract.
///
/// All clones observe the same counters, so one budget can be threaded
/// through every pass of a compile and exhaust globally.
#[derive(Debug, Clone, Default)]
pub struct Budget {
    /// `None` means unlimited: every operation is a no-op that reports
    /// "within budget", so the fast path costs one pointer test.
    inner: Option<Arc<Inner>>,
}

impl Budget {
    /// The unlimited budget: never charges, never exhausts. This is the
    /// default for every public compile entry point, and it leaves the
    /// compile bit-identical to one without budgeting.
    pub fn unlimited() -> Budget {
        Budget { inner: None }
    }

    /// Builds a budget from a parsed spec. An unlimited spec yields
    /// [`Budget::unlimited`]. The deadline clock starts now.
    pub fn from_spec(spec: &BudgetSpec) -> Budget {
        if spec.is_unlimited() {
            return Budget::unlimited();
        }
        Budget {
            inner: Some(Arc::new(Inner {
                steps: AtomicU64::new(0),
                step_cap: spec.steps.unwrap_or(u64::MAX),
                deadline: spec.ms.map(|ms| Instant::now() + Duration::from_millis(ms)),
                mem: AtomicU64::new(0),
                mem_cap: spec.mem_bytes.unwrap_or(u64::MAX),
                exhausted: AtomicBool::new(false),
                ticks: AtomicU64::new(0),
            })),
        }
    }

    /// A budget bounded only by an abstract step count (deterministic: no
    /// wall clock involved — the form every reproducible test should use).
    pub fn steps(cap: u64) -> Budget {
        Budget::from_spec(&BudgetSpec {
            steps: Some(cap),
            ..BudgetSpec::default()
        })
    }

    /// Consumes `n` abstract steps. Returns `false` once the budget is
    /// exhausted (by steps, deadline, or memory) — callers then degrade.
    ///
    /// The step cap is exact: the charge that reaches the cap is the first
    /// to return `false`. The deadline is checked every
    /// [`DEADLINE_CHECK_PERIOD`] calls, so it has step-granular resolution.
    #[inline]
    pub fn charge(&self, n: u64) -> bool {
        let Some(inner) = &self.inner else {
            return true;
        };
        if inner.exhausted.load(Ordering::Relaxed) {
            return false;
        }
        let used = inner
            .steps
            .fetch_add(n, Ordering::Relaxed)
            .saturating_add(n);
        if used >= inner.step_cap {
            inner.exhausted.store(true, Ordering::Relaxed);
            return false;
        }
        if let Some(deadline) = inner.deadline {
            let t = inner.ticks.fetch_add(1, Ordering::Relaxed);
            if t % DEADLINE_CHECK_PERIOD == DEADLINE_CHECK_PERIOD - 1 && Instant::now() >= deadline
            {
                inner.exhausted.store(true, Ordering::Relaxed);
                return false;
            }
        }
        true
    }

    /// Adds `bytes` to the memory high-water estimate. Exhausts the budget
    /// when the estimate crosses the cap. Frees are not modelled: the
    /// estimate is the cumulative transient allocation of the analyses.
    #[inline]
    pub fn note_mem(&self, bytes: u64) {
        let Some(inner) = &self.inner else { return };
        let used = inner
            .mem
            .fetch_add(bytes, Ordering::Relaxed)
            .saturating_add(bytes);
        if used >= inner.mem_cap {
            inner.exhausted.store(true, Ordering::Relaxed);
        }
    }

    /// True once any resource limit has been hit (sticky). Passes consult
    /// this at their decision points; the unlimited budget always answers
    /// `false`.
    #[inline]
    pub fn exhausted(&self) -> bool {
        match &self.inner {
            None => false,
            Some(inner) => inner.exhausted.load(Ordering::Relaxed),
        }
    }

    /// True when this is the unlimited budget.
    pub fn is_unlimited(&self) -> bool {
        self.inner.is_none()
    }

    /// Abstract steps consumed so far (0 for the unlimited budget).
    pub fn steps_used(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.steps.load(Ordering::Relaxed))
    }

    /// The step cap, if one is set.
    pub fn step_cap(&self) -> Option<u64> {
        self.inner
            .as_ref()
            .map(|i| i.step_cap)
            .filter(|&c| c != u64::MAX)
    }

    /// Memory high-water estimate in bytes (0 for the unlimited budget).
    pub fn mem_used(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.mem.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_exhausts() {
        let b = Budget::unlimited();
        for _ in 0..10_000 {
            assert!(b.charge(1000));
        }
        b.note_mem(u64::MAX);
        assert!(!b.exhausted());
        assert_eq!(b.steps_used(), 0);
        assert!(b.is_unlimited());
    }

    #[test]
    fn step_cap_is_exact() {
        let b = Budget::steps(5);
        assert!(b.charge(1));
        assert!(b.charge(1));
        assert!(b.charge(1));
        assert!(b.charge(1));
        assert!(!b.charge(1), "the charge reaching the cap must fail");
        assert!(b.exhausted());
        assert!(!b.charge(1), "exhaustion is sticky");
    }

    #[test]
    fn bulk_charge_crossing_cap_exhausts() {
        let b = Budget::steps(10);
        assert!(b.charge(3));
        assert!(!b.charge(100));
        assert!(b.exhausted());
    }

    #[test]
    fn zero_step_budget_starts_exhausted_on_first_charge() {
        let b = Budget::steps(0);
        assert!(!b.charge(1));
        assert!(b.exhausted());
    }

    #[test]
    fn clones_share_state() {
        let a = Budget::steps(3);
        let b = a.clone();
        assert!(a.charge(2));
        assert!(!b.charge(2));
        assert!(a.exhausted() && b.exhausted());
    }

    #[test]
    fn mem_cap_exhausts() {
        let b = Budget::from_spec(&BudgetSpec {
            mem_bytes: Some(1024),
            ..BudgetSpec::default()
        });
        b.note_mem(512);
        assert!(!b.exhausted());
        b.note_mem(512);
        assert!(b.exhausted());
        assert_eq!(b.mem_used(), 1024);
        assert!(!b.charge(1));
    }

    #[test]
    fn deadline_exhausts() {
        let b = Budget::from_spec(&BudgetSpec {
            ms: Some(0),
            ..BudgetSpec::default()
        });
        std::thread::sleep(Duration::from_millis(2));
        // The deadline is checked every DEADLINE_CHECK_PERIOD charges.
        let mut ok = true;
        for _ in 0..10 * DEADLINE_CHECK_PERIOD {
            ok = b.charge(0) && ok;
        }
        assert!(!ok);
        assert!(b.exhausted());
    }

    #[test]
    fn spec_parses_and_roundtrips() {
        let s = BudgetSpec::parse("steps=100, ms=50 ,mem=4m").unwrap();
        assert_eq!(s.steps, Some(100));
        assert_eq!(s.ms, Some(50));
        assert_eq!(s.mem_bytes, Some(4 * 1024 * 1024));
        let again = BudgetSpec::parse(&s.to_string()).unwrap();
        assert_eq!(s, again);
        assert_eq!(BudgetSpec::parse("mem=2k").unwrap().mem_bytes, Some(2048));
        assert_eq!(
            BudgetSpec::parse("mem=1g").unwrap().mem_bytes,
            Some(1 << 30)
        );
        assert_eq!(BudgetSpec::parse("mem=77").unwrap().mem_bytes, Some(77));
    }

    #[test]
    fn spec_rejects_garbage() {
        for bad in [
            "",
            " , ",
            "steps",
            "steps=abc",
            "frobs=3",
            "steps=1,steps=2",
            "ms=1,ms=2",
            "mem=1,mem=2",
            "mem=99999999999999999999g",
        ] {
            assert!(BudgetSpec::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn from_unlimited_spec_is_unlimited() {
        assert!(Budget::from_spec(&BudgetSpec::default()).is_unlimited());
    }
}
