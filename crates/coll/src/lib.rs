//! # gcomm-coll — topology-aware collective-algorithm backend
//!
//! The paper combines and vectorizes messages but prices every combined
//! pattern as point-to-point traffic on a flat SP2/NOW model (§6.1).
//! Modern systems lower those patterns to real collective *algorithms*
//! whose cost depends on where the partner ranks sit in the interconnect.
//! This crate adds that axis on top of the 1996 machine models without
//! touching their calibration (DESIGN.md §17):
//!
//! * [`topo`] — hierarchical topology models extending `gcomm-machine`:
//!   a fat-tree with node-local / same-switch / cross-switch link tiers
//!   (à la pMR) and a 2D torus with per-hop latency and congestion, each
//!   mapping a rank *distance* to a [`topo::Link`] multiplier pair so the
//!   placement of a rank pair actually changes cost.
//! * [`algo`] — a collective-algorithm library lowering the simulator's
//!   combined patterns (NNC shifts, reduction/broadcast trees,
//!   all-gather-style exchanges) to concrete schedules of point-to-point
//!   [`gcomm_machine::SimStep`]s: ring, recursive doubling, binomial
//!   (`p2p`, the legacy pricing) and Bine trees. The existing simulator
//!   and fault model execute the step lists unchanged.
//! * [`select`] — an algorithm selector that sweeps the
//!   latency/bandwidth pareto frontier per (pattern, size, topology) as
//!   in SCCL, memoized via `gcomm-query`. `auto` picks the cheapest
//!   candidate under the *exact* step-sum cost the simulator charges and
//!   always includes `p2p` among the candidates, so `auto` is never
//!   costlier than `p2p` by construction.
//!
//! Everything is `std`-only like the rest of the workspace.

pub mod algo;
pub mod select;
pub mod topo;

pub use algo::{bine_dist, lower, Algo, PatternShape, ALL_ALGOS};
pub use select::{lower_msg, pareto, select, sweep, Candidate, CollChoice, CollConfig, Lowered};
pub use topo::{Link, Topology};
