//! Hierarchical interconnect topologies.
//!
//! A [`Topology`] maps the *distance* between two ranks in the linearized
//! processor grid to a [`Link`]: a pair of multipliers applied to the flat
//! [`gcomm_machine::NetworkModel`]'s startup cost and bandwidth. This is a
//! translation-invariant approximation — a shift by `d` is priced by the
//! magnitude of `d`, not by which concrete boundary each rank pair
//! crosses — which keeps the bulk-synchronous simulator's "one message per
//! processor" abstraction intact while still making locality visible:
//! unit-distance neighbours ride the cheap tier, far partners pay the
//! expensive one (DESIGN.md §17).

/// Cost multipliers of one link tier. Applied to a step's startup cost
/// (`× startup_mult`) and bandwidth (`× bw_mult`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Link {
    /// Startup-cost multiplier (≥ 1 is slower, < 1 faster).
    pub startup_mult: f64,
    /// Bandwidth multiplier (< 1 is slower, > 1 faster).
    pub bw_mult: f64,
}

impl Link {
    /// The flat-model link: no topology effect.
    pub const UNIT: Link = Link {
        startup_mult: 1.0,
        bw_mult: 1.0,
    };
}

// Fat-tree tier calibration: node-local transfers skip the NIC (shared
// memory), same-switch hops pay the flat model, cross-switch hops pay the
// oversubscribed uplink.
const NODE_LOCAL: Link = Link {
    startup_mult: 0.4,
    bw_mult: 2.0,
};
const CROSS_SWITCH: Link = Link {
    startup_mult: 1.6,
    bw_mult: 0.7,
};
// Torus per-hop calibration: every extra hop adds router latency and
// shares links with pass-through traffic.
const TORUS_HOP_STARTUP: f64 = 0.25;
const TORUS_HOP_CONGESTION: f64 = 0.15;

/// An interconnect topology, selected with `--machine` on `gcommc`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Topology {
    /// The flat 1996 model: every rank pair is equidistant.
    Flat,
    /// A two-level fat-tree: `node` ranks share a node, `switch` nodes
    /// share a leaf switch, everything else crosses the spine.
    FatTree {
        /// Ranks per node (node-local tier below this distance).
        node: u64,
        /// Nodes per leaf switch (same-switch tier below `node·switch`).
        switch: u64,
    },
    /// A 2D torus of `x` × `y` routers, one rank each, with wraparound
    /// links; cost grows with the minimal Manhattan hop count.
    Torus {
        /// Ranks along the x dimension.
        x: u64,
        /// Ranks along the y dimension.
        y: u64,
    },
}

impl Topology {
    /// Parses a `--machine` topology spec:
    ///
    /// * `flat`
    /// * `fat-tree` (= `fat-tree:4x4`) or `fat-tree:<ranks/node>x<nodes/switch>`
    /// * `torus` (= `torus:5x5`, the paper's P=25 SP2 grid) or `torus:<X>x<Y>`
    pub fn parse(spec: &str) -> Result<Topology, String> {
        let (head, dims) = match spec.split_once(':') {
            Some((h, d)) => (h, Some(d)),
            None => (spec, None),
        };
        let parse_dims = |d: Option<&str>, da: u64, db: u64| -> Result<(u64, u64), String> {
            match d {
                None => Ok((da, db)),
                Some(d) => {
                    let (a, b) = d
                        .split_once('x')
                        .ok_or_else(|| format!("bad topology dims `{d}` (want AxB)"))?;
                    let a: u64 = a.parse().map_err(|_| format!("bad topology dim `{a}`"))?;
                    let b: u64 = b.parse().map_err(|_| format!("bad topology dim `{b}`"))?;
                    if a == 0 || b == 0 {
                        return Err(format!("topology dims must be positive, got `{d}`"));
                    }
                    Ok((a, b))
                }
            }
        };
        match head {
            "flat" => match dims {
                None => Ok(Topology::Flat),
                Some(d) => Err(format!("`flat` takes no dims, got `{d}`")),
            },
            "fat-tree" => {
                let (node, switch) = parse_dims(dims, 4, 4)?;
                Ok(Topology::FatTree { node, switch })
            }
            "torus" => {
                let (x, y) = parse_dims(dims, 5, 5)?;
                Ok(Topology::Torus { x, y })
            }
            _ => Err(format!(
                "unknown topology `{head}` (want flat, fat-tree[:NxS], or torus[:XxY])"
            )),
        }
    }

    /// Canonical spec string: `parse(describe()) == self`, and the string
    /// is what cache keys embed.
    pub fn describe(&self) -> String {
        match self {
            Topology::Flat => "flat".into(),
            Topology::FatTree { node, switch } => format!("fat-tree:{node}x{switch}"),
            Topology::Torus { x, y } => format!("torus:{x}x{y}"),
        }
    }

    /// The link tier crossed by a transfer between ranks `dist` apart in
    /// the linearized grid (`dist` 0 is clamped to 1).
    pub fn link(&self, dist: u64) -> Link {
        let d = dist.max(1);
        match self {
            Topology::Flat => Link::UNIT,
            Topology::FatTree { node, switch } => {
                if d < *node {
                    NODE_LOCAL
                } else if d < node.saturating_mul(*switch) {
                    Link::UNIT
                } else {
                    CROSS_SWITCH
                }
            }
            Topology::Torus { x, y } => {
                let n = x.saturating_mul(*y).max(1);
                let d = d % n;
                let (dx, dy) = (d % x, d / x);
                let hops = dx.min(x - dx) + dy.min(y - dy);
                let h = hops.max(1) as f64;
                Link {
                    startup_mult: 1.0 + TORUS_HOP_STARTUP * (h - 1.0),
                    bw_mult: 1.0 / (1.0 + TORUS_HOP_CONGESTION * (h - 1.0)),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips_through_describe() {
        for spec in [
            "flat",
            "fat-tree:4x4",
            "fat-tree:2x8",
            "torus:5x5",
            "torus:8x4",
        ] {
            let t = Topology::parse(spec).unwrap();
            assert_eq!(t.describe(), spec);
            assert_eq!(Topology::parse(&t.describe()).unwrap(), t);
        }
        assert_eq!(
            Topology::parse("fat-tree").unwrap(),
            Topology::FatTree { node: 4, switch: 4 }
        );
        assert_eq!(
            Topology::parse("torus").unwrap(),
            Topology::Torus { x: 5, y: 5 }
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "mesh",
            "fat-tree:0x4",
            "torus:5",
            "torus:ax5",
            "flat:2x2",
            "",
        ] {
            assert!(Topology::parse(bad).is_err(), "`{bad}` must not parse");
        }
    }

    #[test]
    fn flat_is_distance_blind() {
        for d in [1, 3, 17, 1000] {
            assert_eq!(Topology::Flat.link(d), Link::UNIT);
        }
    }

    #[test]
    fn fat_tree_tiers_are_ordered() {
        let t = Topology::FatTree { node: 4, switch: 4 };
        let local = t.link(1);
        let switch = t.link(4);
        let cross = t.link(16);
        assert!(local.startup_mult < switch.startup_mult);
        assert!(switch.startup_mult < cross.startup_mult);
        assert!(local.bw_mult > switch.bw_mult);
        assert!(switch.bw_mult > cross.bw_mult);
        assert_eq!(switch, Link::UNIT);
        // Tier boundaries: distances 1..3 are node-local, 4..15 same-switch.
        assert_eq!(t.link(3), local);
        assert_eq!(t.link(15), switch);
    }

    #[test]
    fn torus_cost_grows_with_hops_and_wraps_around() {
        let t = Topology::Torus { x: 5, y: 5 };
        let near = t.link(1);
        let mid = t.link(2);
        let far = t.link(2 + 2 * 5); // (2, 2): 4 hops
        assert_eq!(near, Link::UNIT);
        assert!(mid.startup_mult > near.startup_mult);
        assert!(far.startup_mult > mid.startup_mult);
        assert!(far.bw_mult < mid.bw_mult);
        // Wraparound: 4 hops along x is 1 hop the other way.
        assert_eq!(t.link(4), t.link(1));
        // Distances reduce mod the torus size.
        assert_eq!(t.link(26), t.link(1));
    }
}
