//! The collective-algorithm library: lowering combined patterns to
//! concrete step schedules.
//!
//! Each algorithm turns a [`PatternShape`] — what the code generator knows
//! about a combined message — into a list of [`SimStep`]s the simulator
//! executes verbatim. The *logical* payload (`Msg::bytes`) is the same
//! under every algorithm; only the wire schedule differs. On the flat
//! topology the `p2p` lowering reproduces the legacy pricing (`rounds`
//! equal splits of the payload at unit multipliers).

use gcomm_machine::SimStep;

use crate::topo::Topology;

/// A collective algorithm, selected with `--coll` on `gcommc`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algo {
    /// The legacy lowering: the paper's flat-model pricing, expressed as
    /// steps (`rounds` equal splits at binomial-tree partner distances).
    P2p,
    /// Ring: `parts − 1` unit-distance steps of `bytes / parts` each —
    /// bandwidth-optimal, latency-heavy.
    Ring,
    /// Recursive doubling: `⌈log₂ parts⌉` full-payload steps at partner
    /// distances 1, 2, 4, … — latency-optimal, bandwidth-heavy.
    Rdbl,
    /// Bine tree: recursive doubling's step count at negabinary partner
    /// distances 1, 1, 3, 5, 11, … — the smaller reach keeps more steps
    /// on cheap link tiers of hierarchical topologies.
    Bine,
}

/// Every algorithm, in the deterministic candidate order the selector
/// sweeps (`P2p` first, so exact cost ties resolve to the legacy lowering).
pub const ALL_ALGOS: [Algo; 4] = [Algo::P2p, Algo::Ring, Algo::Rdbl, Algo::Bine];

impl Algo {
    /// The `--coll` spelling of this algorithm.
    pub fn name(self) -> &'static str {
        match self {
            Algo::P2p => "p2p",
            Algo::Ring => "ring",
            Algo::Rdbl => "rdbl",
            Algo::Bine => "bine",
        }
    }

    /// Parses a `--coll` algorithm name (`auto` is not an algorithm; see
    /// [`crate::select::CollChoice::parse`]).
    pub fn parse(s: &str) -> Option<Algo> {
        match s {
            "p2p" => Some(Algo::P2p),
            "ring" => Some(Algo::Ring),
            "rdbl" => Some(Algo::Rdbl),
            "bine" => Some(Algo::Bine),
            _ => None,
        }
    }
}

/// What the code generator knows about a combined message: the pattern
/// class and its geometry on the linearized processor grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatternShape {
    /// An NNC shift: one partner, `dist` ranks away.
    Shift {
        /// Linearized rank distance (≥ 1).
        dist: u64,
    },
    /// A reduction/broadcast/all-gather-style exchange over `parts`
    /// participating ranks.
    Tree {
        /// Participating ranks (the reduction's owner set, or P).
        parts: u64,
    },
}

impl PatternShape {
    /// The legacy flat-model round count of this pattern (1 for shifts,
    /// `⌈log₂ parts⌉` for trees) — exactly `codegen`'s historical rounds.
    pub fn legacy_rounds(self) -> u64 {
        match self {
            PatternShape::Shift { .. } => 1,
            PatternShape::Tree { parts } => ceil_log2(parts).max(1),
        }
    }
}

/// `⌈log₂ p⌉` (0 for p ≤ 1), the paper's tree-collective round count.
pub(crate) fn ceil_log2(p: u64) -> u64 {
    (64 - (p.max(1) - 1).leading_zeros()) as u64
}

/// Partner distance of Bine-tree step `s`: the negabinary sequence
/// `d_s = (2^(s+1) + (−1)^s) / 3` = 1, 1, 3, 5, 11, 21, …
pub fn bine_dist(s: u64) -> u64 {
    let sign: i64 = if s.is_multiple_of(2) { 1 } else { -1 };
    (((1i64 << (s + 1).min(62)) + sign) / 3) as u64
}

fn step(bytes: f64, topo: &Topology, dist: u64) -> SimStep {
    let link = topo.link(dist);
    SimStep {
        bytes,
        startup_mult: link.startup_mult,
        bw_mult: link.bw_mult,
    }
}

/// Lowers `shape` carrying `bytes` of logical payload with `algo` on
/// `topo`. Returns `None` when the algorithm does not apply to the
/// pattern (tree algorithms on a shift); the selector then falls back to
/// `p2p`, which lowers every shape.
pub fn lower(algo: Algo, shape: PatternShape, bytes: f64, topo: &Topology) -> Option<Vec<SimStep>> {
    match shape {
        PatternShape::Shift { dist } => {
            let d = dist.max(1);
            match algo {
                // One direct message across however many tiers `d` spans.
                Algo::P2p => Some(vec![step(bytes, topo, d)]),
                // Store-and-forward through the `d` unit-distance
                // neighbours: more startups, but every hop rides the
                // cheapest tier.
                Algo::Ring => Some((0..d).map(|_| step(bytes, topo, 1)).collect()),
                Algo::Rdbl | Algo::Bine => None,
            }
        }
        PatternShape::Tree { parts } => {
            let p = parts.max(2);
            let r = ceil_log2(p).max(1);
            match algo {
                // The legacy pricing as steps: `r` equal splits at
                // binomial-tree partner distances p/2, p/4, …, 1. At unit
                // multipliers this is `rounds × msg_time(bytes/rounds)`.
                Algo::P2p => Some(
                    (1..=r)
                        .map(|s| step(bytes / r as f64, topo, (p >> s).max(1)))
                        .collect(),
                ),
                Algo::Ring => Some(
                    (0..p - 1)
                        .map(|_| step(bytes / p as f64, topo, 1))
                        .collect(),
                ),
                Algo::Rdbl => Some((0..r).map(|s| step(bytes, topo, 1 << s.min(62))).collect()),
                Algo::Bine => Some((0..r).map(|s| step(bytes, topo, bine_dist(s))).collect()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcomm_machine::NetworkModel;

    fn cost(steps: &[SimStep], net: &NetworkModel) -> f64 {
        steps.iter().map(|s| s.time_us(net)).sum()
    }

    #[test]
    fn bine_distances_follow_the_negabinary_sequence() {
        let want = [1u64, 1, 3, 5, 11, 21, 43, 85];
        for (s, &w) in want.iter().enumerate() {
            assert_eq!(bine_dist(s as u64), w, "step {s}");
        }
    }

    #[test]
    fn p2p_on_flat_matches_the_legacy_price() {
        // The legacy model prices a tree collective as
        // rounds × msg_time(bytes/rounds); p2p steps on the flat topology
        // must reproduce it (up to float association of the sum).
        let net = NetworkModel::sp2();
        for parts in [2u64, 8, 25, 64] {
            for bytes in [64.0, 4096.0, 1.0e6] {
                let shape = PatternShape::Tree { parts };
                let steps = lower(Algo::P2p, shape, bytes, &Topology::Flat).unwrap();
                let r = shape.legacy_rounds();
                assert_eq!(steps.len() as u64, r);
                let legacy = r as f64 * net.msg_time_us(bytes / r as f64);
                let lowered = cost(&steps, &net);
                assert!(
                    (lowered - legacy).abs() <= 1e-9 * legacy.max(1.0),
                    "parts={parts} bytes={bytes}: {lowered} vs {legacy}"
                );
            }
        }
    }

    #[test]
    fn tree_algorithms_trade_latency_for_bandwidth() {
        // Small payloads: the log-step trees beat the ring. Large
        // payloads: the ring's smaller wire volume wins.
        let net = NetworkModel::sp2();
        let topo = Topology::Flat;
        let shape = PatternShape::Tree { parts: 25 };
        let at = |algo, bytes| cost(&lower(algo, shape, bytes, &topo).unwrap(), &net);
        assert!(at(Algo::Rdbl, 64.0) < at(Algo::Ring, 64.0));
        assert!(at(Algo::Ring, 4.0e6) < at(Algo::Rdbl, 4.0e6));
    }

    #[test]
    fn bine_never_loses_to_rdbl_on_hierarchical_topologies() {
        // Same step count, strictly smaller partner distances → never a
        // more expensive tier.
        let net = NetworkModel::sp2();
        for topo in [
            Topology::FatTree { node: 4, switch: 4 },
            Topology::Torus { x: 5, y: 5 },
        ] {
            for parts in [4u64, 8, 25, 64] {
                for bytes in [64.0, 8192.0, 1.0e6] {
                    let shape = PatternShape::Tree { parts };
                    let b = cost(&lower(Algo::Bine, shape, bytes, &topo).unwrap(), &net);
                    let r = cost(&lower(Algo::Rdbl, shape, bytes, &topo).unwrap(), &net);
                    assert!(
                        b <= r + 1e-9,
                        "{}: parts={parts} bytes={bytes}: bine {b} > rdbl {r}",
                        topo.describe()
                    );
                }
            }
        }
    }

    #[test]
    fn shift_ring_beats_direct_p2p_across_the_spine_for_bulk() {
        // A distance-2 shift on 2-rank nodes with one node per switch:
        // both hops of the ring are node-local while the direct message
        // crosses the oversubscribed spine, so store-and-forward moves
        // bulk data faster.
        let net = NetworkModel::sp2();
        let topo = Topology::FatTree { node: 2, switch: 1 };
        let shape = PatternShape::Shift { dist: 2 };
        let big = 4.0e6;
        let ring = cost(&lower(Algo::Ring, shape, big, &topo).unwrap(), &net);
        let p2p = cost(&lower(Algo::P2p, shape, big, &topo).unwrap(), &net);
        assert!(ring < p2p, "ring {ring} vs p2p {p2p}");
        // Long tiny-payload shifts prefer the single direct message: six
        // store-and-forward startups cost more than one spine crossing.
        let topo = Topology::FatTree { node: 2, switch: 2 };
        let shape = PatternShape::Shift { dist: 6 };
        let tiny = 8.0;
        let ring = cost(&lower(Algo::Ring, shape, tiny, &topo).unwrap(), &net);
        let p2p = cost(&lower(Algo::P2p, shape, tiny, &topo).unwrap(), &net);
        assert!(p2p < ring, "p2p {p2p} vs ring {ring}");
    }

    #[test]
    fn tree_algorithms_do_not_apply_to_shifts() {
        let shape = PatternShape::Shift { dist: 3 };
        assert!(lower(Algo::Rdbl, shape, 64.0, &Topology::Flat).is_none());
        assert!(lower(Algo::Bine, shape, 64.0, &Topology::Flat).is_none());
    }
}
