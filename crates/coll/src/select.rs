//! Per-pattern algorithm selection along the latency/bandwidth pareto
//! frontier.
//!
//! For every (pattern, size, topology, network) the selector sweeps the
//! applicable algorithms, splits each candidate's cost into a latency
//! term (startup × tier multipliers) and a transfer term (bytes over
//! tier-scaled bandwidth), and — for `--coll auto` — picks the candidate
//! whose *exact* step-sum cost (the very expression
//! [`gcomm_machine::Msg::time_us`] charges) is minimal. `p2p` is always a
//! candidate and wins ties, so `auto` is never costlier than `p2p` by
//! construction. Selections are memoized in a process-wide `gcomm-query`
//! engine: selection is a pure function of the swept key, so a hit is
//! bit-identical to a recomputation.

use std::sync::OnceLock;

use gcomm_machine::{NetworkModel, SimStep};
use gcomm_query::{fingerprint, mix, Computed, QueryEngine};

use crate::algo::{lower, Algo, PatternShape, ALL_ALGOS};
use crate::topo::Topology;

/// The `--coll` selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollChoice {
    /// Sweep the candidates and take the cheapest (ties to `p2p`).
    Auto,
    /// Force one algorithm (falling back to `p2p` where it cannot lower).
    Fixed(Algo),
}

impl CollChoice {
    /// Parses a `--coll` spec: `auto`, `ring`, `rdbl`, `bine`, or `p2p`.
    pub fn parse(s: &str) -> Option<CollChoice> {
        match s {
            "auto" => Some(CollChoice::Auto),
            _ => Algo::parse(s).map(CollChoice::Fixed),
        }
    }

    /// The canonical spelling (`parse(describe()) == self`).
    pub fn describe(self) -> &'static str {
        match self {
            CollChoice::Auto => "auto",
            CollChoice::Fixed(a) => a.name(),
        }
    }
}

/// A complete collective-backend configuration, carried by
/// `SimConfig::coll`. Holds the network model because algorithm selection
/// trades startup against bandwidth at lowering time.
#[derive(Debug, Clone, PartialEq)]
pub struct CollConfig {
    /// The interconnect topology.
    pub topo: Topology,
    /// The selection policy.
    pub choice: CollChoice,
    /// The network the schedule will be priced on.
    pub net: NetworkModel,
}

impl CollConfig {
    /// Bundles a configuration.
    pub fn new(topo: Topology, choice: CollChoice, net: NetworkModel) -> Self {
        CollConfig { topo, choice, net }
    }

    /// Canonical `topology/choice` string — the cache-key component the
    /// serve path embeds (the network is already keyed by its profile).
    pub fn describe(&self) -> String {
        format!("{}/{}", self.topo.describe(), self.choice.describe())
    }
}

/// One swept candidate with its cost split along the pareto axes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// The algorithm.
    pub algo: Algo,
    /// Latency term: Σ startup × tier multiplier, µs.
    pub latency_us: f64,
    /// Transfer term: Σ bytes / (bw(bytes) × tier multiplier), µs.
    pub transfer_us: f64,
    /// Exact step-sum cost — what the simulator will charge. Equals
    /// latency + transfer up to float association.
    pub cost_us: f64,
    /// Steps in the schedule.
    pub steps: u64,
}

/// Sweeps every applicable algorithm for `shape` at `bytes` on
/// (`topo`, `net`), in [`ALL_ALGOS`] order.
pub fn sweep(
    topo: &Topology,
    net: &NetworkModel,
    shape: PatternShape,
    bytes: f64,
) -> Vec<Candidate> {
    ALL_ALGOS
        .iter()
        .filter_map(|&algo| {
            let steps = lower(algo, shape, bytes, topo)?;
            let mut latency = 0.0f64;
            let mut transfer = 0.0f64;
            for s in &steps {
                latency += net.startup_us * s.startup_mult;
                if s.bytes > 0.0 {
                    transfer += s.bytes / (net.bandwidth_mb(s.bytes) * s.bw_mult).max(1e-9);
                }
            }
            Some(Candidate {
                algo,
                latency_us: latency,
                transfer_us: transfer,
                cost_us: exact_cost(&steps, net),
                steps: steps.len() as u64,
            })
        })
        .collect()
}

/// The pareto frontier of a sweep: candidates no other candidate beats on
/// both the latency and the transfer axis. The min-total-cost candidate
/// is always on the frontier, so `auto`'s pick never leaves it.
pub fn pareto(cands: &[Candidate]) -> Vec<Candidate> {
    cands
        .iter()
        .filter(|c| {
            !cands.iter().any(|o| {
                o.latency_us <= c.latency_us
                    && o.transfer_us <= c.transfer_us
                    && (o.latency_us < c.latency_us || o.transfer_us < c.transfer_us)
            })
        })
        .cloned()
        .collect()
}

/// The exact cost the simulator charges for a step schedule (same
/// per-step expression and summation order as [`gcomm_machine::Msg::time_us`]).
fn exact_cost(steps: &[SimStep], net: &NetworkModel) -> f64 {
    steps.iter().map(|s| s.time_us(net)).sum()
}

fn engine() -> &'static QueryEngine {
    static ENGINE: OnceLock<QueryEngine> = OnceLock::new();
    ENGINE.get_or_init(|| QueryEngine::new(1 << 20))
}

fn select_key(cfg: &CollConfig, shape: PatternShape, bytes: f64) -> u64 {
    let mut h = fingerprint(cfg.topo.describe().as_bytes());
    let (tag, v) = match shape {
        PatternShape::Shift { dist } => (1u64, dist),
        PatternShape::Tree { parts } => (2u64, parts),
    };
    h = mix(h, tag);
    h = mix(h, v);
    h = mix(h, bytes.to_bits());
    h = mix(h, cfg.net.startup_us.to_bits());
    h = mix(h, cfg.net.peak_bw_mb.to_bits());
    h = mix(h, cfg.net.half_size.to_bits());
    h
}

/// The `auto` selection: the cheapest applicable algorithm under the
/// exact step-sum cost, ties to the earliest candidate (`p2p`). Memoized
/// per (topology, shape, bytes, network) — selection is pure, so hits
/// are bit-identical to recomputation.
pub fn select(cfg: &CollConfig, shape: PatternShape, bytes: f64) -> Algo {
    let key = select_key(cfg, shape, bytes);
    let (algo, _hit) = engine().memo("coll.select", key, || {
        let mut best = Algo::P2p;
        let mut best_cost = f64::INFINITY;
        for c in sweep(&cfg.topo, &cfg.net, shape, bytes) {
            if c.cost_us < best_cost {
                best = c.algo;
                best_cost = c.cost_us;
            }
        }
        Computed {
            value: best,
            bytes: 16,
            cacheable: true,
        }
    });
    *algo
}

/// A lowered message schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct Lowered {
    /// The algorithm that produced the schedule.
    pub algo: Algo,
    /// The step list for [`gcomm_machine::Msg::steps`].
    pub steps: Vec<SimStep>,
    /// True when a forced algorithm could not lower this shape and the
    /// schedule fell back to `p2p`.
    pub fallback: bool,
}

/// Lowers one combined message under `cfg`, recording the `coll.*`
/// observability counters.
pub fn lower_msg(cfg: &CollConfig, shape: PatternShape, bytes: f64) -> Lowered {
    let (algo, fallback) = match cfg.choice {
        CollChoice::Auto => (select(cfg, shape, bytes), false),
        CollChoice::Fixed(a) => {
            if lower(a, shape, bytes, &cfg.topo).is_some() {
                (a, false)
            } else {
                (Algo::P2p, true)
            }
        }
    };
    let steps = lower(algo, shape, bytes, &cfg.topo).expect("p2p lowers every shape");
    gcomm_obs::count("coll.lowered", 1);
    gcomm_obs::count("coll.steps", steps.len() as u64);
    gcomm_obs::count(
        match algo {
            Algo::Ring => "coll.selected_ring",
            Algo::Rdbl | Algo::Bine => "coll.selected_tree",
            Algo::P2p => "coll.selected_p2p",
        },
        1,
    );
    if fallback {
        gcomm_obs::count("coll.fallback", 1);
    }
    Lowered {
        algo,
        steps,
        fallback,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(topo: &str, choice: &str) -> CollConfig {
        CollConfig::new(
            Topology::parse(topo).unwrap(),
            CollChoice::parse(choice).unwrap(),
            NetworkModel::sp2(),
        )
    }

    #[test]
    fn choice_parse_roundtrips() {
        for s in ["auto", "ring", "rdbl", "bine", "p2p"] {
            let c = CollChoice::parse(s).unwrap();
            assert_eq!(c.describe(), s);
        }
        assert!(CollChoice::parse("magic").is_none());
        assert!(CollChoice::parse("").is_none());
    }

    #[test]
    fn config_describe_distinguishes_topologies_and_choices() {
        let a = cfg("fat-tree:4x4", "auto").describe();
        let b = cfg("fat-tree:2x8", "auto").describe();
        let c = cfg("fat-tree:4x4", "ring").describe();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, "fat-tree:4x4/auto");
    }

    #[test]
    fn auto_never_costs_more_than_p2p() {
        let net = NetworkModel::sp2();
        for topo in ["flat", "fat-tree:4x4", "torus:5x5"] {
            let c = cfg(topo, "auto");
            for shape in [
                PatternShape::Shift { dist: 1 },
                PatternShape::Shift { dist: 7 },
                PatternShape::Tree { parts: 8 },
                PatternShape::Tree { parts: 25 },
            ] {
                for bytes in [8.0, 1024.0, 65536.0, 4.0e6] {
                    let auto = lower_msg(&c, shape, bytes);
                    let p2p = lower(Algo::P2p, shape, bytes, &c.topo).unwrap();
                    let ca: f64 = auto.steps.iter().map(|s| s.time_us(&net)).sum();
                    let cp: f64 = p2p.iter().map(|s| s.time_us(&net)).sum();
                    assert!(
                        ca <= cp,
                        "{topo} {shape:?} {bytes}: auto({}) {ca} > p2p {cp}",
                        auto.algo.name()
                    );
                }
            }
        }
    }

    #[test]
    fn selection_is_memoized_and_stable() {
        let c = cfg("torus:5x5", "auto");
        let shape = PatternShape::Tree { parts: 25 };
        let a = select(&c, shape, 4096.0);
        let b = select(&c, shape, 4096.0);
        assert_eq!(a, b);
    }

    #[test]
    fn fixed_tree_algorithm_falls_back_to_p2p_on_shifts() {
        let c = cfg("fat-tree:4x4", "bine");
        let l = lower_msg(&c, PatternShape::Shift { dist: 3 }, 512.0);
        assert!(l.fallback);
        assert_eq!(l.algo, Algo::P2p);
        assert_eq!(l.steps.len(), 1);
    }

    #[test]
    fn pareto_frontier_contains_the_cheapest_candidate() {
        for topo in [
            Topology::Flat,
            Topology::FatTree { node: 4, switch: 4 },
            Topology::Torus { x: 5, y: 5 },
        ] {
            let net = NetworkModel::now_myrinet();
            for bytes in [64.0, 16384.0, 2.0e6] {
                let cands = sweep(&topo, &net, PatternShape::Tree { parts: 8 }, bytes);
                let front = pareto(&cands);
                assert!(!front.is_empty());
                let best = cands
                    .iter()
                    .min_by(|a, b| a.cost_us.partial_cmp(&b.cost_us).unwrap())
                    .unwrap();
                assert!(
                    front.iter().any(|c| c.algo == best.algo),
                    "{}: cheapest {} must be pareto-optimal",
                    topo.describe(),
                    best.algo.name()
                );
            }
        }
    }

    #[test]
    fn sweep_covers_all_algorithms_for_trees() {
        let cands = sweep(
            &Topology::Flat,
            &NetworkModel::sp2(),
            PatternShape::Tree { parts: 16 },
            1024.0,
        );
        assert_eq!(cands.len(), ALL_ALGOS.len());
        // Deterministic order, p2p first (tie-break target).
        assert_eq!(cands[0].algo, Algo::P2p);
    }
}
