//! Exhaustive optimal placement (extension; paper §6.1).
//!
//! Picking one candidate position per reference to minimize total
//! communication cost is NP-hard (Claim 6.1, reduction from chromatic
//! number), which justifies the paper's greedy heuristic. For *small*
//! procedures the optimum is computable by enumeration; this module does
//! exactly that, scoring every candidate assignment with the machine
//! simulator (startup + bandwidth + packing — a concrete instance of the
//! §6.1 model), so the greedy's quality can be measured.

use std::sync::atomic::{AtomicU64, Ordering};

use gcomm_ir::Pos;
use gcomm_machine::{simulate, NetworkModel};

use crate::candidates::candidates;
use crate::codegen::{lower_to_sim, lower_to_sim_with, SimConfig};
use crate::ctx::AnalysisCtx;
use crate::earliest::earliest_pos;
use crate::entry::EntryId;
use crate::greedy::{compatible, CombinePolicy};
use crate::latest::latest;
use crate::pipeline::Compiled;
use crate::redundancy;
use crate::schedule::{PlacedGroup, Schedule};
use crate::strategy::Strategy;
use crate::subset::CandidateTable;

/// Result of an exhaustive placement search.
#[derive(Debug, Clone)]
pub struct OptimalResult {
    /// The best schedule found.
    pub schedule: Schedule,
    /// Its simulated communication time (µs).
    pub comm_us: f64,
    /// Number of complete assignments evaluated.
    pub tried: u64,
    /// True when the search space exceeded the budget and the result is
    /// only a lower-effort scan.
    pub truncated: bool,
}

/// Simulated communication time of an existing schedule.
pub fn comm_cost(compiled: &Compiled, cfg: &SimConfig, net: &NetworkModel) -> f64 {
    simulate(&lower_to_sim(compiled, cfg), net).comm_us
}

/// Exhaustively searches candidate assignments for the cheapest schedule
/// (serial reference path — [`optimal_placement_jobs`] with one worker).
///
/// # Errors / `None`
///
/// Returns `None` when the program has no communication.
pub fn optimal_placement(
    compiled: &Compiled,
    policy: &CombinePolicy,
    cfg: &SimConfig,
    net: &NetworkModel,
    budget: &gcomm_guard::Budget,
) -> Option<OptimalResult> {
    optimal_placement_jobs(compiled, policy, cfg, net, budget, 1)
}

/// Exhaustively searches candidate assignments for the cheapest schedule,
/// fanning the enumeration across `jobs` workers.
///
/// Runs the same front half as the global strategy (entries, candidate
/// windows, redundancy elimination), then enumerates every choice of one
/// candidate per surviving entry, groups compatibly, and scores with the
/// simulator. Returns `None` when the program has no communication.
///
/// The `budget` bounds only the enumeration (one step per assignment
/// scored; workers charge the shared atomic counter as they score); the
/// front half runs unbudgeted so the search space itself is identical to
/// the global strategy's. An exhausted budget truncates the scan — the
/// seeded input schedule guarantees the result is never worse than what
/// the caller already had.
///
/// **Determinism contract (DESIGN.md §11):** every worker count scores the
/// same fixed index range `[0, tried)` of the assignment odometer, workers
/// share an atomic best-cost bound used only for *pruning* (a cost
/// strictly above the bound can never win), and the final merge picks the
/// minimum by `(cost, assignment index)` with the seed schedule winning
/// cost ties — bit-identical results for any `jobs`.
pub fn optimal_placement_jobs(
    compiled: &Compiled,
    policy: &CombinePolicy,
    cfg: &SimConfig,
    net: &NetworkModel,
    budget: &gcomm_guard::Budget,
    jobs: usize,
) -> Option<OptimalResult> {
    let prog = &compiled.prog;
    let entries = crate::commgen::number(crate::commgen::generate(prog));
    if entries.is_empty() {
        return None;
    }
    let ctx = AnalysisCtx::new(prog);
    let mut table = CandidateTable::default();
    for e in &entries {
        let ep = earliest_pos(&ctx, e);
        let lp = latest(&ctx, e);
        table.cands.insert(e.id, candidates(&ctx, e, ep, lp));
    }
    let absorptions = redundancy::eliminate(&ctx, &entries, &mut table);

    let ids: Vec<EntryId> = table.cands.keys().copied().collect();
    let choice_sets: Vec<Vec<Pos>> = ids
        .iter()
        .map(|e| table.cands[e].iter().copied().collect())
        .collect();

    let space: u64 = choice_sets
        .iter()
        .map(|c| c.len() as u64)
        .try_fold(1u64, |a, b| a.checked_mul(b))
        .unwrap_or(u64::MAX);
    // The enumeration window is fixed up front from the budget's remaining
    // steps (at least one assignment, mirroring the historical
    // score-then-charge order), so every worker count scores exactly the
    // same assignments no matter how charges interleave.
    let remaining = budget
        .step_cap()
        .map_or(u64::MAX, |cap| cap.saturating_sub(budget.steps_used()));
    let limit = space.min(remaining.max(1));
    let truncated = space > limit;

    // Seed the search with the input schedule so the result is never worse
    // than what the caller already has, even when the budget truncates the
    // enumeration (guarantees optimal ≤ greedy for differential tests).
    // Every scoring call shares `ctx`, so SSA/dominators build once and
    // each `(entry, level)` section widens once for the whole search.
    let seed_cost = simulate(&lower_to_sim_with(compiled, cfg, &ctx), net).comm_us;
    // Shared branch-and-bound bound: the cheapest cost seen so far, as
    // f64 bits (nonnegative IEEE floats order identically to their bit
    // patterns). Monotonically decreasing via `fetch_min`.
    let best_bits = AtomicU64::new(seed_cost.to_bits());
    let reg = gcomm_obs::current();

    let ranges = gcomm_par::split_range(limit, jobs);
    let worker_best = gcomm_par::map(jobs, &ranges, |_, &(lo, hi)| {
        // Workers inherit the coordinator's stats registry (counter sums
        // are scheduling-independent) and score a contiguous index slice.
        let _obs = reg.clone().map(gcomm_obs::install);
        let mut counters = decode_odometer(lo, &choice_sets);
        let mut scratch = Compiled {
            prog: compiled.prog.clone(),
            schedule: Schedule {
                strategy: Strategy::Global,
                entries: entries.clone(),
                groups: Vec::new(),
                absorptions: absorptions.clone(),
                section_overrides: Vec::new(),
            },
            stats: Default::default(),
        };
        let mut local: Option<(f64, u64, Schedule)> = None;
        for idx in lo..hi {
            let assignment: Vec<Pos> = counters
                .iter()
                .zip(&choice_sets)
                .map(|(&c, set)| set[c])
                .collect();
            scratch.schedule.groups = group_assignment(&ctx, &entries, &ids, &assignment, policy);
            let cost = simulate(&lower_to_sim_with(&scratch, cfg, &ctx), net).comm_us;
            budget.charge(1);
            // Prune on the shared bound: a cost strictly above it can
            // never be the global minimum. Equal costs must still be
            // recorded — a lower index elsewhere may win the tie.
            let bound = f64::from_bits(best_bits.load(Ordering::Relaxed));
            if cost <= bound {
                let improves = match &local {
                    None => true,
                    Some((lc, li, _)) => cost < *lc || (cost == *lc && idx < *li),
                };
                if improves {
                    local = Some((cost, idx, scratch.schedule.clone()));
                }
                best_bits.fetch_min(cost.to_bits(), Ordering::Relaxed);
            }
            // Advance the odometer.
            let mut i = 0;
            while i < counters.len() {
                counters[i] += 1;
                if counters[i] < choice_sets[i].len() {
                    break;
                }
                counters[i] = 0;
                i += 1;
            }
        }
        local
    });

    // Deterministic merge: lexicographic minimum over (cost, index); the
    // seed wins ties against any enumerated assignment (strict `<`), just
    // like the serial scan that replaced `best` only on improvement.
    let mut best: Option<(f64, u64, Schedule)> = None;
    for cand in worker_best.into_iter().flatten() {
        best = Some(match best {
            None => cand,
            Some(b) => {
                if cand.0 < b.0 || (cand.0 == b.0 && cand.1 < b.1) {
                    cand
                } else {
                    b
                }
            }
        });
    }
    let (comm_us, schedule) = match best {
        Some((cost, _, sched)) if cost < seed_cost => (cost, sched),
        _ => (seed_cost, compiled.schedule.clone()),
    };
    Some(OptimalResult {
        schedule,
        comm_us,
        tried: limit,
        truncated,
    })
}

/// Decodes a linear assignment index into odometer counters (index 0 of
/// `choice_sets` advances fastest, matching the enumeration order).
fn decode_odometer(mut idx: u64, choice_sets: &[Vec<Pos>]) -> Vec<usize> {
    choice_sets
        .iter()
        .map(|set| {
            let len = set.len() as u64;
            let c = (idx % len) as usize;
            idx /= len;
            c
        })
        .collect()
}

/// Partitions an assignment into compatibility groups (same first-fit rule
/// as the greedy's final grouping, for a like-for-like comparison).
fn group_assignment(
    ctx: &AnalysisCtx<'_>,
    entries: &[crate::entry::CommEntry],
    ids: &[EntryId],
    assignment: &[Pos],
    policy: &CombinePolicy,
) -> Vec<PlacedGroup> {
    use std::collections::BTreeMap;
    let mut by_pos: BTreeMap<Pos, Vec<EntryId>> = BTreeMap::new();
    for (&id, &pos) in ids.iter().zip(assignment.iter()) {
        by_pos.entry(pos).or_default().push(id);
    }
    let mut groups = Vec::new();
    for (pos, members) in by_pos {
        let level = pos.level(ctx.prog);
        let mut parts: Vec<Vec<EntryId>> = Vec::new();
        for id in members {
            let e = &entries[id.0 as usize];
            let slot = parts.iter_mut().find(|g| {
                g.iter()
                    .all(|&m| compatible(ctx, e, &entries[m.0 as usize], level, policy))
            });
            match slot {
                Some(g) => g.push(id),
                None => parts.push(vec![id]),
            }
        }
        for p in parts {
            let first = &entries[p[0].0 as usize];
            groups.push(PlacedGroup {
                pos,
                entries: p,
                mapping: first.mapping.clone(),
                kind: first.kind,
            });
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::compile;
    use gcomm_machine::ProcGrid;

    fn setup(src: &str) -> (Compiled, SimConfig, NetworkModel) {
        let c = compile(src, Strategy::Global).unwrap();
        let cfg = SimConfig::uniform(&c, ProcGrid::balanced(4, 2), 64).with("nsteps", 4);
        (c, cfg, NetworkModel::sp2())
    }

    #[test]
    fn greedy_matches_optimal_on_figure4() {
        let (c, cfg, net) = setup(gcomm_kernels_src::FIG4);
        let greedy_cost = comm_cost(&c, &cfg, &net);
        let budget = gcomm_guard::Budget::steps(100_000);
        let opt = optimal_placement(&c, &CombinePolicy::default(), &cfg, &net, &budget).unwrap();
        assert!(!opt.truncated);
        assert!(
            greedy_cost <= opt.comm_us * 1.0001,
            "greedy {greedy_cost} vs optimal {}",
            opt.comm_us
        );
        assert_eq!(opt.schedule.groups.len(), c.schedule.groups.len());
    }

    #[test]
    fn greedy_matches_optimal_on_two_reads() {
        let (c, cfg, net) = setup(
            "
program t
param n, nsteps
real a(n,n), b(n,n), c(n,n) distribute (block,block)
do t = 1, nsteps
  b(2:n, 1:n) = a(1:n-1, 1:n)
  c(2:n, 1:n) = a(1:n-1, 1:n)
  a(1:n, 1:n) = b(1:n, 1:n) + c(1:n, 1:n)
enddo
end",
        );
        let greedy_cost = comm_cost(&c, &cfg, &net);
        let budget = gcomm_guard::Budget::steps(100_000);
        let opt = optimal_placement(&c, &CombinePolicy::default(), &cfg, &net, &budget).unwrap();
        assert!(greedy_cost <= opt.comm_us * 1.0001);
    }

    #[test]
    fn optimal_never_beats_greedy_by_much_on_gauss() {
        let c = compile(gcomm_kernels_src::GAUSS, Strategy::Global).unwrap();
        let cfg = SimConfig::uniform(&c, ProcGrid::balanced(4, 2), 32).with("nsteps", 2);
        let net = NetworkModel::sp2();
        let greedy_cost = comm_cost(&c, &cfg, &net);
        let budget = gcomm_guard::Budget::steps(30_000);
        let opt = optimal_placement(&c, &CombinePolicy::default(), &cfg, &net, &budget).unwrap();
        // The greedy must be within 10% of the best assignment found.
        assert!(
            greedy_cost <= opt.comm_us * 1.10,
            "greedy {greedy_cost} vs optimal {} (tried {}, truncated {})",
            opt.comm_us,
            opt.tried,
            opt.truncated
        );
    }

    /// Kernel sources for tests (kept local to avoid a dev-dependency
    /// cycle with gcomm-kernels).
    mod gcomm_kernels_src {
        pub const FIG4: &str = "
program fig4
param n
real a(n,n), b(n,n), c(n,n), d(n,n) distribute (block, *)
real cond
b(1:n, 1:n:2) = 1
b(1:n, 2:n:2) = 2
if (cond > 0) then
  a(1:n, 1:n) = 3
else
  a(1:n, 1:n) = d(1:n, 1:n)
endif
do i = 2, n
  do j = 1, n, 2
    c(i, j) = a(i-1, j) + b(i-1, j)
  enddo
  do j = 1, n
    c(i, j) = a(i-1, j) + b(i-1, j)
  enddo
enddo
end";
        pub const GAUSS: &str = "
program gauss
param n, nsteps
real x(n,n), y(n,n), w(n,n), edge(n,n) distribute (block, block)
real acc(n,n) distribute (block, block)
do t = 1, nsteps
  acc(2:n, 2:n) = x(1:n-1, 2:n) + y(1:n-1, 2:n) + w(1:n-1, 2:n) + edge(1:n-1, 2:n) &
                + x(2:n, 1:n-1) + y(2:n, 1:n-1) + w(2:n, 1:n-1)
  acc(1:n-1, 1:n-1) = acc(1:n-1, 1:n-1) + x(2:n, 2:n) + y(2:n, 2:n) + w(2:n, 2:n)
  x(1:n, 1:n) = acc(1:n, 1:n)
  y(1:n, 1:n) = acc(1:n, 1:n) * 0.5
  w(1:n, 1:n) = acc(1:n, 1:n) * 0.25
  edge(1:n, 1:n) = acc(1:n, 1:n) * 0.125
enddo
end";
    }
}
