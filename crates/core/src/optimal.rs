//! Optimal placement by branch-and-bound (extension; paper §6.1).
//!
//! Picking one candidate position per reference to minimize total
//! communication cost is NP-hard (Claim 6.1, reduction from chromatic
//! number), which justifies the paper's greedy heuristic. For small
//! procedures the optimum used to be computed here by odometer
//! enumeration; this module now runs a **branch-and-bound search** over
//! entries ordered by the dominator tree (DESIGN.md §16):
//!
//! * **Admissible lower bounds.** Every entry's byte contribution to its
//!   group is additive ([`crate::codegen::entry_msg_bytes`]), and the
//!   network model's bandwidth term is affine in bytes, so an entry placed
//!   at position `p` always adds at least `mult(p) · bytes(p) / peak_bw`
//!   microseconds no matter how it is grouped. Suffix sums of the
//!   per-entry minima give an admissible remaining-cost bound `h[d]`.
//! * **Incremental partial cost.** A partial assignment's groups are
//!   maintained incrementally with the same first-fit rule as the final
//!   grouping, and costed analytically with the exact lowering arithmetic
//!   — a pruned subtree never touches the simulator.
//! * **Dominance pruning.** Two partial assignments at the same depth
//!   that agree on every entry placed at a position still reachable by
//!   the remaining entries have identical completion deltas; the later,
//!   strictly costlier one is cut.
//! * **Determinism contract (DESIGN.md §11/§16).** The subtree split,
//!   per-subtree node allowances, and every pruning decision depend only
//!   on the program and the budget — never on worker scheduling. The
//!   shared [`gcomm_par::MinF64`] best-cost cell is only a *recording
//!   gate* (a cost strictly above it can never win); the final merge
//!   picks the minimum by `(cost, assignment index)` with the seed
//!   schedule winning cost ties. `jobs = 1` and `jobs = 8` are
//!   bit-identical, including the node and prune counts.
//!
//! Surviving complete assignments are scored with the machine simulator,
//! exactly like the retained exhaustive reference
//! ([`exhaustive_placement_jobs`]), so the two return bit-identical
//! results whenever both complete — the differential property the test
//! suite enforces. The budget charges **nodes expanded** (one per entry
//! binding); on exhaustion the search truncates and returns the seeded
//! schedule or better.

use std::collections::{HashMap, HashSet};

use gcomm_ir::{IrProgram, LoopId, Pos};
use gcomm_machine::{simulate, MsgKind, NetworkModel, ProcGrid};
use gcomm_par::MinF64;

use crate::candidates::candidates;
use crate::codegen::{
    entry_msg_bytes, group_pattern, loop_bindings, lower_to_sim, lower_to_sim_with, lowered_msg,
    SimConfig,
};
use crate::ctx::AnalysisCtx;
use crate::earliest::earliest_pos;
use crate::entry::{CommEntry, EntryId};
use crate::greedy::{compatible, CombinePolicy};
use crate::latest::latest;
use crate::pipeline::Compiled;
use crate::redundancy::{self, Absorption};
use crate::schedule::{PlacedGroup, Schedule, SearchOutcome};
use crate::strategy::Strategy;
use crate::subset::CandidateTable;

/// Node budget for `--strategy optimal` when the caller's compile budget
/// has no step cap of its own (matches the `compare_optimal` default).
pub const DEFAULT_SEARCH_NODES: u64 = 20_000;

/// The subtree split stops growing once this many prefixes exist…
const SPLIT_TARGET: u64 = 256;
/// …and never exceeds this many (the next level is not split if it would).
const SPLIT_CAP: u64 = 4096;
/// Dominance-memo entries per subtree (inserts stop at the cap; lookups
/// and in-place improvements continue).
const DOM_CAP: usize = 65_536;

/// Floating-point safety margin for pruning decisions: the analytic cost
/// model and the simulator sum the same terms in different orders, so a
/// subtree is only cut when it is worse by more than accumulated rounding
/// could explain. Keeps the true optimum — and every exact tie — alive.
fn slack(x: f64) -> f64 {
    1e-9 * x.abs() + 1e-6
}

/// Result of an optimal placement search.
#[derive(Debug, Clone)]
pub struct OptimalResult {
    /// The best schedule found.
    pub schedule: Schedule,
    /// Its simulated communication time (µs).
    pub comm_us: f64,
    /// Search-tree nodes expanded (one per entry binding; the budget
    /// unit). The exhaustive reference reports assignments scored here.
    pub nodes: u64,
    /// Complete assignments scored with the simulator.
    pub leaves: u64,
    /// Subtrees cut by the admissible lower bound.
    pub pruned_bound: u64,
    /// Subtrees cut by frontier dominance.
    pub pruned_dominance: u64,
    /// Total assignments in the search space (saturating at `u64::MAX`).
    pub space: u64,
    /// True when the search space exceeded the budget: the result is the
    /// seed or better, but not certified optimal.
    pub truncated: bool,
}

/// Simulated communication time of an existing schedule.
pub fn comm_cost(compiled: &Compiled, cfg: &SimConfig, net: &NetworkModel) -> f64 {
    simulate(&lower_to_sim(compiled, cfg), net).comm_us
}

// ---------------------------------------------------------------------------
// Shared front half: entries, candidate windows, dominator-ordered space
// ---------------------------------------------------------------------------

/// The candidate-assignment space both searches explore: one choice of
/// position per surviving entry, entries in dominator-tree order (outer
/// and earlier program points first), so a depth-`d` prefix decides the
/// outermost placements before the inner ones and prefix grouping matches
/// the final first-fit grouping exactly.
struct SearchSpace {
    entries: Vec<CommEntry>,
    absorptions: Vec<Absorption>,
    /// Surviving entries in search order.
    ids: Vec<EntryId>,
    /// Candidate positions per entry, parallel to `ids`.
    choice_sets: Vec<Vec<Pos>>,
    /// Product of the choice-set sizes (saturating).
    space: u64,
}

fn front_half(compiled: &Compiled) -> Option<(AnalysisCtx<'_>, SearchSpace)> {
    let prog = &compiled.prog;
    let entries = crate::commgen::number(crate::commgen::generate(prog));
    if entries.is_empty() {
        return None;
    }
    let ctx = AnalysisCtx::new(prog);
    let mut table = CandidateTable::default();
    let mut earliest_of: HashMap<EntryId, Pos> = HashMap::new();
    for e in &entries {
        let ep = earliest_pos(&ctx, e);
        let lp = latest(&ctx, e);
        earliest_of.insert(e.id, ep);
        table.cands.insert(e.id, candidates(&ctx, e, ep, lp));
    }
    let absorptions = redundancy::eliminate(&ctx, &entries, &mut table);

    // Dominator-tree order: sort by (dominator depth of the earliest
    // point, slot, id) — the same key the heuristics scan in.
    let mut ids: Vec<EntryId> = table.cands.keys().copied().collect();
    ids.sort_by_key(|id| {
        let ep = earliest_of[id];
        (ctx.dt.depth(ep.node), ep.slot, *id)
    });
    let choice_sets: Vec<Vec<Pos>> = ids
        .iter()
        .map(|e| table.cands[e].iter().copied().collect())
        .collect();
    let space: u64 = choice_sets
        .iter()
        .map(|c| c.len() as u64)
        .try_fold(1u64, |a, b| a.checked_mul(b))
        .unwrap_or(u64::MAX);
    Some((
        ctx,
        SearchSpace {
            entries,
            absorptions,
            ids,
            choice_sets,
            space,
        },
    ))
}

/// Leaf-index strides under the canonical enumeration order: entry 0 (the
/// outermost) varies slowest, the last entry fastest, so a depth-first
/// walk visits leaves in increasing index and every subtree is a
/// contiguous index range. Saturating — ties at the saturation point are
/// astronomically beyond any budget.
fn strides(choice_sets: &[Vec<Pos>]) -> Vec<u64> {
    let n = choice_sets.len();
    let mut s = vec![1u64; n];
    for i in (0..n.saturating_sub(1)).rev() {
        s[i] = s[i + 1].saturating_mul(choice_sets[i + 1].len() as u64);
    }
    s
}

/// An empty scratch compile the searches mutate and score: the seed's
/// program with the shared entry table but no groups or overrides.
fn base_scratch(compiled: &Compiled, space: &SearchSpace) -> Compiled {
    Compiled {
        prog: compiled.prog.clone(),
        schedule: Schedule {
            strategy: Strategy::Global,
            entries: space.entries.clone(),
            groups: Vec::new(),
            absorptions: space.absorptions.clone(),
            section_overrides: Vec::new(),
            search: None,
        },
        stats: Default::default(),
    }
}

// ---------------------------------------------------------------------------
// Analytic cost model (precomputed once per search)
// ---------------------------------------------------------------------------

/// Per-`(entry, choice)` cost tables, precomputed once per search with the
/// exact lowering arithmetic (`entry_msg_bytes`/`group_pattern` — the same
/// functions `group_msg` sums), plus the admissible suffix bounds.
struct CostModel {
    /// Message-byte contribution of entry `i` placed at choice `j`.
    bytes: Vec<Vec<f64>>,
    /// Loop multiplicity of choice `j` (product of enclosing trip counts).
    mult: Vec<Vec<f64>>,
    /// Rounds, message kind, and pattern shape if entry `i` at choice `j`
    /// heads its group.
    head_rounds: Vec<Vec<(u64, MsgKind, gcomm_coll::PatternShape)>>,
    /// Collective-backend configuration of the scoring `SimConfig`, so
    /// partial costs lower exactly like `group_msg`.
    coll: Option<gcomm_coll::CollConfig>,
    /// Loop level of each choice (for compatibility tests).
    level: Vec<Vec<u32>>,
    /// Encoded position of each choice (for grouping and dominance keys).
    pos_enc: Vec<Vec<u64>>,
    /// `h[d]` = admissible lower bound on the cost the entries `d..` must
    /// still add, for any completion: suffix sums of per-entry minima of
    /// `mult · bytes / peak_bw`.
    h: Vec<f64>,
    /// `rc[d]` = encoded positions still reachable by entries `d..` (the
    /// dominance frontier filter).
    rc: Vec<HashSet<u64>>,
}

fn pos_encode(pos: Pos) -> u64 {
    ((pos.node.0 as u64) << 32) | pos.slot as u64
}

/// Product of enclosing-loop trip counts at a position — the factor the
/// simulator multiplies a message placed there by.
fn position_mult(prog: &IrProgram, trips: &HashMap<LoopId, u64>, pos: Pos) -> f64 {
    let mut m: u64 = 1;
    let mut enclosing = prog.cfg.node(pos.node).enclosing;
    while let Some(l) = enclosing {
        m = m.saturating_mul(trips[&l]);
        enclosing = prog.loops[l.0 as usize].parent;
    }
    m as f64
}

fn build_cost_model(
    base: &Compiled,
    cfg: &SimConfig,
    net: &NetworkModel,
    ctx: &AnalysisCtx<'_>,
    space: &SearchSpace,
) -> CostModel {
    let prog = &base.prog;
    let p_total = cfg.grid.nproc().max(1);
    let (mid, trips) = loop_bindings(base, cfg);
    let n = space.ids.len();
    let peak = net.peak_bw_mb.max(1e-9);

    let mut bytes = Vec::with_capacity(n);
    let mut mult = Vec::with_capacity(n);
    let mut head_rounds = Vec::with_capacity(n);
    let mut level = Vec::with_capacity(n);
    let mut pos_enc = Vec::with_capacity(n);
    let mut floor_min = Vec::with_capacity(n);
    for (&id, cands) in space.ids.iter().zip(&space.choice_sets) {
        let e = &space.entries[id.0 as usize];
        let mut b_row = Vec::with_capacity(cands.len());
        let mut m_row = Vec::with_capacity(cands.len());
        let mut r_row = Vec::with_capacity(cands.len());
        let mut l_row = Vec::with_capacity(cands.len());
        let mut p_row = Vec::with_capacity(cands.len());
        let mut fmin = f64::INFINITY;
        for &pos in cands {
            let b = entry_msg_bytes(base, cfg, ctx, &mid, id, &e.mapping, e.kind, pos, p_total);
            let m = position_mult(prog, &trips, pos);
            fmin = fmin.min(m * (b / peak));
            b_row.push(b);
            m_row.push(m);
            r_row.push(group_pattern(
                base, cfg, ctx, &mid, id, &e.mapping, e.kind, pos, p_total,
            ));
            l_row.push(pos.level(prog));
            p_row.push(pos_encode(pos));
        }
        bytes.push(b_row);
        mult.push(m_row);
        head_rounds.push(r_row);
        level.push(l_row);
        pos_enc.push(p_row);
        floor_min.push(fmin);
    }

    let mut h = vec![0.0f64; n + 1];
    for d in (0..n).rev() {
        h[d] = h[d + 1] + floor_min[d];
    }
    let mut rc: Vec<HashSet<u64>> = vec![HashSet::new(); n + 1];
    for d in (0..n).rev() {
        let mut set = rc[d + 1].clone();
        set.extend(pos_enc[d].iter().copied());
        rc[d] = set;
    }

    CostModel {
        bytes,
        mult,
        head_rounds,
        coll: cfg.coll.clone(),
        level,
        pos_enc,
        h,
        rc,
    }
}

// ---------------------------------------------------------------------------
// Branch-and-bound search
// ---------------------------------------------------------------------------

/// A live group in a partial assignment: members as `(order index,
/// choice index)` pairs in binding order (first member is the head).
struct LiveGroup {
    pos_enc: u64,
    members: Vec<(usize, usize)>,
}

struct Searcher<'a, 'p> {
    ctx: &'a AnalysisCtx<'p>,
    space: &'a SearchSpace,
    cm: &'a CostModel,
    policy: &'a CombinePolicy,
    cfg: &'a SimConfig,
    net: &'a NetworkModel,
    gate: &'a MinF64,
    base: &'a Compiled,
    strides: &'a [u64],
    /// Forced digits below the split depth.
    prefix: &'a [usize],
    k: usize,
    allowance: u64,
    /// Deterministic per-subtree prune bound: min(seed cost, cheapest
    /// leaf simulated so far *in this subtree*). Never reads the shared
    /// gate — worker scheduling must not change pruning decisions.
    bound: f64,
    digits: Vec<usize>,
    groups: Vec<LiveGroup>,
    /// Group index each depth bound into (for undo).
    bind_log: Vec<usize>,
    dom: HashMap<Vec<u64>, f64>,
    scratch: Option<Compiled>,
    nodes: u64,
    leaves: u64,
    pruned_bound: u64,
    pruned_dominance: u64,
    truncated: bool,
    stopped: bool,
    best: Option<(f64, u64, Vec<usize>)>,
}

impl<'a, 'p> Searcher<'a, 'p> {
    fn entry(&self, i: usize) -> &'a CommEntry {
        &self.space.entries[self.space.ids[i].0 as usize]
    }

    /// Joins entry `i` at choice `j` into the partial grouping with the
    /// same first-fit rule as [`group_assignment`] (groups at the
    /// position in creation order; a member must be compatible with every
    /// existing member). Binding in `ids` order makes the two identical.
    fn bind(&mut self, i: usize, j: usize) {
        let enc = self.cm.pos_enc[i][j];
        let level = self.cm.level[i][j];
        let e = self.entry(i);
        let slot = self.groups.iter().position(|g| {
            g.pos_enc == enc
                && g.members
                    .iter()
                    .all(|&(m, _)| compatible(self.ctx, e, self.entry(m), level, self.policy))
        });
        match slot {
            Some(gi) => {
                self.groups[gi].members.push((i, j));
                self.bind_log.push(gi);
            }
            None => {
                self.groups.push(LiveGroup {
                    pos_enc: enc,
                    members: vec![(i, j)],
                });
                self.bind_log.push(self.groups.len() - 1);
            }
        }
    }

    fn unbind(&mut self) {
        let gi = self.bind_log.pop().expect("unbind under bind");
        self.groups[gi].members.pop();
        if self.groups[gi].members.is_empty() {
            // A group emptied by undo is necessarily the newest one.
            self.groups.remove(gi);
        }
    }

    /// Analytic cost of the current partial assignment: every live group
    /// costed with the exact lowering arithmetic, summed fresh in
    /// creation order (no incremental float drift).
    fn partial_cost(&self) -> f64 {
        let mut total = 0.0f64;
        for g in &self.groups {
            let (i0, j0) = g.members[0];
            let mut bytes = 0.0f64;
            for &(i, j) in &g.members {
                bytes += self.cm.bytes[i][j];
            }
            let (rounds, kind, shape) = self.cm.head_rounds[i0][j0];
            let msg = lowered_msg(
                self.cm.coll.as_ref(),
                bytes,
                rounds,
                kind,
                shape,
                g.members.len() as u64,
            );
            total += self.cm.mult[i0][j0] * msg.time_us(self.net);
        }
        total
    }

    /// True when an earlier partial assignment reached the same frontier
    /// strictly cheaper: same depth, same placements among the positions
    /// the remaining entries can still reach. The frozen remainder then
    /// costs strictly more for any completion. Strict margin only — exact
    /// ties both survive, preserving the lex-min index tie-break.
    fn dominated(&mut self, d: usize, g: f64) -> bool {
        let rc = &self.cm.rc[d];
        let mut key: Vec<u64> = Vec::with_capacity(2 * d + 1);
        key.push(d as u64);
        for i in 0..d {
            let enc = self.cm.pos_enc[i][self.digits[i]];
            if rc.contains(&enc) {
                key.push(i as u64);
                key.push(enc);
            }
        }
        match self.dom.get_mut(&key) {
            Some(prev) => {
                if g > *prev + slack(*prev) {
                    return true;
                }
                if g < *prev {
                    *prev = g;
                }
                false
            }
            None => {
                if self.dom.len() < DOM_CAP {
                    self.dom.insert(key, g);
                }
                false
            }
        }
    }

    fn leaf_index(&self) -> u64 {
        let mut idx = 0u64;
        for (i, &j) in self.digits.iter().enumerate() {
            idx = idx.saturating_add(self.strides[i].saturating_mul(j as u64));
        }
        idx
    }

    /// Scores a surviving complete assignment with the simulator — the
    /// same arithmetic as the exhaustive reference, so costs (and the
    /// recorded winner) are bit-identical between the two searches.
    fn score_leaf(&mut self) {
        let idx = self.leaf_index();
        let assignment: Vec<Pos> = self
            .digits
            .iter()
            .zip(&self.space.choice_sets)
            .map(|(&j, set)| set[j])
            .collect();
        let (ctx, policy, cfg, net, space) =
            (self.ctx, self.policy, self.cfg, self.net, self.space);
        if self.scratch.is_none() {
            self.scratch = Some(self.base.clone());
        }
        let scratch = self.scratch.as_mut().expect("scratch just set");
        scratch.schedule.groups =
            group_assignment(ctx, &space.entries, &space.ids, &assignment, policy);
        let cost = simulate(&lower_to_sim_with(scratch, cfg, ctx), net).comm_us;
        self.leaves += 1;
        if cost < self.bound {
            self.bound = cost;
        }
        // The shared gate is only a recording filter: a cost strictly
        // above it can never be the global minimum, so skipping the
        // bookkeeping is safe for any interleaving.
        if cost <= self.gate.get() {
            let improves = match &self.best {
                None => true,
                Some((c, i, _)) => cost < *c || (cost == *c && idx < *i),
            };
            if improves {
                self.best = Some((cost, idx, self.digits.clone()));
            }
            self.gate.record(cost);
        }
    }

    fn dfs(&mut self, depth: usize) {
        if self.stopped {
            return;
        }
        let n = self.space.ids.len();
        if depth == n {
            self.score_leaf();
            return;
        }
        let (jlo, jhi) = if depth < self.k {
            (self.prefix[depth], self.prefix[depth] + 1)
        } else {
            (0, self.space.choice_sets[depth].len())
        };
        // Only branching decisions below the shared prefix are charged:
        // the prefix tree is charged once globally (not once per subtree),
        // and forced moves (single-candidate entries) expand nothing.
        let charged = depth >= self.k && self.space.choice_sets[depth].len() > 1;
        for j in jlo..jhi {
            if charged {
                if self.nodes >= self.allowance {
                    self.truncated = true;
                    self.stopped = true;
                    return;
                }
                self.nodes += 1;
            }
            self.digits[depth] = j;
            self.bind(depth, j);
            let g = self.partial_cost();
            let d = depth + 1;
            let lb = g + self.cm.h[d];
            if lb > self.bound + slack(self.bound) {
                self.pruned_bound += 1;
            } else if d < n && d > self.k && self.dominated(d, g) {
                self.pruned_dominance += 1;
            } else {
                self.dfs(d);
            }
            self.unbind();
            if self.stopped {
                return;
            }
        }
    }
}

/// Branch-and-bound optimal placement (serial reference path —
/// [`optimal_placement_jobs`] with one worker).
///
/// # Errors / `None`
///
/// Returns `None` when the program has no communication.
pub fn optimal_placement(
    compiled: &Compiled,
    policy: &CombinePolicy,
    cfg: &SimConfig,
    net: &NetworkModel,
    budget: &gcomm_guard::Budget,
) -> Option<OptimalResult> {
    optimal_placement_jobs(compiled, policy, cfg, net, budget, 1)
}

/// Branch-and-bound search for the cheapest candidate assignment, fanned
/// across `jobs` workers by work-stealing over subtree ranges.
///
/// Runs the same front half as the global strategy (entries, candidate
/// windows, redundancy elimination), then searches one choice of position
/// per surviving entry. The `budget` charges one step per **node
/// expanded** (entry binding, including each subtree's prefix bindings);
/// the node window is fixed up front from the budget's remaining steps,
/// split across subtrees proportionally, so every worker count expands
/// exactly the same nodes. An exhausted window truncates the search — the
/// seeded input schedule guarantees the result is never worse than what
/// the caller already had. See the module docs for the full determinism
/// contract.
///
/// Returns `None` when the program has no communication.
pub fn optimal_placement_jobs(
    compiled: &Compiled,
    policy: &CombinePolicy,
    cfg: &SimConfig,
    net: &NetworkModel,
    budget: &gcomm_guard::Budget,
    jobs: usize,
) -> Option<OptimalResult> {
    let (ctx, space) = front_half(compiled)?;
    let n = space.ids.len();
    let base = base_scratch(compiled, &space);
    let cm = build_cost_model(&base, cfg, net, &ctx, &space);
    let strides = strides(&space.choice_sets);

    // Seed the search with the input schedule so the result is never worse
    // than what the caller already has, even under truncation. Every
    // scoring call shares `ctx`, so SSA/dominators build once and each
    // `(entry, level)` section widens once for the whole search.
    let seed_cost = simulate(&lower_to_sim_with(compiled, cfg, &ctx), net).comm_us;
    let gate = MinF64::new(seed_cost);
    let reg = gcomm_obs::current();

    // The node window is fixed up front from the budget's remaining steps
    // (at least one node), so every worker count expands exactly the same
    // nodes no matter how charges interleave.
    let window = budget
        .step_cap()
        .map_or(u64::MAX, |cap| cap.saturating_sub(budget.steps_used()))
        .max(1);

    // Jobs-independent subtree split: fix the first `k` digits, smallest
    // `k` reaching SPLIT_TARGET prefixes without exceeding SPLIT_CAP —
    // both capped by the window, so a near-exhausted budget is not spent
    // duplicating prefix bindings across subtrees it could never explore.
    let mut k = 0usize;
    let mut prefixes: u64 = 1;
    while k < n && prefixes < SPLIT_TARGET.min(window) {
        let len = space.choice_sets[k].len() as u64;
        if prefixes.saturating_mul(len) > SPLIT_CAP.min(window) {
            break;
        }
        prefixes *= len;
        k += 1;
    }

    // The shared prefix tree's branching nodes are charged once, up
    // front — every subtree re-binds the same prefix digits, and charging
    // them per subtree would multiply the bill by the subtree count.
    let mut prefix_charged = 0u64;
    let mut width = 1u64;
    for cs in space.choice_sets.iter().take(k) {
        let len = cs.len() as u64;
        width = width.saturating_mul(len);
        if len > 1 {
            prefix_charged = prefix_charged.saturating_add(width);
        }
    }
    let subtree_window = window.saturating_sub(prefix_charged);

    // Runs one subtree under a node allowance. Reruns are from scratch:
    // a subtree's result depends only on its prefix and allowance, never
    // on worker scheduling.
    let run_task = |t: u64, allowance: u64| {
        // Workers inherit the coordinator's stats registry (counter sums
        // are scheduling-independent) and explore one subtree each.
        let _obs = reg.clone().map(gcomm_obs::install);
        let mut rem = t;
        let mut prefix = vec![0usize; k];
        for i in (0..k).rev() {
            let len = space.choice_sets[i].len() as u64;
            prefix[i] = (rem % len) as usize;
            rem /= len;
        }
        let mut s = Searcher {
            ctx: &ctx,
            space: &space,
            cm: &cm,
            policy,
            cfg,
            net,
            gate: &gate,
            base: &base,
            strides: &strides,
            prefix: &prefix,
            k,
            allowance,
            bound: seed_cost,
            digits: vec![0usize; n],
            groups: Vec::new(),
            bind_log: Vec::new(),
            dom: HashMap::new(),
            scratch: None,
            nodes: 0,
            leaves: 0,
            pruned_bound: 0,
            pruned_dominance: 0,
            truncated: false,
            stopped: false,
            best: None,
        };
        s.dfs(0);
        (
            s.best,
            s.nodes,
            s.leaves,
            s.pruned_bound,
            s.pruned_dominance,
            s.truncated,
        )
    };

    // Deterministic node allowances with barrier-round redistribution:
    // every subtree starts with a near-equal share of the window; after
    // each round, the window the completed subtrees left unused is
    // re-shared among the still-truncated ones, which rerun from scratch
    // with the larger allowance. Rounds are barriers and every share is
    // computed from per-subtree results, so coverage never depends on
    // worker scheduling — only the round count bounds the rerun waste.
    let share = |total: u64, count: u64, i: u64| total / count + u64::from(i < total % count);
    let p = prefixes as usize;
    let mut allowance: Vec<u64> = (0..prefixes)
        .map(|t| {
            if window == u64::MAX {
                u64::MAX
            } else {
                share(subtree_window, prefixes, t)
            }
        })
        .collect();
    type WorkerOut = (Option<(f64, u64, Vec<usize>)>, u64, u64, u64, u64, bool);
    let mut outs: Vec<Option<WorkerOut>> = (0..p).map(|_| None).collect();
    let mut pending: Vec<u64> = (0..prefixes).collect();
    const MAX_ROUNDS: usize = 32;
    for _round in 0..MAX_ROUNDS {
        let batch: Vec<(u64, u64)> = pending
            .iter()
            .map(|&t| (t, allowance[t as usize]))
            .collect();
        let round_outs = gcomm_par::map(jobs, &batch, |_, &(t, a)| run_task(t, a));
        for (&(t, _), out) in batch.iter().zip(round_outs) {
            outs[t as usize] = Some(out);
        }
        if window == u64::MAX {
            break;
        }
        // A truncated subtree consumed exactly its allowance; a complete
        // one consumed its node count — the difference is redistributable.
        let used: u64 = outs.iter().flatten().map(|o| o.1).sum();
        let leftover = subtree_window.saturating_sub(used);
        pending = outs
            .iter()
            .enumerate()
            .filter(|(_, o)| o.as_ref().is_some_and(|o| o.5))
            .map(|(t, _)| t as u64)
            .collect();
        if pending.is_empty() || leftover == 0 {
            break;
        }
        // Regrants at least double a subtree's allowance (a subtree whose
        // demand is D reaches it in O(log D) rounds), bounded by the
        // leftover pool; later subtrees starve first when the pool runs
        // dry — a deterministic order, never a scheduling-dependent one.
        let t_count = pending.len() as u64;
        let mut pool = leftover;
        for (i, &t) in pending.iter().enumerate() {
            let fair = share(leftover, t_count, i as u64);
            let grant = fair.max(allowance[t as usize]).min(pool);
            if grant == 0 {
                break;
            }
            allowance[t as usize] += grant;
            pool -= grant;
        }
    }

    let mut nodes = prefix_charged;
    let mut leaves = 0u64;
    let mut pruned_bound = 0u64;
    let mut pruned_dominance = 0u64;
    let mut truncated = false;
    // Deterministic merge: lexicographic minimum over (cost, index); the
    // seed wins ties against any searched assignment (strict `<` below).
    let mut best: Option<(f64, u64, Vec<usize>)> = None;
    for (cand, n_, l, pb, pd, t) in outs.into_iter().flatten() {
        nodes += n_;
        leaves += l;
        pruned_bound += pb;
        pruned_dominance += pd;
        truncated |= t;
        if let Some(cand) = cand {
            best = Some(match best {
                None => cand,
                Some(b) => {
                    if cand.0 < b.0 || (cand.0 == b.0 && cand.1 < b.1) {
                        cand
                    } else {
                        b
                    }
                }
            });
        }
    }
    budget.charge(nodes);
    gcomm_obs::count("search.nodes", nodes);
    gcomm_obs::count("search.pruned_bound", pruned_bound);
    gcomm_obs::count("search.pruned_dominance", pruned_dominance);
    if !truncated {
        gcomm_obs::count("search.complete", 1);
    }

    let (comm_us, schedule) = match best {
        Some((cost, _, digits)) if cost < seed_cost => {
            let assignment: Vec<Pos> = digits
                .iter()
                .zip(&space.choice_sets)
                .map(|(&j, set)| set[j])
                .collect();
            let mut sched = base.schedule.clone();
            sched.groups = group_assignment(&ctx, &space.entries, &space.ids, &assignment, policy);
            (cost, sched)
        }
        _ => (seed_cost, compiled.schedule.clone()),
    };
    Some(OptimalResult {
        schedule,
        comm_us,
        nodes,
        leaves,
        pruned_bound,
        pruned_dominance,
        space: space.space,
        truncated,
    })
}

// ---------------------------------------------------------------------------
// Retained exhaustive reference
// ---------------------------------------------------------------------------

/// Exhaustively enumerates and scores candidate assignments — the
/// retained reference the branch-and-bound search is differentially
/// tested against, and the baseline `BENCH_optimal.json` measures the
/// speedup over. Same front half, same enumeration order (entry 0
/// slowest), same `(cost, index)` merge; the `budget` charges one step
/// per assignment scored, window fixed up front.
///
/// Returns `None` when the program has no communication.
pub fn exhaustive_placement_jobs(
    compiled: &Compiled,
    policy: &CombinePolicy,
    cfg: &SimConfig,
    net: &NetworkModel,
    budget: &gcomm_guard::Budget,
    jobs: usize,
) -> Option<OptimalResult> {
    let (ctx, space) = front_half(compiled)?;
    let base = base_scratch(compiled, &space);
    let remaining = budget
        .step_cap()
        .map_or(u64::MAX, |cap| cap.saturating_sub(budget.steps_used()));
    let limit = space.space.min(remaining.max(1));
    let truncated = space.space > limit;

    let seed_cost = simulate(&lower_to_sim_with(compiled, cfg, &ctx), net).comm_us;
    let gate = MinF64::new(seed_cost);
    let reg = gcomm_obs::current();

    let ranges = gcomm_par::split_range(limit, jobs);
    let worker_best = gcomm_par::map(jobs, &ranges, |_, &(lo, hi)| {
        let _obs = reg.clone().map(gcomm_obs::install);
        let mut counters = decode_odometer(lo, &space.choice_sets);
        let mut scratch = base.clone();
        let mut local: Option<(f64, u64, Schedule)> = None;
        for idx in lo..hi {
            let assignment: Vec<Pos> = counters
                .iter()
                .zip(&space.choice_sets)
                .map(|(&c, set)| set[c])
                .collect();
            scratch.schedule.groups =
                group_assignment(&ctx, &space.entries, &space.ids, &assignment, policy);
            let cost = simulate(&lower_to_sim_with(&scratch, cfg, &ctx), net).comm_us;
            budget.charge(1);
            // Record through the shared gate: a cost strictly above it can
            // never win. Equal costs must still be recorded — a lower
            // index elsewhere may win the tie.
            if cost <= gate.get() {
                let improves = match &local {
                    None => true,
                    Some((lc, li, _)) => cost < *lc || (cost == *lc && idx < *li),
                };
                if improves {
                    local = Some((cost, idx, scratch.schedule.clone()));
                }
                gate.record(cost);
            }
            // Advance the odometer (last digit fastest).
            let mut i = counters.len();
            while i > 0 {
                i -= 1;
                counters[i] += 1;
                if counters[i] < space.choice_sets[i].len() {
                    break;
                }
                counters[i] = 0;
            }
        }
        local
    });

    let mut best: Option<(f64, u64, Schedule)> = None;
    for cand in worker_best.into_iter().flatten() {
        best = Some(match best {
            None => cand,
            Some(b) => {
                if cand.0 < b.0 || (cand.0 == b.0 && cand.1 < b.1) {
                    cand
                } else {
                    b
                }
            }
        });
    }
    let (comm_us, schedule) = match best {
        Some((cost, _, sched)) if cost < seed_cost => (cost, sched),
        _ => (seed_cost, compiled.schedule.clone()),
    };
    Some(OptimalResult {
        schedule,
        comm_us,
        nodes: limit,
        leaves: limit,
        pruned_bound: 0,
        pruned_dominance: 0,
        space: space.space,
        truncated,
    })
}

/// Decodes a linear assignment index into odometer digits (entry 0
/// slowest, the last entry fastest — the canonical enumeration order both
/// searches share).
fn decode_odometer(idx: u64, choice_sets: &[Vec<Pos>]) -> Vec<usize> {
    let mut rem = idx;
    let mut out = vec![0usize; choice_sets.len()];
    for i in (0..choice_sets.len()).rev() {
        let len = choice_sets[i].len() as u64;
        out[i] = (rem % len) as usize;
        rem /= len;
    }
    out
}

/// Partitions an assignment into compatibility groups (same first-fit rule
/// as the greedy's final grouping, for a like-for-like comparison).
fn group_assignment(
    ctx: &AnalysisCtx<'_>,
    entries: &[crate::entry::CommEntry],
    ids: &[EntryId],
    assignment: &[Pos],
    policy: &CombinePolicy,
) -> Vec<PlacedGroup> {
    use std::collections::BTreeMap;
    let mut by_pos: BTreeMap<Pos, Vec<EntryId>> = BTreeMap::new();
    for (&id, &pos) in ids.iter().zip(assignment.iter()) {
        by_pos.entry(pos).or_default().push(id);
    }
    let mut groups = Vec::new();
    for (pos, members) in by_pos {
        let level = pos.level(ctx.prog);
        let mut parts: Vec<Vec<EntryId>> = Vec::new();
        for id in members {
            let e = &entries[id.0 as usize];
            let slot = parts.iter_mut().find(|g| {
                g.iter()
                    .all(|&m| compatible(ctx, e, &entries[m.0 as usize], level, policy))
            });
            match slot {
                Some(g) => g.push(id),
                None => parts.push(vec![id]),
            }
        }
        for p in parts {
            let first = &entries[p[0].0 as usize];
            groups.push(PlacedGroup {
                pos,
                entries: p,
                mapping: first.mapping.clone(),
                kind: first.kind,
            });
        }
    }
    groups
}

// ---------------------------------------------------------------------------
// `--strategy optimal`
// ---------------------------------------------------------------------------

/// The `Strategy::Optimal` pipeline arm: run the global strategy, then
/// refine its schedule by branch-and-bound under the canonical scoring
/// model (SP2 network, balanced 8-processor grid, n = 64, nsteps = 4 —
/// the `compare_optimal` configuration). The search budget is the
/// caller's compile budget when it has a step cap, else a fresh
/// [`DEFAULT_SEARCH_NODES`] window; a truncated search is recorded in
/// [`Schedule::search`] so drivers and caches can treat the result as
/// degraded (never worse than `comb`, but not certified optimal).
pub(crate) fn optimal_strategy(
    ctx: &AnalysisCtx<'_>,
    entries: Vec<CommEntry>,
    policy: &CombinePolicy,
) -> Schedule {
    let seed = crate::strategy::global(ctx, entries, policy, true);
    let scratch = Compiled {
        prog: ctx.prog.clone(),
        schedule: seed,
        stats: Default::default(),
    };
    let rank = scratch
        .prog
        .arrays
        .iter()
        .map(|a| a.distributed_dims().len())
        .max()
        .unwrap_or(1)
        .max(1);
    let cfg = SimConfig::uniform(&scratch, ProcGrid::balanced(8, rank), 64).with("nsteps", 4);
    let net = NetworkModel::sp2();
    let budget = if ctx.budget.step_cap().is_some() {
        ctx.budget.clone()
    } else {
        gcomm_guard::Budget::steps(DEFAULT_SEARCH_NODES)
    };
    match optimal_placement_jobs(
        &scratch,
        policy,
        &cfg,
        &net,
        &budget,
        gcomm_par::default_jobs(),
    ) {
        Some(r) => {
            let mut s = r.schedule;
            s.strategy = Strategy::Optimal;
            s.search = Some(SearchOutcome {
                nodes: r.nodes,
                leaves: r.leaves,
                pruned_bound: r.pruned_bound,
                pruned_dominance: r.pruned_dominance,
                space: r.space,
                truncated: r.truncated,
            });
            s
        }
        None => {
            let mut s = scratch.schedule;
            s.strategy = Strategy::Optimal;
            s
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::compile;
    use gcomm_machine::ProcGrid;

    fn setup(src: &str) -> (Compiled, SimConfig, NetworkModel) {
        let c = compile(src, Strategy::Global).unwrap();
        let cfg = SimConfig::uniform(&c, ProcGrid::balanced(4, 2), 64).with("nsteps", 4);
        (c, cfg, NetworkModel::sp2())
    }

    #[test]
    fn greedy_matches_optimal_on_figure4() {
        let (c, cfg, net) = setup(gcomm_kernels_src::FIG4);
        let greedy_cost = comm_cost(&c, &cfg, &net);
        let budget = gcomm_guard::Budget::steps(100_000);
        let opt = optimal_placement(&c, &CombinePolicy::default(), &cfg, &net, &budget).unwrap();
        assert!(!opt.truncated);
        assert!(
            greedy_cost <= opt.comm_us * 1.0001,
            "greedy {greedy_cost} vs optimal {}",
            opt.comm_us
        );
        assert_eq!(opt.schedule.groups.len(), c.schedule.groups.len());
    }

    #[test]
    fn greedy_matches_optimal_on_two_reads() {
        let (c, cfg, net) = setup(gcomm_kernels_src::TWO_READS);
        let greedy_cost = comm_cost(&c, &cfg, &net);
        let budget = gcomm_guard::Budget::steps(100_000);
        let opt = optimal_placement(&c, &CombinePolicy::default(), &cfg, &net, &budget).unwrap();
        assert!(greedy_cost <= opt.comm_us * 1.0001);
    }

    #[test]
    fn optimal_never_beats_greedy_by_much_on_gauss() {
        let c = compile(gcomm_kernels_src::GAUSS, Strategy::Global).unwrap();
        let cfg = SimConfig::uniform(&c, ProcGrid::balanced(4, 2), 32).with("nsteps", 2);
        let net = NetworkModel::sp2();
        let greedy_cost = comm_cost(&c, &cfg, &net);
        let budget = gcomm_guard::Budget::steps(30_000);
        let opt = optimal_placement(&c, &CombinePolicy::default(), &cfg, &net, &budget).unwrap();
        // The greedy must be within 10% of the best assignment found.
        assert!(
            greedy_cost <= opt.comm_us * 1.10,
            "greedy {greedy_cost} vs optimal {} (nodes {}, truncated {})",
            opt.comm_us,
            opt.nodes,
            opt.truncated
        );
    }

    /// Branch-and-bound must return bit-identical results to the retained
    /// exhaustive reference when both complete (same cost bits, same
    /// schedule, same winner under the lex-min tie-break).
    #[test]
    fn bnb_matches_exhaustive_on_kernels() {
        for src in [
            gcomm_kernels_src::FIG4,
            gcomm_kernels_src::TWO_READS,
            gcomm_kernels_src::GAUSS,
        ] {
            let (c, cfg, net) = setup(src);
            let policy = CombinePolicy::default();
            let ex = exhaustive_placement_jobs(
                &c,
                &policy,
                &cfg,
                &net,
                &gcomm_guard::Budget::steps(2_000_000),
                1,
            )
            .unwrap();
            if ex.truncated {
                continue; // space too large for the reference; covered by fuzz suite
            }
            for jobs in [1usize, 8] {
                let bb = optimal_placement_jobs(
                    &c,
                    &policy,
                    &cfg,
                    &net,
                    &gcomm_guard::Budget::steps(2_000_000),
                    jobs,
                )
                .unwrap();
                assert!(!bb.truncated);
                assert_eq!(
                    bb.comm_us.to_bits(),
                    ex.comm_us.to_bits(),
                    "cost mismatch on kernel (jobs {jobs})"
                );
                assert_eq!(bb.schedule, ex.schedule, "schedule mismatch (jobs {jobs})");
            }
        }
    }

    /// Regression pin for admissibility: for every prefix of every
    /// complete assignment, the analytic bound `g + h[d]` must not exceed
    /// the cheapest simulated completion — pruning can never discard the
    /// true optimum.
    #[test]
    fn lower_bound_is_admissible_on_enumerated_subtrees() {
        for src in [gcomm_kernels_src::FIG4, gcomm_kernels_src::TWO_READS] {
            let (c, cfg, net) = setup(src);
            let policy = CombinePolicy::default();
            let (ctx, space) = front_half(&c).unwrap();
            let n = space.ids.len();
            let base = base_scratch(&c, &space);
            let cm = build_cost_model(&base, &cfg, &net, &ctx, &space);
            let st = strides(&space.choice_sets);
            assert!(space.space <= 4096, "kernel meant to be enumerable");

            // Simulated cost of every leaf, by index.
            let mut leaf_cost = vec![0.0f64; space.space as usize];
            let mut scratch = base.clone();
            for idx in 0..space.space {
                let digits = decode_odometer(idx, &space.choice_sets);
                let assignment: Vec<Pos> = digits
                    .iter()
                    .zip(&space.choice_sets)
                    .map(|(&j, set)| set[j])
                    .collect();
                scratch.schedule.groups =
                    group_assignment(&ctx, &space.entries, &space.ids, &assignment, &policy);
                leaf_cost[idx as usize] =
                    simulate(&lower_to_sim_with(&scratch, &cfg, &ctx), &net).comm_us;
            }

            // Every prefix: analytic g via the searcher's own incremental
            // grouping, then compare g + h[d] against the subtree minimum.
            let gate = MinF64::new(f64::INFINITY);
            let mut s = Searcher {
                ctx: &ctx,
                space: &space,
                cm: &cm,
                policy: &policy,
                cfg: &cfg,
                net: &net,
                gate: &gate,
                base: &base,
                strides: &st,
                prefix: &[],
                k: 0,
                allowance: u64::MAX,
                bound: f64::INFINITY,
                digits: vec![0usize; n],
                groups: Vec::new(),
                bind_log: Vec::new(),
                dom: HashMap::new(),
                scratch: None,
                nodes: 0,
                leaves: 0,
                pruned_bound: 0,
                pruned_dominance: 0,
                truncated: false,
                stopped: false,
                best: None,
            };
            for idx in 0..space.space {
                let digits = decode_odometer(idx, &space.choice_sets);
                for d in 1..=n {
                    // Prefix of depth d starting a subtree at this index
                    // only when the tail digits are all zero.
                    if digits[d..].iter().any(|&x| x != 0) {
                        continue;
                    }
                    for (i, &j) in digits[..d].iter().enumerate() {
                        s.digits[i] = j;
                        s.bind(i, j);
                    }
                    let g = s.partial_cost();
                    for _ in 0..d {
                        s.unbind();
                    }
                    let sub = st[d - 1]; // leaves under the depth-d prefix
                    let lo = idx as usize;
                    let hi = (idx + sub).min(space.space) as usize;
                    let min_completion = leaf_cost[lo..hi]
                        .iter()
                        .copied()
                        .fold(f64::INFINITY, f64::min);
                    assert!(
                        g + cm.h[d] <= min_completion + slack(min_completion),
                        "inadmissible bound at depth {d} idx {idx}: \
                         g+h = {} vs min completion {min_completion}",
                        g + cm.h[d]
                    );
                }
            }
        }
    }

    /// Kernel sources for tests (kept local to avoid a dev-dependency
    /// cycle with gcomm-kernels).
    mod gcomm_kernels_src {
        pub const FIG4: &str = "
program fig4
param n
real a(n,n), b(n,n), c(n,n), d(n,n) distribute (block, *)
real cond
b(1:n, 1:n:2) = 1
b(1:n, 2:n:2) = 2
if (cond > 0) then
  a(1:n, 1:n) = 3
else
  a(1:n, 1:n) = d(1:n, 1:n)
endif
do i = 2, n
  do j = 1, n, 2
    c(i, j) = a(i-1, j) + b(i-1, j)
  enddo
  do j = 1, n
    c(i, j) = a(i-1, j) + b(i-1, j)
  enddo
enddo
end";
        pub const TWO_READS: &str = "
program t
param n, nsteps
real a(n,n), b(n,n), c(n,n) distribute (block,block)
do t = 1, nsteps
  b(2:n, 1:n) = a(1:n-1, 1:n)
  c(2:n, 1:n) = a(1:n-1, 1:n)
  a(1:n, 1:n) = b(1:n, 1:n) + c(1:n, 1:n)
enddo
end";
        pub const GAUSS: &str = "
program gauss
param n, nsteps
real x(n,n), y(n,n), w(n,n), edge(n,n) distribute (block, block)
real acc(n,n) distribute (block, block)
do t = 1, nsteps
  acc(2:n, 2:n) = x(1:n-1, 2:n) + y(1:n-1, 2:n) + w(1:n-1, 2:n) + edge(1:n-1, 2:n) &
                + x(2:n, 1:n-1) + y(2:n, 1:n-1) + w(2:n, 1:n-1)
  acc(1:n-1, 1:n-1) = acc(1:n-1, 1:n-1) + x(2:n, 2:n) + y(2:n, 2:n) + w(2:n, 2:n)
  x(1:n, 1:n) = acc(1:n, 1:n)
  y(1:n, 1:n) = acc(1:n, 1:n) * 0.5
  w(1:n, 1:n) = acc(1:n, 1:n) * 0.25
  edge(1:n, 1:n) = acc(1:n, 1:n) * 0.125
enddo
end";
    }
}
