//! Static legality checking of a placed schedule.
//!
//! The invariants here are the ones `tests/schedule_legality.rs` enforces
//! on every kernel; they are factored into the library so the fuzzing
//! harness (and any external driver) can validate arbitrary — including
//! budget-degraded — schedules without duplicating the logic:
//!
//! 1. every placed group dominates all the uses it serves,
//! 2. every (non-absorbed) member's placement lies inside its full,
//!    *unbudgeted* `Earliest..Latest` candidate window (global strategy
//!    only — the other strategies place outside the single-copy window by
//!    design),
//! 3. group members are pairwise mapping-compatible,
//! 4. absorbed entries are covered: the absorber's final placement
//!    dominates the absorbed use and its data (at the placement's nesting
//!    level) subsumes the absorbed entry's,
//! 5. every entry is placed or absorbed exactly once.
//!
//! The checker always rebuilds its own unlimited-budget [`AnalysisCtx`]:
//! a degraded compile must satisfy the invariants *of the full analysis*
//! (degradation may only shrink windows and drop optimizations, never
//! step outside them).

use gcomm_ir::Pos;

use crate::candidates::candidates;
use crate::ctx::AnalysisCtx;
use crate::earliest::earliest_pos;
use crate::latest::latest;
use crate::pipeline::Compiled;
use crate::strategy::Strategy;

/// Outcome of [`check_schedule`]: empty `errors` means legal.
#[derive(Debug, Clone, Default)]
pub struct LegalityReport {
    /// One human-readable message per violated invariant instance.
    pub errors: Vec<String>,
}

impl LegalityReport {
    /// True when no invariant was violated.
    pub fn ok(&self) -> bool {
        self.errors.is_empty()
    }
}

impl std::fmt::Display for LegalityReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.ok() {
            write!(f, "schedule legal")
        } else {
            writeln!(f, "{} legality violation(s):", self.errors.len())?;
            for e in &self.errors {
                writeln!(f, "  {e}")?;
            }
            Ok(())
        }
    }
}

/// Checks every schedule-legality invariant applicable to the compiled
/// schedule's strategy. Never panics on malformed schedules — violations
/// are collected into the report.
pub fn check_schedule(c: &Compiled) -> LegalityReport {
    let mut rep = LegalityReport::default();
    let ctx = AnalysisCtx::new(&c.prog);
    let strategy = c.schedule.strategy;

    // 1. Groups dominate their uses.
    for g in &c.schedule.groups {
        for &eid in &g.entries {
            let e = c.schedule.entry(eid);
            let before_use = Pos::before(&c.prog, e.stmt);
            if !g.pos.dominates(&before_use, &ctx.dt) {
                rep.errors.push(format!(
                    "{strategy:?}: group at {:?} does not dominate use of {}",
                    g.pos, e.label
                ));
            }
        }
    }

    // 2. Placements lie inside the full candidate windows (Global only).
    if strategy == Strategy::Global {
        let absorbed: Vec<_> = c.schedule.absorptions.iter().map(|a| a.absorbed).collect();
        for g in &c.schedule.groups {
            for &eid in &g.entries {
                if absorbed.contains(&eid) {
                    continue;
                }
                let e = c.schedule.entry(eid);
                let ep = earliest_pos(&ctx, e);
                let lp = latest(&ctx, e);
                let cands = candidates(&ctx, e, ep, lp);
                if !cands.contains(&g.pos) {
                    rep.errors.push(format!(
                        "{}: placement {:?} outside candidate window [{ep:?} .. {lp:?}]",
                        e.label, g.pos
                    ));
                }
            }
        }
    }

    // 3. Group members are pairwise mapping-compatible.
    for g in &c.schedule.groups {
        for &a in &g.entries {
            for &b in &g.entries {
                let (ea, eb) = (c.schedule.entry(a), c.schedule.entry(b));
                if !ea.mapping.compatible(&eb.mapping) {
                    rep.errors.push(format!(
                        "{} and {} share a group but are mapping-incompatible",
                        ea.label, eb.label
                    ));
                }
            }
        }
    }

    // 4. Absorbed entries are covered by their absorber's final placement.
    // Absorptions may chain (A absorbed by B, B absorbed by C — the global
    // algorithm inherits B's obligations into C), so resolve each record to
    // the entry that is actually placed before checking coverage.
    if matches!(
        strategy,
        Strategy::EarliestRE | Strategy::EarliestPartialRE | Strategy::Global
    ) {
        for a in &c.schedule.absorptions {
            let mut by = a.by;
            for _ in 0..c.schedule.absorptions.len() {
                match c.schedule.absorptions.iter().find(|n| n.absorbed == by) {
                    Some(next) => by = next.by,
                    None => break,
                }
            }
            let Some(group) = c.schedule.groups.iter().find(|g| g.entries.contains(&by)) else {
                rep.errors
                    .push(format!("absorber {by:?} is not placed anywhere"));
                continue;
            };
            let absorbed = c.schedule.entry(a.absorbed);
            let before_use = Pos::before(&c.prog, absorbed.stmt);
            if !group.pos.dominates(&before_use, &ctx.dt) {
                rep.errors.push(format!(
                    "{strategy:?}: absorber of {} placed after the absorbed use",
                    absorbed.label
                ));
            }
            let lvl = group.pos.level(&c.prog);
            let cover = ctx.asd_at(c.schedule.entry(by), lvl);
            let need = ctx.asd_at(absorbed, lvl);
            if !need.subsumed_by(&cover, &ctx.sym) {
                rep.errors.push(format!(
                    "{strategy:?}: data of {} not covered by {}",
                    absorbed.label,
                    c.schedule.entry(by).label
                ));
            }
        }
    }

    // 5. Every entry is placed or absorbed exactly once.
    for e in &c.schedule.entries {
        let placed = c
            .schedule
            .groups
            .iter()
            .filter(|g| g.entries.contains(&e.id))
            .count();
        let absorbed = c
            .schedule
            .absorptions
            .iter()
            .filter(|a| a.absorbed == e.id)
            .count();
        if placed + absorbed != 1 {
            rep.errors.push(format!(
                "{strategy:?}: entry {} placed {placed}x, absorbed {absorbed}x",
                e.label
            ));
        }
    }

    rep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::compile;
    use crate::schedule::PlacedGroup;

    const SRC: &str = "
program t
param n
real a(n,n), b(n,n), c(n,n) distribute (block,block)
b(2:n, 1:n) = a(1:n-1, 1:n)
c(2:n, 1:n) = a(1:n-1, 1:n)
end";

    #[test]
    fn clean_compiles_are_legal() {
        for s in [Strategy::Original, Strategy::EarliestRE, Strategy::Global] {
            let c = compile(SRC, s).unwrap();
            let rep = check_schedule(&c);
            assert!(rep.ok(), "{rep}");
        }
    }

    #[test]
    fn dropped_group_is_reported() {
        let mut c = compile(SRC, Strategy::Global).unwrap();
        c.schedule.groups.clear();
        let rep = check_schedule(&c);
        assert!(!rep.ok());
        assert!(rep.to_string().contains("legality violation"));
    }

    #[test]
    fn duplicated_group_is_reported() {
        let mut c = compile(SRC, Strategy::Original).unwrap();
        let extra: Vec<PlacedGroup> = c.schedule.groups.clone();
        c.schedule.groups.extend(extra);
        let rep = check_schedule(&c);
        assert!(!rep.ok());
    }
}
