//! The three code versions of the paper's evaluation (§5).
//!
//! * [`Strategy::Original`] — the baseline: "pulls communication into
//!   outermost possible loops but does not detect redundancy or perform
//!   message scheduling" (per-reference `Latest` placement).
//! * [`Strategy::EarliestRE`] — "uses earliest placement for redundancy
//!   elimination but does not perform message scheduling or combining".
//! * [`Strategy::Global`] — this paper's algorithm: candidates, subset
//!   elimination, global redundancy elimination, greedy combining.

use gcomm_ir::Pos;

use crate::candidates::candidates;
use crate::ctx::AnalysisCtx;
use crate::earliest::earliest_pos;
use crate::entry::CommEntry;
use crate::greedy::{choose, CombinePolicy};
use crate::latest::latest;
use crate::redundancy::{self, Absorption};
use crate::schedule::{PlacedGroup, Schedule};
use crate::subset::{subset_eliminate, CandidateTable};

/// Which communication-placement strategy to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Message vectorization only (the paper's `orig` bars).
    Original,
    /// Earliest placement + redundancy elimination (the `nored` bars).
    EarliestRE,
    /// Earliest placement with *partial* redundancy elimination: subsumed
    /// communication is dropped, and partially-covered communication ships
    /// only the residual section (the behaviour of Gupta–Schonberg–
    /// Srinivasan \[14\] that §4.6 contrasts against; extension).
    EarliestPartialRE,
    /// The paper's global algorithm (the `comb` bars).
    Global,
    /// The global algorithm refined by branch-and-bound optimal search
    /// (extension; paper §6.1): starts from the `comb` schedule, then
    /// searches candidate assignments under a node budget for a cheaper
    /// one under the canonical scoring model. Never worse than `comb`;
    /// certified optimal when the search completes within budget.
    Optimal,
}

impl Strategy {
    /// Parses the canonical CLI/protocol name (`orig`, `nored`, `partial`,
    /// `comb`, `optimal`) — the single source of truth for every driver
    /// and for the compile-service protocol.
    pub fn parse(s: &str) -> Option<Strategy> {
        match s {
            "orig" => Some(Strategy::Original),
            "nored" => Some(Strategy::EarliestRE),
            "partial" => Some(Strategy::EarliestPartialRE),
            "comb" => Some(Strategy::Global),
            "optimal" => Some(Strategy::Optimal),
            _ => None,
        }
    }

    /// The canonical name [`Strategy::parse`] accepts.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::Original => "orig",
            Strategy::EarliestRE => "nored",
            Strategy::EarliestPartialRE => "partial",
            Strategy::Global => "comb",
            Strategy::Optimal => "optimal",
        }
    }
}

/// Runs a strategy over pre-generated entries.
pub fn run(ctx: &AnalysisCtx<'_>, entries: Vec<CommEntry>, strategy: Strategy) -> Schedule {
    run_with_policy(ctx, entries, strategy, &CombinePolicy::default())
}

/// Runs a strategy with an explicit combining policy (for ablations).
pub fn run_with_policy(
    ctx: &AnalysisCtx<'_>,
    entries: Vec<CommEntry>,
    strategy: Strategy,
    policy: &CombinePolicy,
) -> Schedule {
    match strategy {
        Strategy::Original => original(ctx, entries),
        Strategy::EarliestRE => earliest_re(ctx, entries),
        Strategy::EarliestPartialRE => earliest_partial_re(ctx, entries),
        Strategy::Global => global(ctx, entries, policy, true),
        Strategy::Optimal => crate::optimal::optimal_strategy(ctx, entries, policy),
    }
}

/// Runs the global strategy with subset elimination optionally disabled
/// (ablation A3; §6 notes the step must be dropped when overlap matters).
pub fn run_global_ablation(
    ctx: &AnalysisCtx<'_>,
    entries: Vec<CommEntry>,
    policy: &CombinePolicy,
    subset_elim: bool,
) -> Schedule {
    global(ctx, entries, policy, subset_elim)
}

fn singleton_groups(entries: &[CommEntry], pos_of: impl Fn(&CommEntry) -> Pos) -> Vec<PlacedGroup> {
    entries
        .iter()
        .map(|e| PlacedGroup {
            pos: pos_of(e),
            entries: vec![e.id],
            mapping: e.mapping.clone(),
            kind: e.kind,
        })
        .collect()
}

fn original(ctx: &AnalysisCtx<'_>, entries: Vec<CommEntry>) -> Schedule {
    let groups = singleton_groups(&entries, |e| latest(ctx, e));
    Schedule {
        strategy: Strategy::Original,
        entries,
        groups,
        absorptions: Vec::new(),
        section_overrides: Vec::new(),
        search: None,
    }
}

fn earliest_re(ctx: &AnalysisCtx<'_>, entries: Vec<CommEntry>) -> Schedule {
    // Place everything at its earliest point (reductions stay at their
    // statement). When the budget exhausts mid-stream the remaining
    // entries fall back to their `Latest` position — the `Original`
    // placement, legal but without hoisting.
    let lat: Vec<Pos> = entries.iter().map(|e| latest(ctx, e)).collect();
    let pos: Vec<Pos> = entries
        .iter()
        .enumerate()
        .map(|(i, e)| {
            if e.is_reduction() {
                lat[i]
            } else if ctx.budget.exhausted() {
                gcomm_obs::count("core.degraded.candidates", 1);
                lat[i]
            } else {
                earliest_pos(ctx, e)
            }
        })
        .collect();

    // Pairwise redundancy elimination: an entry is covered by an earlier,
    // dominating entry whose vectorized data subsumes it. Each pair charges
    // the budget; on exhaustion the scan stops and the remaining entries
    // simply keep their own communication (conservative but legal).
    let mut order: Vec<usize> = (0..entries.len()).collect();
    order.sort_by_key(|&i| (ctx.dt.depth(pos[i].node), pos[i].slot, entries[i].id));
    let mut alive = vec![true; entries.len()];
    // An entry that has absorbed others must keep its own communication:
    // absorbing it too would leave its dependents' data unserved (the
    // paper's global algorithm inherits such obligations through chains;
    // here we simply refuse the chain). Found by the fuzzing harness.
    let mut absorber = vec![false; entries.len()];
    let mut absorptions = Vec::new();
    'outer: for (oi, &i2) in order.iter().enumerate() {
        for &i1 in &order[..oi] {
            if !ctx.budget.charge(1) {
                gcomm_obs::count("core.degraded.redundancy", 1);
                break 'outer;
            }
            if !alive[i1] || !alive[i2] {
                continue;
            }
            // The cover's data must still be valid at the covered use.
            // Two sound placements (found by the fuzzing harness: a
            // self-updating array read twice in one loop body used to be
            // absorbed across its own killing write):
            //  * inside the covered entry's legal window [earliest ..
            //    latest] — no definition there kills the covered section;
            //  * above that window, provided the covered entry's earliest
            //    point dominates the cover's own use — then no definition
            //    kills ASD(i1) ⊇ ASD(i2) down to that use, and none kills
            //    ASD(i2) from its earliest on, so validity chains through.
            let in_window =
                pos[i2].dominates(&pos[i1], &ctx.dt) && pos[i1].dominates(&lat[i2], &ctx.dt);
            let chains = pos[i1].dominates(&pos[i2], &ctx.dt)
                && pos[i2].dominates(&Pos::before(ctx.prog, entries[i1].stmt), &ctx.dt);
            if !in_window && !chains {
                continue;
            }
            let lvl = pos[i1].level(ctx.prog);
            if !absorber[i2] && ctx.subsumed_within(&entries[i2], &entries[i1], lvl) {
                alive[i2] = false;
                absorber[i1] = true;
                absorptions.push(Absorption {
                    absorbed: entries[i2].id,
                    by: entries[i1].id,
                });
                break;
            }
            // At the *same* point the pair may subsume in either direction
            // (the classic per-statement pairwise test); across distinct
            // points only a dominating communication can cover a later one.
            if pos[i1] == pos[i2]
                && !absorber[i1]
                && ctx.subsumed_within(&entries[i1], &entries[i2], lvl)
            {
                alive[i1] = false;
                absorber[i2] = true;
                absorptions.push(Absorption {
                    absorbed: entries[i1].id,
                    by: entries[i2].id,
                });
            }
        }
    }

    let groups = entries
        .iter()
        .enumerate()
        .filter(|(i, _)| alive[*i])
        .map(|(i, e)| PlacedGroup {
            pos: pos[i],
            entries: vec![e.id],
            mapping: e.mapping.clone(),
            kind: e.kind,
        })
        .collect();
    Schedule {
        strategy: Strategy::EarliestRE,
        entries,
        groups,
        absorptions,
        section_overrides: Vec::new(),
        search: None,
    }
}

/// Earliest placement with partial redundancy elimination: like
/// [`earliest_re`], but a communication only partially covered by an
/// earlier dominating one ships its residual section (when expressible as
/// one regular section). This reproduces the [14] behaviour §4.6 describes
/// on the running example: "reduce the communication for b2 to
/// ASD(b2) − ASD(b1), while the communication for b1 would remain".
fn earliest_partial_re(ctx: &AnalysisCtx<'_>, entries: Vec<CommEntry>) -> Schedule {
    let base = earliest_re(ctx, entries);
    let absorbed: Vec<_> = base.absorptions.iter().map(|a| a.absorbed).collect();
    let absorbers: Vec<_> = base.absorptions.iter().map(|a| a.by).collect();
    let mut overrides: Vec<(crate::entry::EntryId, gcomm_sections::Section)> = Vec::new();

    // For every surviving pair at comparable placements, try to shave the
    // later entry's section by the earlier one's. Each pair charges the
    // budget; on exhaustion the remaining entries just ship their full
    // sections (no override), which is always legal.
    let groups = &base.groups;
    'outer: for gi in groups {
        for gj in groups {
            if !ctx.budget.charge(1) {
                gcomm_obs::count("core.degraded.redundancy", 1);
                break 'outer;
            }
            let (ei, ej) = (gi.entries[0], gj.entries[0]);
            // A cover serves others with its FULL section, so it must not
            // itself have been shaved (`ei` overridden), and an entry that
            // absorbed others is obligated to its full section and cannot
            // be shaved (`ej` an absorber). Without these two exclusions a
            // pair at one position can shave each other mutually and the
            // intersection goes unshipped. (Found by the fuzzing harness.)
            if ei == ej
                || absorbed.contains(&ei)
                || absorbed.contains(&ej)
                || absorbers.contains(&ej)
                || overrides.iter().any(|(id, _)| *id == ej || *id == ei)
            {
                continue;
            }
            let (a, b) = (base.entry(ei), base.entry(ej));
            if a.array != b.array || !a.mapping.subset_of(&b.mapping) {
                continue;
            }
            // Same staleness rule as the full absorption above: the served
            // intersection ⊆ ASD(cover) stays valid down to the cover's
            // own use, and ⊆ ASD(shaved) from the shaved entry's earliest
            // on — so the shaved use must sit below both.
            if !gi.pos.dominates(&gj.pos, &ctx.dt)
                || !gj.pos.dominates(&Pos::before(ctx.prog, a.stmt), &ctx.dt)
                || gi.pos.level(ctx.prog) != gj.pos.level(ctx.prog)
            {
                continue;
            }
            let lvl = gj.pos.level(ctx.prog);
            let full = ctx.asd_shared(b, lvl).0;
            let cover = ctx.asd_shared(a, lvl).0;
            if let Some(residual) = full.section.subtract(&cover.section, &ctx.sym) {
                overrides.push((ej, residual));
            }
        }
    }

    Schedule {
        strategy: Strategy::EarliestPartialRE,
        section_overrides: overrides,
        ..base
    }
}

pub(crate) fn global(
    ctx: &AnalysisCtx<'_>,
    entries: Vec<CommEntry>,
    policy: &CombinePolicy,
    subset_elim: bool,
) -> Schedule {
    let mut table = CandidateTable::default();
    {
        let _s = gcomm_obs::span("core.candidates");
        for e in &entries {
            let lp = latest(ctx, e);
            // Once the budget is gone, skip the earliest-placement SSA walk
            // entirely: candidates() degrades to {latest} regardless, and
            // latest() alone is both cheap and always legal.
            let ep = if ctx.budget.exhausted() {
                lp
            } else {
                earliest_pos(ctx, e)
            };
            let cands = candidates(ctx, e, ep, lp);
            gcomm_obs::count("core.candidate_positions", cands.len() as u64);
            table.cands.insert(e.id, cands);
        }
    }
    if subset_elim {
        subset_eliminate(&mut table, &ctx.dt, &ctx.budget);
    }
    let absorptions = redundancy::eliminate(ctx, &entries, &mut table);
    let groups = choose(ctx, &entries, &mut table, policy);
    Schedule {
        strategy: Strategy::Global,
        entries,
        groups,
        absorptions,
        section_overrides: Vec::new(),
        search: None,
    }
}
