//! The three code versions of the paper's evaluation (§5).
//!
//! * [`Strategy::Original`] — the baseline: "pulls communication into
//!   outermost possible loops but does not detect redundancy or perform
//!   message scheduling" (per-reference `Latest` placement).
//! * [`Strategy::EarliestRE`] — "uses earliest placement for redundancy
//!   elimination but does not perform message scheduling or combining".
//! * [`Strategy::Global`] — this paper's algorithm: candidates, subset
//!   elimination, global redundancy elimination, greedy combining.

use gcomm_ir::Pos;

use crate::candidates::candidates;
use crate::ctx::AnalysisCtx;
use crate::earliest::earliest_pos;
use crate::entry::CommEntry;
use crate::greedy::{choose, CombinePolicy};
use crate::latest::latest;
use crate::redundancy::{self, Absorption};
use crate::schedule::{PlacedGroup, Schedule};
use crate::subset::{subset_eliminate, CandidateTable};

/// Which communication-placement strategy to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Message vectorization only (the paper's `orig` bars).
    Original,
    /// Earliest placement + redundancy elimination (the `nored` bars).
    EarliestRE,
    /// Earliest placement with *partial* redundancy elimination: subsumed
    /// communication is dropped, and partially-covered communication ships
    /// only the residual section (the behaviour of Gupta–Schonberg–
    /// Srinivasan \[14\] that §4.6 contrasts against; extension).
    EarliestPartialRE,
    /// The paper's global algorithm (the `comb` bars).
    Global,
}

/// Runs a strategy over pre-generated entries.
pub fn run(ctx: &AnalysisCtx<'_>, entries: Vec<CommEntry>, strategy: Strategy) -> Schedule {
    run_with_policy(ctx, entries, strategy, &CombinePolicy::default())
}

/// Runs a strategy with an explicit combining policy (for ablations).
pub fn run_with_policy(
    ctx: &AnalysisCtx<'_>,
    entries: Vec<CommEntry>,
    strategy: Strategy,
    policy: &CombinePolicy,
) -> Schedule {
    match strategy {
        Strategy::Original => original(ctx, entries),
        Strategy::EarliestRE => earliest_re(ctx, entries),
        Strategy::EarliestPartialRE => earliest_partial_re(ctx, entries),
        Strategy::Global => global(ctx, entries, policy, true),
    }
}

/// Runs the global strategy with subset elimination optionally disabled
/// (ablation A3; §6 notes the step must be dropped when overlap matters).
pub fn run_global_ablation(
    ctx: &AnalysisCtx<'_>,
    entries: Vec<CommEntry>,
    policy: &CombinePolicy,
    subset_elim: bool,
) -> Schedule {
    global(ctx, entries, policy, subset_elim)
}

fn singleton_groups(entries: &[CommEntry], pos_of: impl Fn(&CommEntry) -> Pos) -> Vec<PlacedGroup> {
    entries
        .iter()
        .map(|e| PlacedGroup {
            pos: pos_of(e),
            entries: vec![e.id],
            mapping: e.mapping.clone(),
            kind: e.kind,
        })
        .collect()
}

fn original(ctx: &AnalysisCtx<'_>, entries: Vec<CommEntry>) -> Schedule {
    let groups = singleton_groups(&entries, |e| latest(ctx, e));
    Schedule {
        strategy: Strategy::Original,
        entries,
        groups,
        absorptions: Vec::new(),
        section_overrides: Vec::new(),
    }
}

fn earliest_re(ctx: &AnalysisCtx<'_>, entries: Vec<CommEntry>) -> Schedule {
    // Place everything at its earliest point (reductions stay at their
    // statement).
    let pos: Vec<Pos> = entries
        .iter()
        .map(|e| {
            if e.is_reduction() {
                latest(ctx, e)
            } else {
                earliest_pos(ctx, e)
            }
        })
        .collect();

    // Pairwise redundancy elimination: an entry is covered by an earlier,
    // dominating entry whose vectorized data subsumes it.
    let mut order: Vec<usize> = (0..entries.len()).collect();
    order.sort_by_key(|&i| (ctx.dt.depth(pos[i].node), pos[i].slot, entries[i].id));
    let mut alive = vec![true; entries.len()];
    let mut absorptions = Vec::new();
    for (oi, &i2) in order.iter().enumerate() {
        for &i1 in &order[..oi] {
            if !alive[i1] || !alive[i2] {
                continue;
            }
            if !pos[i1].dominates(&pos[i2], &ctx.dt) {
                continue;
            }
            let lvl = pos[i1].level(ctx.prog);
            let a1 = ctx.asd_at(&entries[i1], lvl);
            let a2 = ctx.asd_at(&entries[i2], lvl);
            if a2.subsumed_by(&a1, &ctx.sym) {
                alive[i2] = false;
                absorptions.push(Absorption {
                    absorbed: entries[i2].id,
                    by: entries[i1].id,
                });
                break;
            }
            // At the *same* point the pair may subsume in either direction
            // (the classic per-statement pairwise test); across distinct
            // points only a dominating communication can cover a later one.
            if pos[i1] == pos[i2] && a1.subsumed_by(&a2, &ctx.sym) {
                alive[i1] = false;
                absorptions.push(Absorption {
                    absorbed: entries[i1].id,
                    by: entries[i2].id,
                });
            }
        }
    }

    let groups = entries
        .iter()
        .enumerate()
        .filter(|(i, _)| alive[*i])
        .map(|(i, e)| PlacedGroup {
            pos: pos[i],
            entries: vec![e.id],
            mapping: e.mapping.clone(),
            kind: e.kind,
        })
        .collect();
    Schedule {
        strategy: Strategy::EarliestRE,
        entries,
        groups,
        absorptions,
        section_overrides: Vec::new(),
    }
}

/// Earliest placement with partial redundancy elimination: like
/// [`earliest_re`], but a communication only partially covered by an
/// earlier dominating one ships its residual section (when expressible as
/// one regular section). This reproduces the [14] behaviour §4.6 describes
/// on the running example: "reduce the communication for b2 to
/// ASD(b2) − ASD(b1), while the communication for b1 would remain".
fn earliest_partial_re(ctx: &AnalysisCtx<'_>, entries: Vec<CommEntry>) -> Schedule {
    let base = earliest_re(ctx, entries);
    let absorbed: Vec<_> = base.absorptions.iter().map(|a| a.absorbed).collect();
    let mut overrides = Vec::new();

    // For every surviving pair at comparable placements, try to shave the
    // later entry's section by the earlier one's.
    let groups = &base.groups;
    for gi in groups {
        for gj in groups {
            let (ei, ej) = (gi.entries[0], gj.entries[0]);
            if ei == ej
                || absorbed.contains(&ei)
                || absorbed.contains(&ej)
                || overrides.iter().any(|(id, _)| *id == ej)
            {
                continue;
            }
            let (a, b) = (base.entry(ei), base.entry(ej));
            if a.array != b.array || !a.mapping.subset_of(&b.mapping) {
                continue;
            }
            if !gi.pos.dominates(&gj.pos, &ctx.dt)
                || gi.pos.level(ctx.prog) != gj.pos.level(ctx.prog)
            {
                continue;
            }
            let lvl = gj.pos.level(ctx.prog);
            let full = ctx.section_at(b, lvl);
            let cover = ctx.section_at(a, lvl);
            if let Some(residual) = full.subtract(&cover, &ctx.sym) {
                overrides.push((ej, residual));
            }
        }
    }

    Schedule {
        strategy: Strategy::EarliestPartialRE,
        section_overrides: overrides,
        ..base
    }
}

fn global(
    ctx: &AnalysisCtx<'_>,
    entries: Vec<CommEntry>,
    policy: &CombinePolicy,
    subset_elim: bool,
) -> Schedule {
    let mut table = CandidateTable::default();
    {
        let _s = gcomm_obs::span("core.candidates");
        for e in &entries {
            let ep = earliest_pos(ctx, e);
            let lp = latest(ctx, e);
            let cands = candidates(ctx, e, ep, lp);
            gcomm_obs::count("core.candidate_positions", cands.len() as u64);
            table.cands.insert(e.id, cands);
        }
    }
    if subset_elim {
        subset_eliminate(&mut table, &ctx.dt);
    }
    let absorptions = redundancy::eliminate(ctx, &entries, &mut table);
    let groups = choose(ctx, &entries, &mut table, policy);
    Schedule {
        strategy: Strategy::Global,
        entries,
        groups,
        absorptions,
        section_overrides: Vec::new(),
    }
}
