//! End-to-end driver: source text → placed communication schedule.

use std::fmt;

use gcomm_ir::IrProgram;

use crate::commgen;
use crate::ctx::AnalysisCtx;
use crate::greedy::CombinePolicy;
use crate::schedule::Schedule;
use crate::strategy::{self, Strategy};

/// An error from any stage of the compilation pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreError {
    /// Description of the failure.
    pub message: String,
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for CoreError {}

impl From<gcomm_lang::LangError> for CoreError {
    fn from(e: gcomm_lang::LangError) -> Self {
        CoreError {
            message: e.to_string(),
        }
    }
}

impl From<gcomm_ir::LowerError> for CoreError {
    fn from(e: gcomm_ir::LowerError) -> Self {
        CoreError {
            message: e.to_string(),
        }
    }
}

/// A compiled procedure: the lowered program plus its schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct Compiled {
    /// The lowered program.
    pub prog: IrProgram,
    /// The placed communication schedule.
    pub schedule: Schedule,
}

impl Compiled {
    /// Static communication call sites per processor.
    pub fn static_messages(&self) -> usize {
        self.schedule.static_messages()
    }

    /// Human-readable placement report.
    pub fn report(&self) -> String {
        self.schedule.report(&self.prog)
    }
}

/// Compiles mini-HPF source under a strategy with the default combining
/// policy.
///
/// # Errors
///
/// Returns [`CoreError`] on parse, validation, or lowering failure.
pub fn compile(src: &str, strategy: Strategy) -> Result<Compiled, CoreError> {
    compile_with_policy(src, strategy, &CombinePolicy::default())
}

/// Compiles with an explicit combining policy (for ablations).
///
/// # Errors
///
/// Returns [`CoreError`] on parse, validation, or lowering failure.
pub fn compile_with_policy(
    src: &str,
    strategy: Strategy,
    policy: &CombinePolicy,
) -> Result<Compiled, CoreError> {
    let ast = gcomm_lang::parse_program(src)?;
    let prog = gcomm_ir::lower(&ast)?;
    let schedule = compile_program(&prog, strategy, policy);
    Ok(Compiled { prog, schedule })
}

/// Compiles like [`compile`], but accumulates frontend diagnostics instead
/// of stopping at the first: the parser recovers at statement boundaries
/// and reports every independent syntax error; a clean parse that fails
/// validation or lowering reports those errors with source lines.
///
/// # Errors
///
/// Returns every diagnostic collected (never an empty vector).
pub fn compile_diagnostics(src: &str, strategy: Strategy) -> Result<Compiled, Vec<CoreError>> {
    let ast = gcomm_lang::parse_program_diagnostics(src)
        .map_err(|errs| errs.into_iter().map(CoreError::from).collect::<Vec<_>>())?;
    let prog = gcomm_ir::lower(&ast).map_err(|e| vec![CoreError::from(e)])?;
    let schedule = compile_program(&prog, strategy, &CombinePolicy::default());
    Ok(Compiled { prog, schedule })
}

/// Runs a strategy over an already-lowered program.
pub fn compile_program(prog: &IrProgram, strategy: Strategy, policy: &CombinePolicy) -> Schedule {
    let entries = commgen::number(commgen::generate(prog));
    let ctx = AnalysisCtx::new(prog);
    strategy::run_with_policy(&ctx, entries, strategy, policy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::CommKind;

    /// The running example of the paper (Figure 4), adapted to the mini-HPF
    /// syntax: `a` defined under a condition, `b` written in two strided
    /// halves, both read shifted inside the loop nest.
    const FIG4: &str = "
program fig4
param n
real a(n,n), b(n,n), c(n,n), d(n,n) distribute (block, *)
real cond
b(1:n, 1:n:2) = 1
b(1:n, 2:n:2) = 2
if (cond > 0) then
  a(1:n, 1:n) = 3
else
  a(1:n, 1:n) = d(1:n, 1:n)
endif
do i = 2, n
  do j = 1, n, 2
    c(i, j) = a(i-1, j) + b(i-1, j)
  enddo
  do j = 1, n
    c(i, j) = a(i-1, j) + b(i-1, j)
  enddo
enddo
end";

    #[test]
    fn figure4_original_counts_every_use() {
        let c = compile(FIG4, Strategy::Original).unwrap();
        // a1, b1, a2, b2: four messages.
        assert_eq!(c.static_messages(), 4, "{}", c.report());
    }

    #[test]
    fn figure4_earliest_re_misses_b1() {
        let c = compile(FIG4, Strategy::EarliestRE).unwrap();
        // a1 is subsumed by a2 at the join φ; b1 (earliest = after stmt 1)
        // is NOT dominated by b2's earliest point (after stmt 2), so the
        // redundancy is missed: 3 messages remain.
        assert_eq!(c.static_messages(), 3, "{}", c.report());
        assert_eq!(c.schedule.eliminated(), 1);
    }

    #[test]
    fn figure4_global_combines_to_one() {
        let c = compile(FIG4, Strategy::Global).unwrap();
        // b1 absorbed by b2 under a later placement, a1 by a2, and the
        // remaining {a2, b2} combine into a single message at the join.
        assert_eq!(c.static_messages(), 1, "{}", c.report());
        assert_eq!(c.schedule.eliminated(), 2);
        assert_eq!(c.schedule.groups[0].entries.len(), 2);
        assert_eq!(c.schedule.groups[0].kind, CommKind::Nnc);
    }

    #[test]
    fn error_on_bad_source() {
        assert!(compile("program x\nq = 1\nend", Strategy::Global).is_err());
    }

    #[test]
    fn diagnostics_accumulate_multiple_errors() {
        let src = "program x\nparam n\nreal a(n) distribute (block)\n\
                   a(2:n = 0\na(1) = = 1\nend";
        let errs = compile_diagnostics(src, Strategy::Global).unwrap_err();
        assert!(errs.len() >= 2, "got {errs:?}");
        assert!(errs.iter().all(|e| e.message.contains("line")));
    }

    #[test]
    fn diagnostics_match_compile_on_good_source() {
        let c = compile_diagnostics(FIG4, Strategy::Global).unwrap();
        assert_eq!(c.static_messages(), 1);
    }
}
