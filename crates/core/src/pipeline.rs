//! End-to-end driver: source text → placed communication schedule.

use std::fmt;

use gcomm_ir::IrProgram;

use crate::commgen;
use crate::ctx::AnalysisCtx;
use crate::greedy::CombinePolicy;
use crate::schedule::Schedule;
use crate::strategy::{self, Strategy};

/// Per-compile observability snapshot: pass wall times, dataflow iteration
/// counts, and placement decision counters (see `gcomm_obs` and DESIGN.md
/// §9). Empty unless stats collection was active during the compile
/// ([`compile_stats`], or a caller-installed `gcomm_obs` registry).
pub type CompileStats = gcomm_obs::StatsReport;

/// RAII wall-clock timer for one named compiler pass: opens a `gcomm_obs`
/// span on construction and closes it on drop. A no-op (and free apart
/// from one thread-local read) when no stats registry is installed.
///
/// This is the hook the pipeline itself uses around each stage; external
/// drivers can use it to time their own phases into the same report.
#[derive(Debug)]
pub struct PassTimer {
    _span: gcomm_obs::SpanGuard,
}

impl PassTimer {
    /// Starts timing a pass.
    pub fn start(name: &str) -> Self {
        PassTimer {
            _span: gcomm_obs::span(name),
        }
    }
}

/// An error from any stage of the compilation pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreError {
    /// Description of the failure (no location prefix; see [`Self::line`]).
    pub message: String,
    /// 1-based source line the error points at, or 0 when it has no
    /// specific location. Preserved from the frontend (`LangError`) and
    /// lowering (`LowerError`) so drivers can quote the offending line.
    pub line: u32,
}

impl CoreError {
    /// An error with no specific source location.
    pub fn general(message: impl Into<String>) -> Self {
        CoreError {
            message: message.into(),
            line: 0,
        }
    }

    /// An error at a specific 1-based source line.
    pub fn at(line: u32, message: impl Into<String>) -> Self {
        CoreError {
            message: message.into(),
            line,
        }
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: ", self.line)?;
        }
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for CoreError {}

impl From<gcomm_lang::LangError> for CoreError {
    fn from(e: gcomm_lang::LangError) -> Self {
        CoreError {
            line: e.line,
            message: e.message,
        }
    }
}

impl From<gcomm_ir::LowerError> for CoreError {
    fn from(e: gcomm_ir::LowerError) -> Self {
        // `LowerError::Display` prefixes the line itself; strip it here so
        // the structured `line` field is the single source of location.
        let line = e.line();
        let full = e.to_string();
        let message = match full.strip_prefix(&format!("line {line}: ")) {
            Some(rest) => rest.to_string(),
            None => full,
        };
        CoreError { message, line }
    }
}

/// A compiled procedure: the lowered program plus its schedule.
///
/// Equality compares the program and schedule only — `stats` carries wall
/// times and is never part of a compiled artifact's identity.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The lowered program.
    pub prog: IrProgram,
    /// The placed communication schedule.
    pub schedule: Schedule,
    /// Observability snapshot of this compile (empty when stats were off).
    pub stats: CompileStats,
}

impl PartialEq for Compiled {
    fn eq(&self, other: &Self) -> bool {
        self.prog == other.prog && self.schedule == other.schedule
    }
}

impl Compiled {
    /// Static communication call sites per processor.
    pub fn static_messages(&self) -> usize {
        self.schedule.static_messages()
    }

    /// Human-readable placement report.
    pub fn report(&self) -> String {
        self.schedule.report(&self.prog)
    }
}

/// Compiles mini-HPF source under a strategy with the default combining
/// policy.
///
/// # Errors
///
/// Returns [`CoreError`] on parse, validation, or lowering failure.
pub fn compile(src: &str, strategy: Strategy) -> Result<Compiled, CoreError> {
    compile_with_policy(src, strategy, &CombinePolicy::default())
}

/// Compiles with an explicit combining policy (for ablations).
///
/// # Errors
///
/// Returns [`CoreError`] on parse, validation, or lowering failure.
pub fn compile_with_policy(
    src: &str,
    strategy: Strategy,
    policy: &CombinePolicy,
) -> Result<Compiled, CoreError> {
    compile_budgeted_with_policy(src, strategy, policy, gcomm_guard::Budget::unlimited())
}

/// Compiles under a resource [`Budget`](gcomm_guard::Budget) with the
/// default combining policy. On exhaustion the placement phases degrade
/// conservatively (DESIGN.md §10) — the compile still succeeds and the
/// schedule stays legal; `degraded.*` counters in [`Compiled::stats`]
/// record what was skipped. An unlimited budget is bit-identical to
/// [`compile`].
///
/// # Errors
///
/// Returns [`CoreError`] on parse, validation, or lowering failure —
/// never on budget exhaustion.
pub fn compile_budgeted(
    src: &str,
    strategy: Strategy,
    budget: gcomm_guard::Budget,
) -> Result<Compiled, CoreError> {
    compile_budgeted_with_policy(src, strategy, &CombinePolicy::default(), budget)
}

/// [`compile_budgeted`] with an explicit combining policy.
///
/// # Errors
///
/// Returns [`CoreError`] on parse, validation, or lowering failure.
pub fn compile_budgeted_with_policy(
    src: &str,
    strategy: Strategy,
    policy: &CombinePolicy,
    budget: gcomm_guard::Budget,
) -> Result<Compiled, CoreError> {
    let _compile = PassTimer::start("core.compile");
    let ast = gcomm_lang::parse_program(src)?;
    let prog = gcomm_ir::lower(&ast)?;
    let schedule = compile_program_budgeted(&prog, strategy, policy, budget);
    let stats = gcomm_obs::current()
        .map(|r| r.snapshot())
        .unwrap_or_default();
    Ok(Compiled {
        prog,
        schedule,
        stats,
    })
}

/// Compiles with stats collection forced on: installs a fresh per-thread
/// `gcomm_obs` registry for the duration of the compile, so the returned
/// [`Compiled::stats`] is populated even when the caller has none
/// installed. The schedule is bit-identical to [`compile`]'s — collection
/// never influences placement decisions.
///
/// # Errors
///
/// Returns [`CoreError`] on parse, validation, or lowering failure.
pub fn compile_stats(src: &str, strategy: Strategy) -> Result<Compiled, CoreError> {
    let reg = gcomm_obs::Registry::new();
    let _scope = gcomm_obs::install(reg);
    compile_with_policy(src, strategy, &CombinePolicy::default())
}

/// Compiles like [`compile`], but accumulates frontend diagnostics instead
/// of stopping at the first: the parser recovers at statement boundaries
/// and reports every independent syntax error; a clean parse that fails
/// validation or lowering reports those errors with source lines.
///
/// # Errors
///
/// Returns every diagnostic collected (never an empty vector).
pub fn compile_diagnostics(src: &str, strategy: Strategy) -> Result<Compiled, Vec<CoreError>> {
    compile_diagnostics_budgeted(src, strategy, gcomm_guard::Budget::unlimited())
}

/// [`compile_diagnostics`] under a resource budget (see
/// [`compile_budgeted`] for the degradation contract).
///
/// # Errors
///
/// Returns every diagnostic collected (never an empty vector); budget
/// exhaustion is not an error.
pub fn compile_diagnostics_budgeted(
    src: &str,
    strategy: Strategy,
    budget: gcomm_guard::Budget,
) -> Result<Compiled, Vec<CoreError>> {
    let ast = gcomm_lang::parse_program_diagnostics(src)
        .map_err(|errs| errs.into_iter().map(CoreError::from).collect::<Vec<_>>())?;
    let prog = gcomm_ir::lower(&ast).map_err(|e| vec![CoreError::from(e)])?;
    let schedule = compile_program_budgeted(&prog, strategy, &CombinePolicy::default(), budget);
    let stats = gcomm_obs::current()
        .map(|r| r.snapshot())
        .unwrap_or_default();
    Ok(Compiled {
        prog,
        schedule,
        stats,
    })
}

/// Runs a strategy over an already-lowered program.
pub fn compile_program(prog: &IrProgram, strategy: Strategy, policy: &CombinePolicy) -> Schedule {
    compile_program_budgeted(prog, strategy, policy, gcomm_guard::Budget::unlimited())
}

/// Runs a strategy over an already-lowered program under a resource
/// budget. Communication *generation* is never budgeted (dropping an entry
/// would be unsound); only the placement analyses degrade.
pub fn compile_program_budgeted(
    prog: &IrProgram,
    strategy: Strategy,
    policy: &CombinePolicy,
    budget: gcomm_guard::Budget,
) -> Schedule {
    let entries = {
        let _s = gcomm_obs::span("core.commgen");
        commgen::number(commgen::generate(prog))
    };
    let ctx = AnalysisCtx::with_budget(prog, budget);
    let schedule = strategy::run_with_policy(&ctx, entries, strategy, policy);
    record_entry_fates(&schedule);
    schedule
}

/// Records the placement fate of every candidate entry: each entry is
/// exactly one of placed (leads a group), combined away (rides in a group
/// behind its leader), or redundant (absorbed by another entry's data).
/// The partition `candidates == placed + redundant + combined_away` is the
/// schedule-shape invariant the property tests check.
fn record_entry_fates(schedule: &Schedule) {
    if !gcomm_obs::enabled() {
        return;
    }
    let candidates = schedule.entries.len() as u64;
    let placed = schedule.groups.len() as u64;
    let redundant = schedule.absorptions.len() as u64;
    let combined_away: u64 = schedule
        .groups
        .iter()
        .map(|g| g.entries.len() as u64 - 1)
        .sum();
    gcomm_obs::count("core.entries.candidates", candidates);
    gcomm_obs::count("core.entries.placed", placed);
    gcomm_obs::count("core.entries.redundant", redundant);
    gcomm_obs::count("core.entries.combined_away", combined_away);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::CommKind;

    /// The running example of the paper (Figure 4), adapted to the mini-HPF
    /// syntax: `a` defined under a condition, `b` written in two strided
    /// halves, both read shifted inside the loop nest.
    const FIG4: &str = "
program fig4
param n
real a(n,n), b(n,n), c(n,n), d(n,n) distribute (block, *)
real cond
b(1:n, 1:n:2) = 1
b(1:n, 2:n:2) = 2
if (cond > 0) then
  a(1:n, 1:n) = 3
else
  a(1:n, 1:n) = d(1:n, 1:n)
endif
do i = 2, n
  do j = 1, n, 2
    c(i, j) = a(i-1, j) + b(i-1, j)
  enddo
  do j = 1, n
    c(i, j) = a(i-1, j) + b(i-1, j)
  enddo
enddo
end";

    #[test]
    fn figure4_original_counts_every_use() {
        let c = compile(FIG4, Strategy::Original).unwrap();
        // a1, b1, a2, b2: four messages.
        assert_eq!(c.static_messages(), 4, "{}", c.report());
    }

    #[test]
    fn figure4_earliest_re_misses_b1() {
        let c = compile(FIG4, Strategy::EarliestRE).unwrap();
        // a1 is subsumed by a2 at the join φ; b1 (earliest = after stmt 1)
        // is NOT dominated by b2's earliest point (after stmt 2), so the
        // redundancy is missed: 3 messages remain.
        assert_eq!(c.static_messages(), 3, "{}", c.report());
        assert_eq!(c.schedule.eliminated(), 1);
    }

    #[test]
    fn figure4_global_combines_to_one() {
        let c = compile(FIG4, Strategy::Global).unwrap();
        // b1 absorbed by b2 under a later placement, a1 by a2, and the
        // remaining {a2, b2} combine into a single message at the join.
        assert_eq!(c.static_messages(), 1, "{}", c.report());
        assert_eq!(c.schedule.eliminated(), 2);
        assert_eq!(c.schedule.groups[0].entries.len(), 2);
        assert_eq!(c.schedule.groups[0].kind, CommKind::Nnc);
    }

    #[test]
    fn error_on_bad_source() {
        assert!(compile("program x\nq = 1\nend", Strategy::Global).is_err());
    }

    #[test]
    fn diagnostics_accumulate_multiple_errors() {
        let src = "program x\nparam n\nreal a(n) distribute (block)\n\
                   a(2:n = 0\na(1) = = 1\nend";
        let errs = compile_diagnostics(src, Strategy::Global).unwrap_err();
        assert!(errs.len() >= 2, "got {errs:?}");
        assert!(errs.iter().all(|e| e.line > 0), "got {errs:?}");
        assert!(errs
            .iter()
            .all(|e| e.to_string().starts_with(&format!("line {}: ", e.line))));
    }

    #[test]
    fn errors_carry_source_line() {
        // `q = 1` on line 2 references an undeclared array.
        let err = compile("program x\nq = 1\nend", Strategy::Global).unwrap_err();
        assert_eq!(err.line, 2, "{err}");
        assert!(!err.message.starts_with("line"), "{err:?}");
    }

    #[test]
    fn compile_stats_populates_report_without_changing_schedule() {
        let plain = compile(FIG4, Strategy::Global).unwrap();
        let stats = compile_stats(FIG4, Strategy::Global).unwrap();
        assert_eq!(plain, stats, "stats collection must not perturb placement");
        assert!(plain.stats.passes().is_empty());
        assert!(!stats.stats.passes().is_empty());
        assert_eq!(stats.stats.counter("core.entries.candidates"), 4);
        assert_eq!(stats.stats.counter("core.entries.placed"), 1);
        assert_eq!(stats.stats.counter("core.entries.redundant"), 2);
        assert_eq!(stats.stats.counter("core.entries.combined_away"), 1);
    }

    #[test]
    fn diagnostics_match_compile_on_good_source() {
        let c = compile_diagnostics(FIG4, Strategy::Global).unwrap();
        assert_eq!(c.static_messages(), 1);
    }
}
