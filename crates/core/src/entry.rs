//! Communication entries: one per non-local reference pattern.

use gcomm_ir::{ArrayId, StmtId};
use gcomm_sections::Mapping;

/// Identifier of a communication entry within one analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EntryId(pub u32);

/// Broad classification of a communication (used for reporting and for the
/// size rules of combining).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommKind {
    /// Nearest-neighbour (or general) shift exchange into overlap regions.
    Nnc,
    /// Global reduction of partial results.
    Reduction,
    /// Broadcast from one owner.
    Broadcast,
    /// Gather to the owner of a constant position.
    Gather,
    /// Anything else (opaque many-to-many).
    General,
}

/// One communication requirement: a use (or coalesced set of uses within a
/// statement) of remote data with a fixed mapping.
#[derive(Debug, Clone, PartialEq)]
pub struct CommEntry {
    /// This entry's id (index into the entry table).
    pub id: EntryId,
    /// The statement containing the use(s).
    pub stmt: StmtId,
    /// Indices into the statement's read list that this entry serves
    /// (several when classic message coalescing merged same-pattern
    /// references in one statement).
    pub reads: Vec<usize>,
    /// The referenced array.
    pub array: ArrayId,
    /// Sender→receiver mapping.
    pub mapping: Mapping,
    /// Classification.
    pub kind: CommKind,
    /// Human-readable label, e.g. `p(+1,0)` or `sum g`.
    pub label: String,
}

impl CommEntry {
    /// True if this entry is a reduction.
    pub fn is_reduction(&self) -> bool {
        self.kind == CommKind::Reduction
    }
}
