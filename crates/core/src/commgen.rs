//! Communication-descriptor generation: which references need messages.
//!
//! Under the owner-computes rule, a right-hand-side reference needs
//! communication when its data may live on a different processor than the
//! left-hand side it feeds. This module classifies every read of every
//! statement into a [`Mapping`] and materializes one [`CommEntry`] per
//! non-local pattern, applying two classic pHPF front-end optimizations:
//!
//! * **message coalescing** — same-pattern references within one statement
//!   share a single entry (e.g. `u(i+1,j)` appearing twice), and
//! * **diagonal subsumption** — a diagonal shift like `p(i+1,j+1)` is
//!   decomposed into its axis components, which augmented axis exchanges
//!   carry (§2.2: "the diagonal communication \[is\] subsumed by an
//!   augmented form of the NNC along the two axes").

use gcomm_ir::{AccessRef, ArrayId, IrProgram, StmtId, StmtKind, SubscriptIr};

use gcomm_sections::{Mapping, ReduceOp};

use crate::entry::{CommEntry, CommKind, EntryId};

/// Generates all communication entries of a program, in program order.
pub fn generate(prog: &IrProgram) -> Vec<CommEntry> {
    let mut gen = Generator {
        prog,
        out: Vec::new(),
        general_counter: 0,
    };
    for sid in 0..prog.stmts.len() as u32 {
        gen.stmt(StmtId(sid));
    }
    gen.out
}

struct Generator<'a> {
    prog: &'a IrProgram,
    out: Vec<CommEntry>,
    general_counter: u32,
}

impl<'a> Generator<'a> {
    fn stmt(&mut self, sid: StmtId) {
        let info = self.prog.stmt(sid);
        let (lhs, reads) = match &info.kind {
            StmtKind::Assign { lhs, reads, .. } => (Some(lhs), reads),
            StmtKind::Cond { reads } => (None, reads),
        };

        // Per-statement coalescing table for shift entries.
        let mut pending: Vec<CommEntry> = Vec::new();

        for (idx, read) in reads.iter().enumerate() {
            let arr = self.prog.array(read.access.array);
            if read.reduction {
                // Each reduction is its own runtime call (partial results
                // combined across processors).
                pending.push(self.fresh(
                    sid,
                    vec![idx],
                    read.access.array,
                    Mapping::Reduction { op: ReduceOp::Sum },
                    CommKind::Reduction,
                    format!("sum {}", arr.name),
                ));
                continue;
            }
            if arr.is_replicated() {
                continue; // replicated data (scalars) is always local
            }
            let mapping = match lhs {
                None => Mapping::Broadcast, // branch conditions need the data everywhere
                Some(l) => self.classify(l, &read.access),
            };
            match mapping {
                Mapping::Local => {}
                Mapping::Shift { offsets } => {
                    let nonzero: Vec<usize> = offsets
                        .iter()
                        .enumerate()
                        .filter(|&(_, &o)| o != 0)
                        .map(|(k, _)| k)
                        .collect();
                    // Diagonal subsumption: one axis-aligned entry per
                    // non-zero axis; the corner travels with the augmented
                    // axis exchanges.
                    for &k in &nonzero {
                        let mut axis_off = vec![0i64; offsets.len()];
                        axis_off[k] = offsets[k];
                        let m = Mapping::Shift { offsets: axis_off };
                        self.coalesce(&mut pending, sid, idx, read.access.array, m, &arr.name);
                    }
                }
                m @ Mapping::Broadcast | m @ Mapping::ToConstant => {
                    self.coalesce(&mut pending, sid, idx, read.access.array, m, &arr.name);
                }
                Mapping::General(_) => {
                    let id = self.general_counter;
                    self.general_counter += 1;
                    pending.push(self.fresh(
                        sid,
                        vec![idx],
                        read.access.array,
                        Mapping::General(id),
                        CommKind::General,
                        format!("{} general", arr.name),
                    ));
                }
                Mapping::Reduction { .. } => unreachable!("reductions handled above"),
            }
        }
        self.out.append(&mut pending);
    }

    /// Adds `idx` to an existing same-pattern entry of this statement or
    /// creates a new one (classic message coalescing).
    fn coalesce(
        &mut self,
        pending: &mut Vec<CommEntry>,
        sid: StmtId,
        idx: usize,
        array: ArrayId,
        mapping: Mapping,
        name: &str,
    ) {
        if let Some(e) = pending
            .iter_mut()
            .find(|e| e.array == array && e.mapping == mapping)
        {
            e.reads.push(idx);
            return;
        }
        let kind = match &mapping {
            Mapping::Shift { .. } if mapping.is_nnc() => CommKind::Nnc,
            Mapping::Shift { .. } => CommKind::General,
            Mapping::Broadcast => CommKind::Broadcast,
            Mapping::ToConstant => CommKind::Gather,
            _ => CommKind::General,
        };
        let label = format!("{name} {mapping}");
        let e = self.fresh(sid, vec![idx], array, mapping, kind, label);
        pending.push(e);
    }

    fn fresh(
        &mut self,
        stmt: StmtId,
        reads: Vec<usize>,
        array: ArrayId,
        mapping: Mapping,
        kind: CommKind,
        label: String,
    ) -> CommEntry {
        let id = EntryId(self.out.len() as u32);
        let _ = id;
        CommEntry {
            id: EntryId(u32::MAX), // assigned by the caller after collection
            stmt,
            reads,
            array,
            mapping,
            kind,
            label,
        }
    }

    /// Classifies a read against the statement's left-hand side.
    fn classify(&self, lhs: &AccessRef, read: &AccessRef) -> Mapping {
        let larr = self.prog.array(lhs.array);
        let rarr = self.prog.array(read.array);
        if larr.is_replicated() {
            // Replicated result computed by everyone: everyone needs the
            // distributed operand.
            return Mapping::Broadcast;
        }
        let ldims = larr.distributed_dims();
        let rdims = rarr.distributed_dims();
        if ldims.len() != rdims.len() {
            return Mapping::General(0);
        }
        let mut offsets = Vec::with_capacity(ldims.len());
        for (&ld, &rd) in ldims.iter().zip(rdims.iter()) {
            if larr.dist[ld] != rarr.dist[rd] {
                return Mapping::General(0);
            }
            let ls = &lhs.subs[ld];
            let rs = &read.subs[rd];
            let Some(raw) = elem_offset(ls, rs) else {
                return Mapping::General(0);
            };
            // Alignment offsets shift each array onto the shared template.
            let delta = raw + rarr.align_of(rd) - larr.align_of(ld);
            // Element offset → processor offset: any non-zero stencil offset
            // crosses to the neighbouring block (BLOCK) or neighbouring
            // processor (CYCLIC).
            offsets.push(delta.signum());
        }
        if offsets.iter().all(|&o| o == 0) {
            Mapping::Local
        } else {
            Mapping::Shift { offsets }
        }
    }
}

/// Constant element offset `read − lhs` along one dimension, when the two
/// subscripts are congruent (both elements, or ranges of equal length moving
/// together).
fn elem_offset(lhs: &SubscriptIr, read: &SubscriptIr) -> Option<i64> {
    match (lhs, read) {
        (SubscriptIr::Elem(a), SubscriptIr::Elem(b)) => b.const_diff(a),
        (
            SubscriptIr::Range {
                lo: llo, hi: lhi, ..
            },
            SubscriptIr::Range {
                lo: rlo, hi: rhi, ..
            },
        ) => {
            let dlo = rlo.const_diff(llo)?;
            let dhi = rhi.const_diff(lhi)?;
            (dlo == dhi).then_some(dlo)
        }
        _ => None,
    }
}

/// Assigns dense entry ids after generation (helper for the pipeline).
pub fn number(mut entries: Vec<CommEntry>) -> Vec<CommEntry> {
    for (i, e) in entries.iter_mut().enumerate() {
        e.id = EntryId(i as u32);
    }
    entries
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entries(src: &str) -> (IrProgram, Vec<CommEntry>) {
        let prog = gcomm_ir::lower(&gcomm_lang::parse_program(src).unwrap()).unwrap();
        let e = number(generate(&prog));
        (prog, e)
    }

    #[test]
    fn aligned_reads_are_local() {
        let (_, e) = entries(
            "
program t
param n
real a(n,n), b(n,n) distribute (block,block)
a(1:n, 1:n) = b(1:n, 1:n)
end",
        );
        assert!(e.is_empty());
    }

    #[test]
    fn shifted_read_is_nnc() {
        let (_, e) = entries(
            "
program t
param n
real a(n,n), b(n,n) distribute (block,block)
b(2:n, 1:n) = a(1:n-1, 1:n)
end",
        );
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].kind, CommKind::Nnc);
        assert_eq!(
            e[0].mapping,
            Mapping::Shift {
                offsets: vec![-1, 0]
            }
        );
    }

    #[test]
    fn collapsed_dims_do_not_communicate() {
        // g is (*, block, block): a slab copy aligned on dims 2 and 3 is
        // local even though dim 1 subscripts differ.
        let (_, e) = entries(
            "
program t
param n, nx
real g(nx,n,n) distribute (*,block,block)
real glast(n,n) distribute (block,block)
do i = 2, nx
  glast(1:n, 1:n) = g(i, 1:n, 1:n)
enddo
end",
        );
        assert!(e.is_empty());
    }

    #[test]
    fn diagonal_decomposes_into_axis_shifts() {
        let (_, e) = entries(
            "
program t
param n
real z(n,n), p(n,n) distribute (block,block)
do i = 1, n - 1
  do j = 1, n - 1
    z(i, j) = p(i+1, j+1)
  enddo
enddo
end",
        );
        assert_eq!(e.len(), 2, "diagonal becomes two axis exchanges");
        let offs: Vec<_> = e
            .iter()
            .map(|x| match &x.mapping {
                Mapping::Shift { offsets } => offsets.clone(),
                other => panic!("{other:?}"),
            })
            .collect();
        assert!(offs.contains(&vec![1, 0]));
        assert!(offs.contains(&vec![0, 1]));
    }

    #[test]
    fn coalescing_merges_same_pattern_reads() {
        // u(i+1,j) appears twice and p(i+1,j) once: two entries total
        // (u east, p east), with the u entry serving two reads.
        let (_, e) = entries(
            "
program t
param n
real cu(n,n), p(n,n), u(n,n) distribute (block,block)
do i = 1, n - 1
  do j = 1, n
    cu(i, j) = p(i+1, j) * u(i+1, j) + u(i+1, j)
  enddo
enddo
end",
        );
        assert_eq!(e.len(), 2);
        let u_entry = e.iter().find(|x| x.label.starts_with("u ")).unwrap();
        assert_eq!(u_entry.reads.len(), 2);
    }

    #[test]
    fn reductions_are_separate_entries() {
        let (_, e) = entries(
            "
program t
param n
real g(n,n) distribute (block,block)
real s
s = sum(g(1, 1:n)) + sum(g(2, 1:n))
end",
        );
        assert_eq!(e.len(), 2);
        assert!(e.iter().all(|x| x.kind == CommKind::Reduction));
    }

    #[test]
    fn replicated_lhs_broadcasts_operand() {
        let (_, e) = entries(
            "
program t
param n
real a(n,n) distribute (block,block)
real s
s = a(1, 1)
end",
        );
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].mapping, Mapping::Broadcast);
    }

    #[test]
    fn incongruent_subscripts_are_general() {
        let (_, e) = entries(
            "
program t
param n
real a(n,n), b(n,n) distribute (block,block)
b(1:n-1, 1:n) = a(2:n-1, 1:n)
end",
        );
        assert_eq!(e.len(), 1);
        assert!(matches!(e[0].mapping, Mapping::General(_)));
    }

    #[test]
    fn entry_ids_are_dense_and_ordered() {
        let (_, e) = entries(
            "
program t
param n
real a(n,n), b(n,n), c(n,n) distribute (block,block)
b(2:n, 1:n) = a(1:n-1, 1:n)
c(2:n, 1:n) = a(1:n-1, 1:n)
end",
        );
        assert_eq!(e.len(), 2);
        assert_eq!(e[0].id, EntryId(0));
        assert_eq!(e[1].id, EntryId(1));
        assert!(e[0].stmt < e[1].stmt);
    }
}
