//! Shared analysis context: program, SSA, dominators, dependence tester.

use gcomm_dep::{widen::widen_access_within, DepTest};
use gcomm_guard::Budget;
use gcomm_ir::{AccessRef, DomTree, IrProgram, StmtId, StmtKind};
use gcomm_sections::{Asd, Section, SymCtx};
use gcomm_ssa::{DefId, DefKind, SsaForm};

use crate::entry::CommEntry;

/// Everything the placement phases need about one procedure.
#[derive(Debug)]
pub struct AnalysisCtx<'a> {
    /// The program under analysis.
    pub prog: &'a IrProgram,
    /// Its SSA form.
    pub ssa: SsaForm,
    /// Dominator tree of the augmented CFG.
    pub dt: DomTree,
    /// Symbolic comparison context.
    pub sym: SymCtx,
    /// Resource budget for the expensive phases. Unlimited by default;
    /// when it exhausts, every phase degrades conservatively (DESIGN.md
    /// §10) instead of erroring.
    pub budget: Budget,
}

impl<'a> AnalysisCtx<'a> {
    /// Builds the context (dominators + SSA) with an unlimited budget.
    pub fn new(prog: &'a IrProgram) -> Self {
        Self::with_budget(prog, Budget::unlimited())
    }

    /// Builds the context with an explicit resource budget that all
    /// subsequent analyses charge against.
    pub fn with_budget(prog: &'a IrProgram, budget: Budget) -> Self {
        let _s = gcomm_obs::span("core.analysis");
        let dt = DomTree::compute(&prog.cfg);
        let ssa = {
            let _t = gcomm_obs::time("ssa.build");
            SsaForm::build_with(prog, &dt)
        };
        AnalysisCtx {
            prog,
            ssa,
            dt,
            sym: SymCtx::default(),
            budget,
        }
    }

    /// The dependence tester.
    pub fn dep(&self) -> DepTest<'a> {
        DepTest::new(self.prog)
    }

    /// The access of read `idx` of statement `s`.
    pub fn read_access(&self, s: StmtId, idx: usize) -> &AccessRef {
        &self.prog.stmt(s).kind.reads()[idx].access
    }

    /// The written access of a definition's statement (regular defs only).
    pub fn def_access(&self, d: DefId) -> Option<(&AccessRef, StmtId)> {
        match &self.ssa.def(d).kind {
            DefKind::Regular { stmt, .. } => {
                let acc = self.prog.stmt(*stmt).kind.def()?;
                Some((acc, *stmt))
            }
            _ => None,
        }
    }

    /// **Extended** `IsArrayDep(d, u, l)`: the paper's Fig. 8(d) test plus
    /// the loop-independent case — a definition inside the level-`l` loop
    /// that feeds the use in the same iteration also pins communication
    /// inside that loop (the "no *true dependence*" reading of the classic
    /// vectorization rule; Fig. 8's `v_l > 0` captures only carried
    /// dependences).
    pub fn ext_dep(
        &self,
        d_stmt: StmtId,
        d_acc: &AccessRef,
        u_stmt: StmtId,
        u_acc: &AccessRef,
        l: u32,
    ) -> bool {
        let dep = self.dep();
        if dep.is_array_dep(d_stmt, d_acc, u_stmt, u_acc, l) {
            return true;
        }
        if l >= 1 && l <= self.prog.cnl(d_stmt, u_stmt) {
            // Loop-independent flow: same iteration of all common loops,
            // definition textually before the use.
            return dep.is_array_dep(d_stmt, d_acc, u_stmt, u_acc, 0);
        }
        false
    }

    /// The section an entry communicates when placed at nesting level
    /// `level`: the union (bounding box per dimension, stride-aware) of its
    /// reads' accesses widened over all loops deeper than `level`.
    pub fn section_at(&self, e: &CommEntry, level: u32) -> Section {
        let chain = self.prog.stmt_loop_chain(e.stmt);
        let mut acc: Option<Section> = None;
        for &r in &e.reads {
            let a = self.read_access(e.stmt, r);
            let s = widen_access_within(self.prog, a, &chain, level, &self.budget);
            acc = Some(match acc {
                None => s,
                Some(prev) => prev.union_bbox(&s, &self.sym).unwrap_or(prev),
            });
        }
        acc.unwrap_or_default()
    }

    /// The ASD of an entry at a placement nesting level.
    pub fn asd_at(&self, e: &CommEntry, level: u32) -> Asd {
        Asd::new(e.array, self.section_at(e, level), e.mapping.clone())
    }

    /// True if statement `s` is an assignment.
    pub fn is_assign(&self, s: StmtId) -> bool {
        matches!(self.prog.stmt(s).kind, StmtKind::Assign { .. })
    }
}
