//! Shared analysis context: program, SSA, dominators, dependence tester.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use gcomm_dep::{widen::widen_access_within, DepTest};
use gcomm_guard::Budget;
use gcomm_ir::{AccessRef, DomTree, IrProgram, StmtId, StmtKind};
use gcomm_sections::{Asd, SectId, Section, SectionAlgebra, SymCtx};
use gcomm_ssa::{DefId, DefKind, SsaForm};

use crate::entry::{CommEntry, EntryId};

/// A cached, interned ASD handle: the shared descriptor plus its section's
/// interned id in the compile's [`SectionAlgebra`].
pub type SharedAsd = (Arc<Asd>, SectId);

/// Everything the placement phases need about one procedure.
#[derive(Debug)]
pub struct AnalysisCtx<'a> {
    /// The program under analysis.
    pub prog: &'a IrProgram,
    /// Its SSA form.
    pub ssa: SsaForm,
    /// Dominator tree of the augmented CFG.
    pub dt: DomTree,
    /// Symbolic comparison context.
    pub sym: SymCtx,
    /// Resource budget for the expensive phases. Unlimited by default;
    /// when it exhausts, every phase degrades conservatively (DESIGN.md
    /// §10) instead of erroring.
    pub budget: Budget,
    /// Per-compile section interner + memoized subsumption (DESIGN.md
    /// §11). Shared by reference with the parallel optimal-search workers.
    pub alg: SectionAlgebra,
    /// Memoized `(entry, level) → interned ASD`: the widened section of an
    /// entry at a placement level is a pure function of the program, so
    /// the quadratic pair scans (redundancy fixpoint, greedy grouping)
    /// rebuild each one exactly once.
    asd_cache: Mutex<HashMap<(EntryId, u32), SharedAsd>>,
}

impl<'a> AnalysisCtx<'a> {
    /// Builds the context (dominators + SSA) with an unlimited budget.
    pub fn new(prog: &'a IrProgram) -> Self {
        Self::with_budget(prog, Budget::unlimited())
    }

    /// Builds the context with an explicit resource budget that all
    /// subsequent analyses charge against.
    pub fn with_budget(prog: &'a IrProgram, budget: Budget) -> Self {
        let _s = gcomm_obs::span("core.analysis");
        let dt = DomTree::compute(&prog.cfg);
        let ssa = {
            let _t = gcomm_obs::time("ssa.build");
            SsaForm::build_with(prog, &dt)
        };
        AnalysisCtx {
            prog,
            ssa,
            dt,
            sym: SymCtx::default(),
            budget,
            alg: SectionAlgebra::new(),
            asd_cache: Mutex::new(HashMap::new()),
        }
    }

    /// The dependence tester.
    pub fn dep(&self) -> DepTest<'a> {
        DepTest::new(self.prog)
    }

    /// The access of read `idx` of statement `s`.
    pub fn read_access(&self, s: StmtId, idx: usize) -> &AccessRef {
        &self.prog.stmt(s).kind.reads()[idx].access
    }

    /// The written access of a definition's statement (regular defs only).
    pub fn def_access(&self, d: DefId) -> Option<(&AccessRef, StmtId)> {
        match &self.ssa.def(d).kind {
            DefKind::Regular { stmt, .. } => {
                let acc = self.prog.stmt(*stmt).kind.def()?;
                Some((acc, *stmt))
            }
            _ => None,
        }
    }

    /// **Extended** `IsArrayDep(d, u, l)`: the paper's Fig. 8(d) test plus
    /// the loop-independent case — a definition inside the level-`l` loop
    /// that feeds the use in the same iteration also pins communication
    /// inside that loop (the "no *true dependence*" reading of the classic
    /// vectorization rule; Fig. 8's `v_l > 0` captures only carried
    /// dependences).
    pub fn ext_dep(
        &self,
        d_stmt: StmtId,
        d_acc: &AccessRef,
        u_stmt: StmtId,
        u_acc: &AccessRef,
        l: u32,
    ) -> bool {
        let dep = self.dep();
        if dep.is_array_dep(d_stmt, d_acc, u_stmt, u_acc, l) {
            return true;
        }
        if l >= 1 && l <= self.prog.cnl(d_stmt, u_stmt) {
            // Loop-independent flow: same iteration of all common loops,
            // definition textually before the use.
            return dep.is_array_dep(d_stmt, d_acc, u_stmt, u_acc, 0);
        }
        false
    }

    /// The section an entry communicates when placed at nesting level
    /// `level`: the union (bounding box per dimension, stride-aware) of its
    /// reads' accesses widened over all loops deeper than `level`.
    ///
    /// Served from the per-compile cache (the widening runs once per
    /// `(entry, level)`); callers that only need to *borrow* the section
    /// should prefer [`asd_shared`](Self::asd_shared) to skip the clone.
    pub fn section_at(&self, e: &CommEntry, level: u32) -> Section {
        self.asd_shared(e, level).0.section.clone()
    }

    /// The ASD of an entry at a placement nesting level (cached; clones
    /// out of the shared descriptor).
    pub fn asd_at(&self, e: &CommEntry, level: u32) -> Asd {
        (*self.asd_shared(e, level).0).clone()
    }

    /// The cached, interned ASD of an entry at a placement level.
    ///
    /// The compute happens under the cache lock, so exactly one thread
    /// builds (and budget-charges) each descriptor even when the parallel
    /// optimal-search workers race on the same key — keeping charge and
    /// counter totals identical between `--jobs 1` and `--jobs N`.
    pub fn asd_shared(&self, e: &CommEntry, level: u32) -> SharedAsd {
        let mut cache = self.asd_cache.lock().unwrap();
        if let Some(hit) = cache.get(&(e.id, level)) {
            gcomm_obs::count("core.asd_cache_hits", 1);
            return hit.clone();
        }
        let chain = self.prog.stmt_loop_chain(e.stmt);
        let mut acc: Option<Section> = None;
        for &r in &e.reads {
            let a = self.read_access(e.stmt, r);
            let s = widen_access_within(self.prog, a, &chain, level, &self.budget);
            acc = Some(match acc {
                None => s,
                Some(prev) => prev.union_bbox(&s, &self.sym).unwrap_or(prev),
            });
        }
        let section = acc.unwrap_or_default();
        let sid = self.alg.intern(&section);
        let asd = Arc::new(Asd::new(e.array, section, e.mapping.clone()));
        cache.insert((e.id, level), (Arc::clone(&asd), sid));
        (asd, sid)
    }

    /// Memoized ASD subsumption: true when `sub`'s communication at
    /// `level` is fully served by `sup`'s ([`Asd::subsumed_by_memo`] over
    /// the cached descriptors). The answer for a revisited pair is one
    /// hash lookup — this is what makes the redundancy fixpoint's repeated
    /// pair scans O(1) per revisited pair.
    pub fn subsumed_within(&self, sub: &CommEntry, sup: &CommEntry, level: u32) -> bool {
        let (a_sub, id_sub) = self.asd_shared(sub, level);
        let (a_sup, id_sup) = self.asd_shared(sup, level);
        a_sub.subsumed_by_memo(id_sub, &a_sup, id_sup, &self.alg, &self.sym, &self.budget)
    }

    /// True if statement `s` is an assignment.
    pub fn is_assign(&self, s: StmtId) -> bool {
        matches!(self.prog.stmt(s).kind, StmtKind::Assign { .. })
    }
}
