//! Placed communication schedules: the output of every strategy.

use std::fmt::Write as _;

use gcomm_ir::{IrProgram, Pos};
use gcomm_sections::Mapping;

use crate::entry::{CommEntry, CommKind, EntryId};
use crate::redundancy::Absorption;
use crate::strategy::Strategy;

/// A group of one or more entries combined into a single communication
/// operation, placed at a fixed position.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacedGroup {
    /// Placement position (the communication executes at this point).
    pub pos: Pos,
    /// Member entries (combined into one message).
    pub entries: Vec<EntryId>,
    /// The group's mapping (members are pairwise compatible).
    pub mapping: Mapping,
    /// The group's kind.
    pub kind: CommKind,
}

/// Provenance of a schedule produced by the branch-and-bound optimal
/// search (`Strategy::Optimal`): how much of the assignment space was
/// certified. `None` for every heuristic strategy. Deterministic for a
/// given program and budget, so schedule equality stays meaningful.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutcome {
    /// Search-tree nodes expanded (one per entry binding).
    pub nodes: u64,
    /// Complete assignments scored with the machine simulator.
    pub leaves: u64,
    /// Subtrees cut by the admissible lower bound.
    pub pruned_bound: u64,
    /// Subtrees cut by frontier dominance.
    pub pruned_dominance: u64,
    /// Total assignments in the search space (saturating).
    pub space: u64,
    /// True when the node budget exhausted before the space was covered —
    /// the schedule is still the seed or better, but not certified optimal.
    pub truncated: bool,
}

/// The result of communication placement under one strategy.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// Which strategy produced this schedule.
    pub strategy: Strategy,
    /// All communication entries of the procedure (including absorbed
    /// ones), in program order.
    pub entries: Vec<CommEntry>,
    /// Placed (possibly combined) communication operations.
    pub groups: Vec<PlacedGroup>,
    /// Entries eliminated as redundant, with their absorbers.
    pub absorptions: Vec<Absorption>,
    /// Communicated-section overrides from *partial* redundancy
    /// elimination: the entry ships only the listed residual section
    /// instead of its full vectorized section.
    pub section_overrides: Vec<(EntryId, gcomm_sections::Section)>,
    /// Optimal-search provenance (`Strategy::Optimal` only).
    pub search: Option<SearchOutcome>,
}

impl Schedule {
    /// Static communication call sites per processor — the paper's
    /// compile-time metric (Figure 10's table).
    pub fn static_messages(&self) -> usize {
        self.groups.len()
    }

    /// The overridden (residual) section for an entry, if partial
    /// redundancy elimination reduced it.
    pub fn section_override(&self, id: EntryId) -> Option<&gcomm_sections::Section> {
        self.section_overrides
            .iter()
            .find(|(e, _)| *e == id)
            .map(|(_, s)| s)
    }

    /// Static call sites of one kind.
    pub fn count_kind(&self, kind: CommKind) -> usize {
        self.groups.iter().filter(|g| g.kind == kind).count()
    }

    /// Number of entries eliminated by redundancy elimination.
    pub fn eliminated(&self) -> usize {
        self.absorptions.len()
    }

    /// The entry table row for an id.
    pub fn entry(&self, id: EntryId) -> &CommEntry {
        &self.entries[id.0 as usize]
    }

    /// A human-readable placement report.
    pub fn report(&self, prog: &IrProgram) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:?}: {} entries, {} messages, {} eliminated",
            self.strategy,
            self.entries.len(),
            self.groups.len(),
            self.eliminated()
        );
        for g in &self.groups {
            let labels: Vec<&str> = g
                .entries
                .iter()
                .map(|&e| self.entry(e).label.as_str())
                .collect();
            let node = prog.cfg.node(g.pos.node);
            let _ = writeln!(
                out,
                "  at {:?} slot {} (level {}): {{{}}}",
                node.kind,
                g.pos.slot,
                node.level,
                labels.join(", ")
            );
        }
        for a in &self.absorptions {
            let _ = writeln!(
                out,
                "  eliminated: {} (covered by {})",
                self.entry(a.absorbed).label,
                self.entry(a.by).label
            );
        }
        out
    }
}
