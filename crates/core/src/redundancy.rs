//! Global redundancy elimination over ASDs (§4.6, Fig. 9f).
//!
//! Whenever two entries share a candidate position `P` and one's ASD
//! subsumes the other's (`D2 ⊆ D1 ∧ M2 ⊆ M1`, with both data sections
//! vectorized to `P`'s nesting level), the subsumed entry is *absorbed*: it
//! generates no communication of its own, and the subsuming entry's
//! remaining candidates are restricted to positions that still cover the
//! absorbed use (dominate it, at a nesting level no deeper than `P`'s) —
//! this is how choosing a *later-than-earliest* placement for `b1` in the
//! paper's running example eliminates that communication completely.

use std::collections::BTreeSet;

use gcomm_ir::Pos;

use crate::ctx::AnalysisCtx;
use crate::entry::{CommEntry, EntryId};
use crate::subset::CandidateTable;

/// A record that `absorbed`'s communication is fully served by `by`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Absorption {
    /// The eliminated entry.
    pub absorbed: EntryId,
    /// The entry whose communication covers it.
    pub by: EntryId,
}

/// Runs redundancy elimination to a fixpoint. Returns the absorptions.
///
/// Coverage obligations are *inherited through chains*: when `A` absorbs
/// `B` and later `C` absorbs `A`, `C` must still dominate `B`'s use (not
/// just `A`'s) — otherwise `B`'s data would silently go unserved.
///
/// Degradation: every candidate pair charges the budget (and the ASD
/// subsumption tests themselves degrade to "not subsumed"); on exhaustion
/// the fixpoint stops and returns the absorptions found so far
/// (`core.degraded.redundancy` counts one per early stop). Stopping early
/// only *keeps* communication that could have been eliminated — every
/// recorded absorption was individually proven, so the result stays legal.
pub fn eliminate(
    ctx: &AnalysisCtx<'_>,
    entries: &[CommEntry],
    table: &mut CandidateTable,
) -> Vec<Absorption> {
    let _s = gcomm_obs::span("core.redundancy");
    let mut absorptions: Vec<Absorption> = Vec::new();
    // Per surviving entry: the uses (and level caps) of everything it has
    // absorbed, directly or transitively.
    let mut obligations: std::collections::HashMap<EntryId, Vec<(Pos, u32)>> =
        std::collections::HashMap::new();
    // Pairs rejected because the winner could not keep a candidate
    // satisfying every inherited obligation.
    let mut banned: std::collections::HashSet<(EntryId, EntryId)> =
        std::collections::HashSet::new();
    loop {
        if ctx.budget.exhausted() {
            gcomm_obs::count("core.degraded.redundancy", 1);
            return absorptions;
        }
        gcomm_obs::count("core.redundancy.checks", 1);
        let Some((winner, loser, at)) = find_pair(ctx, entries, table, &banned) else {
            if ctx.budget.exhausted() {
                // The budget ran out mid-scan, not at a true fixpoint.
                gcomm_obs::count("core.degraded.redundancy", 1);
            }
            return absorptions;
        };
        let loser_stmt = entries[loser.0 as usize].stmt;
        let level_at = at.level(ctx.prog);

        // The loser's own use, plus every obligation it had accumulated.
        let mut obs = obligations.get(&loser).cloned().unwrap_or_default();
        obs.push((Pos::before(ctx.prog, loser_stmt), level_at));

        let refined: BTreeSet<Pos> = table
            .cands
            .get(&winner)
            .map(|ps| {
                ps.iter()
                    .copied()
                    .filter(|p| {
                        obs.iter().all(|(before_use, cap)| {
                            p.dominates(before_use, &ctx.dt) && p.level(ctx.prog) <= *cap
                        })
                    })
                    .collect()
            })
            .unwrap_or_default();
        if refined.is_empty() {
            // No placement of the winner can cover everything the loser
            // stands for: reject this absorption.
            banned.insert((winner, loser));
            continue;
        }

        table.remove_entry(loser);
        obligations.remove(&loser);
        table.cands.insert(winner, refined);
        obligations.entry(winner).or_default().extend(obs);
        absorptions.push(Absorption {
            absorbed: loser,
            by: winner,
        });
    }
}

/// Finds one (subsumer, subsumed, position) triple, or `None` at fixpoint.
fn find_pair(
    ctx: &AnalysisCtx<'_>,
    entries: &[CommEntry],
    table: &CandidateTable,
    banned: &std::collections::HashSet<(EntryId, EntryId)>,
) -> Option<(EntryId, EntryId, Pos)> {
    let sets = table.comm_sets();
    for (&pos, set) in &sets {
        let level = pos.level(ctx.prog);
        let ids: Vec<EntryId> = set.iter().copied().collect();
        for (i, &c1) in ids.iter().enumerate() {
            for &c2 in &ids[i + 1..] {
                if !ctx.budget.charge(1) {
                    // Exhausted mid-scan: report fixpoint. The caller
                    // observes the exhaustion and stops with what it has.
                    return None;
                }
                let e1 = &entries[c1.0 as usize];
                let e2 = &entries[c2.0 as usize];
                // Memoized: a revisited (section, section) pair answers
                // from the per-compile memo, so re-scans after each
                // absorption cost O(1) per already-judged pair.
                if !banned.contains(&(c1, c2)) && ctx.subsumed_within(e2, e1, level) {
                    return Some((c1, c2, pos));
                }
                if !banned.contains(&(c2, c1)) && ctx.subsumed_within(e1, e2, level) {
                    return Some((c2, c1, pos));
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{candidates, commgen, earliest, latest};
    use gcomm_ir::IrProgram;

    fn setup(src: &str) -> (IrProgram, Vec<CommEntry>) {
        let prog = gcomm_ir::lower(&gcomm_lang::parse_program(src).unwrap()).unwrap();
        let entries = commgen::number(commgen::generate(&prog));
        (prog, entries)
    }

    fn build_table(ctx: &AnalysisCtx<'_>, entries: &[CommEntry]) -> CandidateTable {
        let mut t = CandidateTable::default();
        for e in entries {
            let ep = earliest::earliest_pos(ctx, e);
            let lp = latest::latest(ctx, e);
            t.cands.insert(e.id, candidates::candidates(ctx, e, ep, lp));
        }
        t
    }

    #[test]
    fn identical_reads_collapse_to_one() {
        let (prog, entries) = setup(
            "
program t
param n
real a(n,n), b(n,n), c(n,n) distribute (block,block)
b(2:n, 1:n) = a(1:n-1, 1:n)
c(2:n, 1:n) = a(1:n-1, 1:n)
end",
        );
        let ctx = AnalysisCtx::new(&prog);
        let mut table = build_table(&ctx, &entries);
        let abs = eliminate(&ctx, &entries, &mut table);
        assert_eq!(abs.len(), 1);
        assert_eq!(table.cands.len(), 1);
    }

    #[test]
    fn strided_subset_absorbed_by_dense_read() {
        // Figure 4's b1/b2: the odd-column read is covered by the dense one
        // when both are placed at a common (late) point.
        let (prog, entries) = setup(
            "
program t
param n
real b(n,n), c(n,n) distribute (block,block)
b(1:n, 1:n:2) = 1
b(1:n, 2:n:2) = 2
do i = 2, n
  do j = 1, n, 2
    c(i, j) = b(i-1, j)
  enddo
  do j = 1, n
    c(i, j) = b(i-1, j)
  enddo
enddo
end",
        );
        let ctx = AnalysisCtx::new(&prog);
        let mut table = build_table(&ctx, &entries);
        assert_eq!(entries.len(), 2);
        let abs = eliminate(&ctx, &entries, &mut table);
        assert_eq!(abs.len(), 1, "b1 must be absorbed by b2");
        // The dense read (second entry) wins.
        assert_eq!(abs[0].by, entries[1].id);
        assert_eq!(abs[0].absorbed, entries[0].id);
        // And the winner's surviving candidates still dominate b1's use.
        let b1_use = Pos::before(&prog, entries[0].stmt);
        for p in &table.cands[&entries[1].id] {
            assert!(p.dominates(&b1_use, &ctx.dt));
        }
    }

    #[test]
    fn different_shifts_are_not_redundant() {
        let (prog, entries) = setup(
            "
program t
param n
real a(n,n), b(n,n), c(n,n) distribute (block,block)
b(2:n, 1:n) = a(1:n-1, 1:n)
c(1:n-1, 1:n) = a(2:n, 1:n)
end",
        );
        let ctx = AnalysisCtx::new(&prog);
        let mut table = build_table(&ctx, &entries);
        let abs = eliminate(&ctx, &entries, &mut table);
        assert!(abs.is_empty());
        assert_eq!(table.cands.len(), 2);
    }
}
