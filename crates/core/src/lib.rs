//! # gcomm-core — global communication analysis and optimization
//!
//! This crate is the primary contribution of the reproduced paper, *Global
//! Communication Analysis and Optimization* (Chakrabarti, Gupta, Choi;
//! PLDI 1996): a compiler algorithm that decides the placement of **all**
//! communication in a procedure globally and interdependently, unifying
//! redundancy elimination and message combining.
//!
//! The pipeline (paper §4) is:
//!
//! 1. [`commgen`] — identify non-local references and build communication
//!    entries (owner-computes shift detection, diagonal coalescing,
//!    reductions),
//! 2. [`latest`] — `Latest(u)`: the latest, shallowest safe placement
//!    (§4.2, classic message vectorization),
//! 3. [`earliest`] — `Earliest(u)`: the earliest *single dominating* point,
//!    via the `Test`/`Rcount` SSA walk of Fig. 8 (§4.3),
//! 4. [`candidates`] — all single candidate positions: the dominator-tree
//!    walk from `Latest` up to `Earliest` (§4.4, Fig. 9e),
//! 5. [`subset`] — subset elimination of dominated communication sets
//!    (§4.5),
//! 6. [`redundancy`] — global ASD-based redundancy elimination propagated
//!    over dominators (§4.6, Fig. 9f),
//! 7. [`greedy`] — the greedy most-constrained-first choice of final
//!    positions and message groups (§4.7, Fig. 9g),
//! 8. [`codegen`] — lowering a placed schedule to an executable
//!    [`gcomm_machine::CommProgram`] (§4.8).
//!
//! [`strategy`] additionally implements the two comparison code versions of
//! the evaluation (§5): the *original* baseline (vectorization only) and
//! *earliest placement with redundancy elimination*.
//!
//! # Example
//!
//! ```
//! use gcomm_core::{compile, Strategy};
//!
//! let src = "
//! program stencil
//! param n
//! real a(n,n), b(n,n), c(n,n) distribute (block, block)
//! do t = 1, 10
//!   b(2:n, 1:n) = a(1:n-1, 1:n)
//!   c(2:n, 1:n) = a(1:n-1, 1:n)
//!   a(1:n, 1:n) = b(1:n, 1:n) + c(1:n, 1:n)
//! enddo
//! end";
//! let orig = compile(src, Strategy::Original)?;
//! let glob = compile(src, Strategy::Global)?;
//! // The two reads of the same shifted section cost two messages under the
//! // baseline and one under the global algorithm.
//! assert!(glob.static_messages() < orig.static_messages());
//! # Ok::<(), gcomm_core::CoreError>(())
//! ```

pub mod candidates;
pub mod check;
pub mod codegen;
pub mod commgen;
pub mod ctx;
pub mod earliest;
pub mod entry;
pub mod greedy;
pub mod incr;
pub mod latest;
pub mod optimal;
pub mod pipeline;
pub mod redundancy;
pub mod schedule;
pub mod strategy;
pub mod subset;

pub use check::{check_schedule, LegalityReport};
pub use codegen::{lower_to_sim, lower_to_sim_with, SimConfig};
pub use ctx::AnalysisCtx;
pub use entry::{CommEntry, CommKind, EntryId};
pub use greedy::{CombinePolicy, GreedyOrder};
pub use optimal::{
    exhaustive_placement_jobs, optimal_placement, optimal_placement_jobs, OptimalResult,
};
pub use pipeline::{
    compile, compile_budgeted, compile_budgeted_with_policy, compile_diagnostics,
    compile_diagnostics_budgeted, compile_program, compile_program_budgeted, compile_stats,
    compile_with_policy, CompileStats, Compiled, CoreError, PassTimer,
};
pub use schedule::{PlacedGroup, Schedule};
pub use strategy::Strategy;
