//! `Latest(u)` — the latest, shallowest safe placement (§4.2).
//!
//! Classic message vectorization: communication for a use is placed just
//! before the outermost loop carrying no true dependence on it, or just
//! before the statement containing the use when every enclosing loop
//! carries one.

use gcomm_ir::Pos;

use crate::ctx::AnalysisCtx;
use crate::entry::CommEntry;

/// `CommLevel(u)` (§4.2): `max_d DepLevel(d, u)` over the reaching regular
/// definitions of the entry's reads (ENTRY pseudo-defs excluded).
pub fn comm_level(ctx: &AnalysisCtx<'_>, e: &CommEntry) -> u32 {
    let u_stmt = e.stmt;
    let mut level = 0u32;
    for &r in &e.reads {
        let u_acc = ctx.read_access(u_stmt, r).clone();
        for d in ctx.ssa.reaching_regular_defs(u_stmt, r) {
            let Some((d_acc, d_stmt)) = ctx.def_access(d) else {
                continue;
            };
            let d_acc = d_acc.clone();
            let cnl = ctx.prog.cnl(d_stmt, u_stmt);
            for l in (level + 1..=cnl).rev() {
                if ctx.ext_dep(d_stmt, &d_acc, u_stmt, &u_acc, l) {
                    level = l;
                    break;
                }
            }
        }
    }
    level
}

/// `Latest(u)`: the placement position derived from [`comm_level`].
///
/// Reductions are pinned immediately before their statement (§6.2: the
/// prototype "does not do reduction candidate marking yet"; reduction
/// communication follows the partial computation).
pub fn latest(ctx: &AnalysisCtx<'_>, e: &CommEntry) -> Pos {
    let u = e.stmt;
    if e.is_reduction() {
        return Pos::before(ctx.prog, u);
    }
    let nl = ctx.prog.stmt(u).level;
    let cl = comm_level(ctx, e);
    debug_assert!(cl <= nl, "CommLevel cannot exceed NL(u)");
    if cl >= nl {
        Pos::before(ctx.prog, u)
    } else {
        // Preheader of the loop at level cl + 1 containing u.
        // invariant: cl < nl = NL(u) here, so u sits inside a loop at every
        // level 1..=nl; only a broken loop-nest table could make this fail.
        let l = ctx
            .prog
            .enclosing_loop_at_level(u, cl + 1)
            .expect("level cl+1 <= NL(u) has a loop");
        Pos::bottom(ctx.prog, ctx.prog.loop_info(l).preheader)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commgen;
    use gcomm_ir::{IrProgram, NodeKind};

    fn setup(src: &str) -> (IrProgram, Vec<crate::CommEntry>) {
        let prog = gcomm_ir::lower(&gcomm_lang::parse_program(src).unwrap()).unwrap();
        let entries = commgen::number(commgen::generate(&prog));
        (prog, entries)
    }

    #[test]
    fn independent_comm_vectorizes_to_preheader() {
        let (prog, entries) = setup(
            "
program t
param n
real a(n,n), c(n,n) distribute (block,block)
do i = 2, n
  c(i, 1:n) = a(i-1, 1:n)
enddo
end",
        );
        let ctx = AnalysisCtx::new(&prog);
        assert_eq!(comm_level(&ctx, &entries[0]), 0);
        let p = latest(&ctx, &entries[0]);
        assert!(matches!(prog.cfg.node(p.node).kind, NodeKind::PreHeader(_)));
    }

    #[test]
    fn carried_dependence_pins_inside_loop() {
        let (prog, entries) = setup(
            "
program t
param n
real a(n,n) distribute (block,block)
do i = 2, n
  a(i, 1:n) = a(i-1, 1:n)
enddo
end",
        );
        let ctx = AnalysisCtx::new(&prog);
        assert_eq!(comm_level(&ctx, &entries[0]), 1);
        let p = latest(&ctx, &entries[0]);
        assert_eq!(p, Pos::before(&prog, entries[0].stmt));
    }

    #[test]
    fn timestep_carried_hoists_out_of_inner_loop_only() {
        let (prog, entries) = setup(
            "
program t
param n, nx
real g(nx,n,n), h(nx,n,n) distribute (*,block,block)
do ts = 1, 10
  do i = 1, nx
    h(i, 2:n, 1:n) = g(i, 1:n-1, 1:n)
  enddo
  do i = 1, nx
    g(i, 1:n, 1:n) = h(i, 1:n, 1:n)
  enddo
enddo
end",
        );
        let ctx = AnalysisCtx::new(&prog);
        // g is rewritten each timestep: the NNC for g must stay inside the
        // timestep loop but can vectorize out of the i loop.
        let e = &entries[0];
        assert_eq!(comm_level(&ctx, e), 1);
        let p = latest(&ctx, e);
        assert_eq!(p.level(&prog), 1);
        assert!(matches!(prog.cfg.node(p.node).kind, NodeKind::PreHeader(_)));
    }

    #[test]
    fn same_iteration_def_pins_before_statement() {
        // h is written earlier in the same iteration and then read shifted:
        // the loop-independent dependence pins the communication inside.
        let (prog, entries) = setup(
            "
program t
param n
real h(n,n), w(n,n) distribute (block,block)
do i = 1, n
  h(i, 1:n) = w(i, 1:n)
  w(i, 2:n) = h(i, 1:n-1)
enddo
end",
        );
        let ctx = AnalysisCtx::new(&prog);
        // Entry for h read in statement 1 (shift along dim 2).
        let e = entries.iter().find(|e| e.label.starts_with("h ")).unwrap();
        assert_eq!(comm_level(&ctx, e), 1);
        assert_eq!(latest(&ctx, e), Pos::before(&prog, e.stmt));
    }

    #[test]
    fn reductions_pin_before_statement() {
        let (prog, entries) = setup(
            "
program t
param n
real g(n,n) distribute (block,block)
real s
do i = 1, n
  s = sum(g(i, 1:n))
enddo
end",
        );
        let ctx = AnalysisCtx::new(&prog);
        assert_eq!(
            latest(&ctx, &entries[0]),
            Pos::before(&prog, entries[0].stmt)
        );
    }

    #[test]
    fn straightline_latest_is_before_use() {
        let (prog, entries) = setup(
            "
program t
param n
real a(n), c(n) distribute (block)
a(1:n) = 1
c(2:n) = a(1:n-1)
end",
        );
        let ctx = AnalysisCtx::new(&prog);
        assert_eq!(
            latest(&ctx, &entries[0]),
            Pos::before(&prog, entries[0].stmt)
        );
    }
}
