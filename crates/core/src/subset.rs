//! Subset elimination of candidate positions (§4.5).
//!
//! `CommSet(S)` is the set of entries for which statement position `S` is a
//! candidate. If `CommSet(S1) ⊆ CommSet(S2)`, clearing `S1` loses no
//! combining or redundancy-elimination opportunity: anything that could
//! happen at `S1` can happen at `S2`. For equal sets, the **later**
//! (dominated) position is kept, consistent with §4.7's preference for late
//! placement on the SP2.

use std::collections::{BTreeMap, BTreeSet};

use gcomm_guard::Budget;
use gcomm_ir::{DomTree, Pos};

use crate::entry::EntryId;

/// Candidate positions per entry (the working state of the placement
/// phases).
#[derive(Debug, Clone, Default)]
pub struct CandidateTable {
    /// Candidate positions per entry.
    pub cands: BTreeMap<EntryId, BTreeSet<Pos>>,
}

impl CandidateTable {
    /// Inverts the table: entries per position (`CommSet`).
    pub fn comm_sets(&self) -> BTreeMap<Pos, BTreeSet<EntryId>> {
        let mut out: BTreeMap<Pos, BTreeSet<EntryId>> = BTreeMap::new();
        for (&e, ps) in &self.cands {
            for &p in ps {
                out.entry(p).or_default().insert(e);
            }
        }
        out
    }

    /// Removes an entry everywhere (when absorbed by redundancy
    /// elimination).
    pub fn remove_entry(&mut self, e: EntryId) {
        self.cands.remove(&e);
    }
}

/// Performs subset elimination in place. Positions whose `CommSet` is a
/// strict subset of another's are cleared; among positions with equal
/// `CommSet`s only the latest (most dominated; ties broken by position
/// order) survives.
///
/// Degradation: every pairwise comparison charges the budget; when it
/// exhausts, the remaining positions simply stay uncleared
/// (`core.degraded.subset` counts one per early stop). Keeping extra
/// candidate positions is always legal — each cleared position was
/// individually justified, and none of the later phases require the table
/// to be minimal.
pub fn subset_eliminate(table: &mut CandidateTable, dt: &DomTree, budget: &Budget) {
    let _s = gcomm_obs::span("core.subset");
    let sets = table.comm_sets();
    budget.note_mem(sets.values().map(|s| s.len() as u64).sum::<u64>() * 8);
    let positions: Vec<Pos> = sets.keys().copied().collect();
    let mut cleared: BTreeSet<Pos> = BTreeSet::new();

    'outer: for &p in &positions {
        let sp = &sets[&p];
        if sp.is_empty() {
            cleared.insert(p);
            continue;
        }
        for &q in &positions {
            if !budget.charge(1) {
                gcomm_obs::count("core.degraded.subset", 1);
                break 'outer;
            }
            if p == q || cleared.contains(&p) {
                continue;
            }
            let sq = &sets[&q];
            if sp.is_subset(sq) {
                if sp.len() < sq.len() {
                    cleared.insert(p);
                    break;
                }
                // Equal sets: keep the later position. All entries' candidate
                // sets lie on a dominator chain, so p and q are comparable.
                let p_earlier = p.dominates(&q, dt);
                let q_earlier = q.dominates(&p, dt);
                let p_loses = if p_earlier != q_earlier {
                    p_earlier // q is later: p is cleared
                } else {
                    p < q // deterministic fallback
                };
                if p_loses {
                    cleared.insert(p);
                    break;
                }
            }
        }
    }

    gcomm_obs::count("core.subset.eliminated", cleared.len() as u64);
    for ps in table.cands.values_mut() {
        ps.retain(|p| !cleared.contains(p));
    }
    debug_assert!(
        table.cands.values().all(|ps| !ps.is_empty()),
        "subset elimination must leave every entry a candidate"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcomm_ir::{Cfg, NodeId, NodeKind};

    fn line_cfg(n_blocks: usize) -> (Cfg, DomTree) {
        let mut g = Cfg::new();
        let mut prev = g.entry;
        for _ in 0..n_blocks {
            let b = g.add_node(NodeKind::Block, None, 0);
            g.add_edge(prev, b);
            prev = b;
        }
        g.exit = prev;
        let dt = DomTree::compute(&g);
        (g, dt)
    }

    fn pos(node: u32, slot: usize) -> Pos {
        Pos {
            node: NodeId(node),
            slot,
        }
    }

    #[test]
    fn strict_subsets_are_cleared() {
        let (_, dt) = line_cfg(3);
        let mut t = CandidateTable::default();
        // e0 at {p1, p2}; e1 at {p2}. CommSet(p1) = {e0} ⊂ CommSet(p2) =
        // {e0, e1} → p1 cleared.
        t.cands
            .insert(EntryId(0), [pos(1, 0), pos(2, 0)].into_iter().collect());
        t.cands
            .insert(EntryId(1), [pos(2, 0)].into_iter().collect());
        subset_eliminate(&mut t, &dt, &Budget::unlimited());
        assert_eq!(t.cands[&EntryId(0)].len(), 1);
        assert!(t.cands[&EntryId(0)].contains(&pos(2, 0)));
    }

    #[test]
    fn equal_sets_keep_latest() {
        let (_, dt) = line_cfg(3);
        let mut t = CandidateTable::default();
        // Both entries at both positions; node 2 is dominated by node 1, so
        // node 2 (later) survives.
        for e in 0..2 {
            t.cands
                .insert(EntryId(e), [pos(1, 0), pos(2, 0)].into_iter().collect());
        }
        subset_eliminate(&mut t, &dt, &Budget::unlimited());
        for e in 0..2 {
            assert_eq!(
                t.cands[&EntryId(e)].iter().copied().collect::<Vec<_>>(),
                vec![pos(2, 0)]
            );
        }
    }

    #[test]
    fn incomparable_sets_survive() {
        let (_, dt) = line_cfg(3);
        let mut t = CandidateTable::default();
        t.cands
            .insert(EntryId(0), [pos(1, 0)].into_iter().collect());
        t.cands
            .insert(EntryId(1), [pos(2, 0)].into_iter().collect());
        subset_eliminate(&mut t, &dt, &Budget::unlimited());
        assert!(t.cands[&EntryId(0)].contains(&pos(1, 0)));
        assert!(t.cands[&EntryId(1)].contains(&pos(2, 0)));
    }

    #[test]
    fn every_entry_keeps_a_candidate() {
        let (_, dt) = line_cfg(4);
        let mut t = CandidateTable::default();
        t.cands.insert(
            EntryId(0),
            [pos(1, 0), pos(2, 0), pos(3, 0)].into_iter().collect(),
        );
        t.cands
            .insert(EntryId(1), [pos(2, 0), pos(3, 0)].into_iter().collect());
        t.cands
            .insert(EntryId(2), [pos(3, 0)].into_iter().collect());
        subset_eliminate(&mut t, &dt, &Budget::unlimited());
        for ps in t.cands.values() {
            assert!(!ps.is_empty());
        }
        // Everything collapses onto p3.
        assert!(t.cands.values().all(|ps| ps.contains(&pos(3, 0))));
    }
}
