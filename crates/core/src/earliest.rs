//! `Earliest(u)` — the earliest single dominating placement (§4.3, Fig. 8).
//!
//! The traversal walks the SSA definition chain upward from the use. `Test`
//! decides whether a definition blocks further upward motion: a regular
//! definition blocks when it carries a dependence to the use; a
//! φ-definition blocks when **two or more** of its parameters lead (through
//! `Rcount`) to dependence-bearing definitions — meaning the value would
//! have to be communicated on multiple incoming paths, so the φ itself is
//! the earliest *single dominating* point (Claim 4.1).

use std::collections::HashSet;

use gcomm_ir::{AccessRef, Pos, StmtId};
use gcomm_ssa::{DefId, DefKind};

use crate::ctx::AnalysisCtx;
use crate::entry::CommEntry;

/// `Earliest(u)` for one read: the first definition on the upward chain
/// whose `Test` is true (the ENTRY pseudo-definition always is).
pub fn earliest_def_for_read(ctx: &AnalysisCtx<'_>, stmt: StmtId, idx: usize) -> DefId {
    let u_acc = ctx.read_access(stmt, idx).clone();
    // invariant: SSA construction gives every read a reaching definition
    // (the ENTRY pseudo-def backstops uses with no prior write), so a miss
    // here is a builder bug, not a property of any source program.
    let mut d = ctx
        .ssa
        .use_def(stmt, idx)
        .expect("every read has a reaching definition");
    loop {
        if test(ctx, d, stmt, &u_acc) {
            return d;
        }
        match ctx.ssa.def(d).dom_prev {
            Some(p) => d = p,
            None => return d, // ENTRY (test() is true there, defensive)
        }
    }
}

/// The paper's `Test(d, u)` (Fig. 8b).
pub fn test(ctx: &AnalysisCtx<'_>, d: DefId, u_stmt: StmtId, u_acc: &AccessRef) -> bool {
    gcomm_obs::count("core.earliest.tests", 1);
    let info = ctx.ssa.def(d);
    match &info.kind {
        DefKind::Entry => true,
        DefKind::Regular { stmt, .. } => {
            let Some((d_acc, d_stmt)) = ctx.def_access(d) else {
                return true; // defensive: unknown def blocks motion
            };
            let d_acc = d_acc.clone();
            let _ = stmt;
            let l = ctx.prog.cnl(d_stmt, u_stmt);
            ctx.ext_dep(d_stmt, &d_acc, u_stmt, u_acc, l)
        }
        k => {
            let l = ctx.prog.cnl_node_stmt(info.node, u_stmt);
            let mut positives = 0u32;
            for arg in k.phi_args() {
                // Fig. 8(b): the visit array is cleared for each parameter
                // (`visit[] = 0, visit[d] = 1`); only the φ being tested
                // stays marked, so the walk cannot cycle through it.
                let mut visit: HashSet<DefId> = HashSet::new();
                visit.insert(d);
                if rcount(ctx, arg, u_stmt, u_acc, l, &mut visit) > 0 {
                    positives += 1;
                    if positives >= 2 {
                        return true;
                    }
                }
            }
            false
        }
    }
}

/// The paper's `Rcount` (Fig. 8c): counts dependence-bearing definitions
/// reachable through a φ-parameter, visiting each definition once.
pub fn rcount(
    ctx: &AnalysisCtx<'_>,
    d: DefId,
    u_stmt: StmtId,
    u_acc: &AccessRef,
    l: u32,
    visit: &mut HashSet<DefId>,
) -> u32 {
    if !visit.insert(d) {
        return 0;
    }
    let info = ctx.ssa.def(d);
    match &info.kind {
        DefKind::Entry => 1, // the ENTRY pseudo-def is always dependent
        DefKind::Regular { prev, .. } => {
            let Some((d_acc, d_stmt)) = ctx.def_access(d) else {
                return 1;
            };
            let d_acc = d_acc.clone();
            if ctx.ext_dep(
                d_stmt,
                &d_acc,
                u_stmt,
                u_acc,
                l.min(ctx.prog.cnl(d_stmt, u_stmt)),
            ) {
                1
            } else {
                // Preserving definition: earlier values shine through.
                rcount(ctx, *prev, u_stmt, u_acc, l, visit)
            }
        }
        k => k
            .phi_args()
            .into_iter()
            .map(|a| rcount(ctx, a, u_stmt, u_acc, l, visit))
            .sum(),
    }
}

/// `Earliest` for a whole (possibly coalesced) entry: the deepest of the
/// per-read earliest definitions — communication must sit after *all* of
/// them. The per-read results all dominate the use, hence are totally
/// ordered by dominance.
pub fn earliest_pos(ctx: &AnalysisCtx<'_>, e: &CommEntry) -> Pos {
    let mut best: Option<Pos> = None;
    for &r in &e.reads {
        let d = earliest_def_for_read(ctx, e.stmt, r);
        let p = ctx.ssa.def_pos(ctx.prog, d);
        best = Some(match best {
            None => p,
            Some(b) => {
                if b.dominates(&p, &ctx.dt) {
                    p // p is later (deeper): the binding constraint
                } else {
                    b
                }
            }
        });
    }
    best.unwrap_or(Pos::top(ctx.prog.cfg.entry))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commgen;
    use gcomm_ir::{IrProgram, NodeKind};

    fn setup(src: &str) -> (IrProgram, Vec<crate::CommEntry>) {
        let prog = gcomm_ir::lower(&gcomm_lang::parse_program(src).unwrap()).unwrap();
        let entries = commgen::number(commgen::generate(&prog));
        (prog, entries)
    }

    #[test]
    fn earliest_after_unconditional_def() {
        let (prog, entries) = setup(
            "
program t
param n
real a(n), b(n), c(n) distribute (block)
a(1:n) = 1
b(1:n) = 2
c(2:n) = a(1:n-1)
end",
        );
        let ctx = AnalysisCtx::new(&prog);
        let p = earliest_pos(&ctx, &entries[0]);
        // Right after statement 0 (the def of a), i.e. slot 1 of the block.
        assert_eq!(p, Pos::after(&prog, StmtId(0)));
    }

    #[test]
    fn earliest_is_phi_after_branch_defs() {
        // Figure 4 of the paper: a defined in both arms; the earliest single
        // dominating point is the join (φ), not the two defs.
        let (prog, entries) = setup(
            "
program t
param n
real a(n,n), d(n,n), c(n,n) distribute (block,block)
real cond
if (cond > 0) then
  a(:, :) = 3
else
  a(:, :) = d(:, :)
endif
do i = 2, n
  c(i, 1:n) = a(i-1, 1:n)
enddo
end",
        );
        let ctx = AnalysisCtx::new(&prog);
        let e = entries.iter().find(|e| e.label.starts_with("a ")).unwrap();
        let d = earliest_def_for_read(&ctx, e.stmt, e.reads[0]);
        assert!(ctx.ssa.def(d).kind.is_phi());
        // The φ sits at the join node, which strictly dominates the loop.
        let p = earliest_pos(&ctx, e);
        assert!(p.dominates(&Pos::before(&prog, e.stmt), &ctx.dt));
        assert!(!matches!(
            prog.cfg.node(p.node).kind,
            NodeKind::Entry | NodeKind::Header(_)
        ));
    }

    #[test]
    fn unrelated_def_does_not_block() {
        // The def of b between the def of a and its use must not stop the
        // upward motion of a's communication.
        let (prog, entries) = setup(
            "
program t
param n
real a(n), b(n), c(n) distribute (block)
a(1:n) = 1
b(1:n) = 2
c(2:n) = a(1:n-1) + b(1:n-1)
end",
        );
        let ctx = AnalysisCtx::new(&prog);
        let ea = entries.iter().find(|e| e.label.starts_with("a ")).unwrap();
        let eb = entries.iter().find(|e| e.label.starts_with("b ")).unwrap();
        assert_eq!(earliest_pos(&ctx, ea), Pos::after(&prog, StmtId(0)));
        assert_eq!(earliest_pos(&ctx, eb), Pos::after(&prog, StmtId(1)));
    }

    #[test]
    fn disjoint_def_does_not_block() {
        // Figure 4: b(:,2:n:2) does not block the odd-column use b1.
        let (prog, entries) = setup(
            "
program t
param n
real b(n,n), c(n,n) distribute (block,block)
b(1:n, 1:n:2) = 1
b(1:n, 2:n:2) = 2
do i = 2, n
  do j = 1, n, 2
    c(i, j) = b(i-1, j)
  enddo
enddo
end",
        );
        let ctx = AnalysisCtx::new(&prog);
        let e = &entries[0];
        // Earliest must be right after statement 0, skipping the
        // even-column def (statement 1).
        assert_eq!(earliest_pos(&ctx, e), Pos::after(&prog, StmtId(0)));
    }

    #[test]
    fn loop_carried_value_blocks_at_header_phi() {
        // The communicated array is redefined each iteration and read with a
        // +1 carried distance: the header φ is the earliest point.
        let (prog, entries) = setup(
            "
program t
param n
real a(n,n) distribute (block,block)
do i = 2, n
  a(i, 1:n) = a(i-1, 1:n)
enddo
end",
        );
        let ctx = AnalysisCtx::new(&prog);
        let d = earliest_def_for_read(&ctx, entries[0].stmt, 0);
        let info = ctx.ssa.def(d);
        assert!(matches!(info.kind, gcomm_ssa::DefKind::PhiEnter { .. }));
        assert!(matches!(prog.cfg.node(info.node).kind, NodeKind::Header(_)));
    }

    #[test]
    fn earliest_dominates_latest() {
        let srcs = [
            "
program t
param n
real a(n,n), c(n,n) distribute (block,block)
a(1:n, 1:n) = 0
do i = 2, n
  c(i, 1:n) = a(i-1, 1:n)
enddo
end",
            "
program t
param n
real a(n,n) distribute (block,block)
do i = 2, n
  a(i, 1:n) = a(i-1, 1:n)
enddo
end",
        ];
        for src in srcs {
            let (prog, entries) = setup(src);
            let ctx = AnalysisCtx::new(&prog);
            for e in &entries {
                let ep = earliest_pos(&ctx, e);
                let lp = crate::latest::latest(&ctx, e);
                assert!(
                    ep.dominates(&lp, &ctx.dt),
                    "Earliest must dominate Latest for {}",
                    e.label
                );
            }
        }
    }
}
