//! Candidate placement positions (§4.4, Fig. 9e).
//!
//! Any safe position for a *single* copy of a use's communication must
//! dominate the use; Claims 4.5/4.6 show these are exactly the statements
//! encountered walking the dominator tree from `Latest(u)`'s block up to
//! `Earliest(u)`'s block.

use std::collections::BTreeSet;

use gcomm_ir::Pos;

use crate::ctx::AnalysisCtx;
use crate::entry::CommEntry;

/// Marks all candidate positions for an entry, given its `Latest` and
/// `Earliest` positions. Reductions get the single `Latest` position (§6.2).
///
/// Degradation: once the analysis budget is exhausted the window collapses
/// to the single `Latest` position — the `Strategy::Original` placement,
/// which always dominates the use and is therefore legal; the entry merely
/// loses its hoisting/elimination opportunities
/// (`core.degraded.candidates` counts these).
pub fn candidates(
    ctx: &AnalysisCtx<'_>,
    e: &CommEntry,
    earliest: Pos,
    latest: Pos,
) -> BTreeSet<Pos> {
    let mut out = BTreeSet::new();
    if e.is_reduction() {
        out.insert(latest);
        return out;
    }
    if ctx.budget.exhausted() {
        gcomm_obs::count("core.degraded.candidates", 1);
        out.insert(latest);
        return out;
    }
    window(ctx, earliest, latest, &mut out);
    // Candidate windows are the unit of super-linear cost downstream
    // (subset elimination and combining are pairwise over positions), so
    // their size is what the budget meters.
    ctx.budget.charge(out.len() as u64);
    ctx.budget
        .note_mem(out.len() as u64 * std::mem::size_of::<Pos>() as u64);
    out
}

/// The unbudgeted dominator-tree walk of §4.4.
fn window(ctx: &AnalysisCtx<'_>, earliest: Pos, latest: Pos, out: &mut BTreeSet<Pos>) {
    if !earliest.dominates(&latest, &ctx.dt) {
        // Defensive: fall back to the single safe point.
        out.insert(latest);
        return;
    }
    if earliest.node == latest.node {
        for slot in earliest.slot..=latest.slot {
            out.insert(Pos {
                node: latest.node,
                slot,
            });
        }
        return;
    }
    // Mark the tail of Latest's block up to Latest(u).
    for slot in 0..=latest.slot {
        out.insert(Pos {
            node: latest.node,
            slot,
        });
    }
    // Walk dominator parents, marking whole blocks, until Earliest's block.
    let mut c = ctx.dt.parent(latest.node);
    while let Some(n) = c {
        if n == earliest.node {
            let bottom = Pos::bottom(ctx.prog, n);
            for slot in earliest.slot..=bottom.slot {
                out.insert(Pos { node: n, slot });
            }
            return;
        }
        let bottom = Pos::bottom(ctx.prog, n);
        for slot in 0..=bottom.slot {
            out.insert(Pos { node: n, slot });
        }
        c = ctx.dt.parent(n);
    }
    // Earliest's block was not an ancestor (cannot happen when earliest
    // dominates latest); keep what we have plus the safe point.
    out.insert(latest);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{commgen, earliest::earliest_pos, latest::latest};
    use gcomm_ir::IrProgram;

    fn setup(src: &str) -> (IrProgram, Vec<crate::CommEntry>) {
        let prog = gcomm_ir::lower(&gcomm_lang::parse_program(src).unwrap()).unwrap();
        let entries = commgen::number(commgen::generate(&prog));
        (prog, entries)
    }

    #[test]
    fn same_block_range() {
        let (prog, entries) = setup(
            "
program t
param n
real a(n), b(n), c(n) distribute (block)
a(1:n) = 1
b(1:n) = 2
c(2:n) = a(1:n-1)
end",
        );
        let ctx = AnalysisCtx::new(&prog);
        let e = &entries[0];
        let ep = earliest_pos(&ctx, e);
        let lp = latest(&ctx, e);
        let cands = candidates(&ctx, e, ep, lp);
        // After stmt 0 (slot 1), after stmt 1 (slot 2) == before stmt 2.
        assert_eq!(cands.len(), 2);
        assert!(cands.contains(&ep));
        assert!(cands.contains(&lp));
    }

    #[test]
    fn cross_block_walk_collects_preheader() {
        let (prog, entries) = setup(
            "
program t
param n
real a(n,n), c(n,n) distribute (block,block)
a(1:n, 1:n) = 0
do i = 2, n
  c(i, 1:n) = a(i-1, 1:n)
enddo
end",
        );
        let ctx = AnalysisCtx::new(&prog);
        let e = &entries[0];
        let ep = earliest_pos(&ctx, e);
        let lp = latest(&ctx, e);
        let cands = candidates(&ctx, e, ep, lp);
        // Latest is the loop preheader; earliest is after the def. The
        // candidate set contains both and everything between.
        assert!(cands.contains(&ep));
        assert!(cands.contains(&lp));
        assert!(cands.len() >= 2);
        // All candidates dominate the use.
        let before_use = Pos::before(&prog, e.stmt);
        for p in &cands {
            assert!(p.dominates(&before_use, &ctx.dt));
        }
    }

    #[test]
    fn reduction_has_single_candidate() {
        let (prog, entries) = setup(
            "
program t
param n
real g(n,n) distribute (block,block)
real s
do i = 1, n
  s = sum(g(i, 1:n))
enddo
end",
        );
        let ctx = AnalysisCtx::new(&prog);
        let e = &entries[0];
        let cands = candidates(&ctx, e, earliest_pos(&ctx, e), latest(&ctx, e));
        assert_eq!(cands.len(), 1);
    }
}
