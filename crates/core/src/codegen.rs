//! Code generation (§4.8): lowering a placed schedule to an executable
//! communication program for the machine simulator.
//!
//! The paper's code generator emits calls into the pHPF runtime (which in
//! turn calls MPL/MPI); ours lowers to a [`CommProgram`] — a loop-structured
//! sequence of compute and communication phases at a *concrete* problem
//! size — which [`gcomm_machine::sim`] then executes under a network model.

use std::collections::HashMap;

use gcomm_coll::{CollConfig, PatternShape};
use gcomm_ir::StmtKind;
use gcomm_ir::{AccessRef, LoopId, SubscriptIr, Var};
use gcomm_machine::{CommPhase, CommProgram, Msg, MsgKind, PhaseItem, ProcGrid};
use gcomm_sections::Mapping;

use crate::ctx::AnalysisCtx;
use crate::entry::CommKind;
use crate::pipeline::Compiled;
use crate::schedule::PlacedGroup;

/// Concrete simulation configuration: processor grid and parameter values.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The processor grid.
    pub grid: ProcGrid,
    /// Value of each size parameter, by name.
    pub params: HashMap<String, i64>,
    /// Bytes per element (8 for doubles).
    pub elem_bytes: f64,
    /// Collective-backend configuration (`--machine`/`--coll`). `None`
    /// prices every message on the legacy flat model.
    pub coll: Option<CollConfig>,
}

impl SimConfig {
    /// A configuration with every parameter bound to `n`.
    pub fn uniform(compiled: &Compiled, grid: ProcGrid, n: i64) -> Self {
        SimConfig {
            grid,
            params: compiled
                .prog
                .params
                .iter()
                .map(|p| (p.clone(), n))
                .collect(),
            elem_bytes: 8.0,
            coll: None,
        }
    }

    /// Binds one parameter to a different value (e.g. the timestep count).
    pub fn with(mut self, name: &str, v: i64) -> Self {
        self.params.insert(name.to_string(), v);
        self
    }

    /// Routes combined messages through the collective backend.
    pub fn with_coll(mut self, coll: CollConfig) -> Self {
        self.coll = Some(coll);
        self
    }
}

/// Lowers a compiled procedure to a concrete communication program.
pub fn lower_to_sim(compiled: &Compiled, cfg: &SimConfig) -> CommProgram {
    lower_to_sim_with(compiled, cfg, &AnalysisCtx::new(&compiled.prog))
}

/// Like [`lower_to_sim`], but reuses a caller-provided analysis context
/// for the *same program*. Repeated lowerings — the exhaustive search
/// scores thousands of schedules of one procedure — then share the
/// context's section cache instead of rebuilding SSA, dominators, and
/// every widened section per call.
pub fn lower_to_sim_with(
    compiled: &Compiled,
    cfg: &SimConfig,
    ctx: &AnalysisCtx<'_>,
) -> CommProgram {
    let prog = &compiled.prog;
    let p_total = cfg.grid.nproc().max(1);
    let (mid, trips) = loop_bindings(compiled, cfg);
    let items = build_items(compiled, cfg, ctx, &mid, &trips, None, p_total);
    CommProgram {
        name: prog.name.clone(),
        items,
    }
}

/// Loop-variable midpoints and trip counts at the configured size (parents
/// come first in `LoopId` order, so bindings resolve transitively). Shared
/// between lowering and the branch-and-bound cost model so both evaluate
/// sizes with bit-identical arithmetic.
pub(crate) fn loop_bindings(
    compiled: &Compiled,
    cfg: &SimConfig,
) -> (HashMap<LoopId, i64>, HashMap<LoopId, u64>) {
    let prog = &compiled.prog;
    let mut mid: HashMap<LoopId, i64> = HashMap::new();
    let mut trips: HashMap<LoopId, u64> = HashMap::new();
    for (i, li) in prog.loops.iter().enumerate() {
        let l = LoopId(i as u32);
        let (lo, hi) = {
            let bind = bind_exact(compiled, cfg, &mid);
            let lo = li.lo.eval(&bind).unwrap_or(1);
            let hi = li.hi.eval(&bind).unwrap_or(lo);
            (lo, hi)
        };
        let t = if li.step > 0 {
            ((hi - lo).max(-1) / li.step + 1).max(0)
        } else {
            ((lo - hi).max(-1) / -li.step + 1).max(0)
        };
        trips.insert(l, t as u64);
        mid.insert(l, (lo + hi) / 2);
    }
    (mid, trips)
}

fn build_items(
    compiled: &Compiled,
    cfg: &SimConfig,
    ctx: &AnalysisCtx<'_>,
    mid: &HashMap<LoopId, i64>,
    trips: &HashMap<LoopId, u64>,
    context: Option<LoopId>,
    p_total: u64,
) -> Vec<PhaseItem> {
    let prog = &compiled.prog;
    let mut items = Vec::new();

    // Communication groups placed in this loop context.
    let mut phase = CommPhase::default();
    for g in &compiled.schedule.groups {
        if prog.cfg.node(g.pos.node).enclosing == context {
            phase
                .msgs
                .push(group_msg(compiled, cfg, ctx, mid, g, p_total));
        }
    }
    if !phase.msgs.is_empty() {
        items.push(PhaseItem::Comm(phase));
    }

    // Aggregate compute of the statements directly in this context.
    let mut flops = 0.0f64;
    let mut mem = 0.0f64;
    for info in &prog.stmts {
        if info.enclosing != context {
            continue;
        }
        if let StmtKind::Assign {
            lhs,
            reads,
            flops: f,
            ..
        } = &info.kind
        {
            let elems = access_count(compiled, cfg, mid, lhs) as f64;
            let local = if prog.array(lhs.array).is_replicated() {
                elems
            } else {
                (elems / p_total as f64).max(1.0)
            };
            flops += local * (*f).max(1) as f64;
            mem += local * cfg.elem_bytes * (reads.len() + 1) as f64;
        }
    }
    if flops > 0.0 || mem > 0.0 {
        items.push(PhaseItem::Compute {
            flops,
            mem_bytes: mem,
        });
    }

    // Child loops.
    for (i, li) in prog.loops.iter().enumerate() {
        if li.parent != context {
            continue;
        }
        let l = LoopId(i as u32);
        let body = build_items(compiled, cfg, ctx, mid, trips, Some(l), p_total);
        if !body.is_empty() {
            items.push(PhaseItem::Loop {
                trips: trips[&l],
                body,
            });
        }
    }
    items
}

/// Concrete element count of an access at the configured size.
fn access_count(
    compiled: &Compiled,
    cfg: &SimConfig,
    mid: &HashMap<LoopId, i64>,
    acc: &AccessRef,
) -> u64 {
    let bind = bind_exact(compiled, cfg, mid);
    let mut total: u64 = 1;
    for s in &acc.subs {
        let c = match s {
            SubscriptIr::Elem(_) => 1,
            SubscriptIr::Range { lo, hi, step } => {
                let lo = lo.eval(&bind).unwrap_or(1);
                let hi = hi.eval(&bind).unwrap_or(lo);
                if hi < lo {
                    0
                } else {
                    ((hi - lo) / step.abs().max(1) + 1) as u64
                }
            }
            SubscriptIr::NonAffine => 1,
        };
        total = total.saturating_mul(c.max(1));
    }
    total
}

fn bind_exact<'a>(
    compiled: &'a Compiled,
    cfg: &'a SimConfig,
    mid: &'a HashMap<LoopId, i64>,
) -> impl Fn(Var) -> Option<i64> + 'a {
    move |v| match v {
        Var::Param(p) => {
            let name = compiled.prog.params.get(p.0 as usize)?;
            cfg.params.get(name).copied()
        }
        Var::Loop(l) => mid.get(&l).copied(),
    }
}

fn group_msg(
    compiled: &Compiled,
    cfg: &SimConfig,
    ctx: &AnalysisCtx<'_>,
    mid: &HashMap<LoopId, i64>,
    g: &PlacedGroup,
    p_total: u64,
) -> Msg {
    let mut bytes = 0.0f64;
    for &eid in &g.entries {
        bytes += entry_msg_bytes(
            compiled, cfg, ctx, mid, eid, &g.mapping, g.kind, g.pos, p_total,
        );
    }
    let (rounds, kind, shape) = group_pattern(
        compiled,
        cfg,
        ctx,
        mid,
        g.entries[0],
        &g.mapping,
        g.kind,
        g.pos,
        p_total,
    );
    lowered_msg(
        cfg.coll.as_ref(),
        bytes,
        rounds,
        kind,
        shape,
        g.entries.len() as u64,
    )
}

/// Builds the group's [`Msg`]: the legacy flat pricing when no collective
/// backend is configured, otherwise the backend's lowered step schedule
/// (with `rounds` set to the schedule length so message counting follows
/// the algorithm actually executed). Shared with the branch-and-bound
/// cost model so both lower bit-identically.
pub(crate) fn lowered_msg(
    coll: Option<&CollConfig>,
    bytes: f64,
    rounds: u64,
    kind: MsgKind,
    shape: PatternShape,
    pieces: u64,
) -> Msg {
    match coll {
        None => Msg::flat(bytes, rounds, kind, pieces),
        Some(cc) => {
            let lowered = gcomm_coll::lower_msg(cc, shape, bytes);
            Msg {
                bytes,
                rounds: (lowered.steps.len() as u64).max(1),
                kind,
                pieces,
                steps: lowered.steps,
            }
        }
    }
}

/// Linearized rank distance of a template-space shift: per-axis offsets
/// weighted by the row-major stride of each grid axis. Translation
/// invariant — the topology tiers see only the magnitude.
fn shift_distance(offsets: &[i64], grid: &ProcGrid) -> u64 {
    let rank = grid.rank();
    let mut dist: i64 = 0;
    for (axis, &off) in offsets.iter().enumerate() {
        let a = axis.min(rank.saturating_sub(1));
        let mut stride: i64 = 1;
        for b in (a + 1)..rank {
            stride = stride.saturating_mul(grid.axis(b) as i64);
        }
        dist = dist.saturating_add(off.saturating_mul(stride));
    }
    dist.unsigned_abs().max(1)
}

/// One member's contribution to its group's message bytes (§6.1 cost
/// model). The contributions are exactly additive: `group_msg` sums one
/// per member, in member order, so the branch-and-bound search can
/// precompute them per `(entry, candidate position)` and rebuild any
/// group's byte count without re-walking sections.
#[allow(clippy::too_many_arguments)]
pub(crate) fn entry_msg_bytes(
    compiled: &Compiled,
    cfg: &SimConfig,
    ctx: &AnalysisCtx<'_>,
    mid: &HashMap<LoopId, i64>,
    eid: crate::entry::EntryId,
    mapping: &Mapping,
    kind: CommKind,
    pos: gcomm_ir::Pos,
    p_total: u64,
) -> f64 {
    let prog = &compiled.prog;
    let level = pos.level(prog);
    let bind = bind_exact(compiled, cfg, mid);
    let e = compiled.schedule.entry(eid);
    let shared;
    let sect = match compiled.schedule.section_override(eid) {
        Some(s) => s,
        None => {
            shared = ctx.asd_shared(e, level).0;
            &shared.section
        }
    };
    let total = sect.count(&bind).unwrap_or(1).max(1) as f64;
    match (mapping, kind) {
        (_, CommKind::Reduction) => cfg.elem_bytes, // one partial result per reduction
        (Mapping::Shift { offsets }, _) => {
            let local = (total / p_total as f64).max(1.0);
            let arr = prog.array(e.array);
            let ddims = arr.distributed_dims();
            let mut ghost = local;
            for (axis, &off) in offsets.iter().enumerate() {
                if off == 0 {
                    continue;
                }
                let dim = ddims.get(axis).copied().unwrap_or(0);
                let ext = sect
                    .dims
                    .get(dim)
                    .and_then(|d| d.count(&bind))
                    .unwrap_or(1)
                    .max(1) as f64;
                let local_ext =
                    (ext / cfg.grid.axis(axis.min(cfg.grid.rank() - 1)) as f64).max(1.0);
                let cyclic = arr.dist.get(dim) == Some(&gcomm_lang::Dist::Cyclic);
                ghost = if cyclic {
                    local
                } else {
                    (local / local_ext * off.unsigned_abs() as f64).max(1.0)
                };
            }
            ghost * cfg.elem_bytes
        }
        (Mapping::Broadcast, _) => total * cfg.elem_bytes,
        _ => total * cfg.elem_bytes / p_total as f64,
    }
}

/// Round count, message kind, and pattern shape of a group led by `head`
/// (the first member). Depends only on the head entry, the group's
/// mapping and kind, and the placement position — shared with the
/// branch-and-bound cost model.
#[allow(clippy::too_many_arguments)]
pub(crate) fn group_pattern(
    compiled: &Compiled,
    cfg: &SimConfig,
    ctx: &AnalysisCtx<'_>,
    mid: &HashMap<LoopId, i64>,
    head: crate::entry::EntryId,
    mapping: &Mapping,
    kind: CommKind,
    pos: gcomm_ir::Pos,
    p_total: u64,
) -> (u64, MsgKind, PatternShape) {
    let prog = &compiled.prog;
    let level = pos.level(prog);
    let bind = bind_exact(compiled, cfg, mid);
    let log_p = (64 - (p_total.max(1) - 1).leading_zeros()) as u64;
    match kind {
        CommKind::Nnc => {
            let dist = match mapping {
                Mapping::Shift { offsets } => shift_distance(offsets, &cfg.grid),
                _ => 1,
            };
            (1, MsgKind::PointToPoint, PatternShape::Shift { dist })
        }
        CommKind::Reduction => {
            // The reduction tree spans only the owners of the reduced
            // section: a row section of a (BLOCK, BLOCK) array lives on one
            // grid row, so the combine runs over that axis subset.
            let e = compiled.schedule.entry(head);
            let asd = ctx.asd_shared(e, level).0;
            let sect = &asd.section;
            let arr = prog.array(e.array);
            let mut owners: u64 = 1;
            for (axis, &dim) in arr.distributed_dims().iter().enumerate() {
                let ext = sect
                    .dims
                    .get(dim)
                    .and_then(|d| d.count(&bind))
                    .unwrap_or(u64::MAX);
                if ext > 1 {
                    owners *= cfg.grid.axis(axis.min(cfg.grid.rank() - 1)) as u64;
                }
            }
            let log_owners = (64 - (owners.max(1) - 1).leading_zeros()) as u64;
            (
                log_owners.max(1),
                MsgKind::Collective,
                PatternShape::Tree {
                    parts: owners.max(1),
                },
            )
        }
        CommKind::Broadcast | CommKind::Gather => (
            log_p.max(1),
            MsgKind::Collective,
            PatternShape::Tree { parts: p_total },
        ),
        CommKind::General => (
            log_p.max(1),
            MsgKind::Collective,
            PatternShape::Tree { parts: p_total },
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile, Strategy};
    use gcomm_machine::{simulate, NetworkModel};

    const STENCIL: &str = "
program stencil
param n, nsteps
real a(n,n), b(n,n) distribute (block,block)
do t = 1, nsteps
  b(2:n, 1:n) = a(1:n-1, 1:n)
  a(1:n, 1:n) = b(1:n, 1:n)
enddo
end";

    fn sim(strategy: Strategy, n: i64) -> gcomm_machine::SimResult {
        let c = compile(STENCIL, strategy).unwrap();
        let cfg = SimConfig::uniform(&c, ProcGrid::balanced(4, 2), n).with("nsteps", 10);
        let prog = lower_to_sim(&c, &cfg);
        simulate(&prog, &NetworkModel::sp2())
    }

    #[test]
    fn stencil_simulates_with_messages_inside_timestep_loop() {
        let r = sim(Strategy::Global, 512);
        // One NNC exchange per timestep: 10 messages.
        assert_eq!(r.messages, 10);
        assert!(r.comm_us > 0.0);
        assert!(r.compute_us > 0.0);
    }

    #[test]
    fn larger_problems_cost_more_compute() {
        let a = sim(Strategy::Global, 256);
        let b = sim(Strategy::Global, 1024);
        assert!(b.compute_us > 4.0 * a.compute_us);
    }

    #[test]
    fn redundant_reads_cost_more_under_baseline() {
        let src = "
program dup
param n, nsteps
real a(n,n), b(n,n), c(n,n) distribute (block,block)
do t = 1, nsteps
  b(2:n, 1:n) = a(1:n-1, 1:n)
  c(2:n, 1:n) = a(1:n-1, 1:n)
  a(1:n, 1:n) = b(1:n, 1:n) + c(1:n, 1:n)
enddo
end";
        let run = |s| {
            let c = compile(src, s).unwrap();
            let cfg = SimConfig::uniform(&c, ProcGrid::balanced(4, 2), 512).with("nsteps", 5);
            simulate(&lower_to_sim(&c, &cfg), &NetworkModel::now_myrinet())
        };
        let orig = run(Strategy::Original);
        let glob = run(Strategy::Global);
        assert!(glob.messages < orig.messages);
        assert!(glob.comm_us < orig.comm_us);
    }
}
