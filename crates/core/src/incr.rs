//! Incremental compilation: the pipeline as memoized queries
//! (DESIGN.md §14).
//!
//! Source is split into **routine-granular chunks** (one `program … end`
//! unit each; a classic single-routine source is exactly one chunk whose
//! text is the whole input, byte for byte). Each chunk flows through a
//! chain of pass-level queries memoized in a [`QueryEngine`]:
//!
//! ```text
//!   chunk text ──fnv──▶ src_fp
//!   query.parse (src_fp)          → AST   + ast_fp  (or diagnostics)
//!   query.lower (ast_fp)          → IR    + ir_fp   (or a lowering error)
//!   query.place (ir_fp × strategy × budget) → Schedule + degraded flag
//! ```
//!
//! Every key is a content fingerprint of the *complete* input of that
//! pass, so invalidation needs no revision bookkeeping: an edit to one
//! routine changes only that routine's `src_fp`, every other chunk's
//! whole chain hits, and **early cutoff** happens whenever a recomputed
//! pass reproduces an output with an unchanged fingerprint — the
//! downstream keys are then also unchanged and the recomputation stops.
//! The fingerprints cover the `Debug` rendering of the artifacts
//! (including source line numbers, which downstream diagnostics and
//! reports embed); the one non-deterministically-ordered field,
//! `IrProgram::branch_conds` (a `HashMap`), is serialized sorted by node
//! id.
//!
//! Placement results computed under an exhausted budget (**degraded**)
//! are never cached — the same soundness rule as the subsumption memo in
//! `crates/sections/src/intern.rs`: a degraded schedule is legal but not
//! a pure function of the key (it depends on how far the budget
//! stretched), so reusing it would silently pin a worse-than-necessary
//! placement. Diagnostics *are* cached: they are deterministic.
//!
//! Placement always uses [`CombinePolicy::default`] — the same fixed
//! policy as the serve path, which is the consumer of this module.
//! Wall-clock (`ms=`) budgets must not reach this module at all; the
//! service keeps them on its uncached cold path for the same
//! not-a-pure-function reason.
//!
//! [`compile_module_cold`] runs the identical stage functions with no
//! engine, which is what makes "incremental ≡ from-scratch" testable as
//! bit-identity (tests/incremental_differential.rs).

use std::sync::Arc;

use gcomm_guard::{Budget, BudgetSpec};
use gcomm_ir::IrProgram;
use gcomm_lang::Program;
use gcomm_query::{fingerprint, mix, Computed, QueryEngine};

use crate::greedy::CombinePolicy;
use crate::pipeline::{compile_program_budgeted, CoreError};
use crate::schedule::Schedule;
use crate::strategy::Strategy;

// ---------------------------------------------------------------------------
// Routine chunking
// ---------------------------------------------------------------------------

/// One routine-granular source chunk, borrowing the module text (the
/// chunker is on the warm-edit fast path — it runs on every request the
/// payload cache misses, so it slices rather than copies).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutineChunk<'a> {
    /// Routine name: the word after `program`, lowercased (the same
    /// normalization the lexer applies), or `routine<idx>` when the
    /// chunk has no `program` line.
    pub name: String,
    /// The chunk's exact source text. Concatenating all chunks yields
    /// the original input byte for byte.
    pub src: &'a str,
    /// FNV-1a fingerprint of [`Self::src`].
    pub fp: u64,
    /// Number of source lines before this chunk (add to chunk-relative
    /// diagnostic lines to get module-level lines).
    pub line_offset: u32,
}

/// True for a line whose first word is `end` — the terminator of one
/// routine. `enddo`/`endif` are distinct words and do not match.
fn is_end_line(line: &str) -> bool {
    let trimmed = line.trim_start();
    let word_len = trimmed
        .bytes()
        .take_while(|b| b.is_ascii_alphanumeric() || *b == b'_')
        .count();
    trimmed[..word_len].eq_ignore_ascii_case("end")
}

/// The word following `program` on the first `program` line, lowercased.
fn program_name(chunk: &str) -> Option<String> {
    for line in chunk.lines() {
        let trimmed = line.trim_start();
        let word_len = trimmed
            .bytes()
            .take_while(|b| b.is_ascii_alphanumeric() || *b == b'_')
            .count();
        if !trimmed[..word_len].eq_ignore_ascii_case("program") {
            continue;
        }
        let rest = trimmed[word_len..].trim_start();
        let name_len = rest
            .bytes()
            .take_while(|b| b.is_ascii_alphanumeric() || *b == b'_')
            .count();
        if name_len > 0 {
            return Some(rest[..name_len].to_ascii_lowercase());
        }
    }
    None
}

/// Splits source text into routine chunks at `end` lines. A source with
/// a single routine (or none at all) comes back as exactly one chunk
/// whose `src` is the input unchanged; trailing text after the last
/// `end` (blank lines, comments) is folded into the last chunk so the
/// chunks always reassemble the input exactly.
pub fn split_routines(src: &str) -> Vec<RoutineChunk<'_>> {
    // Byte spans `(start, end, line_offset)`; chunks are contiguous, so
    // folding trailing text into the last chunk just widens its span.
    let mut spans: Vec<(usize, usize, u32)> = Vec::new();
    let mut start = 0usize;
    let mut start_line = 0u32;
    let mut pos = 0usize;
    let mut line_no = 0u32;
    for line in src.split_inclusive('\n') {
        pos += line.len();
        line_no += 1;
        if is_end_line(line) {
            spans.push((start, pos, start_line));
            start = pos;
            start_line = line_no;
        }
    }
    if start < src.len() {
        match spans.last_mut() {
            Some(last) => last.1 = src.len(),
            None => spans.push((0, src.len(), 0)),
        }
    }
    if spans.is_empty() {
        spans.push((0, 0, 0));
    }
    spans
        .into_iter()
        .enumerate()
        .map(|(idx, (a, b, line_offset))| {
            let text = &src[a..b];
            RoutineChunk {
                name: program_name(text).unwrap_or_else(|| format!("routine{idx}")),
                fp: fingerprint(text.as_bytes()),
                src: text,
                line_offset,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Stage functions (shared verbatim by the cold and incremental paths)
// ---------------------------------------------------------------------------

/// Parse-stage output: the AST plus the fingerprint of its `Debug`
/// rendering (which includes statement line numbers — two sources that
/// differ only in ways invisible to the AST *and* to diagnostics get the
/// same `ast_fp`, and everything downstream cuts off).
type ParseOut = Result<(Arc<Program>, u64), Arc<Vec<CoreError>>>;

fn run_parse(src: &str) -> ParseOut {
    match gcomm_lang::parse_program_diagnostics(src) {
        Ok(ast) => {
            let repr = format!("{ast:?}");
            Ok((Arc::new(ast), fingerprint(repr.as_bytes())))
        }
        Err(errs) => Err(Arc::new(errs.into_iter().map(CoreError::from).collect())),
    }
}

/// Lower-stage output: the IR plus its canonical fingerprint.
type LowerOut = Result<(Arc<IrProgram>, u64), Arc<Vec<CoreError>>>;

fn run_lower(ast: &Program) -> LowerOut {
    match gcomm_ir::lower(ast) {
        Ok(prog) => {
            let fp = ir_fingerprint(&prog);
            Ok((Arc::new(prog), fp))
        }
        Err(e) => Err(Arc::new(vec![CoreError::from(e)])),
    }
}

/// Canonical content fingerprint of a lowered program. All fields of
/// [`IrProgram`] are `Vec`-backed (deterministic `Debug`) except
/// `branch_conds`, which is hashed in node-id order.
pub fn ir_fingerprint(prog: &IrProgram) -> u64 {
    let mut repr = format!(
        "{:?}|{:?}|{:?}|{:?}|{:?}|{:?}",
        prog.name, prog.params, prog.arrays, prog.loops, prog.stmts, prog.cfg
    );
    let mut conds: Vec<_> = prog.branch_conds.iter().collect();
    conds.sort_by_key(|(node, _)| *node);
    for (node, expr) in conds {
        repr.push_str(&format!("|{node:?}={expr:?}"));
    }
    fingerprint(repr.as_bytes())
}

/// Place-stage output.
#[derive(Debug)]
struct PlaceOut {
    schedule: Arc<Schedule>,
    degraded: bool,
}

fn run_place(prog: &IrProgram, strategy: Strategy, spec: &BudgetSpec) -> PlaceOut {
    let budget = Budget::from_spec(spec);
    let schedule =
        compile_program_budgeted(prog, strategy, &CombinePolicy::default(), budget.clone());
    // A truncated optimal search is degraded even when the compile budget
    // itself survived: the schedule is the greedy seed or better but not
    // certified, so it must not be cached (`cacheable: !degraded`).
    let truncated_search = schedule.search.as_ref().is_some_and(|s| s.truncated);
    PlaceOut {
        schedule: Arc::new(schedule),
        degraded: budget.exhausted() || truncated_search,
    }
}

// ---------------------------------------------------------------------------
// Outcomes
// ---------------------------------------------------------------------------

/// Successful per-routine artifacts, with the memo-hit flags of each
/// stage (all `false` on the cold path).
#[derive(Debug, Clone)]
pub struct RoutineArtifacts {
    /// Fingerprint of the parsed AST (the lower-stage key).
    pub ast_fp: u64,
    /// Canonical fingerprint of the lowered program.
    pub ir_fp: u64,
    /// The place-stage memo key: `ir_fp` × strategy × budget spec.
    /// Downstream consumers (the serve render memo) extend this.
    pub place_key: u64,
    /// The lowered program.
    pub prog: Arc<IrProgram>,
    /// The placed schedule.
    pub schedule: Arc<Schedule>,
    /// True when placement exhausted its budget (never cached).
    pub degraded: bool,
    /// Memo-hit flags: `(parse, lower, place)`.
    pub hits: (bool, bool, bool),
}

/// The outcome for one routine chunk.
#[derive(Debug, Clone)]
pub struct RoutineOutcome {
    /// Display name (the lowered program's name when compilation got
    /// that far, the chunk's textual name otherwise).
    pub name: String,
    /// Lines before this chunk (offset for module-level diagnostics).
    pub line_offset: u32,
    /// Artifacts, or the chunk's diagnostics with chunk-relative lines.
    pub result: Result<RoutineArtifacts, Arc<Vec<CoreError>>>,
}

impl RoutineOutcome {
    /// The chunk's diagnostics shifted to module-level line numbers
    /// (`line == 0` markers stay 0).
    pub fn module_errors(&self) -> Vec<CoreError> {
        match &self.result {
            Ok(_) => Vec::new(),
            Err(errs) => errs
                .iter()
                .map(|e| CoreError {
                    message: e.message.clone(),
                    line: if e.line == 0 {
                        0
                    } else {
                        e.line + self.line_offset
                    },
                })
                .collect(),
        }
    }
}

/// The outcome of compiling a whole source (one or more routines).
#[derive(Debug, Clone)]
pub struct ModuleOutcome {
    /// Per-chunk outcomes, in source order.
    pub routines: Vec<RoutineOutcome>,
}

impl ModuleOutcome {
    /// True when every routine compiled.
    pub fn all_ok(&self) -> bool {
        self.routines.iter().all(|r| r.result.is_ok())
    }

    /// True when any routine's placement was degraded.
    pub fn any_degraded(&self) -> bool {
        self.routines
            .iter()
            .any(|r| matches!(&r.result, Ok(a) if a.degraded))
    }
}

fn outcome_of(
    chunk: &RoutineChunk,
    parse: ParseOut,
    lower: Option<LowerOut>,
    place: Option<PlaceOut>,
    hits: (bool, bool, bool),
) -> RoutineOutcome {
    let (name, result) = match (parse, lower, place) {
        (Err(errs), _, _) => (chunk.name.clone(), Err(errs)),
        (Ok(_), Some(Err(errs)), _) => (chunk.name.clone(), Err(errs)),
        (Ok((_, ast_fp)), Some(Ok((prog, ir_fp))), Some(placed)) => (
            prog.name.clone(),
            Ok(RoutineArtifacts {
                ast_fp,
                ir_fp,
                place_key: 0, // overwritten by callers that know the key
                prog,
                schedule: placed.schedule,
                degraded: placed.degraded,
                hits,
            }),
        ),
        _ => unreachable!("stage chain never skips a middle stage"),
    };
    RoutineOutcome {
        name,
        line_offset: chunk.line_offset,
        result,
    }
}

/// The place-stage memo key for a given IR under a strategy and budget.
pub fn place_key(ir_fp: u64, strategy: Strategy, spec: &BudgetSpec) -> u64 {
    let k = mix(ir_fp, fingerprint(strategy.name().as_bytes()));
    mix(k, fingerprint(format!("{spec}").as_bytes()))
}

// ---------------------------------------------------------------------------
// Cold path
// ---------------------------------------------------------------------------

/// Compiles every routine of `src` from scratch — the identical stage
/// functions as the incremental path, with no memoization. This is the
/// reference the differential tests compare against.
pub fn compile_module_cold(src: &str, strategy: Strategy, spec: &BudgetSpec) -> ModuleOutcome {
    let routines = split_routines(src)
        .iter()
        .map(|chunk| {
            let parse = run_parse(chunk.src);
            let lower = match &parse {
                Ok((ast, _)) => Some(run_lower(ast)),
                Err(_) => None,
            };
            let place = match &lower {
                Some(Ok((prog, _))) => Some(run_place(prog, strategy, spec)),
                _ => None,
            };
            let mut out = outcome_of(chunk, parse, lower, place, (false, false, false));
            if let Ok(a) = &mut out.result {
                a.place_key = place_key(a.ir_fp, strategy, spec);
            }
            out
        })
        .collect();
    ModuleOutcome { routines }
}

// ---------------------------------------------------------------------------
// Incremental path
// ---------------------------------------------------------------------------

/// Rough heap-footprint estimate for a memoized artifact, charged
/// against the engine's byte cap.
fn artifact_bytes(src_len: usize, factor: u64) -> u64 {
    (src_len as u64).saturating_mul(factor).max(256)
}

/// An incremental compiler: a [`QueryEngine`] plus the pipeline wiring.
/// Cheap to share (`Arc` it); all methods take `&self`.
#[derive(Debug)]
pub struct IncrCompiler {
    engine: QueryEngine,
}

impl IncrCompiler {
    /// A fresh compiler whose memo holds at most `cap_bytes`.
    pub fn new(cap_bytes: u64) -> Self {
        IncrCompiler {
            engine: QueryEngine::new(cap_bytes),
        }
    }

    /// The underlying engine (for stats, probes, and the render memo).
    pub fn engine(&self) -> &QueryEngine {
        &self.engine
    }

    /// Compiles `src` incrementally: chunks whose fingerprints match a
    /// previous compile reuse every downstream artifact; changed chunks
    /// recompute only until an output fingerprint matches again (early
    /// cutoff). Output artifacts are identical to
    /// [`compile_module_cold`]'s — only the work to produce them
    /// differs.
    pub fn compile_module(
        &self,
        src: &str,
        strategy: Strategy,
        spec: &BudgetSpec,
    ) -> ModuleOutcome {
        let routines = split_routines(src)
            .iter()
            .map(|chunk| {
                self.engine
                    .note_input(fingerprint(chunk.name.as_bytes()), chunk.fp);
                self.compile_routine(chunk, strategy, spec)
            })
            .collect();
        ModuleOutcome { routines }
    }

    /// Compiles one chunk through the pass-level memos. Callers that
    /// track module membership (as [`IncrCompiler::compile_module`]
    /// does) should `note_input` the chunk themselves.
    pub fn compile_routine(
        &self,
        chunk: &RoutineChunk,
        strategy: Strategy,
        spec: &BudgetSpec,
    ) -> RoutineOutcome {
        let src_len = chunk.src.len();
        let (parse, parse_hit) = self.engine.memo("query.parse", chunk.fp, || Computed {
            value: run_parse(chunk.src),
            bytes: artifact_bytes(src_len, 8),
            cacheable: true,
        });

        let Ok((ast, ast_fp)) = &*parse else {
            return outcome_of(
                chunk,
                (*parse).clone(),
                None,
                None,
                (parse_hit, false, false),
            );
        };

        let (lower, lower_hit) = self.engine.memo("query.lower", *ast_fp, || Computed {
            value: run_lower(ast),
            bytes: artifact_bytes(src_len, 10),
            cacheable: true,
        });
        if !parse_hit && lower_hit {
            // Parse recomputed but produced a fingerprint-identical AST:
            // the edit was invisible past the frontend.
            self.engine.count_cutoff(1);
        }

        let Ok((prog, ir_fp)) = &*lower else {
            return outcome_of(
                chunk,
                (*parse).clone(),
                Some((*lower).clone()),
                None,
                (parse_hit, lower_hit, false),
            );
        };

        let key = place_key(*ir_fp, strategy, spec);
        let (placed, place_hit) = self.engine.memo("query.place", key, || {
            let out = run_place(prog, strategy, spec);
            Computed {
                bytes: artifact_bytes(src_len, 12),
                // Degraded schedules depend on how far the budget
                // stretched, not just the key: never cache them.
                cacheable: !out.degraded,
                value: out,
            }
        });
        if !lower_hit && place_hit {
            self.engine.count_cutoff(1);
        }

        let mut out = outcome_of(
            chunk,
            (*parse).clone(),
            Some((*lower).clone()),
            Some(PlaceOut {
                schedule: placed.schedule.clone(),
                degraded: placed.degraded,
            }),
            (parse_hit, lower_hit, place_hit),
        );
        if let Ok(a) = &mut out.result {
            a.place_key = key;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ONE: &str =
        "program one\nparam n\nreal a(n), b(n) distribute (block)\nb(2:n) = a(1:n-1)\nend\n";
    const TWO: &str =
        "program two\nparam n\nreal c(n), d(n) distribute (cyclic)\nd(2:n) = c(1:n-1)\nend\n";

    fn spec() -> BudgetSpec {
        BudgetSpec::default()
    }

    #[test]
    fn single_routine_is_one_verbatim_chunk() {
        let chunks = split_routines(ONE);
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0].src, ONE);
        assert_eq!(chunks[0].name, "one");
        assert_eq!(chunks[0].line_offset, 0);
    }

    #[test]
    fn chunks_reassemble_the_input_exactly() {
        let module = format!("{ONE}{TWO}\n! trailing comment\n");
        let chunks = split_routines(&module);
        assert_eq!(chunks.len(), 2);
        let joined: String = chunks.iter().map(|c| c.src).collect();
        assert_eq!(joined, module);
        assert_eq!(chunks[1].name, "two");
        assert_eq!(chunks[1].line_offset, 5);
        // Trailing comment folded into the last chunk.
        assert!(chunks[1].src.ends_with("! trailing comment\n"));
    }

    #[test]
    fn enddo_endif_do_not_split() {
        let src = "program p\nparam n\nreal a(n,n) distribute (block, *)\nreal x\n\
                   do i = 2, n\nif (x > 0) then\na(i, 1:n) = 1\nendif\nenddo\nend\n";
        assert_eq!(split_routines(src).len(), 1);
    }

    #[test]
    fn end_with_comment_still_splits() {
        let src = "program a\nparam n\nreal q(n) distribute (block)\nq(1:n) = 1\nEND ! done\nprogram b\nparam n\nreal r(n) distribute (block)\nr(1:n) = 2\nend";
        let chunks = split_routines(src);
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[0].name, "a");
        assert_eq!(chunks[1].name, "b");
    }

    #[test]
    fn incremental_matches_cold_per_routine() {
        let module = format!("{ONE}{TWO}");
        let cold = compile_module_cold(&module, Strategy::Global, &spec());
        let ic = IncrCompiler::new(1 << 20);
        let warm = ic.compile_module(&module, Strategy::Global, &spec());
        assert_eq!(cold.routines.len(), 2);
        for (c, w) in cold.routines.iter().zip(&warm.routines) {
            let (ca, wa) = match (&c.result, &w.result) {
                (Ok(ca), Ok(wa)) => (ca, wa),
                other => panic!("expected both ok, got {other:?}"),
            };
            assert_eq!(*ca.prog, *wa.prog);
            assert_eq!(*ca.schedule, *wa.schedule);
            assert_eq!(ca.place_key, wa.place_key);
        }
    }

    #[test]
    fn second_compile_hits_every_stage() {
        let ic = IncrCompiler::new(1 << 20);
        let module = format!("{ONE}{TWO}");
        ic.compile_module(&module, Strategy::Global, &spec());
        let again = ic.compile_module(&module, Strategy::Global, &spec());
        for r in &again.routines {
            let a = r.result.as_ref().unwrap();
            assert_eq!(a.hits, (true, true, true), "{}", r.name);
        }
        assert_eq!(ic.engine().stats().invalidations, 0);
    }

    #[test]
    fn editing_one_routine_reuses_the_other() {
        let ic = IncrCompiler::new(1 << 20);
        ic.compile_module(&format!("{ONE}{TWO}"), Strategy::Global, &spec());
        // Change routine two's content (a different constant).
        let edited = TWO.replace("= c(1:n-1)", "= c(1:n-1) + 1");
        let out = ic.compile_module(&format!("{ONE}{edited}"), Strategy::Global, &spec());
        let one = out.routines[0].result.as_ref().unwrap();
        let two = out.routines[1].result.as_ref().unwrap();
        assert_eq!(one.hits, (true, true, true), "untouched routine reuses");
        assert!(!two.hits.0, "edited routine re-parses");
        assert_eq!(ic.engine().stats().invalidations, 1);
    }

    #[test]
    fn comment_edit_cuts_off_after_parse() {
        let ic = IncrCompiler::new(1 << 20);
        ic.compile_module(ONE, Strategy::Global, &spec());
        // A trailing comment on the last line changes no AST content and
        // shifts no statement lines.
        let edited = ONE.replace("end\n", "end ! tweaked\n");
        let out = ic.compile_module(&edited, Strategy::Global, &spec());
        let a = out.routines[0].result.as_ref().unwrap();
        assert_eq!(a.hits, (false, true, true), "parse reran, rest cut off");
        assert_eq!(ic.engine().stats().cutoffs, 1);
    }

    #[test]
    fn errors_are_offset_to_module_lines() {
        let bad = "program oops\nparam n\nreal a(n) distribute (block)\nq(1) = 1\nend\n";
        let module = format!("{ONE}{bad}");
        let cold = compile_module_cold(&module, Strategy::Global, &spec());
        assert!(cold.routines[0].result.is_ok());
        let errs = cold.routines[1].module_errors();
        assert_eq!(errs.len(), 1);
        // `q(1) = 1` is chunk line 4, module line 9 (ONE is 5 lines).
        assert_eq!(errs[0].line, 9, "{errs:?}");
    }

    #[test]
    fn degraded_results_are_not_cached() {
        let tight = BudgetSpec::parse("steps=1").unwrap();
        let ic = IncrCompiler::new(1 << 20);
        let out1 = ic.compile_module(ONE, Strategy::Global, &tight);
        let a1 = out1.routines[0].result.as_ref().unwrap();
        assert!(a1.degraded, "steps=1 must exhaust");
        let out2 = ic.compile_module(ONE, Strategy::Global, &tight);
        let a2 = out2.routines[0].result.as_ref().unwrap();
        assert!(!a2.hits.2, "degraded placement must recompute");
        assert!(a2.hits.0 && a2.hits.1, "frontend stages still hit");
    }
}
