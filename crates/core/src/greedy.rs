//! Greedy choice of final positions and message groups (§4.7, Fig. 9g).
//!
//! "Consider the most constrained communication entry next, and put it
//! where it is compatible in communication pattern with the largest number
//! of other candidate communications" — similar to Click's global code
//! motion heuristic. Each group is then placed at the latest position
//! common to its members (buffer/cache folk truism for the SP2).

use std::collections::BTreeMap;

use gcomm_ir::Pos;

use crate::ctx::AnalysisCtx;
use crate::entry::{CommEntry, CommKind, EntryId};
use crate::schedule::PlacedGroup;
use crate::subset::CandidateTable;

/// Order in which the greedy pass considers entries (ablation A1; the
/// paper uses most-constrained-first, after Click's global code motion).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GreedyOrder {
    /// Fewest remaining candidates first (the paper's heuristic).
    #[default]
    MostConstrained,
    /// Most remaining candidates first (inverted, for comparison).
    LeastConstrained,
    /// Plain program order.
    ProgramOrder,
}

/// Limits under which two communications may combine into one message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CombinePolicy {
    /// Maximum combined message size in bytes (paper: 20 KB on the SP2,
    /// "beyond which combining messages leads to diminishing returns").
    pub max_combined_bytes: u64,
    /// Bytes per array element (doubles).
    pub elem_bytes: u64,
    /// Whether combining is enabled at all (ablation switch).
    pub enabled: bool,
    /// Entry consideration order.
    pub order: GreedyOrder,
}

impl Default for CombinePolicy {
    fn default() -> Self {
        CombinePolicy {
            max_combined_bytes: 20 * 1024,
            elem_bytes: 8,
            enabled: true,
            order: GreedyOrder::MostConstrained,
        }
    }
}

/// True when entries `a` and `b` may be combined into one message at a
/// position of nesting level `level` (§4.7's compatibility criteria).
pub fn compatible(
    ctx: &AnalysisCtx<'_>,
    a: &CommEntry,
    b: &CommEntry,
    level: u32,
    policy: &CombinePolicy,
) -> bool {
    if !policy.enabled || !a.mapping.compatible(&b.mapping) {
        return false;
    }
    match (a.kind, b.kind) {
        // Reductions exchange partial results, not the data sections: the
        // combined payload is a handful of scalars. They combine when they
        // reduce the same array, or sections of identical shape (the
        // single-descriptor representation needs identical sections for
        // different arrays).
        (CommKind::Reduction, CommKind::Reduction) => {
            a.array == b.array
                || ctx
                    .asd_shared(a, level)
                    .0
                    .section
                    .same_shape(&ctx.asd_shared(b, level).0.section)
        }
        (CommKind::Reduction, _) | (_, CommKind::Reduction) => false,
        // NNC ghost exchanges: mapping equality is checked in physical
        // processor space (the paper's extension), so different arrays may
        // share a message; sizes are assumed within range for boundary
        // strips ("rules of thumb like assuming that NNC ... [is] operating
        // within the range suitable for combining").
        (CommKind::Nnc, CommKind::Nnc) => size_ok(ctx, a, b, level, policy),
        _ => {
            // General data motion: different arrays need identical sections
            // under the shared descriptor; same-array entries need a
            // bounded-blowup union.
            let sa = ctx.asd_shared(a, level).0;
            let sb = ctx.asd_shared(b, level).0;
            if a.array == b.array {
                sa.section.union_bbox(&sb.section, &ctx.sym).is_some()
                    && size_ok(ctx, a, b, level, policy)
            } else {
                sa.section.same_shape(&sb.section) && size_ok(ctx, a, b, level, policy)
            }
        }
    }
}

/// Size-threshold check: enforced when sizes are compile-time constants;
/// symbolic sizes fall back to the paper's rules of thumb (allow NNC,
/// otherwise allow — generals were already filtered by shape rules).
fn size_ok(
    ctx: &AnalysisCtx<'_>,
    a: &CommEntry,
    b: &CommEntry,
    level: u32,
    policy: &CombinePolicy,
) -> bool {
    let ca = ctx.asd_shared(a, level).0.section.count(&|_| None);
    let cb = ctx.asd_shared(b, level).0.section.count(&|_| None);
    match (ca, cb) {
        (Some(x), Some(y)) => (x + y) * policy.elem_bytes <= policy.max_combined_bytes,
        _ => true,
    }
}

/// Runs the greedy choice and forms the final groups.
///
/// Entries are processed most-constrained first (`|StmtSet(c)|` ascending,
/// ties by id). Each is pinned to the candidate position where it can
/// combine with the most other entries; position ties prefer the **latest**
/// position. Pinned entries then partition per position into compatibility
/// groups.
pub fn choose(
    ctx: &AnalysisCtx<'_>,
    entries: &[CommEntry],
    table: &mut CandidateTable,
    policy: &CombinePolicy,
) -> Vec<PlacedGroup> {
    let _s = gcomm_obs::span("core.greedy");
    let mut order: Vec<EntryId> = table.cands.keys().copied().collect();
    gcomm_obs::count("core.greedy.rounds", order.len() as u64);
    match policy.order {
        GreedyOrder::MostConstrained => order.sort_by_key(|e| (table.cands[e].len(), *e)),
        GreedyOrder::LeastConstrained => {
            order.sort_by_key(|e| (usize::MAX - table.cands[e].len(), *e))
        }
        GreedyOrder::ProgramOrder => order.sort(),
    }

    for &eid in &order {
        let e = &entries[eid.0 as usize];
        let cands: Vec<Pos> = table.cands[&eid].iter().copied().collect();
        // Pre-charge the whole compatibility scan for this entry (one unit
        // per candidate × entry pair). If it doesn't fit, degrade: pin to
        // the latest remaining candidate — still inside the (possibly
        // refined) window, hence legal — and skip the combining search.
        let scan_cost = (cands.len() as u64).saturating_mul(table.cands.len() as u64);
        if !ctx.budget.charge(scan_cost) {
            gcomm_obs::count("core.degraded.greedy", 1);
            if let Some(&p) = cands.last() {
                // invariant: eid came from iterating this map's keys and
                // nothing removes entries inside the loop.
                let set = table.cands.get_mut(&eid).expect("entry alive");
                set.clear();
                set.insert(p);
            }
            continue;
        }
        let mut best: Option<(usize, Pos)> = None;
        for &p in &cands {
            let level = p.level(ctx.prog);
            let count = table
                .cands
                .iter()
                .filter(|&(&oid, ps)| {
                    oid != eid
                        && ps.contains(&p)
                        && compatible(ctx, e, &entries[oid.0 as usize], level, policy)
                })
                .count();
            best = Some(match best {
                None => (count, p),
                Some((bc, bp)) => {
                    if count > bc || (count == bc && later(ctx, p, bp)) {
                        (count, p)
                    } else {
                        (bc, bp)
                    }
                }
            });
        }
        if let Some((_, p)) = best {
            // invariant: eid came from iterating this map's keys and
            // nothing removes entries inside the loop.
            let set = table.cands.get_mut(&eid).expect("entry alive");
            set.clear();
            set.insert(p);
        }
    }

    // Partition the entries at each position into compatibility groups.
    let mut by_pos: BTreeMap<Pos, Vec<EntryId>> = BTreeMap::new();
    for (&eid, ps) in &table.cands {
        if let Some(&p) = ps.iter().next() {
            by_pos.entry(p).or_default().push(eid);
        }
    }
    let mut groups = Vec::new();
    for (pos, ids) in by_pos {
        let level = pos.level(ctx.prog);
        let mut parts: Vec<Vec<EntryId>> = Vec::new();
        for id in ids {
            let e = &entries[id.0 as usize];
            // Degraded partitioning: with no budget left, entries become
            // singleton groups (no combining scan). A group of one is
            // always legal — combining only ever merges messages.
            let slot = if ctx.budget.exhausted() {
                gcomm_obs::count("core.degraded.greedy", 1);
                None
            } else {
                parts.iter_mut().find(|g| {
                    g.iter()
                        .all(|&m| compatible(ctx, e, &entries[m.0 as usize], level, policy))
                })
            };
            match slot {
                Some(g) => g.push(id),
                None => parts.push(vec![id]),
            }
        }
        for members in parts {
            let first = &entries[members[0].0 as usize];
            groups.push(PlacedGroup {
                pos,
                entries: members,
                mapping: first.mapping.clone(),
                kind: first.kind,
            });
        }
    }
    groups
}

/// True if `p` is later than `q` in execution order (q dominates p); falls
/// back to position order when incomparable.
fn later(ctx: &AnalysisCtx<'_>, p: Pos, q: Pos) -> bool {
    if q.dominates(&p, &ctx.dt) {
        true
    } else if p.dominates(&q, &ctx.dt) {
        false
    } else {
        p > q
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{candidates, commgen, earliest, latest, redundancy, subset};
    use gcomm_ir::IrProgram;

    fn run(src: &str) -> (IrProgram, Vec<CommEntry>, Vec<PlacedGroup>) {
        let prog = gcomm_ir::lower(&gcomm_lang::parse_program(src).unwrap()).unwrap();
        let entries = commgen::number(commgen::generate(&prog));
        let groups = {
            let ctx = AnalysisCtx::new(&prog);
            let mut table = CandidateTable::default();
            for e in &entries {
                let ep = earliest::earliest_pos(&ctx, e);
                let lp = latest::latest(&ctx, e);
                table
                    .cands
                    .insert(e.id, candidates::candidates(&ctx, e, ep, lp));
            }
            subset::subset_eliminate(&mut table, &ctx.dt, &ctx.budget);
            redundancy::eliminate(&ctx, &entries, &mut table);
            choose(&ctx, &entries, &mut table, &CombinePolicy::default())
        };
        (prog, entries, groups)
    }

    #[test]
    fn same_shift_different_arrays_combine() {
        let (_, entries, groups) = run("
program t
param n
real a(n,n), b(n,n), c(n,n) distribute (block,block)
a(1:n, 1:n) = 1
b(1:n, 1:n) = 2
c(2:n, 1:n) = a(1:n-1, 1:n) + b(1:n-1, 1:n)
end");
        assert_eq!(entries.len(), 2);
        assert_eq!(groups.len(), 1, "a and b east-shifts share one message");
        assert_eq!(groups[0].entries.len(), 2);
    }

    #[test]
    fn opposite_shifts_stay_separate() {
        let (_, _, groups) = run("
program t
param n
real a(n,n), c(n,n), d(n,n) distribute (block,block)
c(2:n, 1:n) = a(1:n-1, 1:n)
d(1:n-1, 1:n) = a(2:n, 1:n)
end");
        assert_eq!(groups.len(), 2);
    }

    #[test]
    fn reductions_of_same_array_combine() {
        let (_, entries, groups) = run("
program t
param n
real g(n,n) distribute (block,block)
real s
s = sum(g(1, 1:n)) + sum(g(2, 1:n)) + sum(g(3, 1:n))
end");
        assert_eq!(entries.len(), 3);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].entries.len(), 3);
        assert_eq!(groups[0].kind, CommKind::Reduction);
    }

    #[test]
    fn reductions_of_different_rank_arrays_stay_separate() {
        let (_, _, groups) = run("
program t
param n, nx
real g(nx,n,n) distribute (*,block,block)
real h(n,n) distribute (block,block)
real s
s = sum(g(1, 2, 1:n)) + sum(h(2, 1:n))
end");
        assert_eq!(groups.len(), 2);
    }

    #[test]
    fn combining_disabled_by_policy() {
        let prog = gcomm_ir::lower(
            &gcomm_lang::parse_program(
                "
program t
param n
real a(n,n), b(n,n), c(n,n) distribute (block,block)
a(1:n, 1:n) = 1
b(1:n, 1:n) = 2
c(2:n, 1:n) = a(1:n-1, 1:n) + b(1:n-1, 1:n)
end",
            )
            .unwrap(),
        )
        .unwrap();
        let entries = commgen::number(commgen::generate(&prog));
        let ctx = AnalysisCtx::new(&prog);
        let mut table = CandidateTable::default();
        for e in &entries {
            let ep = earliest::earliest_pos(&ctx, e);
            let lp = latest::latest(&ctx, e);
            table
                .cands
                .insert(e.id, candidates::candidates(&ctx, e, ep, lp));
        }
        let policy = CombinePolicy {
            enabled: false,
            ..CombinePolicy::default()
        };
        let groups = choose(&ctx, &entries, &mut table, &policy);
        assert_eq!(groups.len(), 2);
    }
}
