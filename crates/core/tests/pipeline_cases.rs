//! Pipeline behaviour on less-common communication shapes: cyclic
//! distributions, broadcasts into branch conditions, general patterns, and
//! replicated results.

use gcomm_core::{compile, CommKind, Strategy};
use gcomm_sections::Mapping;

#[test]
fn cyclic_distribution_shifts_are_nnc() {
    // Under CYCLIC every neighbour element lives on the adjacent processor;
    // the mapping is still a shift, with full-volume ghost data.
    let src = "
program cyc
param n, nsteps
real a(n,n), b(n,n) distribute (cyclic, *)
do t = 1, nsteps
  b(2:n, 1:n) = a(1:n-1, 1:n)
  a(1:n, 1:n) = b(1:n, 1:n)
enddo
end";
    let c = compile(src, Strategy::Global).unwrap();
    assert_eq!(c.static_messages(), 1);
    assert_eq!(c.schedule.groups[0].kind, CommKind::Nnc);
}

#[test]
fn block_cyclic_mix_is_general() {
    // A block array feeding a cyclic one needs a remap, not a shift.
    let src = "
program mix
param n
real a(n) distribute (block)
real b(n) distribute (cyclic)
b(1:n) = a(1:n)
end";
    let c = compile(src, Strategy::Global).unwrap();
    assert_eq!(c.static_messages(), 1);
    assert!(matches!(c.schedule.groups[0].mapping, Mapping::General(_)));
}

#[test]
fn distributed_condition_needs_broadcast() {
    // Every processor must evaluate the branch: reading a distributed
    // element in the condition broadcasts it.
    let src = "
program brc
param n
real flag(n,n), a(n,n) distribute (block, block)
if (flag(1, 1) > 0) then
  a(1:n, 1:n) = 1
endif
end";
    let c = compile(src, Strategy::Global).unwrap();
    assert_eq!(c.static_messages(), 1);
    assert_eq!(c.schedule.groups[0].kind, CommKind::Broadcast);
    assert_eq!(c.schedule.groups[0].mapping, Mapping::Broadcast);
}

#[test]
fn replicated_result_broadcasts_operand() {
    let src = "
program rep
param n
real a(n,n) distribute (block, block)
real s
s = a(3, 4) * 2
end";
    let c = compile(src, Strategy::Global).unwrap();
    assert_eq!(c.schedule.groups[0].kind, CommKind::Broadcast);
}

#[test]
fn general_patterns_never_combine() {
    // Two transposing-style reads produce distinct general patterns; they
    // must not share a message.
    let src = "
program gen
param n
real a(n,n), b(n,n), c(n,n) distribute (block, block)
b(1:n-1, 1:n) = a(2:n-1, 1:n)
c(1:n-1, 1:n) = a(2:n-1, 1:n)
end";
    let c = compile(src, Strategy::Global).unwrap();
    for g in &c.schedule.groups {
        assert_eq!(g.entries.len(), 1, "{}", c.report());
    }
}

#[test]
fn collapsed_only_distribution_is_local() {
    let src = "
program col
param n
real a(n,n), b(n,n) distribute (*, *)
b(2:n, 1:n) = a(1:n-1, 1:n)
end";
    let c = compile(src, Strategy::Global).unwrap();
    assert_eq!(c.static_messages(), 0, "fully replicated arrays never talk");
}

#[test]
fn opposite_alignment_of_strategies_on_empty_program() {
    for s in [
        Strategy::Original,
        Strategy::EarliestRE,
        Strategy::EarliestPartialRE,
        Strategy::Global,
    ] {
        let c = compile("program empty\nend", s).unwrap();
        assert_eq!(c.static_messages(), 0);
        assert_eq!(c.schedule.entries.len(), 0);
    }
}

#[test]
fn reduction_of_whole_distributed_array() {
    let src = "
program red
param n
real g(n,n) distribute (block, block)
real s
s = sum(g(1:n, 1:n))
end";
    let c = compile(src, Strategy::Global).unwrap();
    assert_eq!(c.static_messages(), 1);
    assert_eq!(c.schedule.groups[0].kind, CommKind::Reduction);
}

#[test]
fn deeply_nested_loops_place_at_correct_level() {
    let src = "
program deep
param n, nsteps
real a(n,n,n), b(n,n,n) distribute (*, block, block)
do t = 1, nsteps
  do i = 1, n
    do j = 2, n
      b(i, j, 1:n) = a(i, j-1, 1:n)
    enddo
  enddo
  a(1:n, 1:n, 1:n) = b(1:n, 1:n, 1:n)
enddo
end";
    let c = compile(src, Strategy::Global).unwrap();
    assert_eq!(c.static_messages(), 1, "{}", c.report());
    // The exchange vectorizes out of both spatial loops but stays inside
    // the timestep loop (a is rewritten each step).
    let lvl = c.schedule.groups[0].pos.level(&c.prog);
    assert_eq!(lvl, 1, "{}", c.report());
}
