//! Property tests for the dominator computation: the iterative
//! Cooper–Harvey–Kennedy result must agree with a brute-force reference
//! (path enumeration) on random structured CFGs built from the lowering of
//! random programs — the same graphs the placement analyses run on.

use proptest::prelude::*;

use gcomm_ir::{DomTree, IrProgram, NodeId};

/// Brute-force dominance: `a` dominates `b` iff removing `a` disconnects
/// `b` from the entry (or `a == b`).
fn dominates_ref(prog: &IrProgram, a: NodeId, b: NodeId) -> bool {
    if a == b {
        return true;
    }
    // BFS from entry avoiding `a`.
    let mut seen = vec![false; prog.cfg.len()];
    let mut queue = vec![prog.cfg.entry];
    if prog.cfg.entry == a {
        return true; // entry dominates everything reachable
    }
    seen[prog.cfg.entry.0 as usize] = true;
    while let Some(n) = queue.pop() {
        for &s in &prog.cfg.node(n).succs {
            if s == a || seen[s.0 as usize] {
                continue;
            }
            seen[s.0 as usize] = true;
            queue.push(s);
        }
    }
    !seen[b.0 as usize]
}

/// Random structured program source (loops + branches over a few arrays).
fn program_src() -> impl Strategy<Value = String> {
    let piece = prop_oneof![
        Just("v0(2:n, 1:n) = v1(1:n-1, 1:n)\n".to_string()),
        Just("v1(1:n, 1:n) = v0(1:n, 1:n)\n".to_string()),
        Just("do i = 2, n\n  v0(i, 1:n) = v1(i-1, 1:n)\nenddo\n".to_string()),
        Just("if (s > 0) then\n  v0(1:n, 1:n) = 1\nelse\n  v1(1:n, 1:n) = 2\nendif\n".to_string()),
        Just("do i = 1, n\n  if (s > 0) then\n    v1(i, 1:n) = 0\n  endif\nenddo\n".to_string()),
        Just(
            "do i = 1, n\n  do j = 1, n, 2\n    v0(i, j) = v1(i, j)\n  enddo\nenddo\n".to_string()
        ),
    ];
    prop::collection::vec(piece, 1..6).prop_map(|pieces| {
        format!(
            "program r\nparam n\nreal v0(n,n), v1(n,n) distribute (block, block)\nreal s\n{}end\n",
            pieces.concat()
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Fast dominance agrees with the brute-force reference on every
    /// reachable node pair.
    #[test]
    fn dominance_matches_reference(src in program_src()) {
        let ast = gcomm_lang::parse_program(&src).unwrap();
        let prog = gcomm_ir::lower(&ast).unwrap();
        let dt = DomTree::compute(&prog.cfg);
        for a in prog.cfg.node_ids() {
            if !dt.is_reachable(a) {
                continue;
            }
            for b in prog.cfg.node_ids() {
                if !dt.is_reachable(b) {
                    continue;
                }
                prop_assert_eq!(
                    dt.dominates(a, b),
                    dominates_ref(&prog, a, b),
                    "dominance mismatch for {:?} -> {:?} in\n{}",
                    a, b, src
                );
            }
        }
    }

    /// The idom of every reachable node strictly dominates it, and the
    /// dominator sets are closed under the parent chain.
    #[test]
    fn idom_chain_is_sound(src in program_src()) {
        let ast = gcomm_lang::parse_program(&src).unwrap();
        let prog = gcomm_ir::lower(&ast).unwrap();
        let dt = DomTree::compute(&prog.cfg);
        for n in prog.cfg.node_ids() {
            if !dt.is_reachable(n) || n == prog.cfg.entry {
                continue;
            }
            let p = dt.parent(n).expect("reachable non-entry has an idom");
            prop_assert!(dt.strictly_dominates(p, n));
            prop_assert!(dominates_ref(&prog, p, n));
        }
    }

    /// Dominance frontier soundness: every frontier node of `n` is a join
    /// that `n`'s dominance reaches but does not strictly cover.
    #[test]
    fn frontier_nodes_are_not_strictly_dominated(src in program_src()) {
        let ast = gcomm_lang::parse_program(&src).unwrap();
        let prog = gcomm_ir::lower(&ast).unwrap();
        let dt = DomTree::compute(&prog.cfg);
        for n in prog.cfg.node_ids() {
            if !dt.is_reachable(n) {
                continue;
            }
            for &f in dt.frontier(n) {
                prop_assert!(!dt.strictly_dominates(n, f),
                    "{n:?} strictly dominates its frontier node {f:?} in\n{src}");
            }
        }
    }

    /// In the augmented CFG, no node inside a loop dominates the loop's
    /// postexit (the zero-trip edge guarantee the paper's Earliest analysis
    /// relies on).
    #[test]
    fn zero_trip_guarantee(src in program_src()) {
        let ast = gcomm_lang::parse_program(&src).unwrap();
        let prog = gcomm_ir::lower(&ast).unwrap();
        let dt = DomTree::compute(&prog.cfg);
        for (i, li) in prog.loops.iter().enumerate() {
            let _ = i;
            for n in prog.cfg.node_ids() {
                let inside = prog
                    .node_loop_chain(n)
                    .contains(&gcomm_ir::LoopId(i as u32));
                if inside && dt.is_reachable(n) {
                    prop_assert!(
                        !dt.dominates(n, li.postexit),
                        "in-loop node {n:?} dominates postexit in\n{src}"
                    );
                }
            }
        }
    }
}
