//! Dominator tree and dominance frontiers.
//!
//! Uses the iterative algorithm of Cooper, Harvey, and Kennedy ("A simple,
//! fast dominance algorithm"), which is plenty fast for the CFG sizes of
//! single procedures, and the classic Cytron et al. dominance-frontier
//! construction.

use crate::cfg::{Cfg, NodeId};

/// Dominator tree over a [`Cfg`], with O(depth) dominance queries.
#[derive(Debug, Clone)]
pub struct DomTree {
    /// Immediate dominator per node; `None` for the entry node and for
    /// unreachable nodes.
    idom: Vec<Option<NodeId>>,
    /// Depth of each node in the dominator tree (entry = 0).
    depth: Vec<u32>,
    /// Children in the dominator tree.
    children: Vec<Vec<NodeId>>,
    /// Dominance frontier per node.
    frontier: Vec<Vec<NodeId>>,
    /// Whether each node is reachable from entry.
    reachable: Vec<bool>,
}

impl DomTree {
    /// Computes dominators and dominance frontiers for `cfg`.
    pub fn compute(cfg: &Cfg) -> Self {
        let _t = gcomm_obs::time("ir.dom");
        let n = cfg.len();
        let rpo = cfg.reverse_postorder();
        let mut rpo_index = vec![usize::MAX; n];
        for (i, &node) in rpo.iter().enumerate() {
            rpo_index[node.0 as usize] = i;
        }
        let mut reachable = vec![false; n];
        for &node in &rpo {
            reachable[node.0 as usize] = true;
        }

        let mut idom: Vec<Option<NodeId>> = vec![None; n];
        idom[cfg.entry.0 as usize] = Some(cfg.entry);

        let intersect = |idom: &[Option<NodeId>], mut a: NodeId, mut b: NodeId| -> NodeId {
            while a != b {
                while rpo_index[a.0 as usize] > rpo_index[b.0 as usize] {
                    a = idom[a.0 as usize].expect("processed node has idom");
                }
                while rpo_index[b.0 as usize] > rpo_index[a.0 as usize] {
                    b = idom[b.0 as usize].expect("processed node has idom");
                }
            }
            a
        };

        let mut changed = true;
        while changed {
            gcomm_obs::count("ir.dom.iterations", 1);
            changed = false;
            for &node in rpo.iter().skip(1) {
                let preds = &cfg.node(node).preds;
                let mut new_idom: Option<NodeId> = None;
                for &p in preds {
                    if !reachable[p.0 as usize] || idom[p.0 as usize].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, cur, p),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[node.0 as usize] != Some(ni) {
                        idom[node.0 as usize] = Some(ni);
                        changed = true;
                    }
                }
            }
        }

        // Entry's idom is conventionally itself during the fixpoint; strip it.
        idom[cfg.entry.0 as usize] = None;

        let mut depth = vec![0u32; n];
        let mut children: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for &node in &rpo {
            if let Some(p) = idom[node.0 as usize] {
                depth[node.0 as usize] = depth[p.0 as usize] + 1;
                children[p.0 as usize].push(node);
            }
        }

        // Dominance frontiers (Cytron et al.).
        let mut frontier: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for &node in &rpo {
            let preds = cfg.node(node).preds.clone();
            if preds.len() < 2 {
                continue;
            }
            let Some(id) = idom[node.0 as usize] else {
                continue;
            };
            for p in preds {
                if !reachable[p.0 as usize] {
                    continue;
                }
                let mut runner = p;
                while runner != id {
                    let fr = &mut frontier[runner.0 as usize];
                    if !fr.contains(&node) {
                        fr.push(node);
                    }
                    match idom[runner.0 as usize] {
                        Some(next) => runner = next,
                        None => break,
                    }
                }
            }
        }

        DomTree {
            idom,
            depth,
            children,
            frontier,
            reachable,
        }
    }

    /// Immediate dominator (dominator-tree parent); `None` for the entry.
    pub fn parent(&self, n: NodeId) -> Option<NodeId> {
        self.idom[n.0 as usize]
    }

    /// Dominator-tree children of `n`.
    pub fn children(&self, n: NodeId) -> &[NodeId] {
        &self.children[n.0 as usize]
    }

    /// Dominance frontier of `n`.
    pub fn frontier(&self, n: NodeId) -> &[NodeId] {
        &self.frontier[n.0 as usize]
    }

    /// True if `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: NodeId, b: NodeId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            if self.depth[cur.0 as usize] == 0 {
                return false;
            }
            match self.idom[cur.0 as usize] {
                Some(p) => cur = p,
                None => return false,
            }
        }
    }

    /// True if `a` strictly dominates `b`.
    pub fn strictly_dominates(&self, a: NodeId, b: NodeId) -> bool {
        a != b && self.dominates(a, b)
    }

    /// True if `n` is reachable from the entry node.
    pub fn is_reachable(&self, n: NodeId) -> bool {
        self.reachable[n.0 as usize]
    }

    /// Depth of `n` in the dominator tree.
    pub fn depth(&self, n: NodeId) -> u32 {
        self.depth[n.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::{Cfg, NodeKind};

    /// entry(0) -> a(1) -> b(2) -> d(4); a -> c(3) -> d; d -> e(5)
    fn diamond() -> (Cfg, [NodeId; 5]) {
        let mut g = Cfg::new();
        let a = g.add_node(NodeKind::Block, None, 0);
        let b = g.add_node(NodeKind::Block, None, 0);
        let c = g.add_node(NodeKind::Block, None, 0);
        let d = g.add_node(NodeKind::Block, None, 0);
        let e = g.add_node(NodeKind::Block, None, 0);
        g.add_edge(g.entry, a);
        g.add_edge(a, b);
        g.add_edge(a, c);
        g.add_edge(b, d);
        g.add_edge(c, d);
        g.add_edge(d, e);
        g.exit = e;
        (g, [a, b, c, d, e])
    }

    #[test]
    fn diamond_idoms() {
        let (g, [a, b, c, d, e]) = diamond();
        let dt = DomTree::compute(&g);
        assert_eq!(dt.parent(a), Some(g.entry));
        assert_eq!(dt.parent(b), Some(a));
        assert_eq!(dt.parent(c), Some(a));
        assert_eq!(dt.parent(d), Some(a)); // join dominated by branch head
        assert_eq!(dt.parent(e), Some(d));
    }

    #[test]
    fn dominates_queries() {
        let (g, [a, b, _c, d, e]) = diamond();
        let dt = DomTree::compute(&g);
        assert!(dt.dominates(a, e));
        assert!(dt.dominates(a, a));
        assert!(!dt.dominates(b, d));
        assert!(!dt.strictly_dominates(a, a));
        assert!(dt.strictly_dominates(g.entry, e));
    }

    #[test]
    fn diamond_frontiers() {
        let (g, [a, b, c, d, _e]) = diamond();
        let dt = DomTree::compute(&g);
        assert_eq!(dt.frontier(b), &[d]);
        assert_eq!(dt.frontier(c), &[d]);
        assert!(dt.frontier(a).is_empty());
        let _ = g;
    }

    #[test]
    fn loop_shaped_graph() {
        // entry -> pre -> hdr -> body -> hdr ; hdr -> post ; pre -> post
        let mut g = Cfg::new();
        let pre = g.add_node(NodeKind::Block, None, 0);
        let hdr = g.add_node(NodeKind::Block, None, 1);
        let body = g.add_node(NodeKind::Block, None, 1);
        let post = g.add_node(NodeKind::Block, None, 0);
        g.add_edge(g.entry, pre);
        g.add_edge(pre, hdr);
        g.add_edge(hdr, body);
        g.add_edge(body, hdr);
        g.add_edge(hdr, post);
        g.add_edge(pre, post); // zero-trip edge
        g.exit = post;
        let dt = DomTree::compute(&g);
        // With the zero-trip edge, the header must NOT dominate the postexit.
        assert!(!dt.dominates(hdr, post));
        assert_eq!(dt.parent(post), Some(pre));
        // Header dominates the body.
        assert!(dt.dominates(hdr, body));
        // Frontier of body includes hdr (backedge join).
        assert!(dt.frontier(body).contains(&hdr));
    }

    #[test]
    fn unreachable_nodes_flagged() {
        let mut g = Cfg::new();
        let a = g.add_node(NodeKind::Block, None, 0);
        let orphan = g.add_node(NodeKind::Block, None, 0);
        g.add_edge(g.entry, a);
        g.exit = a;
        let dt = DomTree::compute(&g);
        assert!(dt.is_reachable(a));
        assert!(!dt.is_reachable(orphan));
    }
}
