//! The augmented control-flow graph of paper §4.1.
//!
//! Beyond the standard CFG, every loop gets
//!
//! * a **preheader** node that dominates all nodes of the loop,
//! * a **header** node carrying the loop's φ-Enter definitions, and
//! * a **postexit** node per exit target carrying φ-Exit definitions, with a
//!   **zero-trip edge** from the preheader.
//!
//! The zero-trip edge is load-bearing: it guarantees that no node *inside* a
//! loop dominates any node *after* the loop, which is what makes
//! `Earliest(u)` (a dominating definition) always live outside loops that do
//! not contain `u`.

use std::fmt;

use crate::program::{LoopId, StmtId};

/// Index of a node in [`Cfg::nodes`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The role of a CFG node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// Procedure entry; carries the pseudo-definitions of every variable.
    Entry,
    /// Procedure exit.
    Exit,
    /// Ordinary basic block of statements.
    Block,
    /// Loop preheader (outside the loop).
    PreHeader(LoopId),
    /// Loop header (inside the loop; φ-Enter defs live here).
    Header(LoopId),
    /// Loop postexit (outside the loop; φ-Exit defs live here).
    PostExit(LoopId),
}

/// A CFG node.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// Role of the node.
    pub kind: NodeKind,
    /// Statements in program order (empty for structural nodes).
    pub stmts: Vec<StmtId>,
    /// Predecessors.
    pub preds: Vec<NodeId>,
    /// Successors.
    pub succs: Vec<NodeId>,
    /// Innermost loop *containing* the node (preheaders and postexits belong
    /// to the enclosing loop, not the loop they serve).
    pub enclosing: Option<LoopId>,
    /// Nesting level (`NL`): number of loops containing the node.
    pub level: u32,
}

/// The augmented control-flow graph.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Cfg {
    /// All nodes; `NodeId` indexes this vector.
    pub nodes: Vec<Node>,
    /// Entry node (always `NodeId(0)`).
    pub entry: NodeId,
    /// Exit node.
    pub exit: NodeId,
}

impl Cfg {
    /// Creates a CFG containing only an entry node.
    pub fn new() -> Self {
        Cfg {
            nodes: vec![Node {
                kind: NodeKind::Entry,
                stmts: vec![],
                preds: vec![],
                succs: vec![],
                enclosing: None,
                level: 0,
            }],
            entry: NodeId(0),
            exit: NodeId(0), // patched when the exit node is added
        }
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self, kind: NodeKind, enclosing: Option<LoopId>, level: u32) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            kind,
            stmts: vec![],
            preds: vec![],
            succs: vec![],
            enclosing,
            level,
        });
        id
    }

    /// Adds a directed edge.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) {
        if !self.nodes[from.0 as usize].succs.contains(&to) {
            self.nodes[from.0 as usize].succs.push(to);
            self.nodes[to.0 as usize].preds.push(from);
        }
    }

    /// Node by id.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// Mutable node by id.
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.0 as usize]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the graph has no nodes (never the case after `new`).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Iterates node ids in index order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Reverse postorder from the entry (ignores unreachable nodes).
    pub fn reverse_postorder(&self) -> Vec<NodeId> {
        let mut visited = vec![false; self.nodes.len()];
        let mut post = Vec::with_capacity(self.nodes.len());
        // Iterative DFS with an explicit stack of (node, next-succ-index).
        let mut stack = vec![(self.entry, 0usize)];
        visited[self.entry.0 as usize] = true;
        while let Some(&mut (n, ref mut i)) = stack.last_mut() {
            let succs = &self.nodes[n.0 as usize].succs;
            if *i < succs.len() {
                let s = succs[*i];
                *i += 1;
                if !visited[s.0 as usize] {
                    visited[s.0 as usize] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(n);
                stack.pop();
            }
        }
        post.reverse();
        post
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Cfg {
        // entry -> a -> {b, c} -> d
        let mut g = Cfg::new();
        let a = g.add_node(NodeKind::Block, None, 0);
        let b = g.add_node(NodeKind::Block, None, 0);
        let c = g.add_node(NodeKind::Block, None, 0);
        let d = g.add_node(NodeKind::Block, None, 0);
        g.add_edge(g.entry, a);
        g.add_edge(a, b);
        g.add_edge(a, c);
        g.add_edge(b, d);
        g.add_edge(c, d);
        g.exit = d;
        g
    }

    #[test]
    fn edges_are_deduplicated() {
        let mut g = Cfg::new();
        let a = g.add_node(NodeKind::Block, None, 0);
        g.add_edge(g.entry, a);
        g.add_edge(g.entry, a);
        assert_eq!(g.node(g.entry).succs.len(), 1);
        assert_eq!(g.node(a).preds.len(), 1);
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_reachable() {
        let g = diamond();
        let rpo = g.reverse_postorder();
        assert_eq!(rpo[0], g.entry);
        assert_eq!(rpo.len(), 5);
        // d must come after b and c.
        let posn = |n: NodeId| rpo.iter().position(|&x| x == n).unwrap();
        assert!(posn(NodeId(4)) > posn(NodeId(2)));
        assert!(posn(NodeId(4)) > posn(NodeId(3)));
    }

    #[test]
    fn unreachable_nodes_excluded_from_rpo() {
        let mut g = diamond();
        g.add_node(NodeKind::Block, None, 0); // never linked
        assert_eq!(g.reverse_postorder().len(), 5);
    }
}
