//! Graphviz (DOT) rendering of the augmented CFG and dominator tree.
//!
//! Debugging aid: `cfg_dot` draws basic blocks with their statements,
//! preheader/header/postexit roles, loop nesting levels, zero-trip edges
//! (dashed), and backedges (bold); `dom_dot` draws the dominator tree.

use std::fmt::Write as _;

use crate::cfg::NodeKind;
use crate::dom::DomTree;
use crate::program::{IrProgram, StmtKind};

/// Renders the augmented CFG as a DOT digraph.
pub fn cfg_dot(prog: &IrProgram) -> String {
    let mut out = String::from("digraph cfg {\n  node [shape=box, fontname=\"monospace\"];\n");
    for id in prog.cfg.node_ids() {
        let n = prog.cfg.node(id);
        let (label, style) = match n.kind {
            NodeKind::Entry => ("ENTRY".to_string(), "shape=oval"),
            NodeKind::Exit => ("EXIT".to_string(), "shape=oval"),
            NodeKind::PreHeader(l) => (format!("preheader {l}"), "style=dashed"),
            NodeKind::Header(l) => (format!("header {l}"), "style=bold"),
            NodeKind::PostExit(l) => (format!("postexit {l}"), "style=dashed"),
            NodeKind::Block => {
                let mut s = format!("{id} (level {})", n.level);
                for &sid in &n.stmts {
                    let info = prog.stmt(sid);
                    match &info.kind {
                        StmtKind::Assign { lhs, .. } => {
                            let _ = write!(s, "\\n{sid}: {} = ...", prog.array(lhs.array).name);
                        }
                        StmtKind::Cond { .. } => {
                            let _ = write!(s, "\\n{sid}: if (...)");
                        }
                    }
                }
                (s, "")
            }
        };
        let _ = writeln!(out, "  {} [label=\"{}\" {}];", id.0, label, style);
    }
    for id in prog.cfg.node_ids() {
        let n = prog.cfg.node(id);
        for &s in &n.succs {
            // Classify the edge for styling.
            let style = match (n.kind, prog.cfg.node(s).kind) {
                (NodeKind::PreHeader(a), NodeKind::PostExit(b)) if a == b => {
                    " [style=dashed, label=\"zero-trip\"]"
                }
                (_, NodeKind::Header(l)) if prog.loop_info(l).preheader != id => {
                    " [style=bold, label=\"back\"]"
                }
                _ => "",
            };
            let _ = writeln!(out, "  {} -> {}{};", id.0, s.0, style);
        }
    }
    out.push_str("}\n");
    out
}

/// Renders the dominator tree as a DOT digraph.
pub fn dom_dot(prog: &IrProgram, dt: &DomTree) -> String {
    let mut out = String::from("digraph domtree {\n  node [shape=box];\n");
    for id in prog.cfg.node_ids() {
        if !dt.is_reachable(id) {
            continue;
        }
        let kind = format!("{:?}", prog.cfg.node(id).kind);
        let _ = writeln!(out, "  {} [label=\"{} {}\"];", id.0, id, kind);
        if let Some(p) = dt.parent(id) {
            let _ = writeln!(out, "  {} -> {};", p.0, id.0);
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower;

    fn prog() -> IrProgram {
        let src = "
program t
param n
real a(n,n) distribute (block,block)
real cond
if (cond > 0) then
  a(1:n, 1:n) = 1
endif
do i = 2, n
  a(i, 1:n) = a(i-1, 1:n)
enddo
end";
        lower(&gcomm_lang::parse_program(src).unwrap()).unwrap()
    }

    #[test]
    fn cfg_dot_contains_structure() {
        let p = prog();
        let d = cfg_dot(&p);
        assert!(d.starts_with("digraph cfg {"));
        assert!(d.contains("zero-trip"));
        assert!(d.contains("back"));
        assert!(d.contains("header L0"));
        assert!(d.ends_with("}\n"));
    }

    #[test]
    fn dom_dot_is_a_tree() {
        let p = prog();
        let dt = DomTree::compute(&p.cfg);
        let d = dom_dot(&p, &dt);
        // Every reachable non-entry node has exactly one parent edge.
        let edges = d.matches(" -> ").count();
        let nodes = p.cfg.node_ids().filter(|&n| dt.is_reachable(n)).count();
        assert_eq!(edges, nodes - 1);
    }
}
