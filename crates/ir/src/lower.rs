//! Lowering from the AST to the IR + augmented CFG.

use std::collections::HashMap;
use std::fmt;

use gcomm_lang::{ArrayRef, Assign, Expr, Program, Stmt, Subscript};

use crate::affine::{Affine, Var};
use crate::cfg::{Cfg, NodeId, NodeKind};
use crate::program::{
    AccessRef, ArrayId, ArrayInfo, IrProgram, LoopId, LoopInfo, ParamId, Read, StmtId, StmtInfo,
    StmtKind, SubscriptIr,
};

/// An error raised during lowering, carrying the source line where known
/// (`line == 0` means no specific location — e.g. a declaration).
///
/// Every variant is a *user-input* condition: lowering never panics on any
/// parsed program, it reports one of these instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LowerError {
    /// A declared array bound is not affine in the parameters.
    NonAffineBound {
        /// Array whose declaration is at fault.
        array: String,
    },
    /// A loop bound is not affine in parameters and enclosing loop
    /// variables.
    NonAffineLoopBound {
        /// Loop variable.
        var: String,
        /// Which bound.
        which: &'static str,
    },
    /// A reference names an array that was never declared.
    UnknownArray {
        /// The undeclared name.
        array: String,
        /// Source line of the reference (0 if unknown).
        line: u32,
    },
    /// A reference subscripts an array with more subscripts than its
    /// declared rank.
    RankMismatch {
        /// Array name.
        array: String,
        /// Declared rank.
        rank: usize,
        /// Subscripts supplied.
        subs: usize,
        /// Source line of the reference (0 if unknown).
        line: u32,
    },
    /// Statement nesting beyond [`MAX_NESTING`] (defense against stack
    /// overflow on programmatically built ASTs; parsed sources are already
    /// bounded by the parser's own limit).
    NestingTooDeep {
        /// Source line where the limit was crossed (0 if unknown).
        line: u32,
    },
}

/// Maximum statement-nesting depth the lowerer accepts. Matches the
/// parser's limit, so any parsed program lowers; AST-builder users hitting
/// it get a diagnostic instead of a call-stack overflow.
pub const MAX_NESTING: usize = 256;

impl LowerError {
    /// The 1-based source line the error points at, or 0 when it has no
    /// specific location.
    pub fn line(&self) -> u32 {
        match self {
            LowerError::NonAffineBound { .. } | LowerError::NonAffineLoopBound { .. } => 0,
            LowerError::UnknownArray { line, .. }
            | LowerError::RankMismatch { line, .. }
            | LowerError::NestingTooDeep { line } => *line,
        }
    }
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line() > 0 {
            write!(f, "line {}: ", self.line())?;
        }
        match self {
            LowerError::NonAffineBound { array } => {
                write!(f, "array `{array}`: non-affine bound")
            }
            LowerError::NonAffineLoopBound { var, which } => {
                write!(f, "loop `{var}`: non-affine {which} bound")
            }
            LowerError::UnknownArray { array, .. } => write!(f, "unknown array `{array}`"),
            LowerError::RankMismatch {
                array, rank, subs, ..
            } => write!(
                f,
                "array `{array}` has rank {rank} but is subscripted with {subs} subscript(s)"
            ),
            LowerError::NestingTooDeep { .. } => write!(
                f,
                "statement nesting exceeds the supported depth of {MAX_NESTING}"
            ),
        }
    }
}

impl std::error::Error for LowerError {}

/// Lowers a validated AST program into the IR.
///
/// # Errors
///
/// Returns [`LowerError`] when a construct the analyses require to be affine
/// (declared array bounds, loop bounds) is not, or on internal naming
/// inconsistencies (which validation should have caught).
pub fn lower(ast: &Program) -> Result<IrProgram, LowerError> {
    let _t = gcomm_obs::time("ir.lower");
    // Reject over-deep ASTs before anything recursive touches them: the
    // lowerer clones the body and walks it with recursive descent, and the
    // derived `Clone`/`Drop` impls themselves recurse per nesting level.
    // This scan is iterative, so it is safe at any depth.
    if let Some(line) = deeper_than(&ast.body, MAX_NESTING) {
        return Err(LowerError::NestingTooDeep { line });
    }
    let prog = Lowerer::new(ast)?.run()?;
    gcomm_obs::count("ir.cfg.nodes", prog.cfg.len() as u64);
    gcomm_obs::count(
        "ir.cfg.edges",
        (0..prog.cfg.len())
            .map(|i| prog.cfg.node(crate::cfg::NodeId(i as u32)).succs.len() as u64)
            .sum(),
    );
    gcomm_obs::count("ir.stmts", prog.stmts.len() as u64);
    Ok(prog)
}

/// Iteratively (explicit worklist, no recursion) checks whether statement
/// nesting exceeds `limit`. Returns the source line of the first
/// over-deep statement found (0 when it carries no line), or `None` when
/// the AST is within bounds.
fn deeper_than(body: &[Stmt], limit: usize) -> Option<u32> {
    let mut work: Vec<(&[Stmt], usize)> = vec![(body, 1)];
    while let Some((stmts, depth)) = work.pop() {
        for s in stmts {
            if depth > limit {
                return Some(match s {
                    Stmt::Assign(a) => a.line,
                    _ => 0,
                });
            }
            match s {
                Stmt::Assign(_) => {}
                Stmt::Do(d) => work.push((&d.body, depth + 1)),
                Stmt::If(i) => {
                    work.push((&i.then_body, depth + 1));
                    work.push((&i.else_body, depth + 1));
                }
            }
        }
    }
    None
}

struct Lowerer<'a> {
    ast: &'a Program,
    params: HashMap<String, ParamId>,
    arrays: HashMap<String, ArrayId>,
    array_infos: Vec<ArrayInfo>,
    loops: Vec<LoopInfo>,
    loop_vars: Vec<(String, LoopId)>,
    stmts: Vec<StmtInfo>,
    cfg: Cfg,
    cur: NodeId,
    branch_conds: std::collections::HashMap<NodeId, Expr>,
    depth: usize,
}

impl<'a> Lowerer<'a> {
    fn new(ast: &'a Program) -> Result<Self, LowerError> {
        let params: HashMap<String, ParamId> = ast
            .params
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), ParamId(i as u32)))
            .collect();

        let mut this = Lowerer {
            ast,
            params,
            arrays: HashMap::new(),
            array_infos: Vec::new(),
            loops: Vec::new(),
            loop_vars: Vec::new(),
            stmts: Vec::new(),
            cfg: Cfg::new(),
            cur: NodeId(0),
            branch_conds: std::collections::HashMap::new(),
            depth: 0,
        };

        for decl in &ast.arrays {
            let mut dims = Vec::with_capacity(decl.dims.len());
            for d in &decl.dims {
                let lo = this
                    .param_affine(&d.lo)
                    .ok_or_else(|| LowerError::NonAffineBound {
                        array: decl.name.clone(),
                    })?;
                let hi = this
                    .param_affine(&d.hi)
                    .ok_or_else(|| LowerError::NonAffineBound {
                        array: decl.name.clone(),
                    })?;
                dims.push((lo, hi));
            }
            let id = ArrayId(this.array_infos.len() as u32);
            this.arrays.insert(decl.name.clone(), id);
            this.array_infos.push(ArrayInfo {
                name: decl.name.clone(),
                dims,
                dist: decl.dist.clone(),
                align: decl.align.clone(),
            });
        }
        Ok(this)
    }

    fn run(mut self) -> Result<IrProgram, LowerError> {
        // Initial block after entry.
        let first = self.cfg.add_node(NodeKind::Block, None, 0);
        self.cfg.add_edge(self.cfg.entry, first);
        self.cur = first;

        let body = self.ast.body.clone();
        self.lower_stmts(&body)?;

        let exit = self.cfg.add_node(NodeKind::Exit, None, 0);
        self.cfg.add_edge(self.cur, exit);
        self.cfg.exit = exit;

        Ok(IrProgram {
            name: self.ast.name.clone(),
            params: self.ast.params.clone(),
            arrays: self.array_infos,
            loops: self.loops,
            stmts: self.stmts,
            cfg: self.cfg,
            branch_conds: self.branch_conds,
        })
    }

    fn cur_loop(&self) -> Option<LoopId> {
        self.loop_vars.last().map(|&(_, l)| l)
    }

    fn cur_level(&self) -> u32 {
        self.loop_vars.len() as u32
    }

    fn lower_stmts(&mut self, stmts: &[Stmt]) -> Result<(), LowerError> {
        if self.depth >= MAX_NESTING {
            // Best-effort source location: the first assignment in the
            // too-deep block (loops and ifs carry no line of their own).
            let line = stmts
                .iter()
                .find_map(|s| match s {
                    Stmt::Assign(a) => Some(a.line),
                    _ => None,
                })
                .unwrap_or(0);
            return Err(LowerError::NestingTooDeep { line });
        }
        self.depth += 1;
        let r = self.lower_stmts_tail(stmts);
        self.depth -= 1;
        r
    }

    fn lower_stmts_tail(&mut self, stmts: &[Stmt]) -> Result<(), LowerError> {
        for s in stmts {
            match s {
                Stmt::Assign(a) => self.lower_assign(a)?,
                Stmt::Do(d) => self.lower_do(d)?,
                Stmt::If(i) => self.lower_if(i)?,
            }
        }
        Ok(())
    }

    fn push_stmt(&mut self, kind: StmtKind, line: u32) -> StmtId {
        let id = StmtId(self.stmts.len() as u32);
        let index = self.cfg.node(self.cur).stmts.len();
        self.cfg.node_mut(self.cur).stmts.push(id);
        self.stmts.push(StmtInfo {
            kind,
            node: self.cur,
            index,
            enclosing: self.cur_loop(),
            level: self.cur_level(),
            line,
        });
        id
    }

    fn lower_assign(&mut self, a: &Assign) -> Result<(), LowerError> {
        let lhs = self.lower_ref(&a.lhs, a.line)?;
        let mut reads = Vec::new();
        let mut err = None;
        let mut flops = 0u32;
        count_flops(&a.rhs, &mut flops);
        a.rhs.for_each_ref(&mut |r, in_sum| {
            if err.is_some() {
                return;
            }
            // Bare names that are loop variables or parameters are not array
            // reads.
            if r.subs.is_empty()
                && (self.params.contains_key(&r.array)
                    || self.loop_vars.iter().any(|(v, _)| v == &r.array))
            {
                return;
            }
            match self.lower_ref(r, a.line) {
                Ok(access) => reads.push(Read {
                    access,
                    reduction: in_sum,
                }),
                Err(e) => err = Some(e),
            }
        });
        if let Some(e) = err {
            return Err(e);
        }
        let rhs = a.rhs.clone();
        self.push_stmt(
            StmtKind::Assign {
                lhs,
                reads,
                flops,
                rhs,
            },
            a.line,
        );
        Ok(())
    }

    fn lower_do(&mut self, d: &gcomm_lang::DoLoop) -> Result<(), LowerError> {
        let outer = self.cur_loop();
        let outer_level = self.cur_level();
        let lo = self
            .affine(&d.lo)
            .ok_or_else(|| LowerError::NonAffineLoopBound {
                var: d.var.clone(),
                which: "lower",
            })?;
        let hi = self
            .affine(&d.hi)
            .ok_or_else(|| LowerError::NonAffineLoopBound {
                var: d.var.clone(),
                which: "upper",
            })?;

        let l = LoopId(self.loops.len() as u32);
        let preheader = self
            .cfg
            .add_node(NodeKind::PreHeader(l), outer, outer_level);
        let header = self
            .cfg
            .add_node(NodeKind::Header(l), Some(l), outer_level + 1);
        self.loops.push(LoopInfo {
            var: d.var.clone(),
            lo,
            hi,
            step: d.step,
            parent: outer,
            level: outer_level + 1,
            preheader,
            header,
            postexit: NodeId(0), // patched below
        });

        self.cfg.add_edge(self.cur, preheader);
        self.cfg.add_edge(preheader, header);

        let body = self.cfg.add_node(NodeKind::Block, Some(l), outer_level + 1);
        self.cfg.add_edge(header, body);
        self.cur = body;
        self.loop_vars.push((d.var.clone(), l));
        self.lower_stmts(&d.body)?;
        self.loop_vars.pop();
        // Backedge.
        self.cfg.add_edge(self.cur, header);

        let postexit = self.cfg.add_node(NodeKind::PostExit(l), outer, outer_level);
        self.loops[l.0 as usize].postexit = postexit;
        // Loop-exit edge and zero-trip edge.
        self.cfg.add_edge(header, postexit);
        self.cfg.add_edge(preheader, postexit);

        let after = self.cfg.add_node(NodeKind::Block, outer, outer_level);
        self.cfg.add_edge(postexit, after);
        self.cur = after;
        Ok(())
    }

    fn lower_if(&mut self, i: &gcomm_lang::IfStmt) -> Result<(), LowerError> {
        // Lower the condition's array reads as a Cond pseudo-statement so the
        // branch point is a valid communication position.
        let mut reads = Vec::new();
        let mut err = None;
        i.cond.for_each_ref(&mut |r, in_sum| {
            if err.is_some() {
                return;
            }
            if r.subs.is_empty()
                && (self.params.contains_key(&r.array)
                    || self.loop_vars.iter().any(|(v, _)| v == &r.array))
            {
                return;
            }
            match self.lower_ref(r, 0) {
                Ok(access) => reads.push(Read {
                    access,
                    reduction: in_sum,
                }),
                Err(e) => err = Some(e),
            }
        });
        if let Some(e) = err {
            return Err(e);
        }
        if !reads.is_empty() {
            self.push_stmt(StmtKind::Cond { reads }, 0);
        }

        let branch = self.cur;
        self.branch_conds.insert(branch, i.cond.clone());
        let enc = self.cur_loop();
        let lvl = self.cur_level();

        let then_entry = self.cfg.add_node(NodeKind::Block, enc, lvl);
        self.cfg.add_edge(branch, then_entry);
        self.cur = then_entry;
        self.lower_stmts(&i.then_body)?;
        let then_end = self.cur;

        let join = self.cfg.add_node(NodeKind::Block, enc, lvl);
        if i.else_body.is_empty() {
            self.cfg.add_edge(branch, join);
        } else {
            let else_entry = self.cfg.add_node(NodeKind::Block, enc, lvl);
            self.cfg.add_edge(branch, else_entry);
            self.cur = else_entry;
            self.lower_stmts(&i.else_body)?;
            self.cfg.add_edge(self.cur, join);
        }
        self.cfg.add_edge(then_end, join);
        self.cur = join;
        Ok(())
    }

    fn lower_ref(&self, r: &ArrayRef, line: u32) -> Result<AccessRef, LowerError> {
        let &array = self
            .arrays
            .get(&r.array)
            .ok_or_else(|| LowerError::UnknownArray {
                array: r.array.clone(),
                line,
            })?;
        let info = &self.array_infos[array.0 as usize];
        let rank = info.rank();
        if !r.subs.is_empty() && r.subs.len() != rank {
            // Guard the `info.dims[i]` indexing below: a reference with more
            // subscripts than the declared rank is user input, not an
            // internal invariant.
            return Err(LowerError::RankMismatch {
                array: r.array.clone(),
                rank,
                subs: r.subs.len(),
                line,
            });
        }

        let mut subs = Vec::with_capacity(rank);
        if r.subs.is_empty() {
            // Whole-array reference: full declared section per dimension.
            for (lo, hi) in &info.dims {
                subs.push(SubscriptIr::Range {
                    lo: lo.clone(),
                    hi: hi.clone(),
                    step: 1,
                });
            }
        } else {
            for (i, s) in r.subs.iter().enumerate() {
                let (dlo, dhi) = &info.dims[i];
                subs.push(match s {
                    Subscript::Index(e) => match self.affine(e) {
                        Some(a) => SubscriptIr::Elem(a),
                        None => SubscriptIr::NonAffine,
                    },
                    Subscript::Range { lo, hi, step } => {
                        let lo_a = match lo {
                            Some(e) => self.affine(e),
                            None => Some(dlo.clone()),
                        };
                        let hi_a = match hi {
                            Some(e) => self.affine(e),
                            None => Some(dhi.clone()),
                        };
                        match (lo_a, hi_a) {
                            (Some(lo), Some(hi)) => SubscriptIr::Range {
                                lo,
                                hi,
                                step: *step,
                            },
                            _ => SubscriptIr::NonAffine,
                        }
                    }
                });
            }
        }
        Ok(AccessRef { array, subs })
    }

    /// Lowers an expression to an affine form over parameters and in-scope
    /// loop variables. Returns `None` for non-affine expressions — and for
    /// expressions nested past [`MAX_NESTING`], which degrade to the same
    /// conservative non-affine treatment rather than overflowing the stack.
    fn affine(&self, e: &Expr) -> Option<Affine> {
        self.affine_at(e, 0)
    }

    fn affine_at(&self, e: &Expr, depth: usize) -> Option<Affine> {
        if depth >= MAX_NESTING {
            return None;
        }
        match e {
            Expr::Int(v) => Some(Affine::constant(*v)),
            Expr::Num(_) => None,
            Expr::Neg(a) => Some(self.affine_at(a, depth + 1)?.scale(-1)),
            Expr::Ref(r) if r.subs.is_empty() => {
                if let Some(&p) = self.params.get(&r.array) {
                    Some(Affine::var(Var::Param(p)))
                } else {
                    self.loop_vars
                        .iter()
                        .rev()
                        .find(|(v, _)| v == &r.array)
                        .map(|&(_, l)| Affine::var(Var::Loop(l)))
                }
            }
            Expr::Ref(_) | Expr::Sum(_) => None,
            Expr::Bin(op, a, b) => {
                let fa = self.affine_at(a, depth + 1);
                let fb = self.affine_at(b, depth + 1);
                match op {
                    gcomm_lang::BinOp::Add => Some(fa?.add(&fb?)),
                    gcomm_lang::BinOp::Sub => Some(fa?.sub(&fb?)),
                    gcomm_lang::BinOp::Mul => {
                        let fa = fa?;
                        let fb = fb?;
                        if let Some(c) = fa.as_const() {
                            Some(fb.scale(c))
                        } else {
                            fb.as_const().map(|c| fa.scale(c))
                        }
                    }
                    _ => None,
                }
            }
        }
    }

    /// Affine over parameters only (declared array bounds).
    fn param_affine(&self, e: &Expr) -> Option<Affine> {
        let a = self.affine(e)?;
        (!a.has_loop_vars()).then_some(a)
    }
}

fn count_flops(e: &Expr, acc: &mut u32) {
    match e {
        Expr::Int(_) | Expr::Num(_) | Expr::Ref(_) => {}
        Expr::Sum(_) => *acc += 1,
        Expr::Neg(a) => {
            *acc += 1;
            count_flops(a, acc);
        }
        Expr::Bin(_, a, b) => {
            *acc += 1;
            count_flops(a, acc);
            count_flops(b, acc);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::NodeKind;
    use crate::dom::DomTree;

    fn ir(src: &str) -> IrProgram {
        let ast = gcomm_lang::parse_program(src).unwrap();
        lower(&ast).unwrap()
    }

    #[test]
    fn deep_programmatic_ast_is_an_error_not_a_stack_overflow() {
        // The parser bounds source-derived nesting, but an AST built
        // programmatically can be arbitrarily deep; the lowerer must
        // refuse it with a diagnostic instead of recursing off the stack.
        use gcomm_lang::{ArrayDecl, ArrayRef, Assign, DoLoop, Program};
        let mut body = vec![Stmt::Assign(Assign {
            lhs: ArrayRef {
                array: "s".into(),
                subs: vec![],
            },
            rhs: Expr::Int(1),
            line: 7,
        })];
        for i in 0..10_000 {
            body = vec![Stmt::Do(DoLoop {
                var: format!("i{i}"),
                lo: Expr::Int(1),
                hi: Expr::Int(4),
                step: 1,
                body,
            })];
        }
        let ast = Program {
            name: "t".into(),
            params: vec![],
            arrays: vec![ArrayDecl {
                name: "s".into(),
                dims: vec![],
                dist: vec![],
                align: vec![],
            }],
            body,
        };
        let e = lower(&ast).unwrap_err();
        assert!(matches!(e, LowerError::NestingTooDeep { .. }), "{e}");
        assert!(e.to_string().contains("nesting exceeds"), "{e}");
        // Tear the deep AST down iteratively: the derived recursive drop
        // glue would overflow the test thread's stack on its own.
        let mut body = ast.body;
        while let Some(Stmt::Do(d)) = body.pop() {
            body = d.body;
        }
    }

    #[test]
    fn straightline_program() {
        let p = ir("
program t
param n
real a(n), b(n) distribute (block)
a(1:n) = 1
b(2:n) = a(1:n-1)
end");
        assert_eq!(p.stmts.len(), 2);
        assert_eq!(p.loops.len(), 0);
        // Both statements share the first block.
        assert_eq!(p.stmt(StmtId(0)).node, p.stmt(StmtId(1)).node);
        match &p.stmt(StmtId(1)).kind {
            StmtKind::Assign { reads, .. } => {
                assert_eq!(reads.len(), 1);
                assert!(!reads[0].reduction);
            }
            _ => panic!("expected assign"),
        }
    }

    #[test]
    fn loop_structure_and_zero_trip_edge() {
        let p = ir("
program t
param n
real a(n,n) distribute (block,block)
do i = 2, n
  a(i, 1:n) = a(i-1, 1:n)
enddo
end");
        assert_eq!(p.loops.len(), 1);
        let l = p.loop_info(LoopId(0));
        assert_eq!(l.level, 1);
        // Zero-trip edge: preheader -> postexit.
        assert!(p.cfg.node(l.preheader).succs.contains(&l.postexit));
        // Header dominated by preheader; postexit NOT dominated by header.
        let dt = DomTree::compute(&p.cfg);
        assert!(dt.dominates(l.preheader, l.header));
        assert!(!dt.dominates(l.header, l.postexit));
        // Statement level.
        assert_eq!(p.stmt(StmtId(0)).level, 1);
        assert_eq!(p.stmt(StmtId(0)).enclosing, Some(LoopId(0)));
    }

    #[test]
    fn nested_loop_levels_and_cnl() {
        let p = ir("
program t
param n
real a(n,n) distribute (block,block)
do t1 = 1, 10
  do i = 2, n
    a(i, 1:n) = a(i-1, 1:n)
  enddo
  a(1, 1:n) = 0
enddo
end");
        assert_eq!(p.loops.len(), 2);
        assert_eq!(p.loop_info(LoopId(0)).level, 1);
        assert_eq!(p.loop_info(LoopId(1)).level, 2);
        assert_eq!(p.loop_info(LoopId(1)).parent, Some(LoopId(0)));
        // CNL of the inner statement and the post-loop statement is 1.
        assert_eq!(p.cnl(StmtId(0), StmtId(1)), 1);
        assert_eq!(p.cnl(StmtId(0), StmtId(0)), 2);
    }

    #[test]
    fn if_creates_diamond_and_cond_stmt() {
        let p = ir("
program t
param n
real a(n,n), d(n,n) distribute (block,block)
real cond
if (cond > 0) then
  a(:, :) = 3
else
  a(:, :) = d(:, :)
endif
a(1, 1:n) = 0
end");
        // Cond + two assigns + one after = 4 statements.
        assert_eq!(p.stmts.len(), 4);
        assert!(matches!(p.stmt(StmtId(0)).kind, StmtKind::Cond { .. }));
        let then_node = p.stmt(StmtId(1)).node;
        let else_node = p.stmt(StmtId(2)).node;
        assert_ne!(then_node, else_node);
        let dt = DomTree::compute(&p.cfg);
        let after_node = p.stmt(StmtId(3)).node;
        assert!(!dt.dominates(then_node, after_node));
        assert!(!dt.dominates(else_node, after_node));
        assert!(dt.dominates(p.stmt(StmtId(0)).node, after_node));
    }

    #[test]
    fn whole_array_ref_expands_to_full_sections() {
        let p = ir("
program t
param n
real a(n,n), b(n,n) distribute (block,block)
a = b
end");
        match &p.stmt(StmtId(0)).kind {
            StmtKind::Assign { lhs, reads, .. } => {
                assert_eq!(lhs.subs.len(), 2);
                assert!(matches!(lhs.subs[0], SubscriptIr::Range { .. }));
                assert_eq!(reads[0].access.subs.len(), 2);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn loop_var_reads_are_not_array_reads() {
        let p = ir("
program t
param n
real a(n) distribute (block)
do i = 1, n
  a(i) = i + n
enddo
end");
        match &p.stmt(StmtId(0)).kind {
            StmtKind::Assign { reads, .. } => assert!(reads.is_empty()),
            _ => panic!(),
        }
    }

    #[test]
    fn sum_reads_marked_reduction() {
        let p = ir("
program t
param n
real g(n,n) distribute (block,block)
real s
s = sum(g(1, :))
end");
        match &p.stmt(StmtId(0)).kind {
            StmtKind::Assign { reads, .. } => assert!(reads[0].reduction),
            _ => panic!(),
        }
    }

    #[test]
    fn subscript_affinity() {
        let p = ir("
program t
param n
real a(n,n), s(n,n) distribute (block,block)
do i = 1, n
  a(i, 1:n) = s(2*i - 1, 1:n)
enddo
end");
        match &p.stmt(StmtId(0)).kind {
            StmtKind::Assign { reads, .. } => match &reads[0].access.subs[0] {
                SubscriptIr::Elem(e) => {
                    assert_eq!(e.k, -1);
                    assert_eq!(e.coeff(Var::Loop(LoopId(0))), 2);
                }
                other => panic!("expected affine elem, got {other:?}"),
            },
            _ => panic!(),
        }
    }

    #[test]
    fn nonaffine_subscript_degrades_gracefully() {
        let p = ir("
program t
param n
real a(n), q(n) distribute (block)
real s
do i = 1, n
  a(i) = q(i) * s
enddo
end");
        // q(i) with scalar s elsewhere: all affine. Now check a truly
        // non-affine subscript via multiplication of two loop vars.
        let p2 = ir("
program t2
param n
real a(n,n), q(n,n) distribute (block,block)
do i = 1, n
  do j = 1, n
    a(i, j) = q(i * j, j)
  enddo
enddo
end");
        match &p2.stmt(StmtId(0)).kind {
            StmtKind::Assign { reads, .. } => {
                assert!(matches!(reads[0].access.subs[0], SubscriptIr::NonAffine));
            }
            _ => panic!(),
        }
        let _ = p;
    }

    #[test]
    fn rank_mismatch_is_an_error_not_a_panic() {
        // Bypass validation (which also catches this) to prove lowering
        // itself guards the subscript indexing.
        let src = "program t\nparam n\nreal a(n) distribute (block)\na(1, 2) = 0\nend";
        let ast = gcomm_lang::Parser::new(src)
            .unwrap()
            .parse_program()
            .unwrap();
        let e = lower(&ast).unwrap_err();
        match e {
            LowerError::RankMismatch {
                rank, subs, line, ..
            } => {
                assert_eq!((rank, subs), (1, 2));
                assert_eq!(line, 4);
            }
            other => panic!("expected rank mismatch, got {other}"),
        }
    }

    #[test]
    fn unknown_array_is_an_error_not_a_panic() {
        let src = "program t\nq(1) = 1\nend";
        let ast = gcomm_lang::Parser::new(src)
            .unwrap()
            .parse_program()
            .unwrap();
        let e = lower(&ast).unwrap_err();
        assert!(matches!(e, LowerError::UnknownArray { .. }), "{e}");
        assert_eq!(e.line(), 2);
        assert!(e.to_string().contains("line 2"));
    }

    #[test]
    fn entry_and_exit_connected() {
        let p = ir("program t\nend");
        let rpo = p.cfg.reverse_postorder();
        assert!(rpo.contains(&p.cfg.exit));
        assert!(matches!(p.cfg.node(p.cfg.exit).kind, NodeKind::Exit));
    }
}
