//! Program positions at statement granularity.
//!
//! A position identifies a point in a CFG node: `slot == 0` is the top of
//! the node, `slot == k` is immediately **after** the node's `k-1`-th
//! statement. The paper's convention "communication placed at `d` means
//! immediately after `d`" maps to `Pos::after`; "immediately before the
//! statement containing `u`" maps to `Pos::before`.

use crate::cfg::NodeId;
use crate::dom::DomTree;
use crate::program::{IrProgram, StmtId};

/// A point in the program: inside node `node`, after `slot` statements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pos {
    /// CFG node.
    pub node: NodeId,
    /// Number of statements of the node that execute before this point
    /// (0 = top of node, `stmts.len()` = bottom).
    pub slot: usize,
}

impl Pos {
    /// The top of a node.
    pub fn top(node: NodeId) -> Pos {
        Pos { node, slot: 0 }
    }

    /// The point immediately before statement `s`.
    pub fn before(prog: &IrProgram, s: StmtId) -> Pos {
        let info = prog.stmt(s);
        Pos {
            node: info.node,
            slot: info.index,
        }
    }

    /// The point immediately after statement `s`.
    pub fn after(prog: &IrProgram, s: StmtId) -> Pos {
        let info = prog.stmt(s);
        Pos {
            node: info.node,
            slot: info.index + 1,
        }
    }

    /// The bottom of a node.
    pub fn bottom(prog: &IrProgram, node: NodeId) -> Pos {
        Pos {
            node,
            slot: prog.cfg.node(node).stmts.len(),
        }
    }

    /// True if code at `self` executes before `other` on every path to
    /// `other` (reflexive): node-level dominance refined by slot order
    /// within a node.
    pub fn dominates(&self, other: &Pos, dt: &DomTree) -> bool {
        if self.node == other.node {
            self.slot <= other.slot
        } else {
            dt.strictly_dominates(self.node, other.node)
        }
    }

    /// Nesting level of the position (the level of its node).
    pub fn level(&self, prog: &IrProgram) -> u32 {
        prog.cfg.node(self.node).level
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower;

    #[test]
    fn before_after_and_dominance() {
        let src = "
program t
param n
real a(n), b(n) distribute (block)
a(1:n) = 0
b(1:n) = a(1:n)
end";
        let ast = gcomm_lang::parse_program(src).unwrap();
        let ir = lower(&ast).unwrap();
        let dt = DomTree::compute(&ir.cfg);
        let s0 = StmtId(0);
        let s1 = StmtId(1);
        let b0 = Pos::before(&ir, s0);
        let a0 = Pos::after(&ir, s0);
        let b1 = Pos::before(&ir, s1);
        assert_eq!(a0, b1, "statements share a node; after s0 == before s1");
        assert!(b0.dominates(&a0, &dt));
        assert!(!a0.dominates(&b0, &dt));
        assert!(b0.dominates(&b0, &dt));
    }

    #[test]
    fn cross_node_dominance() {
        let src = "
program t
param n
real a(n,n) distribute (block,block)
a(1, 1:n) = 0
do i = 2, n
  a(i, 1:n) = a(i-1, 1:n)
enddo
end";
        let ast = gcomm_lang::parse_program(src).unwrap();
        let ir = lower(&ast).unwrap();
        let dt = DomTree::compute(&ir.cfg);
        let outer = Pos::after(&ir, StmtId(0));
        let inner = Pos::before(&ir, StmtId(1));
        assert!(outer.dominates(&inner, &dt));
        assert!(!inner.dominates(&outer, &dt));
        assert_eq!(outer.level(&ir), 0);
        assert_eq!(inner.level(&ir), 1);
    }
}
