//! Affine expressions over size parameters and loop variables.
//!
//! Subscripts, loop bounds, and array-section bounds are all affine
//! expressions `k + Σ cᵢ·vᵢ` where each `vᵢ` is a program size parameter
//! (`n`, `nx`, …) or a loop variable. Terms are kept sorted by variable so
//! equality is structural.

use std::collections::BTreeMap;
use std::fmt;

use crate::program::{LoopId, ParamId};

/// A symbolic variable appearing in an affine expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Var {
    /// A program size parameter.
    Param(ParamId),
    /// A loop index variable.
    Loop(LoopId),
}

/// An affine expression: constant plus a sum of integer-scaled variables.
///
/// The representation is canonical: terms are sorted by variable and no term
/// has a zero coefficient, so `PartialEq`/`Hash` give semantic equality.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Affine {
    /// Constant term.
    pub k: i64,
    /// Scaled variables, sorted by `Var`, no zero coefficients.
    terms: Vec<(Var, i64)>,
}

impl Affine {
    /// The constant expression `k`.
    pub fn constant(k: i64) -> Self {
        Affine { k, terms: vec![] }
    }

    /// The expression `v` (coefficient 1).
    pub fn var(v: Var) -> Self {
        Affine {
            k: 0,
            terms: vec![(v, 1)],
        }
    }

    /// Builds from a constant and arbitrary (possibly unsorted, duplicated)
    /// terms.
    pub fn new(k: i64, terms: impl IntoIterator<Item = (Var, i64)>) -> Self {
        let mut map: BTreeMap<Var, i64> = BTreeMap::new();
        for (v, c) in terms {
            *map.entry(v).or_insert(0) += c;
        }
        Affine {
            k,
            terms: map.into_iter().filter(|&(_, c)| c != 0).collect(),
        }
    }

    /// The terms, sorted by variable.
    pub fn terms(&self) -> &[(Var, i64)] {
        &self.terms
    }

    /// Coefficient of `v` (0 if absent).
    pub fn coeff(&self, v: Var) -> i64 {
        self.terms
            .iter()
            .find(|&&(tv, _)| tv == v)
            .map_or(0, |&(_, c)| c)
    }

    /// True if the expression is a plain constant.
    pub fn is_const(&self) -> bool {
        self.terms.is_empty()
    }

    /// Returns the constant value if the expression is constant.
    pub fn as_const(&self) -> Option<i64> {
        self.is_const().then_some(self.k)
    }

    /// True if the expression mentions any loop variable.
    pub fn has_loop_vars(&self) -> bool {
        self.terms.iter().any(|(v, _)| matches!(v, Var::Loop(_)))
    }

    /// All loop variables mentioned.
    pub fn loop_vars(&self) -> impl Iterator<Item = LoopId> + '_ {
        self.terms.iter().filter_map(|(v, _)| match v {
            Var::Loop(l) => Some(*l),
            Var::Param(_) => None,
        })
    }

    /// Sum of two expressions.
    pub fn add(&self, other: &Affine) -> Affine {
        Affine::new(
            self.k + other.k,
            self.terms.iter().chain(other.terms.iter()).copied(),
        )
    }

    /// Difference `self - other`.
    pub fn sub(&self, other: &Affine) -> Affine {
        self.add(&other.scale(-1))
    }

    /// Adds a constant.
    pub fn offset(&self, d: i64) -> Affine {
        Affine {
            k: self.k + d,
            terms: self.terms.clone(),
        }
    }

    /// Multiplies by a constant.
    pub fn scale(&self, c: i64) -> Affine {
        if c == 0 {
            return Affine::constant(0);
        }
        Affine {
            k: self.k * c,
            terms: self.terms.iter().map(|&(v, t)| (v, t * c)).collect(),
        }
    }

    /// Substitutes `v := e` and returns the result.
    pub fn subst(&self, v: Var, e: &Affine) -> Affine {
        let c = self.coeff(v);
        if c == 0 {
            return self.clone();
        }
        let rest = Affine::new(
            self.k,
            self.terms.iter().copied().filter(|&(tv, _)| tv != v),
        );
        rest.add(&e.scale(c))
    }

    /// Evaluates with the given variable bindings.
    ///
    /// Returns `None` if some variable is unbound.
    pub fn eval(&self, bind: &dyn Fn(Var) -> Option<i64>) -> Option<i64> {
        let mut acc = self.k;
        for &(v, c) in &self.terms {
            acc += c * bind(v)?;
        }
        Some(acc)
    }

    /// Difference `self - other` if it is a compile-time constant.
    pub fn const_diff(&self, other: &Affine) -> Option<i64> {
        self.sub(other).as_const()
    }
}

impl From<i64> for Affine {
    fn from(k: i64) -> Self {
        Affine::constant(k)
    }
}

impl fmt::Display for Affine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        if self.k != 0 || self.terms.is_empty() {
            write!(f, "{}", self.k)?;
            first = false;
        }
        for &(v, c) in &self.terms {
            if first {
                if c == -1 {
                    write!(f, "-")?;
                } else if c != 1 {
                    write!(f, "{c}*")?;
                }
                first = false;
            } else if c < 0 {
                write!(f, " - ")?;
                if c != -1 {
                    write!(f, "{}*", -c)?;
                }
            } else {
                write!(f, " + ")?;
                if c != 1 {
                    write!(f, "{c}*")?;
                }
            }
            match v {
                Var::Param(p) => write!(f, "p{}", p.0)?,
                Var::Loop(l) => write!(f, "i{}", l.0)?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> Var {
        Var::Param(ParamId(i))
    }
    fn l(i: u32) -> Var {
        Var::Loop(LoopId(i))
    }

    #[test]
    fn canonical_form_merges_terms() {
        let a = Affine::new(1, [(p(0), 2), (p(0), 3), (l(1), 0)]);
        assert_eq!(a.terms(), &[(p(0), 5)]);
        assert_eq!(a.k, 1);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Affine::new(3, [(p(0), 1), (l(0), 2)]);
        let b = Affine::new(-1, [(p(0), 4)]);
        assert_eq!(a.add(&b).sub(&b), a);
    }

    #[test]
    fn subst_replaces_variable() {
        // (i + n) with i := 2n - 1  ==>  3n - 1
        let e = Affine::new(0, [(l(0), 1), (p(0), 1)]);
        let r = Affine::new(-1, [(p(0), 2)]);
        let out = e.subst(l(0), &r);
        assert_eq!(out, Affine::new(-1, [(p(0), 3)]));
    }

    #[test]
    fn subst_absent_is_identity() {
        let e = Affine::new(5, [(p(0), 1)]);
        assert_eq!(e.subst(l(3), &Affine::constant(9)), e);
    }

    #[test]
    fn eval_with_bindings() {
        let e = Affine::new(1, [(p(0), 2), (l(0), -1)]);
        let v = e.eval(&|v| match v {
            Var::Param(_) => Some(10),
            Var::Loop(_) => Some(3),
        });
        assert_eq!(v, Some(18));
        assert_eq!(e.eval(&|_| None), None);
    }

    #[test]
    fn const_diff_detects_shift() {
        let a = Affine::new(1, [(l(0), 1)]); // i + 1
        let b = Affine::new(0, [(l(0), 1)]); // i
        assert_eq!(a.const_diff(&b), Some(1));
        let c = Affine::new(0, [(p(0), 1)]);
        assert_eq!(a.const_diff(&c), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Affine::constant(0).to_string(), "0");
        let e = Affine::new(-1, [(p(0), 2), (l(1), -1)]);
        let s = e.to_string();
        assert!(s.contains("p0") && s.contains("i1"), "{s}");
    }
}
