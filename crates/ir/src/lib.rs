//! # gcomm-ir — statement IR, augmented CFG, loop tree, dominators
//!
//! This crate lowers a validated [`gcomm_lang::Program`] into the program
//! representation used by the communication analyses of *Global
//! Communication Analysis and Optimization* (PLDI 1996):
//!
//! * [`affine`] — affine expressions over size parameters and loop
//!   variables (the subscript language of the dependence tester and the
//!   bound language of array sections),
//! * [`program`] — arrays, loops, and statements with resolved ids,
//! * [`cfg`] — the **augmented control-flow graph** of §4.1: every loop
//!   gets a *preheader* and *postexit* node, plus a *zero-trip* edge from
//!   preheader to postexit, so that nodes inside a loop never dominate
//!   nodes after it,
//! * [`dom`] — dominator tree and dominance frontiers,
//! * [`pos`] — statement-granularity program positions (`(node, slot)`)
//!   used as communication placement points.
//!
//! # Example
//!
//! ```
//! let src = "
//! program p
//! param n
//! real a(n,n) distribute (block,block)
//! do i = 2, n
//!   a(i, 1:n) = a(i-1, 1:n)
//! enddo
//! end";
//! let ast = gcomm_lang::parse_program(src)?;
//! let ir = gcomm_ir::lower(&ast)?;
//! assert_eq!(ir.loops.len(), 1);
//! assert_eq!(ir.stmts.len(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod affine;
pub mod cfg;
pub mod dom;
pub mod dot;
pub mod lower;
pub mod pos;
pub mod program;

pub use affine::{Affine, Var};
pub use cfg::{Cfg, Node, NodeId, NodeKind};
pub use dom::DomTree;
pub use lower::{lower, LowerError};
pub use pos::Pos;
pub use program::{
    AccessRef, ArrayId, ArrayInfo, IrProgram, LoopId, LoopInfo, ParamId, Read, StmtId, StmtInfo,
    StmtKind, SubscriptIr,
};
