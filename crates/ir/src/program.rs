//! Resolved program representation: arrays, loops, statements.

use std::fmt;

use gcomm_lang::Dist;

use crate::affine::Affine;
use crate::cfg::{Cfg, NodeId};

/// Index of an array (or scalar) in [`IrProgram::arrays`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArrayId(pub u32);

/// Index of a size parameter in [`IrProgram::params`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ParamId(pub u32);

/// Index of a loop in [`IrProgram::loops`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LoopId(pub u32);

/// Index of a statement in [`IrProgram::stmts`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StmtId(pub u32);

impl fmt::Display for ArrayId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}
impl fmt::Display for StmtId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}
impl fmt::Display for LoopId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// A declared array (or scalar, when `dims` is empty) with resolved bounds.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayInfo {
    /// Source name.
    pub name: String,
    /// Per-dimension inclusive bounds `(lo, hi)`, affine over parameters.
    pub dims: Vec<(Affine, Affine)>,
    /// Per-dimension distribution; empty means replicated.
    pub dist: Vec<Dist>,
    /// Per-dimension alignment offsets onto the template (zeros when the
    /// declaration had no `align` clause).
    pub align: Vec<i64>,
}

impl ArrayInfo {
    /// Rank (0 for scalars).
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Alignment offset of dimension `d` (0 when unaligned).
    pub fn align_of(&self, d: usize) -> i64 {
        self.align.get(d).copied().unwrap_or(0)
    }

    /// Indices of the distributed dimensions, in order (these map to the
    /// axes of the processor grid / HPF template).
    pub fn distributed_dims(&self) -> Vec<usize> {
        self.dist
            .iter()
            .enumerate()
            .filter(|(_, d)| **d != Dist::Collapsed)
            .map(|(i, _)| i)
            .collect()
    }

    /// True if no dimension is distributed.
    pub fn is_replicated(&self) -> bool {
        self.distributed_dims().is_empty()
    }
}

/// A loop with resolved bounds and its place in the loop tree and CFG.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopInfo {
    /// Source index-variable name.
    pub var: String,
    /// Inclusive lower bound (affine over parameters and outer loop vars).
    pub lo: Affine,
    /// Inclusive upper bound.
    pub hi: Affine,
    /// Constant non-zero step.
    pub step: i64,
    /// Enclosing loop, if any.
    pub parent: Option<LoopId>,
    /// Nesting level: outermost loops have level 1 (paper's `NL`).
    pub level: u32,
    /// Preheader node (outside the loop; dominates all loop nodes).
    pub preheader: NodeId,
    /// Header node (inside the loop; holds the φ-Enter defs).
    pub header: NodeId,
    /// Postexit node (outside the loop; holds the φ-Exit defs).
    pub postexit: NodeId,
}

/// One subscript position of an access.
#[derive(Debug, Clone, PartialEq)]
pub enum SubscriptIr {
    /// Single element at an affine index.
    Elem(Affine),
    /// Regular section with affine bounds and constant stride.
    Range {
        /// Inclusive lower bound.
        lo: Affine,
        /// Inclusive upper bound.
        hi: Affine,
        /// Constant non-zero stride.
        step: i64,
    },
    /// Subscript the frontend could not express affinely; analyses must be
    /// conservative.
    NonAffine,
}

impl SubscriptIr {
    /// The lower bound when known (`Elem` counts as a degenerate range).
    pub fn lo(&self) -> Option<&Affine> {
        match self {
            SubscriptIr::Elem(e) => Some(e),
            SubscriptIr::Range { lo, .. } => Some(lo),
            SubscriptIr::NonAffine => None,
        }
    }

    /// The upper bound when known.
    pub fn hi(&self) -> Option<&Affine> {
        match self {
            SubscriptIr::Elem(e) => Some(e),
            SubscriptIr::Range { hi, .. } => Some(hi),
            SubscriptIr::NonAffine => None,
        }
    }
}

/// A resolved reference to an array with one subscript per dimension
/// (scalars have none).
#[derive(Debug, Clone, PartialEq)]
pub struct AccessRef {
    /// Referenced array.
    pub array: ArrayId,
    /// One entry per declared dimension.
    pub subs: Vec<SubscriptIr>,
}

/// A read of an array on the right-hand side of a statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Read {
    /// The access.
    pub access: AccessRef,
    /// True when the read appears inside `sum(...)` — the communication for
    /// it is a reduction, not a data fetch.
    pub reduction: bool,
}

/// Statement payload.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// `lhs = f(reads...)`.
    Assign {
        /// Written access.
        lhs: AccessRef,
        /// All array reads of the right-hand side, in textual order.
        reads: Vec<Read>,
        /// Number of arithmetic operations per assigned element (a crude
        /// work estimate used by the machine simulator).
        flops: u32,
        /// The right-hand-side expression (kept for the reference
        /// interpreter and the dynamic schedule verifier).
        rhs: gcomm_lang::Expr,
    },
    /// Evaluation of an `if` condition (reads only).
    Cond {
        /// Array reads of the condition.
        reads: Vec<Read>,
    },
}

impl StmtKind {
    /// The reads of this statement.
    pub fn reads(&self) -> &[Read] {
        match self {
            StmtKind::Assign { reads, .. } => reads,
            StmtKind::Cond { reads } => reads,
        }
    }

    /// The written access, if this is an assignment.
    pub fn def(&self) -> Option<&AccessRef> {
        match self {
            StmtKind::Assign { lhs, .. } => Some(lhs),
            StmtKind::Cond { .. } => None,
        }
    }
}

/// A statement with its CFG location.
#[derive(Debug, Clone, PartialEq)]
pub struct StmtInfo {
    /// Payload.
    pub kind: StmtKind,
    /// CFG node containing the statement.
    pub node: NodeId,
    /// Index of the statement within its node.
    pub index: usize,
    /// Innermost enclosing loop.
    pub enclosing: Option<LoopId>,
    /// Nesting level (`NL`): number of enclosing loops.
    pub level: u32,
    /// 1-based source line (0 if synthesized).
    pub line: u32,
}

/// A lowered program: the unit of analysis (one procedure).
#[derive(Debug, Clone, PartialEq)]
pub struct IrProgram {
    /// Program name.
    pub name: String,
    /// Size parameter names (`ParamId` = index).
    pub params: Vec<String>,
    /// Arrays and scalars (`ArrayId` = index).
    pub arrays: Vec<ArrayInfo>,
    /// Loops in lowering order (`LoopId` = index).
    pub loops: Vec<LoopInfo>,
    /// Statements in program (textual) order (`StmtId` = index).
    pub stmts: Vec<StmtInfo>,
    /// The augmented control-flow graph.
    pub cfg: Cfg,
    /// Branch conditions by branching node (every two-successor non-loop
    /// node has one; used by the reference interpreter).
    pub branch_conds: std::collections::HashMap<NodeId, gcomm_lang::Expr>,
}

impl IrProgram {
    /// Array info by id.
    pub fn array(&self, id: ArrayId) -> &ArrayInfo {
        &self.arrays[id.0 as usize]
    }

    /// Loop info by id.
    pub fn loop_info(&self, id: LoopId) -> &LoopInfo {
        &self.loops[id.0 as usize]
    }

    /// Statement info by id.
    pub fn stmt(&self, id: StmtId) -> &StmtInfo {
        &self.stmts[id.0 as usize]
    }

    /// Looks up an array id by source name.
    pub fn array_by_name(&self, name: &str) -> Option<ArrayId> {
        self.arrays
            .iter()
            .position(|a| a.name == name)
            .map(|i| ArrayId(i as u32))
    }

    /// The chain of loops enclosing `l`, outermost first, ending with `l`.
    pub fn loop_chain(&self, l: LoopId) -> Vec<LoopId> {
        let mut chain = vec![l];
        let mut cur = l;
        while let Some(p) = self.loop_info(cur).parent {
            chain.push(p);
            cur = p;
        }
        chain.reverse();
        chain
    }

    /// The chain of loops enclosing a statement, outermost first.
    pub fn stmt_loop_chain(&self, s: StmtId) -> Vec<LoopId> {
        match self.stmt(s).enclosing {
            Some(l) => self.loop_chain(l),
            None => Vec::new(),
        }
    }

    /// Common nesting level of two statements (paper's `CNL`): the level of
    /// the deepest loop containing both.
    pub fn cnl(&self, a: StmtId, b: StmtId) -> u32 {
        let ca = self.stmt_loop_chain(a);
        let cb = self.stmt_loop_chain(b);
        ca.iter().zip(cb.iter()).take_while(|(x, y)| x == y).count() as u32
    }

    /// The chain of loops enclosing a CFG node, outermost first.
    pub fn node_loop_chain(&self, n: NodeId) -> Vec<LoopId> {
        match self.cfg.node(n).enclosing {
            Some(l) => self.loop_chain(l),
            None => Vec::new(),
        }
    }

    /// Common nesting level of a CFG node and a statement.
    pub fn cnl_node_stmt(&self, n: NodeId, s: StmtId) -> u32 {
        let ca = self.node_loop_chain(n);
        let cb = self.stmt_loop_chain(s);
        ca.iter().zip(cb.iter()).take_while(|(x, y)| x == y).count() as u32
    }

    /// The loop at `level` (1-based) in the chain enclosing statement `s`.
    pub fn enclosing_loop_at_level(&self, s: StmtId, level: u32) -> Option<LoopId> {
        let chain = self.stmt_loop_chain(s);
        if level == 0 || level as usize > chain.len() {
            None
        } else {
            Some(chain[level as usize - 1])
        }
    }
}
