//! Seeded generator of well-formed mini-HPF programs.
//!
//! The fuzzing harness (`tests/fuzz_smoke.rs` at the workspace root) needs
//! a stream of programs that are *structurally valid by construction* —
//! they parse, validate, and lower — so that every failure it observes is
//! a compiler bug rather than a generator artifact. This module builds such
//! programs directly as source text from a [`TestRng`] seed:
//!
//! * 2–6 distributed arrays (rank 1 or 2; `block`, `cyclic`, and `*`
//!   distributions) plus a few scalars,
//! * loop nests (`do v = 2, n-1`) and two-armed `if` statements up to a
//!   bounded depth,
//! * array-section assignments where every reference in a statement is
//!   conformable by construction (same extent class per dimension), with
//!   constant shifts that stay in bounds for any `n >= 5`,
//! * loop-variable subscripts with `±1` offsets (in-bounds for the `2..n-1`
//!   loop range), and
//! * `sum()` reductions into scalars.
//!
//! Determinism: the same seed always yields the same program, so a failing
//! seed reported by the harness can be replayed as a regression test
//! (`tests/fuzz_regressions.rs`).

use std::fmt::Write as _;

use crate::test_runner::TestRng;

/// Size knobs for [`generate_with`]. The defaults keep programs small
/// enough to compile in well under a millisecond while still exercising
/// loop nests, branches, reductions, and multi-array redundancy.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Number of distributed arrays (at least 2).
    pub max_arrays: usize,
    /// Statements per block (at least 1).
    pub max_block_stmts: usize,
    /// Maximum loop/if nesting depth.
    pub max_depth: usize,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_arrays: 5,
            max_block_stmts: 4,
            max_depth: 3,
        }
    }
}

/// Generates one well-formed mini-HPF program from a seed with the default
/// configuration.
pub fn generate(seed: u64) -> String {
    generate_with(seed, &GenConfig::default())
}

/// Generates one well-formed mini-HPF program from a seed.
pub fn generate_with(seed: u64, cfg: &GenConfig) -> String {
    let mut g = Gen {
        rng: TestRng::new(seed),
        cfg,
        out: String::new(),
        arrays: Vec::new(),
        scalars: Vec::new(),
        next_loop_var: 0,
    };
    g.program(seed);
    g.out
}

/// One declared array: name and rank (0 = scalar).
#[derive(Debug, Clone)]
struct Decl {
    name: String,
    rank: usize,
}

/// How one dimension of a statement's references is addressed. Every
/// reference in the statement uses the same mode per dimension, which makes
/// the statement conformable by construction.
#[derive(Debug, Clone, Copy)]
enum DimMode {
    /// `lo:hi` section with extent `n - shrink` (shrink in 0..=2); each ref
    /// picks its own in-bounds start offset.
    Section { shrink: u64 },
    /// Loop-variable subscript `v±k`; each ref picks its own offset in
    /// `-1..=1` (in bounds because loops run `2..n-1`).
    Index { var: u32 },
}

struct Gen<'a> {
    rng: TestRng,
    cfg: &'a GenConfig,
    out: String,
    arrays: Vec<Decl>,
    scalars: Vec<String>,
    next_loop_var: u32,
}

impl Gen<'_> {
    fn program(&mut self, seed: u64) {
        let _ = writeln!(self.out, "program fuzz{seed}");
        let _ = writeln!(self.out, "param n, nsteps");
        self.decls();
        // Optional timestep wrapper, like the paper kernels.
        let wrap = self.rng.below(2) == 0;
        if wrap {
            let _ = writeln!(self.out, "do t = 1, nsteps");
        }
        let depth = 1 + self.rng.below(self.cfg.max_depth.max(1) as u64) as usize;
        self.block(depth, &mut Vec::new(), 1);
        if wrap {
            let _ = writeln!(self.out, "enddo");
        }
        let _ = writeln!(self.out, "end");
    }

    fn decls(&mut self) {
        let n_arrays = 2 + self.rng.below(self.cfg.max_arrays.saturating_sub(1) as u64) as usize;
        for i in 0..n_arrays {
            let rank = if self.rng.below(4) == 0 { 1 } else { 2 };
            let name = format!("a{i}");
            let dims = (0..rank).map(|_| "n").collect::<Vec<_>>().join(",");
            let dist = (0..rank)
                .map(|_| match self.rng.below(5) {
                    0 => "*",
                    1 => "cyclic",
                    _ => "block",
                })
                .collect::<Vec<_>>()
                .join(", ");
            // A fully-serial distribution is legal; keep it occasionally.
            let _ = writeln!(self.out, "real {name}({dims}) distribute ({dist})");
            self.arrays.push(Decl { name, rank });
        }
        let n_scalars = 1 + self.rng.below(2) as usize;
        for i in 0..n_scalars {
            let name = format!("s{i}");
            let _ = writeln!(self.out, "real {name}");
            self.scalars.push(name);
        }
    }

    /// Emits one block of statements at the given remaining depth.
    /// `loops` holds the loop variables currently in scope.
    fn block(&mut self, depth: usize, loops: &mut Vec<u32>, indent: usize) {
        let n = 1 + self.rng.below(self.cfg.max_block_stmts.max(1) as u64) as usize;
        for _ in 0..n {
            match self.rng.below(10) {
                0 | 1 if depth > 0 => self.do_loop(depth, loops, indent),
                2 if depth > 0 => self.if_stmt(depth, loops, indent),
                3 => self.reduction(indent),
                _ => self.assign(loops, indent),
            }
        }
    }

    fn do_loop(&mut self, depth: usize, loops: &mut Vec<u32>, indent: usize) {
        let v = self.next_loop_var;
        self.next_loop_var += 1;
        // The 2..n-1 range keeps every v-1 / v / v+1 subscript in bounds.
        let _ = writeln!(self.out, "{}do v{v} = 2, n-1", pad(indent));
        loops.push(v);
        self.block(depth - 1, loops, indent + 1);
        loops.pop();
        let _ = writeln!(self.out, "{}enddo", pad(indent));
    }

    fn if_stmt(&mut self, depth: usize, loops: &mut Vec<u32>, indent: usize) {
        let s = self.scalar();
        let _ = writeln!(self.out, "{}if ({s} > 0) then", pad(indent));
        self.block(depth - 1, loops, indent + 1);
        if self.rng.below(2) == 0 {
            let _ = writeln!(self.out, "{}else", pad(indent));
            self.block(depth - 1, loops, indent + 1);
        }
        let _ = writeln!(self.out, "{}endif", pad(indent));
    }

    /// `s = sum(a(full sections))` — a reduction entry.
    fn reduction(&mut self, indent: usize) {
        let s = self.scalar();
        let a = self.array();
        let subs = (0..a.rank).map(|_| "1:n").collect::<Vec<_>>().join(", ");
        let name = a.name;
        let _ = writeln!(self.out, "{}{s} = sum({name}({subs}))", pad(indent));
    }

    /// One conformable array-section assignment.
    fn assign(&mut self, loops: &[u32], indent: usize) {
        let lhs = self.array();
        let modes: Vec<DimMode> = (0..lhs.rank)
            .map(|_| {
                if !loops.is_empty() && self.rng.below(4) == 0 {
                    let var = loops[self.rng.below(loops.len() as u64) as usize];
                    DimMode::Index { var }
                } else {
                    DimMode::Section {
                        shrink: self.rng.below(3),
                    }
                }
            })
            .collect();
        // The LHS writes from the origin of the extent class; RHS reads may
        // shift within the slack left by `shrink`.
        let lhs_txt = self.render_ref(&lhs, &modes, false);
        let rhs = self.expr(&lhs, &modes);
        let _ = writeln!(self.out, "{}{lhs_txt} = {rhs}", pad(indent));
    }

    /// RHS expression: 1–3 terms combined with `+`/`-`/`*`, where each term
    /// is a conformable array reference, a scalar, or a constant; one term
    /// may carry a `0.5 *` coefficient or parentheses.
    fn expr(&mut self, shape_of: &Decl, modes: &[DimMode]) -> String {
        let n_terms = 1 + self.rng.below(3);
        let mut s = String::new();
        for t in 0..n_terms {
            if t > 0 {
                s.push_str(match self.rng.below(3) {
                    0 => " - ",
                    1 => " * ",
                    _ => " + ",
                });
            }
            let term = match self.rng.below(8) {
                0 => self.scalar(),
                1 => format!("{}", 1 + self.rng.below(4)),
                2 => {
                    let r = self.conformable_ref(shape_of, modes);
                    format!("0.5 * {r}")
                }
                3 => {
                    let a = self.conformable_ref(shape_of, modes);
                    let b = self.conformable_ref(shape_of, modes);
                    format!("({a} + {b})")
                }
                _ => self.conformable_ref(shape_of, modes),
            };
            s.push_str(&term);
        }
        s
    }

    /// A reference conformable with the statement's dim modes: an array of
    /// the same rank rendered under `modes`, or (for rank-0 shapes) a
    /// scalar.
    fn conformable_ref(&mut self, shape_of: &Decl, modes: &[DimMode]) -> String {
        let candidates: Vec<Decl> = self
            .arrays
            .iter()
            .filter(|a| a.rank == shape_of.rank)
            .cloned()
            .collect();
        if candidates.is_empty() {
            return self.scalar();
        }
        let a = candidates[self.rng.below(candidates.len() as u64) as usize].clone();
        self.render_ref(&a, modes, true)
    }

    /// Renders `name(sub, sub)` under the statement's dim modes. Reads
    /// (`shifted = true`) may start anywhere inside the extent slack or
    /// offset the loop variable; the write always starts at the origin.
    fn render_ref(&mut self, a: &Decl, modes: &[DimMode], shifted: bool) -> String {
        if a.rank == 0 {
            return a.name.clone();
        }
        let subs: Vec<String> = modes
            .iter()
            .map(|m| match *m {
                DimMode::Section { shrink } => {
                    let off = if shifted {
                        self.rng.below(shrink + 1)
                    } else {
                        0
                    };
                    let lo = 1 + off;
                    let hi_shrink = shrink - off; // hi = n - hi_shrink
                    let lo_s = lo.to_string();
                    let hi_s = match hi_shrink {
                        0 => "n".to_string(),
                        k => format!("n-{k}"),
                    };
                    format!("{lo_s}:{hi_s}")
                }
                DimMode::Index { var } => {
                    if shifted {
                        match self.rng.below(3) {
                            0 => format!("v{var}-1"),
                            1 => format!("v{var}+1"),
                            _ => format!("v{var}"),
                        }
                    } else {
                        format!("v{var}")
                    }
                }
            })
            .collect();
        format!("{}({})", a.name, subs.join(", "))
    }

    fn array(&mut self) -> Decl {
        self.arrays[self.rng.below(self.arrays.len() as u64) as usize].clone()
    }

    fn scalar(&mut self) -> String {
        self.scalars[self.rng.below(self.scalars.len() as u64) as usize].clone()
    }
}

fn pad(indent: usize) -> String {
    "  ".repeat(indent)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        for seed in 0..20 {
            assert_eq!(generate(seed), generate(seed), "seed {seed}");
        }
    }

    #[test]
    fn seeds_vary() {
        // Not all seeds may differ pairwise, but a run of 10 must not
        // collapse to one program.
        let distinct: std::collections::HashSet<String> = (0..10).map(generate).collect();
        assert!(distinct.len() > 1);
    }

    #[test]
    fn programs_have_the_expected_skeleton() {
        for seed in 0..50 {
            let p = generate(seed);
            assert!(p.starts_with(&format!("program fuzz{seed}\n")), "{p}");
            assert!(p.contains("param n, nsteps"), "{p}");
            assert!(p.contains("distribute"), "{p}");
            assert!(p.trim_end().ends_with("end"), "{p}");
        }
    }
}
