//! Seeded generator of well-formed mini-HPF programs.
//!
//! The fuzzing harness (`tests/fuzz_smoke.rs` at the workspace root) needs
//! a stream of programs that are *structurally valid by construction* —
//! they parse, validate, and lower — so that every failure it observes is
//! a compiler bug rather than a generator artifact. This module builds such
//! programs directly as source text from a [`TestRng`] seed:
//!
//! * 2–6 distributed arrays (rank 1 or 2; `block`, `cyclic`, and `*`
//!   distributions) plus a few scalars,
//! * loop nests (`do v = 2, n-1`) and two-armed `if` statements up to a
//!   bounded depth,
//! * array-section assignments where every reference in a statement is
//!   conformable by construction (same extent class per dimension), with
//!   constant shifts that stay in bounds for any `n >= 5`,
//! * loop-variable subscripts with `±1` offsets (in-bounds for the `2..n-1`
//!   loop range), and
//! * `sum()` reductions into scalars.
//!
//! Determinism: the same seed always yields the same program, so a failing
//! seed reported by the harness can be replayed as a regression test
//! (`tests/fuzz_regressions.rs`).

use std::fmt::Write as _;

use crate::test_runner::TestRng;

/// Size knobs for [`generate_with`]. The defaults keep programs small
/// enough to compile in well under a millisecond while still exercising
/// loop nests, branches, reductions, and multi-array redundancy.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Number of distributed arrays (at least 2).
    pub max_arrays: usize,
    /// Statements per block (at least 1).
    pub max_block_stmts: usize,
    /// Maximum loop/if nesting depth.
    pub max_depth: usize,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_arrays: 5,
            max_block_stmts: 4,
            max_depth: 3,
        }
    }
}

/// Generates one well-formed mini-HPF program from a seed with the default
/// configuration.
pub fn generate(seed: u64) -> String {
    generate_with(seed, &GenConfig::default())
}

/// Generates one well-formed mini-HPF program from a seed.
pub fn generate_with(seed: u64, cfg: &GenConfig) -> String {
    let mut g = Gen {
        rng: TestRng::new(seed),
        cfg,
        out: String::new(),
        arrays: Vec::new(),
        scalars: Vec::new(),
        next_loop_var: 0,
    };
    g.program(seed);
    g.out
}

/// One declared array: name and rank (0 = scalar).
#[derive(Debug, Clone)]
struct Decl {
    name: String,
    rank: usize,
}

/// How one dimension of a statement's references is addressed. Every
/// reference in the statement uses the same mode per dimension, which makes
/// the statement conformable by construction.
#[derive(Debug, Clone, Copy)]
enum DimMode {
    /// `lo:hi` section with extent `n - shrink` (shrink in 0..=2); each ref
    /// picks its own in-bounds start offset.
    Section { shrink: u64 },
    /// Loop-variable subscript `v±k`; each ref picks its own offset in
    /// `-1..=1` (in bounds because loops run `2..n-1`).
    Index { var: u32 },
}

struct Gen<'a> {
    rng: TestRng,
    cfg: &'a GenConfig,
    out: String,
    arrays: Vec<Decl>,
    scalars: Vec<String>,
    next_loop_var: u32,
}

impl Gen<'_> {
    fn program(&mut self, seed: u64) {
        let _ = writeln!(self.out, "program fuzz{seed}");
        let _ = writeln!(self.out, "param n, nsteps");
        self.decls();
        // Optional timestep wrapper, like the paper kernels.
        let wrap = self.rng.below(2) == 0;
        if wrap {
            let _ = writeln!(self.out, "do t = 1, nsteps");
        }
        let depth = 1 + self.rng.below(self.cfg.max_depth.max(1) as u64) as usize;
        self.block(depth, &mut Vec::new(), 1);
        if wrap {
            let _ = writeln!(self.out, "enddo");
        }
        let _ = writeln!(self.out, "end");
    }

    fn decls(&mut self) {
        let n_arrays = 2 + self.rng.below(self.cfg.max_arrays.saturating_sub(1) as u64) as usize;
        for i in 0..n_arrays {
            let rank = if self.rng.below(4) == 0 { 1 } else { 2 };
            let name = format!("a{i}");
            let dims = (0..rank).map(|_| "n").collect::<Vec<_>>().join(",");
            let dist = (0..rank)
                .map(|_| match self.rng.below(5) {
                    0 => "*",
                    1 => "cyclic",
                    _ => "block",
                })
                .collect::<Vec<_>>()
                .join(", ");
            // A fully-serial distribution is legal; keep it occasionally.
            let _ = writeln!(self.out, "real {name}({dims}) distribute ({dist})");
            self.arrays.push(Decl { name, rank });
        }
        let n_scalars = 1 + self.rng.below(2) as usize;
        for i in 0..n_scalars {
            let name = format!("s{i}");
            let _ = writeln!(self.out, "real {name}");
            self.scalars.push(name);
        }
    }

    /// Emits one block of statements at the given remaining depth.
    /// `loops` holds the loop variables currently in scope.
    fn block(&mut self, depth: usize, loops: &mut Vec<u32>, indent: usize) {
        let n = 1 + self.rng.below(self.cfg.max_block_stmts.max(1) as u64) as usize;
        for _ in 0..n {
            match self.rng.below(10) {
                0 | 1 if depth > 0 => self.do_loop(depth, loops, indent),
                2 if depth > 0 => self.if_stmt(depth, loops, indent),
                3 => self.reduction(indent),
                _ => self.assign(loops, indent),
            }
        }
    }

    fn do_loop(&mut self, depth: usize, loops: &mut Vec<u32>, indent: usize) {
        let v = self.next_loop_var;
        self.next_loop_var += 1;
        // The 2..n-1 range keeps every v-1 / v / v+1 subscript in bounds.
        let _ = writeln!(self.out, "{}do v{v} = 2, n-1", pad(indent));
        loops.push(v);
        self.block(depth - 1, loops, indent + 1);
        loops.pop();
        let _ = writeln!(self.out, "{}enddo", pad(indent));
    }

    fn if_stmt(&mut self, depth: usize, loops: &mut Vec<u32>, indent: usize) {
        let s = self.scalar();
        let _ = writeln!(self.out, "{}if ({s} > 0) then", pad(indent));
        self.block(depth - 1, loops, indent + 1);
        if self.rng.below(2) == 0 {
            let _ = writeln!(self.out, "{}else", pad(indent));
            self.block(depth - 1, loops, indent + 1);
        }
        let _ = writeln!(self.out, "{}endif", pad(indent));
    }

    /// `s = sum(a(full sections))` — a reduction entry.
    fn reduction(&mut self, indent: usize) {
        let s = self.scalar();
        let a = self.array();
        let subs = (0..a.rank).map(|_| "1:n").collect::<Vec<_>>().join(", ");
        let name = a.name;
        let _ = writeln!(self.out, "{}{s} = sum({name}({subs}))", pad(indent));
    }

    /// One conformable array-section assignment.
    fn assign(&mut self, loops: &[u32], indent: usize) {
        let lhs = self.array();
        let modes: Vec<DimMode> = (0..lhs.rank)
            .map(|_| {
                if !loops.is_empty() && self.rng.below(4) == 0 {
                    let var = loops[self.rng.below(loops.len() as u64) as usize];
                    DimMode::Index { var }
                } else {
                    DimMode::Section {
                        shrink: self.rng.below(3),
                    }
                }
            })
            .collect();
        // The LHS writes from the origin of the extent class; RHS reads may
        // shift within the slack left by `shrink`.
        let lhs_txt = self.render_ref(&lhs, &modes, false);
        let rhs = self.expr(&lhs, &modes);
        let _ = writeln!(self.out, "{}{lhs_txt} = {rhs}", pad(indent));
    }

    /// RHS expression: 1–3 terms combined with `+`/`-`/`*`, where each term
    /// is a conformable array reference, a scalar, or a constant; one term
    /// may carry a `0.5 *` coefficient or parentheses.
    fn expr(&mut self, shape_of: &Decl, modes: &[DimMode]) -> String {
        let n_terms = 1 + self.rng.below(3);
        let mut s = String::new();
        for t in 0..n_terms {
            if t > 0 {
                s.push_str(match self.rng.below(3) {
                    0 => " - ",
                    1 => " * ",
                    _ => " + ",
                });
            }
            let term = match self.rng.below(8) {
                0 => self.scalar(),
                1 => format!("{}", 1 + self.rng.below(4)),
                2 => {
                    let r = self.conformable_ref(shape_of, modes);
                    format!("0.5 * {r}")
                }
                3 => {
                    let a = self.conformable_ref(shape_of, modes);
                    let b = self.conformable_ref(shape_of, modes);
                    format!("({a} + {b})")
                }
                _ => self.conformable_ref(shape_of, modes),
            };
            s.push_str(&term);
        }
        s
    }

    /// A reference conformable with the statement's dim modes: an array of
    /// the same rank rendered under `modes`, or (for rank-0 shapes) a
    /// scalar.
    fn conformable_ref(&mut self, shape_of: &Decl, modes: &[DimMode]) -> String {
        let candidates: Vec<Decl> = self
            .arrays
            .iter()
            .filter(|a| a.rank == shape_of.rank)
            .cloned()
            .collect();
        if candidates.is_empty() {
            return self.scalar();
        }
        let a = candidates[self.rng.below(candidates.len() as u64) as usize].clone();
        self.render_ref(&a, modes, true)
    }

    /// Renders `name(sub, sub)` under the statement's dim modes. Reads
    /// (`shifted = true`) may start anywhere inside the extent slack or
    /// offset the loop variable; the write always starts at the origin.
    fn render_ref(&mut self, a: &Decl, modes: &[DimMode], shifted: bool) -> String {
        if a.rank == 0 {
            return a.name.clone();
        }
        let subs: Vec<String> = modes
            .iter()
            .map(|m| match *m {
                DimMode::Section { shrink } => {
                    let off = if shifted {
                        self.rng.below(shrink + 1)
                    } else {
                        0
                    };
                    let lo = 1 + off;
                    let hi_shrink = shrink - off; // hi = n - hi_shrink
                    let lo_s = lo.to_string();
                    let hi_s = match hi_shrink {
                        0 => "n".to_string(),
                        k => format!("n-{k}"),
                    };
                    format!("{lo_s}:{hi_s}")
                }
                DimMode::Index { var } => {
                    if shifted {
                        match self.rng.below(3) {
                            0 => format!("v{var}-1"),
                            1 => format!("v{var}+1"),
                            _ => format!("v{var}"),
                        }
                    } else {
                        format!("v{var}")
                    }
                }
            })
            .collect();
        format!("{}({})", a.name, subs.join(", "))
    }

    fn array(&mut self) -> Decl {
        self.arrays[self.rng.below(self.arrays.len() as u64) as usize].clone()
    }

    fn scalar(&mut self) -> String {
        self.scalars[self.rng.below(self.scalars.len() as u64) as usize].clone()
    }
}

fn pad(indent: usize) -> String {
    "  ".repeat(indent)
}

// ---------------------------------------------------------------------------
// Modules and the seeded edit generator
// ---------------------------------------------------------------------------

/// Generates a module of `count` well-formed routines (concatenated
/// `program … end` units) with the default configuration. Routine names
/// are distinct by construction.
pub fn generate_module(seed: u64, count: usize) -> String {
    generate_module_with(seed, count, &GenConfig::default())
}

/// [`generate_module`] with explicit size knobs.
pub fn generate_module_with(seed: u64, count: usize, cfg: &GenConfig) -> String {
    (0..count.max(1))
        .map(|i| generate_with(subseed(seed, i), cfg))
        .collect()
}

/// Derives the per-routine seed: distinct for distinct `(seed, i)` and
/// spread out so routine names (`fuzz<subseed>`) never collide within a
/// module.
fn subseed(seed: u64, i: usize) -> u64 {
    seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(i as u64 + 1)
}

/// The kind of mutation [`apply_edit`] performed. Every kind preserves
/// well-formedness: the edited module still parses, validates, and
/// lowers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EditKind {
    /// Replace the routine's `program` name with a fresh one.
    Rename,
    /// Flip one distribution keyword (`block` ↔ `cyclic`, or `*` →
    /// `block`) in one declaration.
    Retile,
    /// Append one in-bounds full-section assignment before the
    /// routine's `end`.
    AppendStatement,
    /// Delete one whole routine (only on modules with ≥ 2 routines).
    DeleteRoutine,
}

/// What [`apply_edit`] did: the mutation kind and which routine (index
/// in source order, pre-edit) it touched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EditInfo {
    /// The mutation applied.
    pub kind: EditKind,
    /// Pre-edit index of the edited (or deleted) routine.
    pub routine: usize,
}

/// Splits a module into per-routine line groups at lines whose first
/// word is `end` (`enddo`/`endif` do not match); trailing text joins the
/// last routine.
fn split_units(module: &str) -> Vec<String> {
    let mut units: Vec<String> = Vec::new();
    let mut cur = String::new();
    for line in module.split_inclusive('\n') {
        cur.push_str(line);
        let trimmed = line.trim_start();
        let word = trimmed
            .bytes()
            .take_while(|b| b.is_ascii_alphanumeric() || *b == b'_')
            .count();
        if trimmed[..word].eq_ignore_ascii_case("end") {
            units.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        match units.last_mut() {
            Some(last) => last.push_str(&cur),
            None => units.push(cur),
        }
    }
    units
}

/// Applies one seeded, well-formedness-preserving mutation to a module
/// produced by [`generate_module`] (or any module in the generator's
/// shape). Deterministic per `(module, seed)`; the edit always touches
/// exactly one routine, leaving every other routine's text byte-
/// identical — which is what makes the edit stream a valid probe for
/// per-routine incremental reuse.
pub fn apply_edit(module: &str, seed: u64) -> (String, EditInfo) {
    let mut rng = TestRng::new(seed);
    let mut units = split_units(module);
    assert!(!units.is_empty(), "apply_edit needs at least one routine");
    let routine = rng.below(units.len() as u64) as usize;
    let mut kind = match rng.below(4) {
        0 => EditKind::Rename,
        1 => EditKind::Retile,
        2 => EditKind::AppendStatement,
        _ => EditKind::DeleteRoutine,
    };
    if kind == EditKind::DeleteRoutine && units.len() < 2 {
        kind = EditKind::AppendStatement;
    }
    match kind {
        EditKind::Rename => {
            let fresh = format!("r{}", rng.below(1_000_000));
            units[routine] = rename_unit(&units[routine], &fresh);
        }
        EditKind::Retile => {
            units[routine] = retile_unit(&units[routine], &mut rng);
        }
        EditKind::AppendStatement => {
            units[routine] = append_stmt_unit(&units[routine], &mut rng);
        }
        EditKind::DeleteRoutine => {
            units.remove(routine);
        }
    }
    (units.concat(), EditInfo { kind, routine })
}

/// Rewrites the unit's `program` line to a fresh name.
fn rename_unit(unit: &str, fresh: &str) -> String {
    unit.split_inclusive('\n')
        .map(|line| {
            let trimmed = line.trim_start();
            if trimmed.len() >= 8
                && trimmed[..7].eq_ignore_ascii_case("program")
                && !trimmed.as_bytes()[7].is_ascii_alphanumeric()
            {
                let eol = if line.ends_with('\n') { "\n" } else { "" };
                format!("program {fresh}{eol}")
            } else {
                line.to_string()
            }
        })
        .collect()
}

/// Flips one distribution keyword on one randomly chosen declaration.
/// Only the text after `distribute` is touched, so array extents and
/// statement expressions are never affected.
fn retile_unit(unit: &str, rng: &mut TestRng) -> String {
    let decl_lines: Vec<usize> = unit
        .split_inclusive('\n')
        .enumerate()
        .filter(|(_, l)| l.contains("distribute"))
        .map(|(i, _)| i)
        .collect();
    if decl_lines.is_empty() {
        return unit.to_string(); // no declarations: nothing to retile
    }
    let target = decl_lines[rng.below(decl_lines.len() as u64) as usize];
    unit.split_inclusive('\n')
        .enumerate()
        .map(|(i, line)| {
            if i != target {
                return line.to_string();
            }
            let at = line.find("distribute").expect("target line has the word");
            let (head, dist) = line.split_at(at);
            let flipped = if dist.contains("block") {
                dist.replacen("block", "cyclic", 1)
            } else if dist.contains("cyclic") {
                dist.replacen("cyclic", "block", 1)
            } else {
                dist.replacen('*', "block", 1)
            };
            format!("{head}{flipped}")
        })
        .collect()
}

/// Appends one full-section assignment to the first declared array,
/// inserted just before the unit's final `end` line. In bounds for any
/// `n >= 5` and conformable trivially (a constant RHS).
fn append_stmt_unit(unit: &str, rng: &mut TestRng) -> String {
    // First declaration names the target array and fixes its rank.
    let mut target: Option<(String, usize)> = None;
    for line in unit.lines() {
        let trimmed = line.trim_start();
        if !trimmed.starts_with("real ") || !trimmed.contains("distribute") {
            continue;
        }
        let rest = &trimmed[5..];
        let open = rest.find('(');
        let close = rest.find(')');
        if let (Some(open), Some(close)) = (open, close) {
            let name = rest[..open].trim().to_string();
            let rank = rest[open + 1..close].split(',').count();
            target = Some((name, rank));
            break;
        }
    }
    let Some((name, rank)) = target else {
        return unit.to_string(); // no distributed arrays: nothing to append
    };
    let subs = (0..rank).map(|_| "1:n").collect::<Vec<_>>().join(", ");
    let stmt = format!("{name}({subs}) = {}\n", 1 + rng.below(4));
    // Insert before the last `end` line.
    let mut lines: Vec<&str> = unit.split_inclusive('\n').collect();
    let end_at = lines
        .iter()
        .rposition(|l| {
            let t = l.trim_start();
            let w = t
                .bytes()
                .take_while(|b| b.is_ascii_alphanumeric() || *b == b'_')
                .count();
            t[..w].eq_ignore_ascii_case("end")
        })
        .expect("every unit ends with an end line");
    let mut out = String::with_capacity(unit.len() + stmt.len());
    for l in lines.drain(..end_at) {
        out.push_str(l);
    }
    out.push_str(&stmt);
    for l in lines {
        out.push_str(l);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        for seed in 0..20 {
            assert_eq!(generate(seed), generate(seed), "seed {seed}");
        }
    }

    #[test]
    fn seeds_vary() {
        // Not all seeds may differ pairwise, but a run of 10 must not
        // collapse to one program.
        let distinct: std::collections::HashSet<String> = (0..10).map(generate).collect();
        assert!(distinct.len() > 1);
    }

    #[test]
    fn programs_have_the_expected_skeleton() {
        for seed in 0..50 {
            let p = generate(seed);
            assert!(p.starts_with(&format!("program fuzz{seed}\n")), "{p}");
            assert!(p.contains("param n, nsteps"), "{p}");
            assert!(p.contains("distribute"), "{p}");
            assert!(p.trim_end().ends_with("end"), "{p}");
        }
    }

    #[test]
    fn modules_concatenate_distinct_routines() {
        let m = generate_module(7, 4);
        let units = split_units(&m);
        assert_eq!(units.len(), 4);
        assert_eq!(units.concat(), m);
        let names: std::collections::HashSet<&str> = m
            .lines()
            .filter_map(|l| l.strip_prefix("program "))
            .collect();
        assert_eq!(names.len(), 4, "routine names are distinct");
    }

    #[test]
    fn edits_are_deterministic_and_touch_one_routine() {
        let m = generate_module(11, 3);
        for seed in 0..40 {
            let (e1, i1) = apply_edit(&m, seed);
            let (e2, i2) = apply_edit(&m, seed);
            assert_eq!((e1.clone(), i1), (e2, i2), "seed {seed}");
            assert_ne!(e1, m, "seed {seed}: an edit must change the text");
            let before = split_units(&m);
            let after = split_units(&e1);
            if i1.kind == EditKind::DeleteRoutine {
                assert_eq!(after.len(), before.len() - 1);
                continue;
            }
            assert_eq!(after.len(), before.len());
            for (j, (b, a)) in before.iter().zip(&after).enumerate() {
                if j == i1.routine {
                    assert_ne!(b, a, "seed {seed}: routine {j} must change");
                } else {
                    assert_eq!(b, a, "seed {seed}: routine {j} must not change");
                }
            }
        }
    }

    #[test]
    fn single_routine_modules_never_delete() {
        let m = generate(3);
        for seed in 0..20 {
            let (e, info) = apply_edit(&m, seed);
            assert_ne!(info.kind, EditKind::DeleteRoutine);
            assert_eq!(split_units(&e).len(), 1);
        }
    }
}
