//! Minimal offline stand-in for the `proptest` crate.
//!
//! The workspace's property tests were written against the real
//! [`proptest`](https://crates.io/crates/proptest) API, but this build
//! environment has no network access to crates.io, so this vendored shim
//! implements exactly the API surface the tests use:
//!
//! * [`Strategy`](strategy::Strategy) with `prop_map`, `prop_flat_map`,
//!   `prop_recursive`, and `boxed`,
//! * range strategies for the integer types and `f64`, tuple strategies up
//!   to arity 8, [`Just`](strategy::Just), weighted [`prop_oneof!`],
//! * `prop::collection::vec`, `prop::sample::select`, `prop::option::of`,
//! * the [`proptest!`] test macro with `#![proptest_config(..)]`,
//!   [`prop_assert!`], and [`prop_assert_eq!`].
//!
//! Differences from the real crate: generation is driven by a fixed-seed
//! deterministic RNG keyed on the test name (every run explores the same
//! cases), and there is **no shrinking** — a failing case reports the
//! generated input verbatim. `proptest-regressions` files are ignored.

pub mod hpf;

pub mod test_runner {
    use std::fmt;

    /// Deterministic 64-bit generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator from a seed.
        pub fn new(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; returns 0 when `n == 0`.
        pub fn below(&mut self, n: u64) -> u64 {
            if n == 0 {
                0
            } else {
                self.next_u64() % n
            }
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Per-test configuration (only `cases` is honoured by the shim).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A property failure raised by `prop_assert!` and friends.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        /// Human-readable failure description.
        pub message: String,
    }

    impl TestCaseError {
        /// Builds a failure with a message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "{}", self.message)
        }
    }

    /// Result type of a property body.
    pub type TestCaseResult = Result<(), TestCaseError>;

    fn fnv1a(s: &str) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Runs `config.cases` generated cases of `body` over `strategy`,
    /// panicking (like `#[test]` expects) on the first failing case.
    pub fn run_cases<S, F>(config: &ProptestConfig, test_name: &str, strategy: &S, body: F)
    where
        S: crate::strategy::Strategy,
        S::Value: fmt::Debug,
        F: Fn(S::Value) -> TestCaseResult,
    {
        let mut rng = TestRng::new(fnv1a(test_name));
        for case in 0..config.cases {
            let value = strategy.gen_value(&mut rng);
            let mut shown = format!("{value:?}");
            if shown.len() > 4096 {
                let mut cut = 4096;
                while !shown.is_char_boundary(cut) {
                    cut -= 1;
                }
                shown.truncate(cut);
                shown.push('…');
            }
            if let Err(e) = body(value) {
                panic!(
                    "property `{test_name}` failed at case {case}/{}: {e}\n  input: {shown}",
                    config.cases
                );
            }
        }
    }
}

pub mod strategy {
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    use crate::test_runner::TestRng;

    /// A generator of values (the shim's notion of a proptest strategy).
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> BoxedStrategy<U>
        where
            Self: Sized + 'static,
            U: 'static,
            F: Fn(Self::Value) -> U + 'static,
        {
            BoxedStrategy::new(move |rng| f(self.gen_value(rng)))
        }

        /// Generates a value, then generates from the strategy it selects.
        fn prop_flat_map<U, S2, F>(self, f: F) -> BoxedStrategy<U>
        where
            Self: Sized + 'static,
            U: 'static,
            S2: Strategy<Value = U>,
            F: Fn(Self::Value) -> S2 + 'static,
        {
            BoxedStrategy::new(move |rng| f(self.gen_value(rng)).gen_value(rng))
        }

        /// Keeps only values satisfying `pred` (bounded retries; falls back
        /// to the last draw if none satisfies it).
        fn prop_filter<F>(self, _reason: &'static str, pred: F) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            F: Fn(&Self::Value) -> bool + 'static,
        {
            BoxedStrategy::new(move |rng| {
                let mut v = self.gen_value(rng);
                for _ in 0..64 {
                    if pred(&v) {
                        break;
                    }
                    v = self.gen_value(rng);
                }
                v
            })
        }

        /// Erases the strategy type (cheaply clonable).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            BoxedStrategy::new(move |rng| self.gen_value(rng))
        }

        /// Builds a recursive strategy: `self` is the leaf case and `f`
        /// wraps an inner strategy into the recursive case. `depth` bounds
        /// the nesting; the size hints of the real API are accepted and
        /// ignored.
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2,
        {
            let mut cur = self.boxed();
            for _ in 0..depth {
                // Mix the shallower strategy back in so leaves appear at
                // every level, not only at maximum depth.
                cur = one_of(vec![(1, cur.clone()), (2, f(cur).boxed())]);
            }
            cur
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T> {
        gen: Rc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> BoxedStrategy<T> {
        /// Wraps a generation function.
        pub fn new(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
            BoxedStrategy { gen: Rc::new(f) }
        }
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                gen: Rc::clone(&self.gen),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            (self.gen)(rng)
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn gen_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as i128 - self.start as i128).max(1) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    let span = (*self.end() as i128 - *self.start() as i128 + 1).max(1) as u64;
                    (*self.start() as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategies!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn gen_value(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategies {
        ($(($($s:ident $v:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($v,)+) = self;
                    ($($v.gen_value(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A a)
        (A a, B b)
        (A a, B b, C c)
        (A a, B b, C c, D d)
        (A a, B b, C c, D d, E e)
        (A a, B b, C c, D d, E e, F f)
        (A a, B b, C c, D d, E e, F f, G g)
        (A a, B b, C c, D d, E e, F f, G g, H h)
    }

    /// Weighted choice over boxed strategies (backs [`prop_oneof!`]).
    pub fn one_of<T: 'static>(choices: Vec<(u32, BoxedStrategy<T>)>) -> BoxedStrategy<T> {
        assert!(
            !choices.is_empty(),
            "prop_oneof! needs at least one strategy"
        );
        let total: u64 = choices.iter().map(|&(w, _)| w as u64).sum();
        BoxedStrategy::new(move |rng| {
            let mut x = rng.below(total.max(1));
            for (w, s) in &choices {
                if x < *w as u64 {
                    return s.gen_value(rng);
                }
                x -= *w as u64;
            }
            choices[choices.len() - 1].1.gen_value(rng)
        })
    }
}

pub mod arbitrary {
    use crate::strategy::BoxedStrategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arbitrary_ints {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_ints!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.next_f64()
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            // Bias toward ASCII (the interesting range for text inputs),
            // with occasional arbitrary scalar values.
            if rng.below(4) > 0 {
                (rng.below(0x80) as u8) as char
            } else {
                char::from_u32(rng.below(0x11_0000) as u32).unwrap_or('\u{FFFD}')
            }
        }
    }

    /// The canonical strategy of `T`.
    pub fn any<T: Arbitrary + 'static>() -> BoxedStrategy<T> {
        BoxedStrategy::new(|rng| T::arbitrary(rng))
    }
}

/// The `prop::` combinator namespace (`prop::collection::vec`, …).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::{BoxedStrategy, Strategy};

        /// Inclusive size bounds of a generated collection.
        pub trait SizeRange {
            /// `(min, max)` inclusive.
            fn size_bounds(&self) -> (usize, usize);
        }

        impl SizeRange for std::ops::Range<usize> {
            fn size_bounds(&self) -> (usize, usize) {
                (self.start, self.end.saturating_sub(1).max(self.start))
            }
        }

        impl SizeRange for std::ops::RangeInclusive<usize> {
            fn size_bounds(&self) -> (usize, usize) {
                (*self.start(), *self.end())
            }
        }

        impl SizeRange for usize {
            fn size_bounds(&self) -> (usize, usize) {
                (*self, *self)
            }
        }

        /// A vector of `size` elements drawn from `elem`.
        pub fn vec<S>(elem: S, size: impl SizeRange) -> BoxedStrategy<Vec<S::Value>>
        where
            S: Strategy + 'static,
            S::Value: 'static,
        {
            let (lo, hi) = size.size_bounds();
            BoxedStrategy::new(move |rng| {
                let n = lo + rng.below((hi - lo + 1) as u64) as usize;
                (0..n).map(|_| elem.gen_value(rng)).collect()
            })
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use crate::strategy::BoxedStrategy;

        /// Uniform choice from a fixed list.
        pub fn select<T: Clone + 'static>(items: Vec<T>) -> BoxedStrategy<T> {
            assert!(!items.is_empty(), "select needs at least one item");
            BoxedStrategy::new(move |rng| items[rng.below(items.len() as u64) as usize].clone())
        }
    }

    /// `Option` strategies.
    pub mod option {
        use crate::strategy::{BoxedStrategy, Strategy};

        /// `Some` three times out of four, `None` otherwise.
        pub fn of<S>(inner: S) -> BoxedStrategy<Option<S::Value>>
        where
            S: Strategy + 'static,
            S::Value: 'static,
        {
            BoxedStrategy::new(move |rng| {
                if rng.below(4) < 3 {
                    Some(inner.gen_value(rng))
                } else {
                    None
                }
            })
        }
    }
}

/// Declares property tests. Mirrors the real `proptest!` macro for the
/// forms used in this workspace.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                let __strategy = ($($strat,)+);
                $crate::test_runner::run_cases(
                    &__config,
                    stringify!($name),
                    &__strategy,
                    |($($arg,)+)| {
                        $body
                        Ok(())
                    },
                );
            }
        )*
    };
}

/// Fails the enclosing property when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $fmt:expr $(, $args:expr)* $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($fmt $(, $args)*),
            ));
        }
    };
}

/// Fails the enclosing property when the operands differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $fmt:expr $(, $args:expr)* $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            concat!($fmt, "\n  left: `{:?}`\n right: `{:?}`")
            $(, $args)*, __l, __r
        );
    }};
}

/// Weighted (or unweighted) choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::one_of(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::one_of(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::new(1);
        for _ in 0..200 {
            let v = (-3i64..5).gen_value(&mut rng);
            assert!((-3..5).contains(&v));
            let w = (2usize..=4).gen_value(&mut rng);
            assert!((2..=4).contains(&w));
            let f = (0.5f64..8.0).gen_value(&mut rng);
            assert!((0.5..8.0).contains(&f));
        }
    }

    #[test]
    fn determinism_same_seed_same_values() {
        let strat = prop::collection::vec((0i64..100, any::<bool>()), 1..8);
        let mut a = crate::test_runner::TestRng::new(7);
        let mut b = crate::test_runner::TestRng::new(7);
        for _ in 0..50 {
            assert_eq!(strat.gen_value(&mut a), strat.gen_value(&mut b));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_roundtrip(v in prop::collection::vec(0i64..10, 0..5), b in any::<bool>()) {
            prop_assert!(v.len() < 5);
            prop_assert_eq!(b, b);
            for x in &v {
                prop_assert!((0..10).contains(x), "{} out of range", x);
            }
        }
    }
}
