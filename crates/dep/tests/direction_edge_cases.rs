//! Edge cases of the direction-vector analysis: GCD infeasibility, unknown
//! symbolic distances, multi-induction subscripts, and stride phases.

use gcomm_dep::{DepTest, Dir};
use gcomm_ir::{AccessRef, IrProgram, StmtId, StmtKind};

fn prog(src: &str) -> IrProgram {
    gcomm_ir::lower(&gcomm_lang::parse_program(src).unwrap()).unwrap()
}

fn def_use(p: &IrProgram, d: StmtId, u: StmtId, r: usize) -> (AccessRef, AccessRef) {
    let dacc = p.stmt(d).kind.def().unwrap().clone();
    let uacc = match &p.stmt(u).kind {
        StmtKind::Assign { reads, .. } => reads[r].access.clone(),
        StmtKind::Cond { reads } => reads[r].access.clone(),
    };
    (dacc, uacc)
}

#[test]
fn gcd_infeasible_strides() {
    // Writes even positions 2i, reads odd positions 2i+1 within the same
    // dimension: 2δ = 1 has no integer solution.
    let p = prog(
        "
program t
param n
real a(n + n, n) distribute (block,block)
do i = 1, n
  a(2 * i, 1) = a(2 * i + 1, 1) * 0.5
enddo
end",
    );
    let t = DepTest::new(&p);
    let (d, u) = def_use(&p, StmtId(0), StmtId(0), 0);
    let res = t.analyze(StmtId(0), &d, StmtId(0), &u);
    assert!(!res.possible, "even writes cannot alias odd reads");
}

#[test]
fn symbolic_distance_is_conservative() {
    // Distance n is unknown at compile time: all directions stay possible.
    let p = prog(
        "
program t
param n
real a(3:n+n), c(3:n+n) distribute (block)
do i = 3, n
  a(i) = 1
  c(i) = a(i + n)
enddo
end",
    );
    let t = DepTest::new(&p);
    let (d, u) = def_use(&p, StmtId(0), StmtId(1), 0);
    let res = t.analyze(StmtId(0), &d, StmtId(1), &u);
    assert!(res.possible);
    for dir in [Dir::Neg, Dir::Zero, Dir::Pos] {
        assert!(
            res.allowed[0].contains(dir),
            "unknown distance keeps {dir:?}"
        );
    }
}

#[test]
fn coupled_subscript_gcd() {
    // a(2i + 4j) written, a(2i + 4j + 1) read: gcd(2,4) = 2 does not
    // divide 1 → no dependence.
    let p = prog(
        "
program t
param n
real a(9 * n) distribute (block)
real q(9 * n) distribute (block)
do i = 1, n
  do j = 1, n
    a(2 * i + 4 * j) = 1
    q(2 * i + 4 * j + 1) = a(2 * i + 4 * j + 1)
  enddo
enddo
end",
    );
    let t = DepTest::new(&p);
    let (d, u) = def_use(&p, StmtId(0), StmtId(1), 0);
    let res = t.analyze(StmtId(0), &d, StmtId(1), &u);
    assert!(!res.possible, "gcd test must rule the pair out");
}

#[test]
fn window_dependence_bounded_distance() {
    // a(i..i+2) written, a(i-5..i-3) read: the values flow forward
    // with carried distance 3..5 — strictly positive, no Zero/Neg.
    let p = prog(
        "
program t
param n
real a(n + 9) distribute (block)
real b(n + 9) distribute (block)
do i = 6, n
  a(i:i+2) = 1
  b(i) = a(i-5) + a(i-4) + a(i-3)
enddo
end",
    );
    let t = DepTest::new(&p);
    let dacc = p.stmt(StmtId(0)).kind.def().unwrap().clone();
    for r in 0..3 {
        let (_, uacc) = def_use(&p, StmtId(0), StmtId(1), r);
        let res = t.analyze(StmtId(0), &dacc, StmtId(1), &uacc);
        assert!(res.possible);
        assert!(res.allowed[0].contains(Dir::Pos));
        assert!(!res.allowed[0].contains(Dir::Zero), "distance >= 3");
        assert!(!res.allowed[0].contains(Dir::Neg));
    }
}

#[test]
fn dep_level_respects_outer_only_dependence() {
    // Inner loop j independent; outer loop i carries distance 1.
    let p = prog(
        "
program t
param n
real a(n,n) distribute (block,block)
do i = 2, n
  do j = 1, n
    a(i, j) = a(i-1, j)
  enddo
enddo
end",
    );
    let t = DepTest::new(&p);
    let (d, u) = def_use(&p, StmtId(0), StmtId(0), 0);
    assert_eq!(t.dep_level(StmtId(0), &d, StmtId(0), &u), 1);
    assert!(t.is_array_dep(StmtId(0), &d, StmtId(0), &u, 1));
    assert!(!t.is_array_dep(StmtId(0), &d, StmtId(0), &u, 2));
}

#[test]
fn inner_carried_dependence_at_level_two() {
    let p = prog(
        "
program t
param n
real a(n,n) distribute (block,block)
do i = 1, n
  do j = 2, n
    a(i, j) = a(i, j-1)
  enddo
enddo
end",
    );
    let t = DepTest::new(&p);
    let (d, u) = def_use(&p, StmtId(0), StmtId(0), 0);
    assert_eq!(t.dep_level(StmtId(0), &d, StmtId(0), &u), 2);
    // Level-2 carried needs (0, +): Zero allowed at level 1, Pos at 2.
    let res = t.analyze(StmtId(0), &d, StmtId(0), &u);
    assert!(res.allowed[0].contains(Dir::Zero));
    assert!(res.allowed[1].contains(Dir::Pos));
}

#[test]
fn different_arrays_never_tested_here_but_disjoint_cols() {
    // Same array, disjoint column blocks: no dependence even across the
    // timestep loop.
    let p = prog(
        "
program t
param n
real a(n, 9) distribute (block, *)
real b(n, 9) distribute (block, *)
do ts = 1, 10
  a(1:n, 1) = 1
  b(1:n, 1) = a(1:n, 2)
enddo
end",
    );
    let t = DepTest::new(&p);
    let (d, u) = def_use(&p, StmtId(0), StmtId(1), 0);
    let res = t.analyze(StmtId(0), &d, StmtId(1), &u);
    assert!(!res.possible, "columns 1 and 2 never overlap");
}

#[test]
fn negative_step_loop_directions() {
    // Backward loop writing a(i) and reading a(i+1): the read sees the
    // value written by the *previous* iteration (which had larger i) —
    // a forward-carried dependence in iteration order.
    let p = prog(
        "
program t
param n
real a(n + 1), c(n + 1) distribute (block)
do i = n, 1, -1
  a(i) = 1
  c(i) = a(i + 1)
enddo
end",
    );
    let t = DepTest::new(&p);
    let (d, u) = def_use(&p, StmtId(0), StmtId(1), 0);
    let res = t.analyze(StmtId(0), &d, StmtId(1), &u);
    assert!(res.possible);
    // In index space the distance is +1; widening and windows treat the
    // loop symmetrically, so at minimum the dependence is not missed.
    assert!(res.allowed[0].contains(Dir::Pos) || res.allowed[0].contains(Dir::Neg));
}
