//! # gcomm-dep — array dependence testing with direction vectors
//!
//! Implements the dependence machinery that `Latest(u)` (§4.2) and
//! `Earliest(u)` (§4.3) of *Global Communication Analysis and Optimization*
//! (PLDI 1996) are built on:
//!
//! * [`widen`] — *vectorization* of an access with respect to a loop-nest
//!   prefix: loop variables of the loops being summarized are eliminated by
//!   widening subscripts into sections over those loops' full iteration
//!   ranges (stride-aware). The same operation yields the section actually
//!   communicated when a message is hoisted out of loops.
//! * [`direction`] — direction-vector computation between a definition and
//!   a use: per-dimension SIV/window tests with exact integer interval
//!   reasoning, a GCD-style feasibility check, and symbolic (parameter)
//!   disjointness, combined conservatively across dimensions.
//! * [`DepTest`] — the paper's `IsArrayDep(d, u, l)` (Fig. 8d) and
//!   `DepLevel(d, u)` on top of the direction analysis.

pub mod direction;
pub mod widen;

pub use direction::{DepResult, Dir, DirSet};

use gcomm_ir::{AccessRef, IrProgram, StmtId};

/// Dependence tester bound to one program.
#[derive(Debug, Clone, Copy)]
pub struct DepTest<'a> {
    prog: &'a IrProgram,
}

impl<'a> DepTest<'a> {
    /// Creates a tester for `prog`.
    pub fn new(prog: &'a IrProgram) -> Self {
        DepTest { prog }
    }

    /// Full direction analysis between a definition access at `d_stmt` and a
    /// use access at `u_stmt`.
    pub fn analyze(
        &self,
        d_stmt: StmtId,
        d_acc: &AccessRef,
        u_stmt: StmtId,
        u_acc: &AccessRef,
    ) -> DepResult {
        let _t = gcomm_obs::time("dep.query");
        gcomm_obs::count("dep.queries", 1);
        direction::analyze(self.prog, d_stmt, d_acc, u_stmt, u_acc)
    }

    /// The paper's `IsArrayDep(d, u, l)` (Fig. 8d) for a *regular*
    /// definition: true when a direction vector `(0,…,0,+,…)` exists with
    /// the `+` at level `l`. The pseudo-definition at ENTRY is handled by
    /// the caller (it is always dependent).
    ///
    /// `l == 0` asks for a loop-independent dependence: all-zero directions
    /// with the definition textually preceding the use.
    pub fn is_array_dep(
        &self,
        d_stmt: StmtId,
        d_acc: &AccessRef,
        u_stmt: StmtId,
        u_acc: &AccessRef,
        l: u32,
    ) -> bool {
        let cnl = self.prog.cnl(d_stmt, u_stmt);
        if l > cnl {
            return false;
        }
        let res = self.analyze(d_stmt, d_acc, u_stmt, u_acc);
        if !res.possible {
            return false;
        }
        if l == 0 {
            // Loop-independent: all common levels zero and d before u.
            return res.allowed.iter().all(|s| s.contains(Dir::Zero)) && d_stmt < u_stmt;
        }
        let l = l as usize;
        res.allowed[..l - 1].iter().all(|s| s.contains(Dir::Zero))
            && res.allowed[l - 1].contains(Dir::Pos)
    }

    /// The paper's `DepLevel(d, u)`: the deepest loop level carrying a true
    /// dependence from the definition to the use (0 when none).
    pub fn dep_level(
        &self,
        d_stmt: StmtId,
        d_acc: &AccessRef,
        u_stmt: StmtId,
        u_acc: &AccessRef,
    ) -> u32 {
        let cnl = self.prog.cnl(d_stmt, u_stmt);
        (1..=cnl)
            .rev()
            .find(|&l| self.is_array_dep(d_stmt, d_acc, u_stmt, u_acc, l))
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcomm_ir::StmtKind;

    fn prog(src: &str) -> IrProgram {
        gcomm_ir::lower(&gcomm_lang::parse_program(src).unwrap()).unwrap()
    }

    fn def_use(p: &IrProgram, d: StmtId, u: StmtId, read: usize) -> (AccessRef, AccessRef) {
        let dacc = p.stmt(d).kind.def().unwrap().clone();
        let uacc = match &p.stmt(u).kind {
            StmtKind::Assign { reads, .. } => reads[read].access.clone(),
            StmtKind::Cond { reads } => reads[read].access.clone(),
        };
        (dacc, uacc)
    }

    #[test]
    fn carried_stencil_dependence() {
        // a(i,·) = a(i-1,·): flow dependence carried at level 1, distance 1.
        let p = prog(
            "
program t
param n
real a(n,n) distribute (block,block)
do i = 2, n
  a(i, 1:n) = a(i-1, 1:n)
enddo
end",
        );
        let t = DepTest::new(&p);
        let (d, u) = def_use(&p, StmtId(0), StmtId(0), 0);
        assert!(t.is_array_dep(StmtId(0), &d, StmtId(0), &u, 1));
        assert_eq!(t.dep_level(StmtId(0), &d, StmtId(0), &u), 1);
    }

    #[test]
    fn same_iteration_read_before_write_not_carried() {
        // use a(i,·) and later def a(i,·): only (=) direction; reading before
        // writing in the same iteration is an anti-dependence, not flow.
        let p = prog(
            "
program t
param n
real a(n,n), b(n,n) distribute (block,block)
do i = 1, n
  b(i, 1:n) = a(i, 1:n)
  a(i, 1:n) = b(i, 1:n)
enddo
end",
        );
        let t = DepTest::new(&p);
        // def of a is stmt 1, use of a in stmt 0.
        let dacc = p.stmt(StmtId(1)).kind.def().unwrap().clone();
        let (_, uacc) = def_use(&p, StmtId(1), StmtId(0), 0);
        assert!(
            !t.is_array_dep(StmtId(1), &dacc, StmtId(0), &uacc, 1),
            "distance 0 at level 1 is not a carried dependence"
        );
        assert_eq!(t.dep_level(StmtId(1), &dacc, StmtId(0), &uacc), 0);
    }

    #[test]
    fn timestep_carried_dependence_at_outer_level() {
        // Writes of slab i never reach reads of slab i within a timestep but
        // do across timesteps.
        let p = prog(
            "
program t
param n, nx
real g(nx,n,n) distribute (*,block,block)
real w(nx,n,n) distribute (*,block,block)
do ts = 1, 10
  do i = 2, nx
    w(i, 1:n, 1:n) = g(i, 1:n, 1:n)
    g(i, 1:n, 1:n) = w(i, 1:n, 1:n)
  enddo
enddo
end",
        );
        let t = DepTest::new(&p);
        let dacc = p.stmt(StmtId(1)).kind.def().unwrap().clone();
        let (_, uacc) = def_use(&p, StmtId(1), StmtId(0), 0);
        // Carried at level 1 (timestep), not level 2 (slab loop).
        assert!(t.is_array_dep(StmtId(1), &dacc, StmtId(0), &uacc, 1));
        assert!(!t.is_array_dep(StmtId(1), &dacc, StmtId(0), &uacc, 2));
        assert_eq!(t.dep_level(StmtId(1), &dacc, StmtId(0), &uacc), 1);
    }

    #[test]
    fn loop_independent_dependence() {
        let p = prog(
            "
program t
param n
real a(n), c(n) distribute (block)
a(1:n) = 1
c(2:n) = a(1:n-1)
end",
        );
        let t = DepTest::new(&p);
        let (d, u) = def_use(&p, StmtId(0), StmtId(1), 0);
        assert!(t.is_array_dep(StmtId(0), &d, StmtId(1), &u, 0));
        assert_eq!(t.dep_level(StmtId(0), &d, StmtId(1), &u), 0);
    }

    #[test]
    fn disjoint_sections_no_dependence() {
        let p = prog(
            "
program t
param n
real b(n,n), c(n,n) distribute (block,block)
do i = 1, n
  b(i, 1:n:2) = 1
  c(i, 1:n) = b(i, 2:n:2)
enddo
end",
        );
        let t = DepTest::new(&p);
        let (d, u) = def_use(&p, StmtId(0), StmtId(1), 0);
        // Odd columns written, even columns read: provably disjoint.
        let res = t.analyze(StmtId(0), &d, StmtId(1), &u);
        assert!(!res.possible);
        assert_eq!(t.dep_level(StmtId(0), &d, StmtId(1), &u), 0);
    }

    #[test]
    fn distance_two_dependence_direction() {
        let p = prog(
            "
program t
param n
real a(n,n) distribute (block,block)
do i = 3, n
  a(i, 1:n) = a(i-2, 1:n)
enddo
end",
        );
        let t = DepTest::new(&p);
        let (d, u) = def_use(&p, StmtId(0), StmtId(0), 0);
        let res = t.analyze(StmtId(0), &d, StmtId(0), &u);
        assert!(res.possible);
        assert!(res.allowed[0].contains(Dir::Pos));
        assert!(!res.allowed[0].contains(Dir::Zero));
        assert!(!res.allowed[0].contains(Dir::Neg));
    }

    #[test]
    fn reverse_offset_gives_negative_direction_only() {
        // a(i,·) = a(i+1,·): the def at iteration i can only affect reads at
        // earlier iterations (Neg) — no flow dependence carried forward.
        let p = prog(
            "
program t
param n
real a(n,n) distribute (block,block)
do i = 1, n - 1
  a(i, 1:n) = a(i+1, 1:n)
enddo
end",
        );
        let t = DepTest::new(&p);
        let (d, u) = def_use(&p, StmtId(0), StmtId(0), 0);
        let res = t.analyze(StmtId(0), &d, StmtId(0), &u);
        assert!(res.possible);
        assert!(res.allowed[0].contains(Dir::Neg));
        assert!(!res.allowed[0].contains(Dir::Pos));
        assert_eq!(t.dep_level(StmtId(0), &d, StmtId(0), &u), 0);
    }

    #[test]
    fn whole_array_def_conservative_at_outer_loop() {
        let p = prog(
            "
program t
param n
real a(n,n), b(n,n) distribute (block,block)
do ts = 1, 10
  a(:, :) = b(:, :)
  b(:, :) = a(:, :)
enddo
end",
        );
        let t = DepTest::new(&p);
        let (d, u) = def_use(&p, StmtId(0), StmtId(1), 0);
        // def a(:,:) at ts, use a(:,:) at ts' >= ts: both carried and
        // loop-independent dependences exist.
        assert!(t.is_array_dep(StmtId(0), &d, StmtId(1), &u, 1));
        assert!(t.is_array_dep(StmtId(0), &d, StmtId(1), &u, 0));
        assert_eq!(t.dep_level(StmtId(0), &d, StmtId(1), &u), 1);
    }
}
