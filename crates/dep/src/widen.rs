//! Access widening ("vectorization") with respect to a loop prefix.
//!
//! Given an access made inside a loop nest and a prefix of that nest to
//! *keep*, widening eliminates the variables of all other loops by expanding
//! subscripts over those loops' full iteration ranges. The result is the
//! array section touched by the access across all summarized iterations —
//! exactly the section a message communicates when the communication is
//! hoisted outside those loops.
//!
//! Widening is a superset approximation: strides are preserved for
//! single-variable unit-coefficient subscripts (so `b(i-1, j)` inside
//! `do j = 1, n, 2` widens to `b(i-1, 1:n:2)`), and bounds substitution
//! extends ranges monotonically otherwise.

use gcomm_ir::{AccessRef, Affine, IrProgram, LoopId, SubscriptIr, Var};
use gcomm_sections::{DimSect, Section};

/// Widens `acc` (made at a statement whose loop chain is `chain`) so that
/// only variables of `chain[..keep_level]` remain; all deeper or sibling
/// loop variables are expanded over their iteration ranges.
pub fn widen_access(
    prog: &IrProgram,
    acc: &AccessRef,
    chain: &[LoopId],
    keep_level: u32,
) -> Section {
    let keep: Vec<LoopId> = chain[..(keep_level as usize).min(chain.len())].to_vec();
    let dims = acc.subs.iter().map(|s| widen_sub(prog, s, &keep)).collect();
    Section::new(dims)
}

/// Widens every subscript of `acc` over the full nest (no loops kept).
pub fn widen_fully(prog: &IrProgram, acc: &AccessRef, chain: &[LoopId]) -> Section {
    widen_access(prog, acc, chain, 0)
}

/// Budgeted [`widen_access`]: charges steps proportional to the work
/// (one per subscript per eliminated loop) and notes the transient memory
/// of the produced section, so widening-heavy programs exhaust a compile
/// budget like any other super-linear analysis. The *result* is never
/// degraded — widening is already a bounded superset approximation, and a
/// wrong section (unlike a skipped optimization) could be illegal — so
/// exhaustion here only makes the *passes* above degrade sooner.
pub fn widen_access_within(
    prog: &IrProgram,
    acc: &AccessRef,
    chain: &[LoopId],
    keep_level: u32,
    budget: &gcomm_guard::Budget,
) -> Section {
    let eliminated = chain.len().saturating_sub(keep_level as usize).max(1);
    budget.charge((acc.subs.len() * eliminated) as u64);
    let s = widen_access(prog, acc, chain, keep_level);
    // Rough transient footprint: each dimension holds two affine bounds.
    budget.note_mem(s.rank() as u64 * 64);
    s
}

fn widen_sub(prog: &IrProgram, sub: &SubscriptIr, keep: &[LoopId]) -> DimSect {
    match sub {
        SubscriptIr::NonAffine => DimSect::Any,
        SubscriptIr::Elem(e) => widen_elem(prog, e, keep),
        SubscriptIr::Range { lo, hi, step } => widen_range(prog, lo, hi, *step, keep),
    }
}

/// Variables to eliminate: loop vars not in `keep`.
fn bad_vars(e: &Affine, keep: &[LoopId]) -> Vec<(LoopId, i64)> {
    e.terms()
        .iter()
        .filter_map(|&(v, c)| match v {
            Var::Loop(l) if !keep.contains(&l) => Some((l, c)),
            _ => None,
        })
        .collect()
}

/// Substitutes eliminated loop vars in a *bound* expression, choosing the
/// loop bound that pushes the expression toward `minimize` (down) or up.
fn saturate_bound(prog: &IrProgram, e: &Affine, keep: &[LoopId], minimize: bool) -> Option<Affine> {
    let mut cur = e.clone();
    for _ in 0..16 {
        let bad = bad_vars(&cur, keep);
        let Some(&(l, c)) = bad.first() else {
            return Some(cur);
        };
        let li = prog.loop_info(l);
        // Iteration range of the loop: between lo and hi regardless of step
        // sign (for negative steps the loop runs hi..lo conceptually; the set
        // of iterates is within [min(lo,hi), max(lo,hi)]).
        let (vmin, vmax) = if li.step > 0 {
            (&li.lo, &li.hi)
        } else {
            (&li.hi, &li.lo)
        };
        let pick = if (c > 0) == minimize { vmin } else { vmax };
        cur = cur.subst(Var::Loop(l), pick);
    }
    None
}

fn widen_elem(prog: &IrProgram, e: &Affine, keep: &[LoopId]) -> DimSect {
    let bad = bad_vars(e, keep);
    if bad.is_empty() {
        return DimSect::Elem(e.clone());
    }
    // Stride preservation: single eliminated variable whose loop bounds are
    // already clean (no further eliminated vars).
    if bad.len() == 1 {
        let (l, c) = bad[0];
        let li = prog.loop_info(l);
        let bounds_clean = bad_vars(&li.lo, keep).is_empty() && bad_vars(&li.hi, keep).is_empty();
        if bounds_clean {
            let (vmin, vmax) = if li.step > 0 {
                (&li.lo, &li.hi)
            } else {
                (&li.hi, &li.lo)
            };
            let (lo, hi) = if c > 0 {
                (e.subst(Var::Loop(l), vmin), e.subst(Var::Loop(l), vmax))
            } else {
                (e.subst(Var::Loop(l), vmax), e.subst(Var::Loop(l), vmin))
            };
            let stride = (c * li.step).unsigned_abs() as i64;
            return DimSect::Range {
                lo,
                hi,
                step: stride.max(1),
            };
        }
    }
    // General case: saturate both directions, densify.
    match (
        saturate_bound(prog, e, keep, true),
        saturate_bound(prog, e, keep, false),
    ) {
        (Some(lo), Some(hi)) => DimSect::Range { lo, hi, step: 1 },
        _ => DimSect::Any,
    }
}

fn widen_range(prog: &IrProgram, lo: &Affine, hi: &Affine, step: i64, keep: &[LoopId]) -> DimSect {
    let lo_clean = bad_vars(lo, keep).is_empty();
    let hi_clean = bad_vars(hi, keep).is_empty();
    if lo_clean && hi_clean {
        return DimSect::Range {
            lo: lo.clone(),
            hi: hi.clone(),
            step,
        };
    }
    match (
        saturate_bound(prog, lo, keep, true),
        saturate_bound(prog, hi, keep, false),
    ) {
        // A moving window loses stride alignment guarantees; keep the stride
        // only if the window moves by multiples of it (conservative: same
        // eliminated variable with coefficient divisible by step in both
        // bounds would be required — densify instead).
        (Some(l), Some(h)) => DimSect::Range {
            lo: l,
            hi: h,
            step: 1,
        },
        _ => DimSect::Any,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcomm_ir::{StmtId, StmtKind};
    use gcomm_sections::SymCtx;

    fn prog(src: &str) -> IrProgram {
        gcomm_ir::lower(&gcomm_lang::parse_program(src).unwrap()).unwrap()
    }

    fn read_acc(p: &IrProgram, s: StmtId, i: usize) -> AccessRef {
        match &p.stmt(s).kind {
            StmtKind::Assign { reads, .. } => reads[i].access.clone(),
            StmtKind::Cond { reads } => reads[i].access.clone(),
        }
    }

    #[test]
    fn widen_unit_stencil_over_loop() {
        let p = prog(
            "
program t
param n
real a(n,n) distribute (block,block)
do i = 2, n
  a(i, 1:n) = a(i-1, 1:n)
enddo
end",
        );
        let acc = read_acc(&p, StmtId(0), 0);
        let chain = p.stmt_loop_chain(StmtId(0));
        let s = widen_access(&p, &acc, &chain, 0);
        // a(i-1, ·) over i = 2..n widens to rows 1..n-1.
        match &s.dims[0] {
            DimSect::Range { lo, hi, step } => {
                assert_eq!(lo.as_const(), Some(1));
                assert_eq!(*step, 1);
                assert!(hi.to_string().contains("p0"));
                assert_eq!(hi.k, -1);
            }
            other => panic!("expected range, got {other:?}"),
        }
    }

    #[test]
    fn widen_preserves_kept_loop_vars() {
        let p = prog(
            "
program t
param n
real a(n,n) distribute (block,block)
do t1 = 1, 8
  do i = 2, n
    a(i, 1:n) = a(i-1, 1:n)
  enddo
enddo
end",
        );
        let acc = read_acc(&p, StmtId(0), 0);
        let chain = p.stmt_loop_chain(StmtId(0));
        // Keep the timestep loop (level 1), widen the i loop only.
        let s = widen_access(&p, &acc, &chain, 1);
        match &s.dims[0] {
            DimSect::Range { lo, .. } => assert!(!lo.has_loop_vars()),
            other => panic!("{other:?}"),
        }
        // Keeping both loops leaves the element subscript intact.
        let s2 = widen_access(&p, &acc, &chain, 2);
        assert!(matches!(&s2.dims[0], DimSect::Elem(e) if e.has_loop_vars()));
    }

    #[test]
    fn widen_keeps_stride_of_strided_loop() {
        let p = prog(
            "
program t
param n
real b(n,n), c(n,n) distribute (block,block)
do i = 2, n
  do j = 1, n, 2
    c(i, j) = b(i - 1, j)
  enddo
enddo
end",
        );
        let acc = read_acc(&p, StmtId(0), 0);
        let chain = p.stmt_loop_chain(StmtId(0));
        let s = widen_access(&p, &acc, &chain, 1); // widen j, keep i
        match &s.dims[1] {
            DimSect::Range { lo, hi, step } => {
                assert_eq!(lo.as_const(), Some(1));
                assert_eq!(*step, 2, "odd columns only");
                assert!(!hi.has_loop_vars());
            }
            other => panic!("expected strided range, got {other:?}"),
        }
        // And the strided widening is a subset of the dense one.
        let dense = DimSect::Range {
            lo: Affine::constant(1),
            hi: s.dims[1].hi().unwrap().clone(),
            step: 1,
        };
        assert!(s.dims[1].subset_of(&dense, &SymCtx::default()));
    }

    #[test]
    fn widen_negative_coefficient() {
        let p = prog(
            "
program t
param n
real a(n,n) distribute (block,block)
do i = 1, n
  a(i, 1) = a(n - i + 1, 1)
enddo
end",
        );
        let acc = read_acc(&p, StmtId(0), 0);
        let chain = p.stmt_loop_chain(StmtId(0));
        let s = widen_access(&p, &acc, &chain, 0);
        match &s.dims[0] {
            DimSect::Range { lo, hi, .. } => {
                // n - i + 1 over i = 1..n: range 1..n.
                assert_eq!(lo.as_const(), Some(1));
                assert_eq!(hi.k, 0);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn widen_triangular_bounds_through_outer_var() {
        // Inner loop bound depends on the outer var; widening both must
        // saturate through the chain.
        let p = prog(
            "
program t
param n
real a(n,n) distribute (block,block)
do i = 1, n
  do j = 1, i
    a(i, j) = 0
  enddo
enddo
end",
        );
        let lhs = p.stmt(StmtId(0)).kind.def().unwrap().clone();
        let chain = p.stmt_loop_chain(StmtId(0));
        let s = widen_access(&p, &lhs, &chain, 0);
        match &s.dims[1] {
            DimSect::Range { lo, hi, .. } => {
                assert_eq!(lo.as_const(), Some(1));
                // j ≤ i ≤ n.
                assert!(!hi.has_loop_vars());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn widen_nonaffine_is_any() {
        let p = prog(
            "
program t
param n
real a(n,n), q(n,n) distribute (block,block)
do i = 1, n
  do j = 1, n
    a(i, j) = q(i * j, j)
  enddo
enddo
end",
        );
        let acc = read_acc(&p, StmtId(0), 0);
        let chain = p.stmt_loop_chain(StmtId(0));
        let s = widen_access(&p, &acc, &chain, 0);
        assert!(matches!(s.dims[0], DimSect::Any));
    }
}
