//! Direction-vector computation between a definition and a use.
//!
//! For every loop common to the definition and the use, the analysis
//! computes the set of possible dependence directions
//! (`Neg`/`Zero`/`Pos`, where `Pos` means the definition's iteration
//! precedes the use's — a forward-carried dependence). Per-dimension
//! subscript constraints are intersected conservatively across dimensions.

use gcomm_ir::{AccessRef, Affine, IrProgram, LoopId, StmtId, Var};
use gcomm_sections::{DimSect, SymCtx};

use crate::widen::widen_access;

/// A dependence direction at one loop level, for a definition→use pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dir {
    /// The use's iteration precedes the definition's (`>` in vector
    /// notation): an anti direction for flow dependence.
    Neg,
    /// Same iteration (`=`).
    Zero,
    /// The definition's iteration precedes the use's (`<`): a carried flow
    /// dependence.
    Pos,
}

/// A set of possible directions at one loop level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DirSet(u8);

impl DirSet {
    /// The empty set (dependence impossible at this level).
    pub const EMPTY: DirSet = DirSet(0);
    /// All three directions possible.
    pub const ALL: DirSet = DirSet(0b111);

    fn bit(d: Dir) -> u8 {
        match d {
            Dir::Neg => 0b001,
            Dir::Zero => 0b010,
            Dir::Pos => 0b100,
        }
    }

    /// A singleton set.
    pub fn only(d: Dir) -> DirSet {
        DirSet(Self::bit(d))
    }

    /// Builds from membership flags.
    pub fn from_flags(neg: bool, zero: bool, pos: bool) -> DirSet {
        DirSet((neg as u8) | ((zero as u8) << 1) | ((pos as u8) << 2))
    }

    /// Membership test.
    pub fn contains(&self, d: Dir) -> bool {
        self.0 & Self::bit(d) != 0
    }

    /// Intersection.
    pub fn intersect(&self, other: DirSet) -> DirSet {
        DirSet(self.0 & other.0)
    }

    /// True if no direction is possible.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }
}

/// The outcome of a direction analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DepResult {
    /// False when the accesses provably never touch the same element.
    pub possible: bool,
    /// Per common-loop-level allowed directions (length = CNL). Meaningless
    /// when `possible` is false.
    pub allowed: Vec<DirSet>,
}

impl DepResult {
    /// A result with no dependence.
    pub fn none(levels: usize) -> Self {
        DepResult {
            possible: false,
            allowed: vec![DirSet::EMPTY; levels],
        }
    }
}

/// Runs the direction analysis between `d_acc` (written at `d_stmt`) and
/// `u_acc` (read at `u_stmt`).
pub fn analyze(
    prog: &IrProgram,
    d_stmt: StmtId,
    d_acc: &AccessRef,
    u_stmt: StmtId,
    u_acc: &AccessRef,
) -> DepResult {
    let ctx = SymCtx::default();
    let d_chain = prog.stmt_loop_chain(d_stmt);
    let u_chain = prog.stmt_loop_chain(u_stmt);
    let common: Vec<LoopId> = d_chain
        .iter()
        .zip(u_chain.iter())
        .take_while(|(a, b)| a == b)
        .map(|(a, _)| *a)
        .collect();
    let cnl = common.len();

    // Widen both accesses down to the common nest: deeper loop variables are
    // expanded to their ranges, so only common-loop variables remain.
    let d_sect = widen_access(prog, d_acc, &d_chain, cnl as u32);
    let u_sect = widen_access(prog, u_acc, &u_chain, cnl as u32);

    let mut allowed = vec![DirSet::ALL; cnl];
    for (dd, ud) in d_sect.dims.iter().zip(u_sect.dims.iter()) {
        match dim_constraint(dd, ud, &common, &ctx) {
            DimOutcome::Impossible => return DepResult::none(cnl),
            DimOutcome::Unconstrained => {}
            DimOutcome::Level(k, set) => {
                allowed[k] = allowed[k].intersect(set);
                if allowed[k].is_empty() {
                    return DepResult::none(cnl);
                }
            }
        }
    }
    // Directions are computed in *index* space; for negative-step loops the
    // iteration order is reversed, so a refined direction set would have to
    // be mirrored. Stay conservative instead: any refinement at a
    // negative-step level widens back to all directions (overlap was
    // established; only ordering is uncertain).
    for (k, &l) in common.iter().enumerate() {
        if prog.loop_info(l).step < 0 && !allowed[k].is_empty() {
            allowed[k] = DirSet::ALL;
        }
    }
    DepResult {
        possible: true,
        allowed,
    }
}

enum DimOutcome {
    /// The dimension can never match: no dependence at all.
    Impossible,
    /// No usable constraint from this dimension.
    Unconstrained,
    /// Direction constraint for common loop index `k` (0-based level-1).
    Level(usize, DirSet),
}

/// A window `lin(loops) + [lo_rest, hi_rest]` with parameter-only rests.
struct Window {
    coefs: Vec<i64>,
    lo_rest: Affine,
    hi_rest: Affine,
}

fn strip_loops(e: &Affine, common: &[LoopId]) -> Option<(Vec<i64>, Affine)> {
    let mut coefs = vec![0i64; common.len()];
    let mut rest = e.clone();
    for (k, &l) in common.iter().enumerate() {
        let c = e.coeff(Var::Loop(l));
        if c != 0 {
            coefs[k] = c;
            rest = rest.sub(&Affine::new(0, [(Var::Loop(l), c)]));
        }
    }
    // Any other surviving loop variable defeats the window analysis.
    if rest.has_loop_vars() {
        return None;
    }
    Some((coefs, rest))
}

fn window_of(d: &DimSect, common: &[LoopId]) -> Option<Window> {
    match d {
        DimSect::Any => None,
        DimSect::Elem(e) => {
            let (coefs, rest) = strip_loops(e, common)?;
            Some(Window {
                coefs,
                lo_rest: rest.clone(),
                hi_rest: rest,
            })
        }
        DimSect::Range { lo, hi, .. } => {
            let (clo, rlo) = strip_loops(lo, common)?;
            let (chi, rhi) = strip_loops(hi, common)?;
            if clo != chi {
                return None; // triangular window: bounds move differently
            }
            Some(Window {
                coefs: clo,
                lo_rest: rlo,
                hi_rest: rhi,
            })
        }
    }
}

fn dim_constraint(dd: &DimSect, ud: &DimSect, common: &[LoopId], ctx: &SymCtx) -> DimOutcome {
    let (Some(wd), Some(wu)) = (window_of(dd, common), window_of(ud, common)) else {
        return DimOutcome::Unconstrained;
    };

    let active: Vec<usize> = (0..common.len())
        .filter(|&k| wd.coefs[k] != 0 || wu.coefs[k] != 0)
        .collect();

    if active.is_empty() {
        // Loop-invariant windows: plain (stride-aware) overlap test.
        return if dd.overlaps(ud, ctx) {
            DimOutcome::Unconstrained
        } else {
            DimOutcome::Impossible
        };
    }

    // Overlap condition: lin_d(id) - lin_u(iu) ∈ [L, U] with
    // L = u.lo - d.hi, U = u.hi - d.lo.
    let l_expr = wu.lo_rest.sub(&wd.hi_rest);
    let u_expr = wu.hi_rest.sub(&wd.lo_rest);

    if active.len() == 1 {
        let k = active[0];
        let (cd, cu) = (wd.coefs[k], wu.coefs[k]);
        if cd == cu && cd != 0 {
            // Strong SIV with a window: c·(id - iu) ∈ [L, U], i.e.
            // c·δ ∈ [-U, -L] with δ = iu - id.
            if let (Some(lc), Some(uc)) = (l_expr.as_const(), u_expr.as_const()) {
                return match int_mult_interval(-uc, -lc, cd) {
                    None => DimOutcome::Impossible,
                    Some((dlo, dhi)) => DimOutcome::Level(
                        k,
                        DirSet::from_flags(dlo <= -1, dlo <= 0 && 0 <= dhi, dhi >= 1),
                    ),
                };
            }
            // Symbolic window: if provably 0 ∉ feasible set in one
            // direction we could refine; stay conservative.
            return DimOutcome::Unconstrained;
        }
        // Differing coefficients (weak SIV): point-equation GCD feasibility.
        if let (Some(lc), Some(uc)) = (l_expr.as_const(), u_expr.as_const()) {
            if lc == uc {
                let g = gcd(cd.unsigned_abs(), cu.unsigned_abs());
                if g != 0 && lc.unsigned_abs() % g != 0 {
                    return DimOutcome::Impossible;
                }
            }
        }
        return DimOutcome::Unconstrained;
    }

    // MIV: GCD feasibility on a point equation, otherwise unconstrained.
    if let (Some(lc), Some(uc)) = (l_expr.as_const(), u_expr.as_const()) {
        if lc == uc {
            let mut g: u64 = 0;
            for &k in &active {
                g = gcd(g, wd.coefs[k].unsigned_abs());
                g = gcd(g, wu.coefs[k].unsigned_abs());
            }
            if g != 0 && lc.unsigned_abs() % g != 0 {
                return DimOutcome::Impossible;
            }
        }
    }
    DimOutcome::Unconstrained
}

/// Integer solutions of `c·δ ∈ [lo, hi]`: returns the inclusive δ-range, or
/// `None` when no multiple of `c` falls in the interval.
fn int_mult_interval(lo: i64, hi: i64, c: i64) -> Option<(i64, i64)> {
    debug_assert!(c != 0);
    let (lo, hi, c) = if c < 0 { (-hi, -lo, -c) } else { (lo, hi, c) };
    if lo > hi {
        return None;
    }
    let dlo = ceil_div(lo, c);
    let dhi = floor_div(hi, c);
    (dlo <= dhi).then_some((dlo, dhi))
}

fn ceil_div(a: i64, b: i64) -> i64 {
    debug_assert!(b > 0);
    a.div_euclid(b) + i64::from(a.rem_euclid(b) != 0)
}

fn floor_div(a: i64, b: i64) -> i64 {
    debug_assert!(b > 0);
    a.div_euclid(b)
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dirset_ops() {
        let s = DirSet::from_flags(true, false, true);
        assert!(s.contains(Dir::Neg));
        assert!(!s.contains(Dir::Zero));
        assert!(s.contains(Dir::Pos));
        assert!(s.intersect(DirSet::only(Dir::Zero)).is_empty());
        assert_eq!(s.intersect(DirSet::ALL), s);
    }

    #[test]
    fn int_mult_interval_cases() {
        // 2δ ∈ [2, 5] → δ ∈ [1, 2].
        assert_eq!(int_mult_interval(2, 5, 2), Some((1, 2)));
        // 2δ ∈ [3, 3] → no solution.
        assert_eq!(int_mult_interval(3, 3, 2), None);
        // -1·δ ∈ [1, 1] → δ = -1.
        assert_eq!(int_mult_interval(1, 1, -1), Some((-1, -1)));
        // 3δ ∈ [-7, 7] → δ ∈ [-2, 2].
        assert_eq!(int_mult_interval(-7, 7, 3), Some((-2, 2)));
        // Empty interval.
        assert_eq!(int_mult_interval(5, 2, 1), None);
    }

    #[test]
    fn div_helpers() {
        assert_eq!(ceil_div(5, 2), 3);
        assert_eq!(ceil_div(4, 2), 2);
        assert_eq!(ceil_div(-5, 2), -2);
        assert_eq!(floor_div(-5, 2), -3);
        assert_eq!(floor_div(5, 2), 2);
    }

    #[test]
    fn gcd_cases() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(0, 7), 7);
        assert_eq!(gcd(7, 0), 7);
        assert_eq!(gcd(1, 999), 1);
    }
}
