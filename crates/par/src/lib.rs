//! # gcomm-par — deterministic data parallelism for the gcomm drivers
//!
//! A zero-dependency scoped worker pool built on [`std::thread::scope`].
//! The drivers (bench binaries, fuzz harness) and the optimal-placement
//! enumeration fan independent work items across workers; this crate
//! guarantees the **determinism contract** those callers rely on
//! (DESIGN.md §11): for a pure `f`, [`map`] returns exactly
//! `items.iter().enumerate().map(f).collect()` regardless of the worker
//! count — results come back in item order, and `jobs = 1` takes a strictly
//! serial in-place path so it is the reference behaviour by construction.
//!
//! Scheduling is a channel-free chunked work queue: one shared atomic
//! next-item index that workers `fetch_add`; results land in per-item
//! slots, so no ordering information ever depends on which worker ran what.
//! Worker panics propagate to the caller after all threads have joined
//! (the [`std::thread::scope`] contract), never silently dropping items.
//!
//! Worker-count resolution is shared by every driver: the `--jobs N` flag
//! (see [`take_jobs_flag`]) overrides the `GCOMM_JOBS` environment
//! variable, which overrides [`std::thread::available_parallelism`].
//!
//! ```
//! let squares = gcomm_par::map(4, &[1u64, 2, 3, 4], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Default worker count: `GCOMM_JOBS` when set to a positive integer,
/// otherwise [`std::thread::available_parallelism`] (1 when unknown).
pub fn default_jobs() -> usize {
    if let Ok(v) = std::env::var("GCOMM_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Extracts a `--jobs <N>` flag from an argument list, removing it so the
/// binary's own parsing never sees it. Returns [`default_jobs`] when the
/// flag is absent.
///
/// # Errors
///
/// Returns a usage message when `--jobs` has a missing or non-positive
/// value.
pub fn take_jobs_flag(args: &mut Vec<String>) -> Result<usize, String> {
    let mut jobs: Option<usize> = None;
    let mut kept = Vec::with_capacity(args.len());
    let mut it = args.drain(..);
    while let Some(a) = it.next() {
        if a == "--jobs" {
            let v = it.next().ok_or("--jobs requires a value")?;
            match v.trim().parse::<usize>() {
                Ok(n) if n >= 1 => jobs = Some(n),
                _ => return Err(format!("--jobs: invalid worker count `{v}`")),
            }
        } else {
            kept.push(a);
        }
    }
    drop(it);
    *args = kept;
    Ok(jobs.unwrap_or_else(default_jobs))
}

/// Maps `f` over `items` on up to `jobs` worker threads, returning results
/// in item order.
///
/// `f` receives `(index, &item)` and must be pure up to commutative side
/// effects (budget charges, obs counters): the determinism contract is
/// that the returned vector is identical to the serial
/// `items.iter().enumerate().map(f).collect()` for any `jobs`. With
/// `jobs <= 1` (or fewer than two items) the closure runs serially on the
/// calling thread — same stack, same thread-locals — which makes that
/// path the reference semantics by construction.
///
/// # Panics
///
/// A panic in `f` propagates to the caller once all workers have joined.
pub fn map<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let jobs = jobs.max(1).min(items.len());
    if jobs <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(i, &items[i]);
                *slots[i].lock().unwrap() = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            // invariant: the queue hands out every index < items.len()
            // exactly once, and scope() joined all workers.
            slot.into_inner()
                .unwrap()
                .expect("worker filled every slot")
        })
        .collect()
}

/// Splits the index range `[0, total)` into at most `parts` contiguous,
/// non-empty chunks of near-equal size (the leading chunks are one longer
/// when `total` does not divide evenly). Used by the optimal-placement
/// enumeration to hand each worker a contiguous slice of the assignment
/// space.
pub fn split_range(total: u64, parts: usize) -> Vec<(u64, u64)> {
    if total == 0 {
        return Vec::new();
    }
    let parts = (parts.max(1) as u64).min(total);
    let base = total / parts;
    let extra = total % parts;
    let mut out = Vec::with_capacity(parts as usize);
    let mut start = 0u64;
    for i in 0..parts {
        let len = base + u64::from(i < extra);
        out.push((start, start + len));
        start += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_item_order() {
        let items: Vec<u64> = (0..100).collect();
        let serial = map(1, &items, |i, &x| (i as u64) * 1000 + x);
        for jobs in [2, 3, 8, 64] {
            assert_eq!(map(jobs, &items, |i, &x| (i as u64) * 1000 + x), serial);
        }
    }

    #[test]
    fn map_handles_empty_and_single() {
        assert_eq!(map(8, &[] as &[u8], |_, &x| x), Vec::<u8>::new());
        assert_eq!(map(8, &[7u8], |_, &x| x), vec![7]);
    }

    #[test]
    fn map_runs_every_item_once() {
        use std::sync::atomic::AtomicU64;
        let calls = AtomicU64::new(0);
        let items: Vec<u32> = (0..1000).collect();
        let out = map(16, &items, |_, &x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x + 1
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1000);
        assert_eq!(out[999], 1000);
    }

    #[test]
    fn split_range_covers_exactly() {
        for total in [0u64, 1, 7, 16, 1000] {
            for parts in [1usize, 2, 3, 8, 2000] {
                let chunks = split_range(total, parts);
                let mut expect = 0u64;
                for &(lo, hi) in &chunks {
                    assert_eq!(lo, expect);
                    assert!(hi > lo, "chunks are non-empty");
                    expect = hi;
                }
                assert_eq!(expect, total);
                assert!(chunks.len() <= parts.max(1));
            }
        }
    }

    #[test]
    fn jobs_flag_is_extracted() {
        let mut args: Vec<String> = ["--out", "x.json", "--jobs", "3", "-v"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(take_jobs_flag(&mut args), Ok(3));
        assert_eq!(args, vec!["--out", "x.json", "-v"]);
        let mut bad: Vec<String> = vec!["--jobs".into(), "zero".into()];
        assert!(take_jobs_flag(&mut bad).is_err());
        let mut none: Vec<String> = vec!["-v".into()];
        assert!(take_jobs_flag(&mut none).unwrap() >= 1);
    }
}
