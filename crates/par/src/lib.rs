//! # gcomm-par — deterministic data parallelism for the gcomm drivers
//!
//! A zero-dependency scoped worker pool built on [`std::thread::scope`].
//! The drivers (bench binaries, fuzz harness) and the optimal-placement
//! enumeration fan independent work items across workers; this crate
//! guarantees the **determinism contract** those callers rely on
//! (DESIGN.md §11): for a pure `f`, [`map`] returns exactly
//! `items.iter().enumerate().map(f).collect()` regardless of the worker
//! count — results come back in item order, and `jobs = 1` takes a strictly
//! serial in-place path so it is the reference behaviour by construction.
//!
//! Scheduling is a channel-free chunked work queue: one shared atomic
//! next-item index that workers `fetch_add`; results land in per-item
//! slots, so no ordering information ever depends on which worker ran what.
//! Worker panics propagate to the caller after all threads have joined
//! (the [`std::thread::scope`] contract), never silently dropping items.
//!
//! Worker-count resolution is shared by every driver: the `--jobs N` flag
//! (see [`take_jobs_flag`]) overrides the `GCOMM_JOBS` environment
//! variable, which overrides [`std::thread::available_parallelism`].
//!
//! ```
//! let squares = gcomm_par::map(4, &[1u64, 2, 3, 4], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Default worker count: `GCOMM_JOBS` when set to a positive integer,
/// otherwise [`std::thread::available_parallelism`] (1 when unknown).
pub fn default_jobs() -> usize {
    if let Ok(v) = std::env::var("GCOMM_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Extracts a `--jobs <N>` flag from an argument list, removing it so the
/// binary's own parsing never sees it. Returns [`default_jobs`] when the
/// flag is absent.
///
/// # Errors
///
/// Returns a usage message when `--jobs` has a missing or non-positive
/// value.
pub fn take_jobs_flag(args: &mut Vec<String>) -> Result<usize, String> {
    let mut jobs: Option<usize> = None;
    let mut kept = Vec::with_capacity(args.len());
    let mut it = args.drain(..);
    while let Some(a) = it.next() {
        if a == "--jobs" {
            let v = it.next().ok_or("--jobs requires a value")?;
            match v.trim().parse::<usize>() {
                Ok(n) if n >= 1 => jobs = Some(n),
                _ => return Err(format!("--jobs: invalid worker count `{v}`")),
            }
        } else {
            kept.push(a);
        }
    }
    drop(it);
    *args = kept;
    Ok(jobs.unwrap_or_else(default_jobs))
}

/// Maps `f` over `items` on up to `jobs` worker threads, returning results
/// in item order.
///
/// `f` receives `(index, &item)` and must be pure up to commutative side
/// effects (budget charges, obs counters): the determinism contract is
/// that the returned vector is identical to the serial
/// `items.iter().enumerate().map(f).collect()` for any `jobs`. With
/// `jobs <= 1` (or fewer than two items) the closure runs serially on the
/// calling thread — same stack, same thread-locals — which makes that
/// path the reference semantics by construction.
///
/// # Panics
///
/// A panic in `f` propagates to the caller once all workers have joined.
pub fn map<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let jobs = jobs.max(1).min(items.len());
    if jobs <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(i, &items[i]);
                *slots[i].lock().unwrap() = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            // invariant: the queue hands out every index < items.len()
            // exactly once, and scope() joined all workers.
            slot.into_inner()
                .unwrap()
                .expect("worker filled every slot")
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Long-lived worker pool (the compile-service backend)
// ---------------------------------------------------------------------------

/// A submitted unit of work.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Why [`Pool::try_submit`] refused a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is at capacity — the caller must shed load
    /// (reject the request) rather than buffer unboundedly.
    Full,
    /// The pool is draining or shut down and accepts no new work.
    Closed,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Full => write!(f, "queue full"),
            SubmitError::Closed => write!(f, "pool closed"),
        }
    }
}

struct PoolState {
    queue: VecDeque<Job>,
    /// Closed pools accept no new jobs; workers drain the queue then exit.
    open: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Signalled on every enqueue and on close.
    wake: Condvar,
    cap: usize,
}

/// A long-lived worker pool with a **bounded** job queue and explicit
/// backpressure — the execution backend of the compile service
/// (DESIGN.md §12). Unlike [`map`], which fans a known slice across
/// scoped threads, a `Pool` accepts work items one at a time as they
/// arrive from the outside world, and *refuses* them
/// ([`SubmitError::Full`]) once `queue_cap` jobs are waiting: the caller
/// sheds load instead of buffering without bound.
///
/// Worker count resolution follows the same `--jobs`/`GCOMM_JOBS`
/// conventions as [`map`] (the caller passes the resolved count).
/// [`Pool::shutdown`] closes the queue, lets the workers finish every
/// job already accepted (drain semantics), and joins them.
pub struct Pool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

impl Pool {
    /// Spawns `jobs` workers (at least 1) behind a queue of at most
    /// `queue_cap` waiting jobs (at least 1).
    pub fn new(jobs: usize, queue_cap: usize) -> Pool {
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                open: true,
            }),
            wake: Condvar::new(),
            cap: queue_cap.max(1),
        });
        let workers = (0..jobs.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Pool { shared, workers }
    }

    /// Enqueues a job unless the queue is full or the pool is closed.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Full`] when `queue_cap` jobs are already waiting
    /// (the backpressure signal), [`SubmitError::Closed`] after
    /// [`Pool::shutdown`] began.
    pub fn try_submit(&self, job: impl FnOnce() + Send + 'static) -> Result<(), SubmitError> {
        let mut state = self.shared.state.lock().unwrap();
        if !state.open {
            return Err(SubmitError::Closed);
        }
        if state.queue.len() >= self.shared.cap {
            return Err(SubmitError::Full);
        }
        state.queue.push_back(Box::new(job));
        drop(state);
        self.shared.wake.notify_one();
        Ok(())
    }

    /// Jobs waiting in the queue right now (excludes jobs mid-execution).
    pub fn queued(&self) -> usize {
        self.shared.state.lock().unwrap().queue.len()
    }

    /// A clonable submission handle that shares this pool's queue. Handles
    /// can outlive the moment [`Pool::shutdown`] is called — their submits
    /// then fail with [`SubmitError::Closed`] — which lets the pool's owner
    /// keep drain/join authority while other threads only ever enqueue.
    pub fn handle(&self) -> PoolHandle {
        PoolHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Closes the queue, drains it (every job already accepted still
    /// runs), and joins the workers. Idempotent by construction: consumes
    /// the pool.
    pub fn shutdown(mut self) {
        self.close_and_join();
    }

    fn close_and_join(&mut self) {
        self.shared.state.lock().unwrap().open = false;
        self.shared.wake.notify_all();
        for w in self.workers.drain(..) {
            // A worker panic is a bug in the submitted job; surface it.
            if let Err(e) = w.join() {
                std::panic::resume_unwind(e);
            }
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        if !self.workers.is_empty() && !std::thread::panicking() {
            self.close_and_join();
        }
    }
}

/// A clonable enqueue-only handle to a [`Pool`] (see [`Pool::handle`]).
#[derive(Clone)]
pub struct PoolHandle {
    shared: Arc<PoolShared>,
}

impl PoolHandle {
    /// Enqueues a job; same contract as [`Pool::try_submit`].
    ///
    /// # Errors
    ///
    /// [`SubmitError::Full`] at capacity, [`SubmitError::Closed`] once the
    /// owning pool began shutting down (or was dropped).
    pub fn try_submit(&self, job: impl FnOnce() + Send + 'static) -> Result<(), SubmitError> {
        let mut state = self.shared.state.lock().unwrap();
        if !state.open {
            return Err(SubmitError::Closed);
        }
        if state.queue.len() >= self.shared.cap {
            return Err(SubmitError::Full);
        }
        state.queue.push_back(Box::new(job));
        drop(state);
        self.shared.wake.notify_one();
        Ok(())
    }

    /// Jobs waiting in the queue right now.
    pub fn queued(&self) -> usize {
        self.shared.state.lock().unwrap().queue.len()
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut state = shared.state.lock().unwrap();
            loop {
                if let Some(job) = state.queue.pop_front() {
                    break job;
                }
                if !state.open {
                    return;
                }
                state = shared.wake.wait(state).unwrap();
            }
        };
        job();
    }
}

/// A shared, monotonically decreasing nonnegative-`f64` minimum, stored as
/// IEEE-754 bits in one atomic word (nonnegative floats order identically
/// to their bit patterns, so `fetch_min` over bits is `min` over values).
///
/// The branch-and-bound optimal search publishes the cheapest complete
/// schedule cost seen by *any* worker here. The determinism contract
/// (DESIGN.md §11) only allows it as a **recording gate** — a cost
/// strictly above the cell can never be the global minimum, so a worker
/// may skip bookkeeping for it — never as a pruning input, because the
/// cell's momentary value depends on scheduling.
pub struct MinF64(std::sync::atomic::AtomicU64);

impl MinF64 {
    /// A cell holding `init` (must be nonnegative and not NaN).
    pub fn new(init: f64) -> MinF64 {
        MinF64(std::sync::atomic::AtomicU64::new(init.to_bits()))
    }

    /// The current minimum.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    /// Lowers the cell to `v` if `v` is smaller.
    pub fn record(&self, v: f64) {
        self.0.fetch_min(v.to_bits(), Ordering::Relaxed);
    }
}

/// Splits the index range `[0, total)` into at most `parts` contiguous,
/// non-empty chunks of near-equal size (the leading chunks are one longer
/// when `total` does not divide evenly). Used by the optimal-placement
/// enumeration to hand each worker a contiguous slice of the assignment
/// space.
pub fn split_range(total: u64, parts: usize) -> Vec<(u64, u64)> {
    if total == 0 {
        return Vec::new();
    }
    let parts = (parts.max(1) as u64).min(total);
    let base = total / parts;
    let extra = total % parts;
    let mut out = Vec::with_capacity(parts as usize);
    let mut start = 0u64;
    for i in 0..parts {
        let len = base + u64::from(i < extra);
        out.push((start, start + len));
        start += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_item_order() {
        let items: Vec<u64> = (0..100).collect();
        let serial = map(1, &items, |i, &x| (i as u64) * 1000 + x);
        for jobs in [2, 3, 8, 64] {
            assert_eq!(map(jobs, &items, |i, &x| (i as u64) * 1000 + x), serial);
        }
    }

    #[test]
    fn map_handles_empty_and_single() {
        assert_eq!(map(8, &[] as &[u8], |_, &x| x), Vec::<u8>::new());
        assert_eq!(map(8, &[7u8], |_, &x| x), vec![7]);
    }

    #[test]
    fn map_runs_every_item_once() {
        use std::sync::atomic::AtomicU64;
        let calls = AtomicU64::new(0);
        let items: Vec<u32> = (0..1000).collect();
        let out = map(16, &items, |_, &x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x + 1
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1000);
        assert_eq!(out[999], 1000);
    }

    #[test]
    fn split_range_covers_exactly() {
        for total in [0u64, 1, 7, 16, 1000] {
            for parts in [1usize, 2, 3, 8, 2000] {
                let chunks = split_range(total, parts);
                let mut expect = 0u64;
                for &(lo, hi) in &chunks {
                    assert_eq!(lo, expect);
                    assert!(hi > lo, "chunks are non-empty");
                    expect = hi;
                }
                assert_eq!(expect, total);
                assert!(chunks.len() <= parts.max(1));
            }
        }
    }

    #[test]
    fn min_f64_converges_under_contention() {
        let cell = MinF64::new(1e18);
        let items: Vec<u64> = (0..1000).collect();
        map(8, &items, |_, &x| cell.record(((x * 7919) % 997) as f64));
        assert_eq!(cell.get(), 0.0);
        cell.record(5.0);
        assert_eq!(cell.get(), 0.0, "recording a larger value is a no-op");
    }

    #[test]
    fn pool_runs_every_accepted_job() {
        use std::sync::atomic::AtomicU64;
        let ran = Arc::new(AtomicU64::new(0));
        let pool = Pool::new(4, 64);
        for _ in 0..50 {
            let ran = Arc::clone(&ran);
            pool.try_submit(move || {
                ran.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(ran.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn pool_rejects_when_full_and_drains_on_shutdown() {
        use std::sync::atomic::AtomicU64;
        use std::sync::mpsc;
        let ran = Arc::new(AtomicU64::new(0));
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        let pool = Pool::new(1, 2);
        // Occupy the single worker until released so the queue backs up.
        {
            let ran = Arc::clone(&ran);
            pool.try_submit(move || {
                started_tx.send(()).unwrap();
                release_rx.recv().unwrap();
                ran.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
        started_rx.recv().unwrap();
        // Two queued jobs fill the cap; the third is refused, not buffered.
        let mut accepted = 0;
        let mut rejected = 0;
        for _ in 0..5 {
            let ran = Arc::clone(&ran);
            match pool.try_submit(move || {
                ran.fetch_add(1, Ordering::Relaxed);
            }) {
                Ok(()) => accepted += 1,
                Err(SubmitError::Full) => rejected += 1,
                Err(e) => panic!("unexpected {e:?}"),
            }
        }
        assert_eq!(accepted, 2, "queue cap admits exactly cap jobs");
        assert_eq!(rejected, 3);
        release_tx.send(()).unwrap();
        // Drain: the blocked job and both queued jobs all complete.
        pool.shutdown();
        assert_eq!(ran.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn pool_refuses_jobs_after_drop_begins() {
        let pool = Pool::new(2, 4);
        pool.try_submit(|| {}).unwrap();
        pool.shutdown();
        // `shutdown` consumed the pool; a fresh closed pool behaves the
        // same way via the state flag.
        let pool = Pool::new(1, 1);
        pool.shared.state.lock().unwrap().open = false;
        assert_eq!(pool.try_submit(|| {}), Err(SubmitError::Closed));
        pool.shared.state.lock().unwrap().open = true;
    }

    #[test]
    fn handle_submits_and_closes_with_pool() {
        use std::sync::atomic::AtomicU64;
        let ran = Arc::new(AtomicU64::new(0));
        let pool = Pool::new(2, 8);
        let handle = pool.handle();
        for _ in 0..10 {
            // Submission can hit backpressure while the workers catch up;
            // the contract under test is that accepted jobs all run.
            loop {
                let ran = Arc::clone(&ran);
                match handle.try_submit(move || {
                    ran.fetch_add(1, Ordering::Relaxed);
                }) {
                    Ok(()) => break,
                    Err(SubmitError::Full) => std::thread::yield_now(),
                    Err(e) => panic!("unexpected {e:?}"),
                }
            }
        }
        pool.shutdown();
        assert_eq!(ran.load(Ordering::Relaxed), 10);
        assert_eq!(handle.try_submit(|| {}), Err(SubmitError::Closed));
    }

    #[test]
    fn jobs_flag_is_extracted() {
        let mut args: Vec<String> = ["--out", "x.json", "--jobs", "3", "-v"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(take_jobs_flag(&mut args), Ok(3));
        assert_eq!(args, vec!["--out", "x.json", "-v"]);
        let mut bad: Vec<String> = vec!["--jobs".into(), "zero".into()];
        assert!(take_jobs_flag(&mut bad).is_err());
        let mut none: Vec<String> = vec!["-v".into()];
        assert!(take_jobs_flag(&mut none).unwrap() >= 1);
    }
}
