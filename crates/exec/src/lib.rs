//! # gcomm-exec — reference interpreter and dynamic schedule verifier
//!
//! Two executable semantics for mini-HPF programs:
//!
//! * [`interp`] — a **sequential reference interpreter** over the IR's
//!   control-flow graph: F90 array-section semantics (right-hand sides
//!   fully evaluated before assignment), counted loops with zero-trip
//!   behaviour, branches, and `sum(...)` reductions. Used to test the
//!   language itself and as the engine of the verifier.
//! * [`verify`] — a **dynamic distributed-schedule verifier**: it replays a
//!   program at a concrete size under a block distribution, executes the
//!   placed communication schedule at its exact program points, and checks
//!   — element by element, with per-element version counters — that every
//!   remote read is served by a communication that happened *after* the
//!   last write of that element. This catches missing messages, stale
//!   (too-early) placement, and over-aggressive redundancy elimination,
//!   for *any* strategy's schedule.
//!
//! The verifier is this reproduction's substitute for running the paper's
//! generated MPL/MPI code on real hardware: it validates the same property
//! the runtime system enforced — that the buffers a computation reads were
//! filled with current values.

pub mod interp;
pub mod verify;

pub use interp::{interpret, ExecError, FinalState, Interp};
pub use verify::{verify_schedule, VerifyError, VerifyReport};
