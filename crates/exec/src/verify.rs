//! Dynamic distributed-schedule verifier.
//!
//! Replays a compiled program at a concrete size under a block/cyclic
//! distribution and checks, element by element, that every remote read is
//! served by **fresh** communicated data:
//!
//! * when execution reaches a placed communication group, the verifier
//!   records — for every element of every member entry's (vectorized)
//!   section — the element's current write-version in a *ghost table*;
//! * when a statement reads an element owned by a different processor than
//!   the element it computes (owner-computes pairing), or any element at
//!   all for reductions/broadcasts, the ghost version must equal the
//!   element's current version.
//!
//! A missing message shows up as an absent ghost entry; a too-early
//! placement or an over-aggressive redundancy elimination shows up as a
//! stale version. The check is schedule-agnostic: it validates `Original`,
//! `EarliestRE`, and `Global` placements alike.

use std::collections::HashMap;
use std::fmt;

use gcomm_core::{AnalysisCtx, CommKind, Compiled};
use gcomm_ir::{IrProgram, Pos, StmtId, StmtKind};
use gcomm_machine::ProcGrid;
use gcomm_sections::{DimSect, Section};

use crate::interp::{ExecError, Interp, Monitor, State};

/// One freshness violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

/// Outcome of a verification run.
#[derive(Debug, Clone, Default)]
pub struct VerifyReport {
    /// Violations found (capped at 50).
    pub errors: Vec<VerifyError>,
    /// Reads inspected.
    pub reads_checked: u64,
    /// Remote elements whose freshness was checked.
    pub remote_elements_checked: u64,
    /// Communication events executed.
    pub comm_events: u64,
    /// Elements recorded into the ghost table.
    pub elements_communicated: u64,
}

impl VerifyReport {
    /// True when no violation was found.
    pub fn ok(&self) -> bool {
        self.errors.is_empty()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CheckKind {
    /// Shift exchange: only elements with a different owner than the paired
    /// computed element must be fresh.
    OwnerPaired,
    /// Reductions/broadcasts/gathers: every element read must be fresh.
    AllRemote,
}

/// Verifies a compiled schedule dynamically.
///
/// # Errors
///
/// Returns [`ExecError`] if the program itself fails to execute (unbound
/// parameters, non-affine subscripts, out-of-bounds accesses). Freshness
/// violations are reported in the returned [`VerifyReport`], not as `Err`.
pub fn verify_schedule(
    compiled: &Compiled,
    grid: &ProcGrid,
    params: &HashMap<String, i64>,
) -> Result<VerifyReport, ExecError> {
    let prog = &compiled.prog;
    let ctx = AnalysisCtx::new(prog);

    // Index groups by position.
    let mut groups_by_pos: HashMap<Pos, Vec<usize>> = HashMap::new();
    for (gi, g) in compiled.schedule.groups.iter().enumerate() {
        groups_by_pos.entry(g.pos).or_default().push(gi);
    }

    // Which reads need checking, and how.
    let mut checks: HashMap<(StmtId, usize), CheckKind> = HashMap::new();
    for e in &compiled.schedule.entries {
        let kind = match e.kind {
            CommKind::Nnc => CheckKind::OwnerPaired,
            _ => CheckKind::AllRemote,
        };
        for &r in &e.reads {
            let slot = checks.entry((e.stmt, r)).or_insert(kind);
            if kind == CheckKind::AllRemote {
                *slot = CheckKind::AllRemote;
            }
        }
    }

    let mut mon = SchedMonitor {
        compiled,
        ctx,
        grid,
        groups_by_pos,
        checks,
        ghost: vec![HashMap::new(); prog.arrays.len()],
        report: VerifyReport::default(),
    };
    let mut it = Interp::new(prog, params)?;
    {
        let _t = gcomm_obs::time("exec.verify");
        it.run(&mut mon)?;
    }
    gcomm_obs::count("exec.verify.runs", 1);
    gcomm_obs::count(
        "exec.verify.remote_elements",
        mon.report.remote_elements_checked,
    );
    gcomm_obs::count("exec.verify.violations", mon.report.errors.len() as u64);
    Ok(mon.report)
}

struct SchedMonitor<'a> {
    compiled: &'a Compiled,
    ctx: AnalysisCtx<'a>,
    grid: &'a ProcGrid,
    groups_by_pos: HashMap<Pos, Vec<usize>>,
    checks: HashMap<(StmtId, usize), CheckKind>,
    /// Per array: flat element → version captured at the last communication
    /// covering it.
    ghost: Vec<HashMap<usize, u64>>,
    report: VerifyReport,
}

impl<'a> SchedMonitor<'a> {
    fn error(&mut self, msg: String) {
        if self.report.errors.len() < 50 {
            self.report.errors.push(VerifyError { message: msg });
        }
    }

    /// Grid coordinates owning an element.
    fn owner(
        &self,
        prog: &IrProgram,
        st: &State,
        array: gcomm_ir::ArrayId,
        idx: &[i64],
    ) -> Vec<u32> {
        let info = prog.array(array);
        let data = &st.arrays[array.0 as usize];
        let mut coords = Vec::new();
        for (axis, &d) in info.distributed_dims().iter().enumerate() {
            let axis_size = self.grid.axis(axis.min(self.grid.rank() - 1));
            let extent = data.extents[d] as u64;
            let pos0 = (idx[d] + info.align_of(d) - data.lo[d]).max(0) as u64;
            let c = match info.dist[d] {
                gcomm_lang::Dist::Block => {
                    let b = extent.div_ceil(axis_size as u64).max(1);
                    ((pos0 / b) as u32).min(axis_size - 1)
                }
                gcomm_lang::Dist::Cyclic => (pos0 % axis_size as u64) as u32,
                gcomm_lang::Dist::Collapsed => 0,
            };
            coords.push(c);
        }
        coords
    }

    /// Enumerates a symbolic section at the current bindings.
    fn enumerate_section(
        &self,
        prog: &IrProgram,
        st: &State,
        sect: &Section,
    ) -> Result<Vec<Vec<i64>>, ExecError> {
        let mut dims: Vec<Vec<i64>> = Vec::new();
        for d in &sect.dims {
            match d {
                DimSect::Elem(e) => {
                    let v = st.eval_affine(prog, e).ok_or_else(|| ExecError {
                        message: "unbound variable in communicated section".into(),
                    })?;
                    dims.push(vec![v]);
                }
                DimSect::Range { lo, hi, step } => {
                    let lo = st.eval_affine(prog, lo).ok_or_else(|| ExecError {
                        message: "unbound variable in communicated section".into(),
                    })?;
                    let hi = st.eval_affine(prog, hi).ok_or_else(|| ExecError {
                        message: "unbound variable in communicated section".into(),
                    })?;
                    let step = (*step).max(1);
                    let mut v = Vec::new();
                    let mut i = lo;
                    while i <= hi {
                        v.push(i);
                        i += step;
                    }
                    dims.push(v);
                }
                DimSect::Any => {
                    return Err(ExecError {
                        message: "cannot enumerate an unknown section".into(),
                    });
                }
            }
        }
        let mut out: Vec<Vec<i64>> = vec![Vec::new()];
        for d in &dims {
            let mut next = Vec::with_capacity(out.len() * d.len());
            for pre in &out {
                for &x in d {
                    let mut e = pre.clone();
                    e.push(x);
                    next.push(e);
                }
            }
            out = next;
        }
        Ok(out)
    }

    fn fresh(&self, st: &State, array: gcomm_ir::ArrayId, idx: &[i64]) -> Option<bool> {
        let data = &st.arrays[array.0 as usize];
        let flat = data.flat(idx)?;
        Some(self.ghost[array.0 as usize].get(&flat) == Some(&data.vers[flat]))
    }
}

impl<'a> Monitor for SchedMonitor<'a> {
    fn at_pos(&mut self, prog: &IrProgram, st: &State, pos: Pos) -> Result<(), ExecError> {
        let Some(groups) = self.groups_by_pos.get(&pos).cloned() else {
            return Ok(());
        };
        let level = pos.level(prog);
        for gi in groups {
            self.report.comm_events += 1;
            let group = &self.compiled.schedule.groups[gi];
            for &eid in &group.entries {
                let e = self.compiled.schedule.entry(eid);
                let sect = self
                    .compiled
                    .schedule
                    .section_override(eid)
                    .cloned()
                    .unwrap_or_else(|| self.ctx.section_at(e, level));
                let elems = self.enumerate_section(prog, st, &sect)?;
                let data = &st.arrays[e.array.0 as usize];
                for idx in elems {
                    if let Some(flat) = data.flat(&idx) {
                        self.ghost[e.array.0 as usize].insert(flat, data.vers[flat]);
                        self.report.elements_communicated += 1;
                    }
                }
            }
        }
        Ok(())
    }

    fn before_stmt(&mut self, prog: &IrProgram, st: &State, stmt: StmtId) -> Result<(), ExecError> {
        let info = prog.stmt(stmt);
        let reads = info.kind.reads();
        let lhs = info.kind.def();
        // Enumerate the lhs space once for owner pairing.
        let lhs_space = match (lhs, &info.kind) {
            (Some(l), StmtKind::Assign { .. }) => Some(st.enumerate_access(prog, l)?),
            _ => None,
        };
        for (ri, read) in reads.iter().enumerate() {
            let Some(kind) = self.checks.get(&(stmt, ri)).copied() else {
                continue; // local read
            };
            self.report.reads_checked += 1;
            let elems = st.enumerate_access(prog, &read.access)?;
            match kind {
                CheckKind::AllRemote => {
                    for idx in &elems {
                        self.report.remote_elements_checked += 1;
                        match self.fresh(st, read.access.array, idx) {
                            Some(true) => {}
                            Some(false) | None => {
                                let name = &prog.array(read.access.array).name;
                                self.error(format!(
                                    "stale or missing data for {name}{idx:?} read by {stmt} (collective)"
                                ));
                            }
                        }
                    }
                }
                CheckKind::OwnerPaired => {
                    let Some(lspace) = lhs_space.as_ref() else {
                        continue;
                    };
                    let Some(l) = lhs else { continue };
                    if lspace.len() != elems.len() {
                        self.error(format!(
                            "non-conformable read {ri} at {stmt}: {} vs {} elements",
                            elems.len(),
                            lspace.len()
                        ));
                        continue;
                    }
                    for (idx, lidx) in elems.iter().zip(lspace.iter()) {
                        let ro = self.owner(prog, st, read.access.array, idx);
                        let lo = self.owner(prog, st, l.array, lidx);
                        if ro == lo {
                            continue; // local to the computing processor
                        }
                        self.report.remote_elements_checked += 1;
                        match self.fresh(st, read.access.array, idx) {
                            Some(true) => {}
                            Some(false) | None => {
                                let name = &prog.array(read.access.array).name;
                                self.error(format!(
                                    "stale or missing ghost for {name}{idx:?} read by {stmt}"
                                ));
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcomm_core::{compile, Strategy};

    fn params_for(compiled: &Compiled, n: i64) -> HashMap<String, i64> {
        let mut m: HashMap<String, i64> = compiled
            .prog
            .params
            .iter()
            .map(|p| (p.clone(), n))
            .collect();
        m.insert("nsteps".into(), 2);
        m
    }

    fn grid_for(compiled: &Compiled) -> ProcGrid {
        let rank = compiled
            .prog
            .arrays
            .iter()
            .map(|a| a.distributed_dims().len())
            .max()
            .unwrap_or(1)
            .max(1);
        ProcGrid::balanced(4, rank)
    }

    #[test]
    fn all_kernels_all_strategies_verify() {
        for (bench, routine, src) in gcomm_kernels::all_kernels() {
            for strategy in [Strategy::Original, Strategy::EarliestRE, Strategy::Global] {
                let c = compile(src, strategy).unwrap();
                let grid = grid_for(&c);
                let params = params_for(&c, 8);
                let rep = verify_schedule(&c, &grid, &params)
                    .unwrap_or_else(|e| panic!("{bench}:{routine} {strategy:?}: {e}"));
                assert!(
                    rep.ok(),
                    "{bench}:{routine} {strategy:?}: {} violations, first: {}",
                    rep.errors.len(),
                    rep.errors.first().map(|e| e.message.as_str()).unwrap_or("")
                );
                assert!(
                    rep.remote_elements_checked > 0,
                    "{bench}:{routine} checked nothing"
                );
            }
        }
    }

    #[test]
    fn figure_examples_verify() {
        for src in [
            gcomm_kernels::FIG3_F90,
            gcomm_kernels::FIG3_SCALARIZED,
            gcomm_kernels::FIG4_RUNNING,
        ] {
            for strategy in [Strategy::Original, Strategy::EarliestRE, Strategy::Global] {
                let c = compile(src, strategy).unwrap();
                let grid = grid_for(&c);
                let params = params_for(&c, 8);
                let rep = verify_schedule(&c, &grid, &params).unwrap();
                assert!(rep.ok(), "{strategy:?}: {:?}", rep.errors.first());
            }
        }
    }

    const STENCIL: &str = "
program t
param n, nsteps
real a(n,n), b(n,n) distribute (block,block)
do t = 1, nsteps
  b(2:n, 1:n) = a(1:n-1, 1:n)
  a(1:n, 1:n) = b(1:n, 1:n)
enddo
end";

    #[test]
    fn dropping_a_message_is_detected() {
        let mut c = compile(STENCIL, Strategy::Global).unwrap();
        assert_eq!(c.schedule.groups.len(), 1);
        c.schedule.groups.clear(); // fault injection: lose the message
        let grid = grid_for(&c);
        let params = params_for(&c, 8);
        let rep = verify_schedule(&c, &grid, &params).unwrap();
        assert!(!rep.ok(), "dropped message must be detected");
    }

    #[test]
    fn too_early_placement_is_detected() {
        let mut c = compile(STENCIL, Strategy::Global).unwrap();
        // Fault injection: hoist the exchange to program start, before the
        // per-timestep redefinitions of `a`.
        c.schedule.groups[0].pos = Pos::top(c.prog.cfg.entry);
        let grid = grid_for(&c);
        let params = params_for(&c, 8);
        let rep = verify_schedule(&c, &grid, &params).unwrap();
        assert!(!rep.ok(), "stale hoisted message must be detected");
    }

    #[test]
    fn legal_hoist_is_accepted() {
        // a is never redefined: hoisting out of the loop is legal and the
        // global strategy does exactly that. The verifier must agree.
        let src = "
program t
param n, nsteps
real a(n,n), b(n,n) distribute (block,block)
a(1:n, 1:n) = 1
do t = 1, nsteps
  b(2:n, 1:n) = a(1:n-1, 1:n)
enddo
end";
        let c = compile(src, Strategy::Global).unwrap();
        // Placement must be outside the loop...
        let lvl = c.schedule.groups[0].pos.level(&c.prog);
        assert_eq!(lvl, 0, "{}", c.report());
        // ...and still verify.
        let grid = grid_for(&c);
        let params = params_for(&c, 8);
        let rep = verify_schedule(&c, &grid, &params).unwrap();
        assert!(rep.ok(), "{:?}", rep.errors.first());
    }
}
