//! Sequential reference interpreter over the IR control-flow graph.
//!
//! Semantics follow Fortran 90: array-section assignments evaluate the
//! entire right-hand side before storing, counted `do` loops evaluate their
//! bounds on entry (zero-trip when empty), and `sum(...)` reduces a whole
//! section. Every array element carries a **version counter** (bumped on
//! each write) so that monitors — notably the distributed-schedule verifier
//! — can reason about data freshness without tracking values.

use std::collections::HashMap;
use std::fmt;

use gcomm_ir::{
    AccessRef, Affine, ArrayId, IrProgram, LoopId, NodeId, NodeKind, Pos, StmtId, StmtKind,
    SubscriptIr, Var,
};
use gcomm_lang::{ArrayRef, BinOp, Expr, Subscript};

/// An error raised during execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecError {
    /// Description of the failure.
    pub message: String,
}

impl ExecError {
    fn new(m: impl Into<String>) -> Self {
        ExecError { message: m.into() }
    }
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for ExecError {}

/// Concrete storage for one array: values plus per-element versions.
#[derive(Debug, Clone)]
pub struct ArrayData {
    /// Per-dimension inclusive lower bounds.
    pub lo: Vec<i64>,
    /// Per-dimension extents.
    pub extents: Vec<i64>,
    /// Row-major values (single cell for scalars).
    pub vals: Vec<f64>,
    /// Write-version per element (0 = never written).
    pub vers: Vec<u64>,
}

impl ArrayData {
    /// Flattens a multi-index; `None` when out of bounds.
    pub fn flat(&self, idx: &[i64]) -> Option<usize> {
        if idx.len() != self.lo.len() {
            return None;
        }
        let mut acc: usize = 0;
        #[allow(clippy::needless_range_loop)]
        for d in 0..idx.len() {
            let off = idx[d] - self.lo[d];
            if off < 0 || off >= self.extents[d] {
                return None;
            }
            acc = acc * self.extents[d] as usize + off as usize;
        }
        Some(acc)
    }
}

/// Mutable execution state, visible to monitors.
#[derive(Debug, Clone)]
pub struct State {
    /// Storage per array (indexed by `ArrayId`).
    pub arrays: Vec<ArrayData>,
    /// Current loop-variable values by loop id.
    pub loop_vals: HashMap<LoopId, i64>,
    /// Parameter values by name.
    pub params: HashMap<String, i64>,
}

impl State {
    /// Evaluates an affine expression against parameters and live loops.
    pub fn eval_affine(&self, prog: &IrProgram, e: &Affine) -> Option<i64> {
        e.eval(&|v| match v {
            Var::Param(p) => self
                .params
                .get(prog.params.get(p.0 as usize)?.as_str())
                .copied(),
            Var::Loop(l) => self.loop_vals.get(&l).copied(),
        })
    }

    /// Enumerates the concrete elements of an IR access at the current
    /// loop bindings: returns (multi-indices, per-dimension range shape).
    pub fn enumerate_access(
        &self,
        prog: &IrProgram,
        acc: &AccessRef,
    ) -> Result<Vec<Vec<i64>>, ExecError> {
        let mut dims: Vec<Vec<i64>> = Vec::with_capacity(acc.subs.len());
        for s in &acc.subs {
            match s {
                SubscriptIr::Elem(e) => {
                    let v = self
                        .eval_affine(prog, e)
                        .ok_or_else(|| ExecError::new("unbound variable in subscript"))?;
                    dims.push(vec![v]);
                }
                SubscriptIr::Range { lo, hi, step } => {
                    let lo = self
                        .eval_affine(prog, lo)
                        .ok_or_else(|| ExecError::new("unbound variable in section bound"))?;
                    let hi = self
                        .eval_affine(prog, hi)
                        .ok_or_else(|| ExecError::new("unbound variable in section bound"))?;
                    let mut v = Vec::new();
                    let mut i = lo;
                    while (*step > 0 && i <= hi) || (*step < 0 && i >= hi) {
                        v.push(i);
                        i += step;
                    }
                    dims.push(v);
                }
                SubscriptIr::NonAffine => {
                    return Err(ExecError::new("non-affine subscript in execution"));
                }
            }
        }
        // Cartesian product, row-major.
        let mut out: Vec<Vec<i64>> = vec![Vec::new()];
        for d in &dims {
            let mut next = Vec::with_capacity(out.len() * d.len());
            for pre in &out {
                for &x in d {
                    let mut e = pre.clone();
                    e.push(x);
                    next.push(e);
                }
            }
            out = next;
        }
        Ok(out)
    }
}

/// Observer of execution events (the schedule verifier implements this).
pub trait Monitor {
    /// Called at every program position, *before* the statement at that
    /// slot executes (top-of-node positions included).
    fn at_pos(&mut self, prog: &IrProgram, st: &State, pos: Pos) -> Result<(), ExecError>;

    /// Called immediately before a statement executes (after `at_pos` for
    /// its slot).
    fn before_stmt(&mut self, prog: &IrProgram, st: &State, stmt: StmtId) -> Result<(), ExecError>;
}

/// A monitor that does nothing.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoMonitor;

impl Monitor for NoMonitor {
    fn at_pos(&mut self, _: &IrProgram, _: &State, _: Pos) -> Result<(), ExecError> {
        Ok(())
    }
    fn before_stmt(&mut self, _: &IrProgram, _: &State, _: StmtId) -> Result<(), ExecError> {
        Ok(())
    }
}

/// Final state of a completed run.
#[derive(Debug, Clone)]
pub struct FinalState {
    /// The execution state at program exit.
    pub state: State,
}

impl FinalState {
    /// Reads one element of a named array.
    pub fn value(&self, prog: &IrProgram, name: &str, idx: &[i64]) -> Option<f64> {
        let a = prog.array_by_name(name)?;
        let data = &self.state.arrays[a.0 as usize];
        data.flat(idx).map(|f| data.vals[f])
    }

    /// Reads a scalar.
    pub fn scalar(&self, prog: &IrProgram, name: &str) -> Option<f64> {
        self.value(prog, name, &[])
    }
}

/// The interpreter.
pub struct Interp<'a> {
    prog: &'a IrProgram,
    st: State,
    names: HashMap<String, ArrayId>,
    fuel: u64,
}

/// Runs a program to completion with no monitor.
///
/// # Errors
///
/// Returns [`ExecError`] on unbound parameters, out-of-bounds accesses,
/// non-affine subscripts, or fuel exhaustion.
pub fn interpret(prog: &IrProgram, params: &HashMap<String, i64>) -> Result<FinalState, ExecError> {
    let mut it = Interp::new(prog, params)?;
    it.run(&mut NoMonitor)?;
    Ok(FinalState { state: it.st })
}

impl<'a> Interp<'a> {
    /// Prepares an interpreter: allocates arrays (zero-initialized,
    /// version 0) from the declared bounds.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] if a parameter is unbound or an extent is
    /// non-positive/oversized.
    pub fn new(prog: &'a IrProgram, params: &HashMap<String, i64>) -> Result<Self, ExecError> {
        let st0 = State {
            arrays: Vec::new(),
            loop_vals: HashMap::new(),
            params: params.clone(),
        };
        let mut arrays = Vec::with_capacity(prog.arrays.len());
        let mut total: u64 = 0;
        for a in &prog.arrays {
            let mut lo = Vec::new();
            let mut extents = Vec::new();
            let mut count: u64 = 1;
            for (l, h) in &a.dims {
                let lv = st0
                    .eval_affine(prog, l)
                    .ok_or_else(|| ExecError::new(format!("array `{}`: unbound bound", a.name)))?;
                let hv = st0
                    .eval_affine(prog, h)
                    .ok_or_else(|| ExecError::new(format!("array `{}`: unbound bound", a.name)))?;
                if hv < lv {
                    return Err(ExecError::new(format!("array `{}`: empty extent", a.name)));
                }
                lo.push(lv);
                extents.push(hv - lv + 1);
                count = count.saturating_mul((hv - lv + 1) as u64);
            }
            total = total.saturating_add(count);
            if total > 64 * 1024 * 1024 {
                return Err(ExecError::new("arrays too large for interpretation"));
            }
            arrays.push(ArrayData {
                lo,
                extents,
                vals: vec![0.0; count as usize],
                vers: vec![0; count as usize],
            });
        }
        let names = prog
            .arrays
            .iter()
            .enumerate()
            .map(|(i, a)| (a.name.clone(), ArrayId(i as u32)))
            .collect();
        Ok(Interp {
            prog,
            st: State { arrays, ..st0 },
            names,
            fuel: 200_000_000,
        })
    }

    /// The current state (for monitors driving the run themselves).
    pub fn state(&self) -> &State {
        &self.st
    }

    /// Consumes the interpreter, returning the final state.
    pub fn into_state(self) -> FinalState {
        FinalState { state: self.st }
    }

    /// Executes the program from entry to exit.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] on evaluation failure, monitor failure, or
    /// fuel exhaustion.
    pub fn run(&mut self, mon: &mut dyn Monitor) -> Result<(), ExecError> {
        let prog = self.prog;
        let mut node = prog.cfg.entry;
        // Tracks whether a header is being entered from its preheader (next
        // iteration state).
        loop {
            mon.at_pos(prog, &self.st, Pos::top(node))?;
            match prog.cfg.node(node).kind {
                NodeKind::Exit => return Ok(()),
                NodeKind::PreHeader(l) => {
                    let li = prog.loop_info(l);
                    let lo = self
                        .st
                        .eval_affine(prog, &li.lo)
                        .ok_or_else(|| ExecError::new("unbound loop bound"))?;
                    let hi = self
                        .st
                        .eval_affine(prog, &li.hi)
                        .ok_or_else(|| ExecError::new("unbound loop bound"))?;
                    let trips = if li.step > 0 { hi >= lo } else { hi <= lo };
                    if trips {
                        self.st.loop_vals.insert(l, lo);
                        node = li.header;
                    } else {
                        node = li.postexit; // zero-trip edge
                    }
                }
                NodeKind::Header(l) => {
                    // The loop variable was set by the preheader (first
                    // iteration) or advanced at the backedge below; test it.
                    let li = prog.loop_info(l);
                    let hi = self
                        .st
                        .eval_affine(prog, &li.hi)
                        .ok_or_else(|| ExecError::new("unbound loop bound"))?;
                    let v = *self
                        .st
                        .loop_vals
                        .get(&l)
                        .ok_or_else(|| ExecError::new("loop variable unset at header"))?;
                    let more = if li.step > 0 { v <= hi } else { v >= hi };
                    if more {
                        // Body is the non-postexit successor.
                        node = *prog
                            .cfg
                            .node(node)
                            .succs
                            .iter()
                            .find(|&&s| s != li.postexit)
                            .ok_or_else(|| ExecError::new("header without body"))?;
                    } else {
                        node = li.postexit;
                    }
                }
                NodeKind::Entry | NodeKind::Block | NodeKind::PostExit(_) => {
                    if let NodeKind::PostExit(l) = prog.cfg.node(node).kind {
                        // The loop variable goes out of scope at the loop
                        // exit; a stale binding would shadow a later loop
                        // that reuses the same variable name.
                        self.st.loop_vals.remove(&l);
                    }
                    let stmts = prog.cfg.node(node).stmts.clone();
                    for (i, sid) in stmts.iter().enumerate() {
                        if i > 0 {
                            mon.at_pos(prog, &self.st, Pos { node, slot: i })?;
                        }
                        mon.before_stmt(prog, &self.st, *sid)?;
                        self.exec_stmt(*sid)?;
                    }
                    if !stmts.is_empty() {
                        mon.at_pos(
                            prog,
                            &self.st,
                            Pos {
                                node,
                                slot: stmts.len(),
                            },
                        )?;
                    }
                    node = self.next_node(node)?;
                }
            }
        }
    }

    /// Chooses the successor of a straight-line or branching node.
    fn next_node(&mut self, node: NodeId) -> Result<NodeId, ExecError> {
        let prog = self.prog;
        let succs = &prog.cfg.node(node).succs;
        match succs.len() {
            0 => Err(ExecError::new("dangling node")),
            1 => {
                let next = succs[0];
                self.maybe_advance_backedge(node, next);
                Ok(next)
            }
            _ => {
                // Branch: successor 0 is the then-arm by construction.
                let cond = prog
                    .branch_conds
                    .get(&node)
                    .ok_or_else(|| ExecError::new("branch without condition"))?
                    .clone();
                let v = self.eval_scalar(&cond)?;
                let next = if v != 0.0 { succs[0] } else { succs[1] };
                self.maybe_advance_backedge(node, next);
                Ok(next)
            }
        }
    }

    /// Advances the loop variable when following a backedge into a header.
    fn maybe_advance_backedge(&mut self, from: NodeId, to: NodeId) {
        if let NodeKind::Header(l) = self.prog.cfg.node(to).kind {
            // Entering a header from anywhere other than its preheader is a
            // backedge.
            let li = self.prog.loop_info(l);
            if from != li.preheader {
                if let Some(v) = self.st.loop_vals.get_mut(&l) {
                    *v += li.step;
                }
            }
        }
    }

    fn exec_stmt(&mut self, sid: StmtId) -> Result<(), ExecError> {
        let info = self.prog.stmt(sid).clone();
        match &info.kind {
            StmtKind::Cond { .. } => Ok(()), // evaluated at the branch
            StmtKind::Assign { lhs, rhs, .. } => self.exec_assign(lhs, rhs),
        }
    }

    fn exec_assign(&mut self, lhs: &AccessRef, rhs: &Expr) -> Result<(), ExecError> {
        let space = self.st.enumerate_access(self.prog, lhs)?;
        // Shape of the lhs section: positions of range dimensions.
        let lhs_ranges: Vec<usize> = lhs
            .subs
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s, SubscriptIr::Range { .. }))
            .map(|(i, _)| i)
            .collect();
        self.spend(space.len() as u64)?;

        // Fully evaluate the RHS first (F90 semantics).
        let mut writes: Vec<(usize, f64)> = Vec::with_capacity(space.len());
        let arr = lhs.array;
        for idx in &space {
            // The conformable position k = the range coordinates of idx.
            let k: Vec<i64> = lhs_ranges.iter().map(|&d| idx[d]).collect();
            // Convert to 0-based offsets within each lhs range.
            let k0 = self.range_offsets(lhs, &k)?;
            let v = self.eval_expr(rhs, &k0)?;
            let flat = self.st.arrays[arr.0 as usize]
                .flat(idx)
                .ok_or_else(|| ExecError::new("lhs index out of bounds"))?;
            writes.push((flat, v));
        }
        let data = &mut self.st.arrays[arr.0 as usize];
        for (flat, v) in writes {
            data.vals[flat] = v;
            data.vers[flat] += 1;
        }
        Ok(())
    }

    /// Converts absolute range coordinates of the lhs to 0-based offsets.
    fn range_offsets(&self, lhs: &AccessRef, k: &[i64]) -> Result<Vec<i64>, ExecError> {
        let mut out = Vec::with_capacity(k.len());
        let mut ki = 0;
        for s in &lhs.subs {
            if let SubscriptIr::Range { lo, step, .. } = s {
                let lo = self
                    .st
                    .eval_affine(self.prog, lo)
                    .ok_or_else(|| ExecError::new("unbound bound"))?;
                out.push((k[ki] - lo) / step);
                ki += 1;
            }
        }
        Ok(out)
    }

    fn spend(&mut self, n: u64) -> Result<(), ExecError> {
        if self.fuel < n {
            return Err(ExecError::new("execution fuel exhausted"));
        }
        self.fuel -= n;
        Ok(())
    }

    /// Evaluates an expression at conformable offset `k0` (0-based offsets
    /// into each section range, outermost first).
    fn eval_expr(&mut self, e: &Expr, k0: &[i64]) -> Result<f64, ExecError> {
        Ok(match e {
            Expr::Int(v) => *v as f64,
            Expr::Num(v) => *v,
            Expr::Neg(a) => -self.eval_expr(a, k0)?,
            Expr::Bin(op, a, b) => {
                let x = self.eval_expr(a, k0)?;
                let y = self.eval_expr(b, k0)?;
                match op {
                    BinOp::Add => x + y,
                    BinOp::Sub => x - y,
                    BinOp::Mul => x * y,
                    BinOp::Div => {
                        if y == 0.0 {
                            0.0 // Fortran codes guard this; keep totals finite
                        } else {
                            x / y
                        }
                    }
                    BinOp::Lt => f64::from(x < y),
                    BinOp::Gt => f64::from(x > y),
                    BinOp::Le => f64::from(x <= y),
                    BinOp::Ge => f64::from(x >= y),
                    BinOp::Eq => f64::from(x == y),
                    BinOp::Ne => f64::from(x != y),
                }
            }
            Expr::Sum(r) => {
                let (arr, elems) = self.resolve_full(r)?;
                self.spend(elems.len() as u64)?;
                let data = &self.st.arrays[arr.0 as usize];
                let mut acc = 0.0;
                for idx in &elems {
                    let flat = data
                        .flat(idx)
                        .ok_or_else(|| ExecError::new("sum index out of bounds"))?;
                    acc += data.vals[flat];
                }
                acc
            }
            Expr::Ref(r) => {
                // Parameter or loop variable?
                if r.subs.is_empty() {
                    if let Some(v) = self.st.params.get(&r.array) {
                        return Ok(*v as f64);
                    }
                    if let Some((_, l)) = self
                        .prog
                        .loops
                        .iter()
                        .enumerate()
                        .map(|(i, li)| (li, LoopId(i as u32)))
                        .rfind(|(li, l)| li.var == r.array && self.st.loop_vals.contains_key(l))
                    {
                        return Ok(self.st.loop_vals[&l] as f64);
                    }
                }
                let arr = *self
                    .names
                    .get(&r.array)
                    .ok_or_else(|| ExecError::new(format!("unknown name `{}`", r.array)))?;
                let idx = self.element_at(arr, r, k0)?;
                let data = &self.st.arrays[arr.0 as usize];
                let flat = data
                    .flat(&idx)
                    .ok_or_else(|| ExecError::new(format!("`{}` index out of bounds", r.array)))?;
                data.vals[flat]
            }
        })
    }

    /// The concrete element a reference touches at conformable offset `k0`.
    fn element_at(&self, arr: ArrayId, r: &ArrayRef, k0: &[i64]) -> Result<Vec<i64>, ExecError> {
        let info = self.prog.array(arr);
        let mut idx = Vec::with_capacity(info.rank());
        let mut ki = 0;
        if r.subs.is_empty() {
            // Whole-array reference: ranges over every dimension.
            for (d, (lo, _)) in info.dims.iter().enumerate() {
                let lo = self
                    .st
                    .eval_affine(self.prog, lo)
                    .ok_or_else(|| ExecError::new("unbound bound"))?;
                let off = k0.get(d).copied().unwrap_or(0);
                idx.push(lo + off);
            }
            return Ok(idx);
        }
        for s in &r.subs {
            match s {
                Subscript::Index(e) => idx.push(self.eval_int(e)?),
                Subscript::Range { lo, step, .. } => {
                    let lo = match lo {
                        Some(e) => self.eval_int(e)?,
                        None => {
                            let (dlo, _) = &info.dims[idx.len()];
                            self.st
                                .eval_affine(self.prog, dlo)
                                .ok_or_else(|| ExecError::new("unbound bound"))?
                        }
                    };
                    let off = k0.get(ki).copied().unwrap_or(0);
                    ki += 1;
                    idx.push(lo + off * step);
                }
            }
        }
        Ok(idx)
    }

    /// Resolves a `sum(...)` argument to its full element list.
    fn resolve_full(&self, r: &ArrayRef) -> Result<(ArrayId, Vec<Vec<i64>>), ExecError> {
        let arr = *self
            .names
            .get(&r.array)
            .ok_or_else(|| ExecError::new(format!("unknown name `{}`", r.array)))?;
        let info = self.prog.array(arr);
        let mut dims: Vec<Vec<i64>> = Vec::new();
        let subs: Vec<Subscript> = if r.subs.is_empty() {
            vec![Subscript::full(); info.rank()]
        } else {
            r.subs.clone()
        };
        for (d, s) in subs.iter().enumerate() {
            match s {
                Subscript::Index(e) => dims.push(vec![self.eval_int(e)?]),
                Subscript::Range { lo, hi, step } => {
                    let (dlo, dhi) = &info.dims[d];
                    let lo = match lo {
                        Some(e) => self.eval_int(e)?,
                        None => self
                            .st
                            .eval_affine(self.prog, dlo)
                            .ok_or_else(|| ExecError::new("unbound bound"))?,
                    };
                    let hi = match hi {
                        Some(e) => self.eval_int(e)?,
                        None => self
                            .st
                            .eval_affine(self.prog, dhi)
                            .ok_or_else(|| ExecError::new("unbound bound"))?,
                    };
                    let mut v = Vec::new();
                    let mut i = lo;
                    while (*step > 0 && i <= hi) || (*step < 0 && i >= hi) {
                        v.push(i);
                        i += step;
                    }
                    dims.push(v);
                }
            }
        }
        let mut out: Vec<Vec<i64>> = vec![Vec::new()];
        for d in &dims {
            let mut next = Vec::with_capacity(out.len() * d.len());
            for pre in &out {
                for &x in d {
                    let mut e = pre.clone();
                    e.push(x);
                    next.push(e);
                }
            }
            out = next;
        }
        Ok((arr, out))
    }

    /// Integer evaluation of a subscript / bound expression.
    fn eval_int(&self, e: &Expr) -> Result<i64, ExecError> {
        Ok(match e {
            Expr::Int(v) => *v,
            Expr::Num(v) => *v as i64,
            Expr::Neg(a) => -self.eval_int(a)?,
            Expr::Bin(op, a, b) => {
                let x = self.eval_int(a)?;
                let y = self.eval_int(b)?;
                match op {
                    BinOp::Add => x + y,
                    BinOp::Sub => x - y,
                    BinOp::Mul => x * y,
                    BinOp::Div => {
                        if y == 0 {
                            return Err(ExecError::new("division by zero in subscript"));
                        }
                        x / y
                    }
                    _ => return Err(ExecError::new("comparison in subscript")),
                }
            }
            Expr::Ref(r) if r.subs.is_empty() => {
                if let Some(v) = self.st.params.get(&r.array) {
                    *v
                } else if let Some(v) = self
                    .prog
                    .loops
                    .iter()
                    .enumerate()
                    .filter(|(_, li)| li.var == r.array)
                    .filter_map(|(i, _)| self.st.loop_vals.get(&LoopId(i as u32)))
                    .next_back()
                {
                    *v
                } else {
                    return Err(ExecError::new(format!(
                        "`{}` is not an integer variable",
                        r.array
                    )));
                }
            }
            _ => return Err(ExecError::new("unsupported subscript expression")),
        })
    }

    /// Scalar (rank-0) evaluation, used for branch conditions.
    fn eval_scalar(&mut self, e: &Expr) -> Result<f64, ExecError> {
        self.eval_expr(e, &[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str, params: &[(&str, i64)]) -> (IrProgram, FinalState) {
        let ast = gcomm_lang::parse_program(src).unwrap();
        let prog = gcomm_ir::lower(&ast).unwrap();
        let map: HashMap<String, i64> = params.iter().map(|(k, v)| (k.to_string(), *v)).collect();
        let fs = interpret(&prog, &map).unwrap();
        (prog, fs)
    }

    #[test]
    fn saxpy_values() {
        let (prog, fs) = run(
            "
program t
param n
real a(n), b(n), c(n) distribute (block)
a(1:n) = 2
b(1:n) = 3
c(1:n) = a(1:n) * b(1:n) + 1
end",
            &[("n", 8)],
        );
        for i in 1..=8 {
            assert_eq!(fs.value(&prog, "c", &[i]), Some(7.0));
        }
    }

    #[test]
    fn stencil_shifts_values() {
        let (prog, fs) = run(
            "
program t
param n
real a(n), c(n) distribute (block)
do i = 1, n
  a(i) = i
enddo
c(2:n) = a(1:n-1)
end",
            &[("n", 6)],
        );
        // c(i) = a(i-1) = i-1.
        for i in 2..=6 {
            assert_eq!(fs.value(&prog, "c", &[i]), Some((i - 1) as f64));
        }
        assert_eq!(fs.value(&prog, "c", &[1]), Some(0.0));
    }

    #[test]
    fn loop_accumulation_and_versions() {
        let (prog, fs) = run(
            "
program t
param n
real s
s = 0
do i = 1, n
  s = s + i
enddo
end",
            &[("n", 10)],
        );
        assert_eq!(fs.scalar(&prog, "s"), Some(55.0));
        let a = prog.array_by_name("s").unwrap();
        // 1 initial write + 10 loop writes.
        assert_eq!(fs.state.arrays[a.0 as usize].vers[0], 11);
    }

    #[test]
    fn zero_trip_loop_skips_body() {
        let (prog, fs) = run(
            "
program t
param n
real s
s = 7
do i = 5, 4
  s = 0
enddo
end",
            &[("n", 4)],
        );
        assert_eq!(fs.scalar(&prog, "s"), Some(7.0));
    }

    #[test]
    fn negative_step_loop() {
        let (prog, fs) = run(
            "
program t
param n
real a(n) distribute (block)
real s
s = 0
do i = n, 1, -1
  a(i) = s
  s = s + 1
enddo
end",
            &[("n", 4)],
        );
        // a(4)=0, a(3)=1, a(2)=2, a(1)=3.
        assert_eq!(fs.value(&prog, "a", &[1]), Some(3.0));
        assert_eq!(fs.value(&prog, "a", &[4]), Some(0.0));
    }

    #[test]
    fn branch_both_arms() {
        let src = "
program t
param n
real s, r
s = SVAL
if (s > 0) then
  r = 1
else
  r = 2
endif
end";
        let (prog, fs) = run(&src.replace("SVAL", "5"), &[("n", 4)]);
        assert_eq!(fs.scalar(&prog, "r"), Some(1.0));
        let (prog2, fs2) = run(&src.replace("SVAL", "-5"), &[("n", 4)]);
        assert_eq!(fs2.scalar(&prog2, "r"), Some(2.0));
    }

    #[test]
    fn sum_reduction_value() {
        let (prog, fs) = run(
            "
program t
param n
real g(n,n) distribute (block,block)
real s
g(1:n, 1:n) = 2
s = sum(g(1, 1:n)) + sum(g(2, 1:n))
end",
            &[("n", 5)],
        );
        assert_eq!(fs.scalar(&prog, "s"), Some(20.0));
    }

    #[test]
    fn strided_sections() {
        let (prog, fs) = run(
            "
program t
param n
real b(n) distribute (block)
b(1:n:2) = 1
b(2:n:2) = 2
end",
            &[("n", 6)],
        );
        assert_eq!(fs.value(&prog, "b", &[1]), Some(1.0));
        assert_eq!(fs.value(&prog, "b", &[2]), Some(2.0));
        assert_eq!(fs.value(&prog, "b", &[5]), Some(1.0));
        assert_eq!(fs.value(&prog, "b", &[6]), Some(2.0));
    }

    #[test]
    fn rhs_evaluated_before_store() {
        // Classic aliasing test: a(2:n) = a(1:n-1) must shift, not smear.
        let (prog, fs) = run(
            "
program t
param n
real a(n) distribute (block)
do i = 1, n
  a(i) = i
enddo
a(2:n) = a(1:n-1)
end",
            &[("n", 5)],
        );
        assert_eq!(fs.value(&prog, "a", &[2]), Some(1.0));
        assert_eq!(fs.value(&prog, "a", &[5]), Some(4.0));
    }

    #[test]
    fn two_dim_conformable_sections() {
        let (prog, fs) = run(
            "
program t
param n
real a(n,n), b(n,n) distribute (block,block)
do i = 1, n
  do j = 1, n
    a(i, j) = i * 10 + j
  enddo
enddo
b(2:n, 1:n-1) = a(1:n-1, 2:n)
end",
            &[("n", 4)],
        );
        // b(i,j) = a(i-1, j+1).
        assert_eq!(fs.value(&prog, "b", &[2, 1]), Some(12.0));
        assert_eq!(fs.value(&prog, "b", &[4, 3]), Some(34.0));
    }

    #[test]
    fn whole_array_reference() {
        let (prog, fs) = run(
            "
program t
param n
real a(n,n), b(n,n) distribute (block,block)
a(1:n, 1:n) = 3
b = a
end",
            &[("n", 3)],
        );
        assert_eq!(fs.value(&prog, "b", &[3, 3]), Some(3.0));
    }

    #[test]
    fn unbound_parameter_is_error() {
        let ast = gcomm_lang::parse_program(
            "program t\nparam n\nreal a(n) distribute (block)\na(1:n) = 0\nend",
        )
        .unwrap();
        let prog = gcomm_ir::lower(&ast).unwrap();
        assert!(interpret(&prog, &HashMap::new()).is_err());
    }

    #[test]
    fn kernels_interpret_cleanly() {
        for (bench, routine, src) in gcomm_kernels::all_kernels() {
            let ast = gcomm_lang::parse_program(src).unwrap();
            let prog = gcomm_ir::lower(&ast).unwrap();
            let mut params = HashMap::new();
            for p in &prog.params {
                params.insert(p.clone(), 8);
            }
            params.insert("nsteps".into(), 2);
            interpret(&prog, &params)
                .unwrap_or_else(|e| panic!("{bench}:{routine} failed to interpret: {e}"));
        }
    }
}
