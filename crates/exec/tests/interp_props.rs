//! Property tests for the reference interpreter: determinism, version
//! accounting, and agreement between the interpreter's write counts and a
//! static trip-count computation on loop-structured programs.

use std::collections::HashMap;

use proptest::prelude::*;

/// A tiny structured program family: `reps` timesteps over `writes`
/// whole-row assignments and one strided update.
fn src(reps: i64, writes: usize, stride2: bool) -> String {
    let mut body = String::new();
    for w in 0..writes {
        body.push_str(&format!("  a({}, 1:n) = a({}, 1:n) + 1\n", w + 1, w + 1));
    }
    if stride2 {
        body.push_str("  b(1:n:2, 1) = 1\n");
    }
    format!(
        "program p\nparam n\nreal a(n,n), b(n,n) distribute (block, block)\ndo t = 1, {reps}\n{body}enddo\nend\n"
    )
}

fn run(source: &str, n: i64) -> (gcomm_ir::IrProgram, gcomm_exec::FinalState) {
    let ast = gcomm_lang::parse_program(source).unwrap();
    let prog = gcomm_ir::lower(&ast).unwrap();
    let mut params = HashMap::new();
    params.insert("n".to_string(), n);
    let fs = gcomm_exec::interpret(&prog, &params).unwrap();
    (prog, fs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Each written element's version equals the number of times its
    /// statement executed; values accumulate accordingly.
    #[test]
    fn versions_match_trip_counts(reps in 1i64..6, writes in 1usize..4, n in 4i64..10) {
        let s = src(reps, writes, true);
        let (prog, fs) = run(&s, n);
        let a = prog.array_by_name("a").unwrap();
        let data = &fs.state.arrays[a.0 as usize];
        for w in 0..writes {
            for j in 1..=n {
                let flat = data.flat(&[(w + 1) as i64, j]).unwrap();
                prop_assert_eq!(data.vers[flat], reps as u64, "row {} col {}", w + 1, j);
                prop_assert!((data.vals[flat] - reps as f64).abs() < 1e-9);
            }
        }
        // Untouched rows keep version 0.
        if (writes as i64) < n {
            let flat = data.flat(&[n, 1]).unwrap();
            prop_assert_eq!(data.vers[flat], 0);
        }
        // The strided write touches odd rows of b only.
        let b = prog.array_by_name("b").unwrap();
        let bd = &fs.state.arrays[b.0 as usize];
        let odd = bd.flat(&[1, 1]).unwrap();
        prop_assert_eq!(bd.vers[odd], reps as u64);
        if n >= 2 {
            let even = bd.flat(&[2, 1]).unwrap();
            prop_assert_eq!(bd.vers[even], 0);
        }
    }

    /// Interpretation is deterministic.
    #[test]
    fn interpretation_deterministic(reps in 1i64..5, writes in 1usize..4) {
        let s = src(reps, writes, false);
        let (prog_a, fa) = run(&s, 8);
        let (_, fb) = run(&s, 8);
        let a = prog_a.array_by_name("a").unwrap();
        prop_assert_eq!(
            &fa.state.arrays[a.0 as usize].vals,
            &fb.state.arrays[a.0 as usize].vals
        );
    }
}
