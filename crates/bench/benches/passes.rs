//! Criterion benches: compile-time cost of each analysis pass and of the
//! three end-to-end strategies, per benchmark kernel.
//!
//! The paper reports no compilation times; these benches are supplementary
//! evidence that the global analysis is cheap (it was added to a production
//! compiler, pHPF).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use gcomm_core::{commgen, compile, strategy, AnalysisCtx, CombinePolicy, Strategy};
use gcomm_ssa::SsaForm;

fn bench_frontend(c: &mut Criterion) {
    let mut g = c.benchmark_group("frontend");
    for (bench, routine, src) in gcomm_kernels::all_kernels() {
        let id = format!("{bench}-{routine}");
        g.bench_with_input(BenchmarkId::new("parse", &id), &src, |b, src| {
            b.iter(|| gcomm_lang::parse_program(src).unwrap())
        });
        let ast = gcomm_lang::parse_program(src).unwrap();
        g.bench_with_input(BenchmarkId::new("lower", &id), &ast, |b, ast| {
            b.iter(|| gcomm_ir::lower(ast).unwrap())
        });
    }
    g.finish();
}

fn bench_analyses(c: &mut Criterion) {
    let mut g = c.benchmark_group("analysis");
    for (bench, routine, src) in gcomm_kernels::all_kernels() {
        let id = format!("{bench}-{routine}");
        let ast = gcomm_lang::parse_program(src).unwrap();
        let prog = gcomm_ir::lower(&ast).unwrap();
        g.bench_with_input(BenchmarkId::new("ssa", &id), &prog, |b, prog| {
            b.iter(|| SsaForm::build(prog))
        });
        g.bench_with_input(BenchmarkId::new("commgen", &id), &prog, |b, prog| {
            b.iter(|| commgen::generate(prog))
        });
        g.bench_with_input(BenchmarkId::new("placement", &id), &prog, |b, prog| {
            b.iter(|| {
                let entries = commgen::number(commgen::generate(prog));
                let ctx = AnalysisCtx::new(prog);
                strategy::run_with_policy(
                    &ctx,
                    entries,
                    Strategy::Global,
                    &CombinePolicy::default(),
                )
            })
        });
    }
    g.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("end-to-end");
    for (bench, routine, src) in gcomm_kernels::all_kernels() {
        let id = format!("{bench}-{routine}");
        for (name, s) in [
            ("orig", Strategy::Original),
            ("nored", Strategy::EarliestRE),
            ("comb", Strategy::Global),
        ] {
            g.bench_with_input(BenchmarkId::new(name, &id), &(src, s), |b, (src, s)| {
                b.iter(|| compile(src, *s).unwrap())
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_frontend, bench_analyses, bench_end_to_end);
criterion_main!(benches);
