//! Compile-time cost of each analysis pass and of the three end-to-end
//! strategies, per benchmark kernel.
//!
//! The paper reports no compilation times; these measurements are
//! supplementary evidence that the global analysis is cheap (it was added
//! to a production compiler, pHPF). Plain `harness = false` timing loop —
//! the build environment has no benchmarking crates.
//!
//! Usage: `cargo bench -p gcomm-bench` (add `-- <substring>` to filter).

use std::time::Instant;

use gcomm_core::{commgen, compile, strategy, AnalysisCtx, CombinePolicy, Strategy};
use gcomm_ssa::SsaForm;

/// Times `f` with warmup, repeating until ~50 ms elapse, and reports the
/// mean per-iteration time in microseconds.
fn time_us<F: FnMut()>(mut f: F) -> f64 {
    for _ in 0..3 {
        f();
    }
    let mut iters: u64 = 0;
    let start = Instant::now();
    while start.elapsed().as_millis() < 50 || iters < 10 {
        f();
        iters += 1;
    }
    start.elapsed().as_secs_f64() * 1e6 / iters as f64
}

fn report(group: &str, name: &str, id: &str, us: f64, filter: Option<&str>) {
    let label = format!("{group}/{name}/{id}");
    if let Some(f) = filter {
        if !label.contains(f) {
            return;
        }
    }
    println!("{label:<44} {us:>10.1} us/iter");
}

fn main() {
    let filter_arg: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with("--"))
        .collect();
    let filter = filter_arg.first().map(String::as_str);

    for (bench, routine, src) in gcomm_kernels::all_kernels() {
        let id = format!("{bench}-{routine}");

        report(
            "frontend",
            "parse",
            &id,
            time_us(|| {
                gcomm_lang::parse_program(src).unwrap();
            }),
            filter,
        );
        let ast = gcomm_lang::parse_program(src).unwrap();
        report(
            "frontend",
            "lower",
            &id,
            time_us(|| {
                gcomm_ir::lower(&ast).unwrap();
            }),
            filter,
        );

        let prog = gcomm_ir::lower(&ast).unwrap();
        report(
            "analysis",
            "ssa",
            &id,
            time_us(|| {
                SsaForm::build(&prog);
            }),
            filter,
        );
        report(
            "analysis",
            "commgen",
            &id,
            time_us(|| {
                commgen::generate(&prog);
            }),
            filter,
        );
        report(
            "analysis",
            "placement",
            &id,
            time_us(|| {
                let entries = commgen::number(commgen::generate(&prog));
                let ctx = AnalysisCtx::new(&prog);
                strategy::run_with_policy(
                    &ctx,
                    entries,
                    Strategy::Global,
                    &CombinePolicy::default(),
                );
            }),
            filter,
        );

        for (name, s) in [
            ("orig", Strategy::Original),
            ("nored", Strategy::EarliestRE),
            ("comb", Strategy::Global),
        ] {
            report(
                "end-to-end",
                name,
                &id,
                time_us(|| {
                    compile(src, s).unwrap();
                }),
                filter,
            );
        }
    }
}
