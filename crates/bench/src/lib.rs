//! # gcomm-bench — the benchmark harness
//!
//! Shared plumbing for the binaries that regenerate every table and figure
//! of the paper's evaluation (see DESIGN.md's experiment index and
//! EXPERIMENTS.md for results):
//!
//! * `table_static_counts` — the static message-count table (E1),
//! * `fig5_network_profile` — bandwidth curves (E2),
//! * `fig10_runtimes` — normalized running-time bars (E3–E8),
//! * `ablation_greedy`, `ablation_threshold`, `ablation_subset` — A1–A3.

use gcomm_core::{compile, lower_to_sim, Compiled, CoreError, SimConfig, Strategy};
use gcomm_machine::fault::FaultPlan;
use gcomm_machine::profile::ProfilePoint;
use gcomm_machine::{simulate, simulate_with_faults, NetworkModel, ProcGrid, SimReport, SimResult};

/// Timesteps simulated per run (everything scales linearly in this).
pub const NSTEPS: i64 = 10;

/// Identifies one of the two evaluation platforms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Platform {
    /// IBM SP2 with MPL, P = 25 (paper's rows a, b, e).
    Sp2,
    /// Berkeley NOW with MPICH over Myrinet, P = 8 (rows c, d, f).
    Now,
}

impl Platform {
    /// Parses a platform name.
    pub fn parse(s: &str) -> Option<Platform> {
        match s {
            "sp2" => Some(Platform::Sp2),
            "now" => Some(Platform::Now),
            _ => None,
        }
    }

    /// The network model.
    pub fn model(&self) -> NetworkModel {
        match self {
            Platform::Sp2 => NetworkModel::sp2(),
            Platform::Now => NetworkModel::now_myrinet(),
        }
    }

    /// The paper's processor count for this platform.
    pub fn nproc(&self) -> u32 {
        match self {
            Platform::Sp2 => 25,
            Platform::Now => 8,
        }
    }
}

/// One row of a Figure-10-style runtime experiment.
#[derive(Debug, Clone)]
pub struct RuntimeRow {
    /// Problem size `n`.
    pub n: i64,
    /// Baseline simulation.
    pub orig: SimResult,
    /// Earliest + redundancy elimination.
    pub nored: SimResult,
    /// The paper's algorithm.
    pub comb: SimResult,
}

impl RuntimeRow {
    /// Total time of a strategy, normalized so `orig` is 1.0.
    pub fn normalized(&self, r: &SimResult) -> f64 {
        r.total_us() / self.orig.total_us().max(1e-12)
    }

    /// Communication-time reduction factor of `comb` over `orig`.
    pub fn comm_speedup(&self) -> f64 {
        self.orig.comm_us / self.comb.comm_us.max(1e-12)
    }
}

/// Grid rank needed by a compiled kernel (max distributed dims).
pub fn grid_rank(c: &Compiled) -> usize {
    c.prog
        .arrays
        .iter()
        .map(|a| a.distributed_dims().len())
        .max()
        .unwrap_or(1)
        .max(1)
}

/// Simulates one kernel at size `n` on a platform under one strategy.
///
/// # Errors
///
/// Returns [`CoreError`] if the kernel fails to compile.
pub fn simulate_kernel(
    src: &str,
    strategy: Strategy,
    platform: Platform,
    n: i64,
) -> Result<SimResult, CoreError> {
    let c = compile(src, strategy)?;
    let grid = ProcGrid::balanced(platform.nproc(), grid_rank(&c));
    let cfg = SimConfig::uniform(&c, grid, n).with("nsteps", NSTEPS);
    let prog = lower_to_sim(&c, &cfg);
    Ok(simulate(&prog, &platform.model()))
}

/// Runs all three strategies for one kernel/platform/size.
///
/// # Errors
///
/// Returns [`CoreError`] if the kernel fails to compile.
pub fn runtime_row(src: &str, platform: Platform, n: i64) -> Result<RuntimeRow, CoreError> {
    Ok(RuntimeRow {
        n,
        orig: simulate_kernel(src, Strategy::Original, platform, n)?,
        nored: simulate_kernel(src, Strategy::EarliestRE, platform, n)?,
        comb: simulate_kernel(src, Strategy::Global, platform, n)?,
    })
}

/// Like [`simulate_kernel`], but executes under a fault plan and returns
/// the full report with retry/backoff statistics.
///
/// # Errors
///
/// Returns [`CoreError`] if the kernel fails to compile.
pub fn simulate_kernel_with_faults(
    src: &str,
    strategy: Strategy,
    platform: Platform,
    n: i64,
    plan: &FaultPlan,
) -> Result<SimReport, CoreError> {
    let c = compile(src, strategy)?;
    let grid = ProcGrid::balanced(platform.nproc(), grid_rank(&c));
    let cfg = SimConfig::uniform(&c, grid, n).with("nsteps", NSTEPS);
    let prog = lower_to_sim(&c, &cfg);
    Ok(simulate_with_faults(&prog, &platform.model(), plan))
}

/// One Figure-10-style row executed under a fault plan.
#[derive(Debug, Clone)]
pub struct FaultRow {
    /// Problem size `n`.
    pub n: i64,
    /// Baseline simulation.
    pub orig: SimReport,
    /// Earliest + redundancy elimination.
    pub nored: SimReport,
    /// The paper's algorithm.
    pub comb: SimReport,
}

impl FaultRow {
    /// Total time of a strategy, normalized so `orig` is 1.0.
    pub fn normalized(&self, r: &SimReport) -> f64 {
        r.total_us() / self.orig.total_us().max(1e-12)
    }
}

/// Runs all three strategies for one kernel/platform/size under a fault
/// plan. Each strategy replays the same plan (same seed), so they face the
/// same adversary.
///
/// # Errors
///
/// Returns [`CoreError`] if the kernel fails to compile.
pub fn fault_row(
    src: &str,
    platform: Platform,
    n: i64,
    plan: &FaultPlan,
) -> Result<FaultRow, CoreError> {
    Ok(FaultRow {
        n,
        orig: simulate_kernel_with_faults(src, Strategy::Original, platform, n, plan)?,
        nored: simulate_kernel_with_faults(src, Strategy::EarliestRE, platform, n, plan)?,
        comb: simulate_kernel_with_faults(src, Strategy::Global, platform, n, plan)?,
    })
}

/// Minimal JSON emitters for the benchmark binaries (the build environment
/// has no serialization crates; these write the same shapes by hand —
/// `f64` via Rust's shortest-roundtrip `Display`).
pub mod json {
    use super::{FaultRow, ProfilePoint, RuntimeRow, SimReport, SimResult};

    /// `SimResult` as a JSON object.
    pub fn sim_result(r: &SimResult) -> String {
        format!(
            "{{\"compute_us\":{},\"comm_us\":{},\"messages\":{},\"bytes\":{}}}",
            r.compute_us, r.comm_us, r.messages, r.bytes
        )
    }

    /// `SimReport` as a JSON object (result + fault counters).
    pub fn sim_report(r: &SimReport) -> String {
        let f = &r.faults;
        format!(
            "{{\"result\":{},\"faults\":{{\"retransmits\":{},\"timeouts\":{},\
             \"backoff_us\":{},\"fallbacks\":{},\"giveups\":{},\
             \"degraded_phases\":{},\"straggled_phases\":{}}}}}",
            sim_result(&r.result),
            f.retransmits,
            f.timeouts,
            f.backoff_us,
            f.fallbacks,
            f.giveups,
            f.degraded_phases,
            f.straggled_phases
        )
    }

    /// An array of Figure-10 rows.
    pub fn runtime_rows(rows: &[RuntimeRow]) -> String {
        let items: Vec<String> = rows
            .iter()
            .map(|row| {
                format!(
                    "{{\"n\":{},\"orig\":{},\"nored\":{},\"comb\":{}}}",
                    row.n,
                    sim_result(&row.orig),
                    sim_result(&row.nored),
                    sim_result(&row.comb)
                )
            })
            .collect();
        format!("[{}]", items.join(","))
    }

    /// An array of fault-injected Figure-10 rows.
    pub fn fault_rows(rows: &[FaultRow]) -> String {
        let items: Vec<String> = rows
            .iter()
            .map(|row| {
                format!(
                    "{{\"n\":{},\"orig\":{},\"nored\":{},\"comb\":{}}}",
                    row.n,
                    sim_report(&row.orig),
                    sim_report(&row.nored),
                    sim_report(&row.comb)
                )
            })
            .collect();
        format!("[{}]", items.join(","))
    }

    /// An array of Figure-5 profile points.
    pub fn profile_points(pts: &[ProfilePoint]) -> String {
        let items: Vec<String> = pts
            .iter()
            .map(|p| {
                format!(
                    "{{\"bytes\":{},\"bcopy_mb\":{},\"inject_mb\":{},\"recv_mb\":{}}}",
                    p.bytes, p.bcopy_mb, p.inject_mb, p.recv_mb
                )
            })
            .collect();
        format!("[{}]", items.join(","))
    }
}

/// Report generators shared by the benchmark binaries and the golden-file
/// tests: each renders the exact text a `results/*.txt` artifact holds, so
/// the tier-1 suite can detect drift by regenerating and comparing.
pub mod reports {
    use gcomm_core::optimal::comm_cost;
    use gcomm_core::{
        compile, optimal_placement_jobs, CombinePolicy, CommKind, SimConfig, Strategy,
    };
    use gcomm_machine::{NetworkModel, ProcGrid};
    use std::fmt::Write as _;

    /// Runs `build` for every item on `jobs` workers, each under a fresh
    /// stats registry, then merges the per-item snapshots into the
    /// caller's registry *in item order* and concatenates the returned
    /// text chunks. The merged counters (and the report text) are
    /// bit-identical for any worker count — the determinism contract of
    /// DESIGN.md §11.
    pub fn par_report<T: Sync>(
        jobs: usize,
        items: &[T],
        build: impl Fn(&T) -> String + Sync,
    ) -> String {
        // The per-item registries exist only to route worker-side counters
        // back to the caller's registry deterministically; when the caller
        // collects nothing, skip them so every counter/span call inside
        // `build` keeps its no-registry fast path (a no-op).
        let Some(sink) = gcomm_obs::current() else {
            return gcomm_par::map(jobs, items, |_, item| build(item)).concat();
        };
        let chunks = gcomm_par::map(jobs, items, |_, item| {
            let reg = gcomm_obs::Registry::new();
            let chunk = {
                let _scope = gcomm_obs::install(reg.clone());
                build(item)
            };
            (chunk, reg.snapshot())
        });
        let mut out = String::new();
        for (chunk, snap) in chunks {
            sink.absorb(&snap);
            out.push_str(&chunk);
        }
        out
    }

    /// Default search budget for [`compare_optimal_text`], in **nodes
    /// expanded** (entry bindings), the branch-and-bound budget unit.
    /// Before the branch-and-bound search this same number bounded
    /// *assignments scored*; a node is strictly cheaper than an
    /// assignment (pruned subtrees never reach the simulator), so the
    /// same numeric budget now certifies far larger programs. Small
    /// enough to regenerate in a debug-build test run.
    pub const DEFAULT_OPTIMAL_BUDGET: u64 = 20_000;

    /// The static message count table (Figure 10, top; `-v` appends the
    /// global placement report per kernel). Kernels compile on `jobs`
    /// workers; the table rows (and any merged stats) come out in kernel
    /// order regardless of the worker count.
    pub fn table_static_counts_text(verbose: bool, jobs: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<10} {:<9} {:<5} {:>6} {:>7} {:>6}",
            "Benchmark", "Routine", "Type", "orig", "nored", "comb"
        );
        let kernels = gcomm_kernels::all_kernels();
        out.push_str(&par_report(jobs, &kernels, |&(bench, routine, src)| {
            let mut out = String::new();
            let orig = compile(src, Strategy::Original).expect("compile orig");
            let nored = compile(src, Strategy::EarliestRE).expect("compile nored");
            let comb = compile(src, Strategy::Global).expect("compile comb");
            for (ty, kind) in [("NNC", CommKind::Nnc), ("SUM", CommKind::Reduction)] {
                let o = orig.schedule.count_kind(kind);
                if o == 0 {
                    continue;
                }
                let _ = writeln!(
                    out,
                    "{:<10} {:<9} {:<5} {:>6} {:>7} {:>6}",
                    bench,
                    routine,
                    ty,
                    o,
                    nored.schedule.count_kind(kind),
                    comb.schedule.count_kind(kind)
                );
            }
            let og = orig.schedule.count_kind(CommKind::General);
            if og > 0 {
                let _ = writeln!(
                    out,
                    "{bench:<10} {routine:<9} GEN   {og:>6} {:>7} {:>6}",
                    nored.schedule.count_kind(CommKind::General),
                    comb.schedule.count_kind(CommKind::General)
                );
            }
            if verbose {
                let _ = writeln!(
                    out,
                    "--- {bench}:{routine} global placement ---\n{}",
                    comb.report()
                );
            }
            out
        }));
        out
    }

    /// The kernel cases `compare_optimal` measures (name, source, grid
    /// axes for the canonical scoring configuration).
    fn compare_optimal_cases() -> Vec<(&'static str, &'static str, usize)> {
        vec![
            ("fig3-f90", gcomm_kernels::FIG3_F90, 2),
            ("fig3-scalarized", gcomm_kernels::FIG3_SCALARIZED, 2),
            ("fig4-running", gcomm_kernels::FIG4_RUNNING, 2),
            ("trimesh-gauss", gcomm_kernels::TRIMESH_GAUSS, 2),
            ("hydflo-hydro", gcomm_kernels::HYDFLO_HYDRO, 3),
        ]
    }

    /// The greedy-vs-optimal comparison table (§6.1 extension) under a
    /// **node** budget (`--budget <n>` bounds search-tree nodes expanded,
    /// not assignments scored — one node is one entry binding, and pruned
    /// subtrees never reach the simulator). The branch-and-bound search
    /// inside each case fans out over `jobs` workers; the table —
    /// including the node and prune counts — is bit-identical for any
    /// `jobs` (DESIGN.md §16 determinism contract).
    pub fn compare_optimal_text(budget: u64, jobs: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<16} {:>10} {:>10} {:>8} {:>8} {:>7} {:>8} {:>7} {:>10}",
            "kernel",
            "greedy us",
            "best us",
            "gap",
            "nodes",
            "leaves",
            "pr_bnd",
            "pr_dom",
            "certified"
        );
        for (name, src, axes) in compare_optimal_cases() {
            let c = compile(src, Strategy::Global).expect("compiles");
            let cfg = SimConfig::uniform(&c, ProcGrid::balanced(8, axes), 48).with("nsteps", 4);
            let net = NetworkModel::sp2();
            let greedy = comm_cost(&c, &cfg, &net);
            // Fresh node budget per kernel: each search gets the full
            // allowance, matching the historical per-call cap.
            let b = gcomm_guard::Budget::steps(budget);
            let Some(opt) =
                optimal_placement_jobs(&c, &CombinePolicy::default(), &cfg, &net, &b, jobs)
            else {
                let _ = writeln!(out, "{name:<16} (no communication)");
                continue;
            };
            let gap = (greedy - opt.comm_us) / opt.comm_us * 100.0;
            let _ = writeln!(
                out,
                "{:<16} {:>10.1} {:>10.1} {:>+7.2}% {:>8} {:>7} {:>8} {:>7} {:>10}",
                name,
                greedy,
                opt.comm_us,
                gap,
                opt.nodes,
                opt.leaves,
                opt.pruned_bound,
                opt.pruned_dominance,
                if opt.truncated { "no" } else { "yes" }
            );
        }
        let _ = writeln!(
            out,
            "\ngap = greedy communication time above the best assignment found\n\
             certified = the branch-and-bound search covered the whole space \
             within the node budget"
        );
        out
    }

    /// `BENCH_optimal.json`: the branch-and-bound search vs. the retained
    /// exhaustive enumeration at the **same** budget, with wall times —
    /// the measured evidence behind the README's certified-size frontier.
    /// Wall times vary run to run; everything else is deterministic.
    pub fn compare_optimal_json(budget: u64, jobs: usize) -> String {
        let mut rows = Vec::new();
        for (name, src, axes) in compare_optimal_cases() {
            let c = compile(src, Strategy::Global).expect("compiles");
            let cfg = SimConfig::uniform(&c, ProcGrid::balanced(8, axes), 48).with("nsteps", 4);
            let net = NetworkModel::sp2();
            let policy = CombinePolicy::default();
            let greedy = comm_cost(&c, &cfg, &net);

            let t0 = std::time::Instant::now();
            let bb = optimal_placement_jobs(
                &c,
                &policy,
                &cfg,
                &net,
                &gcomm_guard::Budget::steps(budget),
                jobs,
            );
            let bb_ms = t0.elapsed().as_secs_f64() * 1e3;
            let Some(bb) = bb else { continue };

            let t1 = std::time::Instant::now();
            let ex = gcomm_core::exhaustive_placement_jobs(
                &c,
                &policy,
                &cfg,
                &net,
                &gcomm_guard::Budget::steps(budget),
                jobs,
            )
            .expect("same front half");
            let ex_ms = t1.elapsed().as_secs_f64() * 1e3;

            rows.push(format!(
                "{{\"kernel\":\"{name}\",\"greedy_us\":{greedy:.3},\
                 \"space\":{space},\
                 \"bnb\":{{\"best_us\":{bb_us:.3},\"nodes\":{bb_nodes},\
                 \"leaves\":{bb_leaves},\"pruned_bound\":{pb},\
                 \"pruned_dominance\":{pd},\"certified\":{bb_cert},\
                 \"wall_ms\":{bb_ms:.2}}},\
                 \"enumeration\":{{\"best_us\":{ex_us:.3},\
                 \"assignments\":{ex_nodes},\"certified\":{ex_cert},\
                 \"wall_ms\":{ex_ms:.2}}}}}",
                space = bb.space,
                bb_us = bb.comm_us,
                bb_nodes = bb.nodes,
                bb_leaves = bb.leaves,
                pb = bb.pruned_bound,
                pd = bb.pruned_dominance,
                bb_cert = !bb.truncated,
                ex_us = ex.comm_us,
                ex_nodes = ex.nodes,
                ex_cert = !ex.truncated,
            ));
        }
        format!(
            "{{\"schema\":\"gcomm-bench-optimal/v1\",\
             \"budget_nodes\":{budget},\"jobs\":{jobs},\"kernels\":[{}]}}\n",
            rows.join(",")
        )
    }
}

/// The problem sizes the paper plots per (platform, benchmark).
pub fn paper_sizes(platform: Platform, bench: &str) -> Vec<i64> {
    match (platform, bench) {
        (Platform::Sp2, "shallow") => vec![128, 192, 256, 384, 512],
        (Platform::Sp2, "gravity") => vec![100, 125, 150, 175, 200, 225, 250, 275, 300, 325],
        (Platform::Now, "shallow") => vec![400, 450, 500],
        (Platform::Now, "gravity") => vec![100, 124, 150, 174, 200, 224, 250, 274],
        (Platform::Sp2, "hydflo") => vec![28, 32, 40, 48, 56, 64],
        (Platform::Now, "trimesh") => vec![192, 256, 320],
        _ => vec![128, 256, 512],
    }
}

/// Source for a benchmark name used in the runtime figures (the dominant
/// routine: `shallow` and `gravity` are whole programs; `trimesh` plots
/// `normdot`, `hydflo` plots `flux`).
pub fn runtime_source(bench: &str) -> Option<&'static str> {
    match bench {
        "shallow" => Some(gcomm_kernels::SHALLOW),
        "gravity" => Some(gcomm_kernels::GRAVITY),
        "trimesh" => Some(gcomm_kernels::TRIMESH_NORMDOT),
        "hydflo" => Some(gcomm_kernels::HYDFLO_FLUX),
        _ => None,
    }
}

/// Renders an ASCII bar of width proportional to `frac` (max 40 columns);
/// the first `shaded` fraction is drawn dark (`#`), the rest light (`-`),
/// mirroring Figure 10's dark network segment.
pub fn bar(frac: f64, shaded: f64) -> String {
    let width = (frac.clamp(0.0, 1.5) * 40.0).round() as usize;
    let dark = (shaded.clamp(0.0, 1.5) * 40.0).round() as usize;
    let mut s = String::new();
    for i in 0..width {
        s.push(if i < dark { '#' } else { '-' });
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn platforms_parse() {
        assert_eq!(Platform::parse("sp2"), Some(Platform::Sp2));
        assert_eq!(Platform::parse("now"), Some(Platform::Now));
        assert_eq!(Platform::parse("cray"), None);
        assert_eq!(Platform::Sp2.nproc(), 25);
        assert_eq!(Platform::Now.nproc(), 8);
    }

    #[test]
    fn runtime_row_shapes_hold_for_shallow() {
        let row = runtime_row(gcomm_kernels::SHALLOW, Platform::Sp2, 512).unwrap();
        // comb ≤ nored ≤ orig in communication time.
        assert!(row.comb.comm_us <= row.nored.comm_us + 1e-9);
        assert!(row.nored.comm_us <= row.orig.comm_us + 1e-9);
        // Communication cost cut by at least 2x (paper: "in many cases ...
        // reduced by a factor of two").
        assert!(row.comm_speedup() >= 2.0, "speedup {}", row.comm_speedup());
        // Compute time unchanged across strategies.
        assert!((row.orig.compute_us - row.comb.compute_us).abs() < 1e-6);
    }

    #[test]
    fn now_gains_exceed_sp2_gains() {
        // §5: higher overall performance gains on NOW than SP2 because the
        // NOW has higher overhead (startup dominates).
        let sp2 = runtime_row(gcomm_kernels::SHALLOW, Platform::Sp2, 512).unwrap();
        let now = runtime_row(gcomm_kernels::SHALLOW, Platform::Now, 512).unwrap();
        let gain_sp2 = 1.0 - sp2.normalized(&sp2.comb);
        let gain_now = 1.0 - now.normalized(&now.comb);
        assert!(
            gain_now > gain_sp2,
            "NOW gain {gain_now:.3} must exceed SP2 gain {gain_sp2:.3}"
        );
    }

    #[test]
    fn bar_rendering() {
        assert_eq!(bar(1.0, 0.0).len(), 40);
        assert!(bar(0.5, 0.25).starts_with('#'));
        assert!(bar(0.5, 0.0).starts_with('-'));
    }
}
