//! Ablation A1: the greedy consideration order of §4.7.
//!
//! The paper processes the most-constrained entry first (after Click's
//! global code motion heuristic). This ablation compares that order against
//! least-constrained-first and plain program order on every kernel.

use gcomm_bench::reports;
use gcomm_core::{compile_with_policy, CombinePolicy, GreedyOrder, Strategy};
use gcomm_serve::cli;

fn main() {
    const BIN: &str = "ablation_greedy";
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if cli::take_version_flag(&mut args) {
        println!("{}", cli::version_line(BIN));
        return;
    }
    let jobs = cli::or_exit2(BIN, gcomm_par::take_jobs_flag(&mut args));
    let _stats = cli::or_exit2(BIN, cli::StatsOpts::extract(&mut args)).install();
    println!(
        "{:<10} {:<9} {:>16} {:>17} {:>14}",
        "Benchmark", "Routine", "most-constrained", "least-constrained", "program-order"
    );
    let kernels = gcomm_kernels::all_kernels();
    let table = reports::par_report(jobs, &kernels, |&(bench, routine, src)| {
        let count = |order: GreedyOrder| {
            let policy = CombinePolicy {
                order,
                ..CombinePolicy::default()
            };
            compile_with_policy(src, Strategy::Global, &policy)
                .expect("kernel compiles")
                .static_messages()
        };
        format!(
            "{:<10} {:<9} {:>16} {:>17} {:>14}\n",
            bench,
            routine,
            count(GreedyOrder::MostConstrained),
            count(GreedyOrder::LeastConstrained),
            count(GreedyOrder::ProgramOrder)
        )
    });
    print!("{table}");
}
