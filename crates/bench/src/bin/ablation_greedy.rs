//! Ablation A1: the greedy consideration order of §4.7.
//!
//! The paper processes the most-constrained entry first (after Click's
//! global code motion heuristic). This ablation compares that order against
//! least-constrained-first and plain program order on every kernel.

use gcomm_bench::statscli::StatsOpts;
use gcomm_core::{compile_with_policy, CombinePolicy, GreedyOrder, Strategy};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let _stats = StatsOpts::extract(&mut args).install();
    println!(
        "{:<10} {:<9} {:>16} {:>17} {:>14}",
        "Benchmark", "Routine", "most-constrained", "least-constrained", "program-order"
    );
    for (bench, routine, src) in gcomm_kernels::all_kernels() {
        let count = |order: GreedyOrder| {
            let policy = CombinePolicy {
                order,
                ..CombinePolicy::default()
            };
            compile_with_policy(src, Strategy::Global, &policy)
                .expect("kernel compiles")
                .static_messages()
        };
        println!(
            "{:<10} {:<9} {:>16} {:>17} {:>14}",
            bench,
            routine,
            count(GreedyOrder::MostConstrained),
            count(GreedyOrder::LeastConstrained),
            count(GreedyOrder::ProgramOrder)
        );
    }
}
