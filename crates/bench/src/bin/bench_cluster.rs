//! Load generator for the sharded compile cluster (DESIGN.md §13). Two
//! phases, one artifact (`BENCH_cluster.json`):
//!
//! * **Scaling** — in-process shards behind a router at 1..=4 shards,
//!   driven with all-cold compiles (every request a distinct program, so
//!   the shards' compile pipelines are the bottleneck, not the router
//!   hop); records throughput and latency percentiles per shard count.
//! * **Chaos** — real `gcommc serve` shard processes behind an in-process
//!   router; one shard is SIGKILLed after a third of the run has
//!   completed, guaranteed mid-flight. Records tail latency across the
//!   kill and asserts the robustness contract: zero failed requests
//!   (every request answered `ok`, none even `unavailable`).
//!
//! The chaos phase needs the `gcommc` binary; pass `--gcommc <path>` (or
//! build `target/release/gcommc` first). Without it the phase is skipped
//! and recorded as `null`.
//!
//! Usage: `bench_cluster [--threads <n>] [--requests <m>] [--jobs <n>]
//! [--gcommc <path>] [--out <path>]`

use std::net::SocketAddr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use gcomm_core::Strategy;
use gcomm_serve::cluster::{spawn_router, ClusterConfig, ShardProc};
use gcomm_serve::{cli, compile_request, Client, ServerHandle, ServiceConfig};

const BIN: &str = "bench_cluster";

/// A distinct variant of the SHALLOW kernel per request index (trailing
/// newlines change the cache key, not the program): every request is a
/// cold compile of a real kernel, so shard CPU is what's being measured.
fn source(i: usize) -> String {
    let mut s = gcomm_kernels::SHALLOW.to_string();
    for _ in 0..=i {
        s.push('\n');
    }
    s
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[idx]
}

fn latency_block(mut us: Vec<f64>) -> String {
    us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    format!(
        "{{\"samples\":{},\"p50_us\":{},\"p95_us\":{},\"p99_us\":{},\"max_us\":{}}}",
        us.len(),
        percentile(&us, 0.50),
        percentile(&us, 0.95),
        percentile(&us, 0.99),
        us.last().copied().unwrap_or(0.0)
    )
}

/// Drives `threads × requests` cold compiles, bumping `done` after each
/// response; returns (latencies_us, ok, unavailable, other_errors).
fn drive(
    addr: SocketAddr,
    threads: usize,
    requests: usize,
    done: Arc<AtomicUsize>,
) -> (Vec<f64>, u64, u64, u64) {
    let workers: Vec<_> = (0..threads)
        .map(|t| {
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect client");
                let mut us: Vec<f64> = Vec::new();
                let (mut ok, mut unavailable, mut errors) = (0u64, 0u64, 0u64);
                for j in 0..requests {
                    let i = t * requests + j;
                    let req = compile_request(i as u64, &source(i), Strategy::Global, None, None);
                    let start = Instant::now();
                    match client.request(&req) {
                        Ok(resp) if resp.contains("\"ok\":true") => {
                            us.push(start.elapsed().as_secs_f64() * 1e6);
                            ok += 1;
                        }
                        Ok(resp) if resp.contains("\"error\":\"unavailable\"") => {
                            us.push(start.elapsed().as_secs_f64() * 1e6);
                            unavailable += 1;
                        }
                        _ => errors += 1,
                    }
                    done.fetch_add(1, Ordering::Relaxed);
                }
                (us, ok, unavailable, errors)
            })
        })
        .collect();
    let mut all_us = Vec::new();
    let (mut ok, mut unavailable, mut errors) = (0u64, 0u64, 0u64);
    for w in workers {
        let (us, o, u, e) = w.join().expect("worker thread");
        all_us.extend(us);
        ok += o;
        unavailable += u;
        errors += e;
    }
    (all_us, ok, unavailable, errors)
}

fn router_config(threads: usize, jobs: usize) -> ClusterConfig {
    ClusterConfig {
        jobs: (threads + 2).max(jobs),
        ..ClusterConfig::default()
    }
}

/// One scaling measurement: router over `n` in-process shards.
fn scaling_run(n: usize, jobs: usize, threads: usize, requests: usize) -> String {
    let shards: Vec<ServerHandle> = (0..n)
        .map(|_| {
            gcomm_serve::spawn(
                "127.0.0.1:0",
                ServiceConfig {
                    jobs,
                    ..ServiceConfig::default()
                },
            )
            .expect("bind shard")
        })
        .collect();
    let addrs: Vec<SocketAddr> = shards.iter().map(ServerHandle::addr).collect();
    let router =
        spawn_router("127.0.0.1:0", &addrs, router_config(threads, jobs)).expect("bind router");

    let t0 = Instant::now();
    let (us, ok, unavailable, errors) = drive(
        router.addr(),
        threads,
        requests,
        Arc::new(AtomicUsize::new(0)),
    );
    let elapsed = t0.elapsed().as_secs_f64();
    router.stop().expect("router drain");
    for s in shards {
        s.stop().expect("shard drain");
    }
    let total = (threads * requests) as f64;
    format!(
        "{{\"shards\":{n},\"throughput_rps\":{rps},\"ok\":{ok},\
         \"unavailable\":{unavailable},\"errors\":{errors},\"cold\":{cold}}}",
        rps = total / elapsed.max(1e-9),
        cold = latency_block(us)
    )
}

/// The chaos measurement: process shards, one SIGKILLed after a third of
/// the run has completed.
fn chaos_run(gcommc: &str, jobs: usize, threads: usize, requests: usize) -> String {
    let jobs_arg = jobs.to_string();
    let mut shards: Vec<ShardProc> = (0..3)
        .map(|_| ShardProc::spawn(gcommc, &["--jobs", &jobs_arg]).expect("spawn shard process"))
        .collect();
    let addrs: Vec<SocketAddr> = shards.iter().map(ShardProc::addr).collect();
    let router =
        spawn_router("127.0.0.1:0", &addrs, router_config(threads, jobs)).expect("bind router");

    // Kill shard 1 once a third of the run has completed — progress-based,
    // so the kill is guaranteed to land with traffic in flight.
    let done = Arc::new(AtomicUsize::new(0));
    let kill_at = threads * requests / 3;
    let killer = {
        let done = Arc::clone(&done);
        let mut victim = shards.remove(1);
        std::thread::spawn(move || {
            while done.load(Ordering::Relaxed) < kill_at {
                std::thread::sleep(Duration::from_millis(2));
            }
            victim.kill();
        })
    };
    let t0 = Instant::now();
    let (us, ok, unavailable, errors) = drive(router.addr(), threads, requests, Arc::clone(&done));
    let elapsed = t0.elapsed().as_secs_f64();
    killer.join().expect("killer thread");

    let report = router.registry().snapshot();
    let doc = format!(
        "{{\"shards\":3,\"killed\":1,\"kill_after_requests\":{kill_at},\
         \"throughput_rps\":{rps},\"ok\":{ok},\"unavailable\":{unavailable},\
         \"errors\":{errors},\"failover\":{fo},\"retries\":{re},\
         \"conn_lost\":{cl},\"marked_down\":{md},\"latency\":{lat}}}",
        rps = (threads * requests) as f64 / elapsed.max(1e-9),
        fo = report.counter("cluster.failover"),
        re = report.counter("cluster.retry"),
        cl = report.counter("cluster.conn_lost"),
        md = report.counter("cluster.marked_down"),
        lat = latency_block(us)
    );
    router.stop().expect("router drain");
    for mut s in shards {
        let _ = s.shutdown_graceful(Duration::from_secs(5));
    }
    assert_eq!(errors, 0, "chaos run dropped requests on the floor");
    assert_eq!(
        unavailable, 0,
        "one dead shard of three must be absorbed by failover"
    );
    doc
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if cli::take_version_flag(&mut args) {
        println!("{}", cli::version_line(BIN));
        return;
    }
    let jobs = cli::or_exit2(BIN, gcomm_par::take_jobs_flag(&mut args));
    let mut threads = 8usize;
    let mut requests = 150usize;
    let mut gcommc: Option<String> = None;
    let mut out_path: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{BIN}: {name} expects a value");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--threads" => match value("--threads").parse() {
                Ok(n) if n >= 1 => threads = n,
                _ => cli::or_exit2::<()>(BIN, Err("--threads expects a count >= 1".into())),
            },
            "--requests" => match value("--requests").parse() {
                Ok(n) if n >= 1 => requests = n,
                _ => cli::or_exit2::<()>(BIN, Err("--requests expects a count >= 1".into())),
            },
            "--gcommc" => gcommc = Some(value("--gcommc")),
            "--out" => out_path = Some(value("--out")),
            _ => cli::or_exit2::<()>(
                BIN,
                Err(format!(
                    "unrecognized argument '{a}' \
                     (usage: bench_cluster [--threads <n>] [--requests <m>] \
                     [--jobs <n>] [--gcommc <path>] [--out <path>])"
                )),
            ),
        }
    }

    // Shard worker count: small and fixed, so throughput gains come from
    // adding shards, not from oversubscribing one shard.
    let shard_jobs = jobs.clamp(1, 2);

    let mut scaling = Vec::new();
    for n in 1..=4 {
        eprintln!("{BIN}: scaling run with {n} shard(s)...");
        scaling.push(scaling_run(n, shard_jobs, threads, requests));
    }

    let gcommc = gcommc.or_else(|| {
        let default = "target/release/gcommc";
        std::path::Path::new(default)
            .exists()
            .then(|| default.to_string())
    });
    let chaos = match gcommc.as_deref() {
        Some(bin) => {
            eprintln!("{BIN}: chaos run (3 process shards, one SIGKILLed)...");
            chaos_run(bin, shard_jobs, threads, requests)
        }
        None => {
            eprintln!("{BIN}: no gcommc binary found, skipping the chaos phase");
            "null".to_string()
        }
    };

    // Shards only scale throughput when there are cores to back them;
    // record the host's parallelism so flat scaling on a 1-CPU CI box is
    // interpretable rather than mysterious.
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let doc = format!(
        "{{\"schema\":\"gcomm-bench-cluster/v1\",\"cpus\":{cpus},\
         \"threads\":{threads},\"requests_per_thread\":{requests},\
         \"shard_jobs\":{shard_jobs},\"scaling\":[{}],\"chaos\":{chaos}}}",
        scaling.join(",")
    );
    match out_path {
        Some(path) => {
            std::fs::write(&path, format!("{doc}\n")).unwrap_or_else(|e| {
                eprintln!("{BIN}: {path}: {e}");
                std::process::exit(1);
            });
            eprintln!("{BIN}: wrote {path}");
        }
        None => println!("{doc}"),
    }
}
