//! Load generator for the compile service (DESIGN.md §12, §14): spins up
//! an in-process server, drives it with N client threads × M requests at
//! a configurable cache-hit ratio, and emits the `BENCH_serve.json`
//! artifact (throughput, warm/cold latency percentiles, measured hit
//! rate, error count).
//!
//! "Warm" requests draw from a small set of sources compiled once during
//! warmup, so they hit the content-addressed cache; "cold" requests each
//! rename the program to a unique name — a different cache key *and* a
//! different AST, so every cold compile does the full pipeline. (Trailing
//! whitespace would no longer do: the incremental engine's early cutoff
//! recognizes edits that shift no statement lines and reuses everything
//! past the parse.)
//!
//! `--mode edit-storm` appends a second phase exercising the incremental
//! query engine: fuzzed multi-routine modules take chains of seeded
//! single-routine edits, and every edited state is compiled twice — on an
//! incremental server and on a memo-free cold server — with the responses
//! compared byte-for-byte. The phase reports three latency distributions
//! (pure LRU hit, warm edit through the memo, cold compile), the engine's
//! own `query.*` counters, and the differential mismatch count (which
//! must be zero).
//!
//! `--mode restart` appends a persistence phase (DESIGN.md §15): a
//! `--persist`-backed server is filled cold, stopped, and reopened on
//! the same directory; the phase reports the recovery outcome, the
//! warm-restart hit rate (every refilled key must hit, zero recompiles),
//! restart-to-first-hit latency, and the post-restart hit distribution.
//!
//! `--mode` accumulates, so `--mode edit-storm --mode restart` emits
//! both extra blocks in one artifact.
//!
//! Usage: `bench_serve [--mode classic|edit-storm|restart]...
//! [--threads <n>] [--requests <m>] [--hit-ratio <f>] [--jobs <n>]
//! [--storm-cases <n>] [--storm-edits <n>] [--storm-hits <n>]
//! [--restart-entries <n>] [--out <path>]`
//! (4 × 250 at 0.5, classic, stdout without `--out`).

use std::time::Instant;

use gcomm_core::Strategy;
use gcomm_serve::cli;
use gcomm_serve::json::Json;
use gcomm_serve::{compile_request, Client, ServiceConfig};
use proptest::hpf;

const BIN: &str = "bench_serve";

/// Warm-set size: distinct sources compiled during warmup whose responses
/// the main phase re-requests.
const WARM_SOURCES: usize = 8;

/// The base program every classic-phase request compiles. Variants get a
/// unique program name: textually and semantically distinct (the name is
/// part of the AST), identical pipeline work.
fn source(variant: usize) -> String {
    gcomm_kernels::SHALLOW.replacen("program shallow", &format!("program shallow{variant}"), 1)
}

/// Deterministic splitmix64 step (no RNG crates; reproducible runs).
fn next_rand(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[idx]
}

fn p50(us: &mut [f64]) -> f64 {
    us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    percentile(us, 0.50)
}

fn latency_block(mut us: Vec<f64>) -> String {
    us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    format!(
        "{{\"samples\":{},\"p50_us\":{},\"p95_us\":{},\"p99_us\":{}}}",
        us.len(),
        percentile(&us, 0.50),
        percentile(&us, 0.95),
        percentile(&us, 0.99)
    )
}

fn counter(stats: &Json, name: &str) -> u64 {
    stats
        .get("stats")
        .and_then(|s| s.get("counters"))
        .and_then(|c| c.get(name))
        .and_then(Json::as_u64)
        .unwrap_or(0)
}

fn fetch_stats(addr: std::net::SocketAddr) -> Json {
    let mut client = Client::connect(addr).expect("connect stats client");
    let resp = client
        .request(r#"{"op":"stats","id":0,"stable":true}"#)
        .expect("stats response");
    Json::parse(&resp).expect("stats parses")
}

/// The edit-storm phase (DESIGN.md §14). Returns the `edit_storm` JSON
/// block.
fn run_storm(jobs: usize, cases: usize, edits: usize, hits: usize, routines: usize) -> String {
    // An incremental server and a memo-free twin; each request goes to
    // both and the responses must agree byte-for-byte (ids match, and
    // the payload past the id is a pure function of the cache key).
    let inc_server = gcomm_serve::spawn(
        "127.0.0.1:0",
        ServiceConfig {
            jobs,
            ..ServiceConfig::default()
        },
    )
    .expect("bind incremental server");
    let cold_server = gcomm_serve::spawn(
        "127.0.0.1:0",
        ServiceConfig {
            jobs,
            query_cache_bytes: 0,
            ..ServiceConfig::default()
        },
    )
    .expect("bind cold server");
    let mut inc = Client::connect(inc_server.addr()).expect("connect incremental client");
    let mut cold = Client::connect(cold_server.addr()).expect("connect cold client");

    // Small routines: the storm measures reuse across routines, not the
    // cost of any one placement.
    let gen_cfg = hpf::GenConfig {
        max_arrays: 2,
        max_block_stmts: 1,
        max_depth: 1,
    };
    let mut id = 0u64;
    let mut req = |src: &str| {
        id += 1;
        compile_request(id, src, Strategy::Global, None, None)
    };
    let timed = |client: &mut Client, r: &str| {
        let start = Instant::now();
        let resp = client.request(r).expect("storm response");
        (resp, start.elapsed().as_secs_f64() * 1e6)
    };

    // Pure-hit baseline: one module, compiled once, then re-requested —
    // every repeat is a content-addressed LRU hit.
    let base = hpf::generate_module_with(0x0057_0841, routines, &gen_cfg);
    let mut errors = 0u64;
    let mut hit_us: Vec<f64> = Vec::new();
    {
        let r = req(&base);
        let (resp, _) = timed(&mut inc, &r);
        if !resp.contains("\"ok\":true") {
            errors += 1;
        }
        for _ in 0..hits {
            let r = req(&base);
            let (resp, us) = timed(&mut inc, &r);
            if resp.contains("\"ok\":true") {
                hit_us.push(us);
            } else {
                errors += 1;
            }
        }
    }

    // The storm: per case a fresh module plus a chain of single-routine
    // edits. Every state goes to both servers (incremental sweep first,
    // then the cold sweep, so neither's latency samples interleave with
    // the other's work); edited states are the warm-edit and cold
    // latency samples, and each state's two responses must be identical.
    let mut warm_us: Vec<f64> = Vec::new();
    let mut cold_us: Vec<f64> = Vec::new();
    let mut comparisons = 0u64;
    let mut mismatches = 0u64;
    for case in 0..cases {
        let seed = 0xed17_0000 + case as u64;
        let mut module = hpf::generate_module_with(seed, routines, &gen_cfg);
        let mut states: Vec<String> = vec![req(&module)];
        for step in 1..=edits {
            module = hpf::apply_edit(&module, seed.wrapping_mul(1000) + step as u64).0;
            states.push(req(&module));
        }
        let inc_resps: Vec<String> = states
            .iter()
            .enumerate()
            .map(|(step, r)| {
                let (resp, us) = timed(&mut inc, r);
                if !resp.contains("\"ok\":true") {
                    errors += 1;
                } else if step > 0 {
                    warm_us.push(us);
                }
                resp
            })
            .collect();
        for (step, r) in states.iter().enumerate() {
            let (resp, us) = timed(&mut cold, r);
            comparisons += 1;
            if resp != inc_resps[step] {
                mismatches += 1;
            }
            if resp.contains("\"ok\":true") && step > 0 {
                cold_us.push(us);
            }
        }
    }

    let stats = fetch_stats(inc_server.addr());
    let q_hit = counter(&stats, "query.hit");
    let q_miss = counter(&stats, "query.miss");
    let q_cutoff = counter(&stats, "query.cutoff");
    let q_inval = counter(&stats, "query.invalidate");
    inc_server.stop().expect("clean incremental drain");
    cold_server.stop().expect("clean cold drain");

    let hit_p50 = p50(&mut hit_us);
    let warm_p50 = p50(&mut warm_us);
    let cold_p50 = p50(&mut cold_us);
    format!(
        "{{\"cases\":{cases},\"edits_per_case\":{edits},\
         \"routines_per_module\":{routines},\"errors\":{errors},\
         \"hit\":{hit},\"warm_edit\":{warm},\"cold\":{cold},\
         \"warm_edit_over_hit_p50\":{woh},\"cold_over_warm_edit_p50\":{cow},\
         \"query\":{{\"hit\":{q_hit},\"miss\":{q_miss},\
         \"cutoff\":{q_cutoff},\"invalidate\":{q_inval}}},\
         \"differential\":{{\"cases\":{comparisons},\"mismatches\":{mismatches}}}}}",
        hit = latency_block(hit_us),
        warm = latency_block(warm_us),
        cold = latency_block(cold_us),
        woh = warm_p50 / hit_p50.max(1e-9),
        cow = cold_p50 / warm_p50.max(1e-9),
    )
}

/// The restart phase (DESIGN.md §15). Returns the `restart` JSON block.
fn run_restart(jobs: usize, entries: usize) -> String {
    let dir = std::env::temp_dir().join(format!("gcomm-bench-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create persist dir");
    let persist_cfg = || ServiceConfig {
        jobs,
        persist: Some(dir.clone()),
        ..ServiceConfig::default()
    };

    // Fill: cold compiles write through to the segment log (default
    // fsync policy: every append synced before the response).
    let mut errors = 0u64;
    let mut cold_us: Vec<f64> = Vec::new();
    let first = gcomm_serve::spawn("127.0.0.1:0", persist_cfg()).expect("bind persisting server");
    {
        let mut client = Client::connect(first.addr()).expect("connect fill client");
        for v in 0..entries {
            let r = compile_request((v + 1) as u64, &source(v + 1), Strategy::Global, None, None);
            let start = Instant::now();
            let resp = client.request(&r).expect("fill response");
            if resp.contains("\"ok\":true") {
                cold_us.push(start.elapsed().as_secs_f64() * 1e6);
            } else {
                errors += 1;
            }
        }
    }
    let fill_stats = fetch_stats(first.addr());
    let appends = counter(&fill_stats, "store.append");
    let fsyncs = counter(&fill_stats, "store.fsync");
    first.stop().expect("clean fill drain");

    // Restart: binding runs the recovery scan and warms the cache before
    // the server accepts, so open time is the whole restart cost.
    let t_open = Instant::now();
    let second =
        gcomm_serve::spawn("127.0.0.1:0", persist_cfg()).expect("reopen persisting server");
    let open_us = t_open.elapsed().as_secs_f64() * 1e6;
    let mut warm_us: Vec<f64> = Vec::new();
    let mut first_hit_us = 0.0;
    {
        let mut client = Client::connect(second.addr()).expect("connect warm client");
        for v in 0..entries {
            let r = compile_request((v + 1) as u64, &source(v + 1), Strategy::Global, None, None);
            let start = Instant::now();
            let resp = client.request(&r).expect("warm response");
            if resp.contains("\"ok\":true") {
                let us = start.elapsed().as_secs_f64() * 1e6;
                if warm_us.is_empty() {
                    first_hit_us = open_us + us;
                }
                warm_us.push(us);
            } else {
                errors += 1;
            }
        }
    }
    let stats = fetch_stats(second.addr());
    let hits = counter(&stats, "cache.hit");
    let misses = counter(&stats, "cache.miss");
    let rec_ok = counter(&stats, "store.recover_ok");
    let rec_torn = counter(&stats, "store.recover_torn");
    let rec_quarantined = counter(&stats, "store.quarantined");
    second.stop().expect("clean warm drain");
    let _ = std::fs::remove_dir_all(&dir);

    format!(
        "{{\"entries\":{entries},\"errors\":{errors},\
         \"fsync_policy\":\"always\",\"cold_fill\":{cold},\
         \"restart_open_us\":{open_us},\
         \"restart_to_first_hit_us\":{first_hit_us},\"warm\":{warm},\
         \"warm_restart_hit_rate\":{rate},\
         \"recovered\":{{\"ok\":{rec_ok},\"torn\":{rec_torn},\
         \"quarantined\":{rec_quarantined}}},\
         \"store\":{{\"append\":{appends},\"fsync\":{fsyncs}}}}}",
        cold = latency_block(cold_us),
        warm = latency_block(warm_us),
        rate = hits as f64 / ((hits + misses) as f64).max(1.0),
    )
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if cli::take_version_flag(&mut args) {
        println!("{}", cli::version_line(BIN));
        return;
    }
    let jobs = cli::or_exit2(BIN, gcomm_par::take_jobs_flag(&mut args));
    let mut threads = 4usize;
    let mut requests = 250usize;
    let mut hit_ratio = 0.5f64;
    let mut storm = false;
    let mut restart = false;
    let mut storm_cases = 40usize;
    let mut storm_edits = 5usize;
    let mut storm_hits = 200usize;
    let mut storm_routines = 64usize;
    let mut restart_entries = 64usize;
    let mut out_path: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{BIN}: {name} expects a value");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--mode" => match value("--mode").as_str() {
                "classic" => {
                    storm = false;
                    restart = false;
                }
                "edit-storm" => storm = true,
                "restart" => restart = true,
                _ => cli::or_exit2::<()>(
                    BIN,
                    Err("--mode expects classic|edit-storm|restart".into()),
                ),
            },
            "--threads" => match value("--threads").parse() {
                Ok(n) if n >= 1 => threads = n,
                _ => cli::or_exit2::<()>(BIN, Err("--threads expects a count >= 1".into())),
            },
            "--requests" => match value("--requests").parse() {
                Ok(n) if n >= 1 => requests = n,
                _ => cli::or_exit2::<()>(BIN, Err("--requests expects a count >= 1".into())),
            },
            "--hit-ratio" => match value("--hit-ratio").parse::<f64>() {
                Ok(f) if (0.0..=1.0).contains(&f) => hit_ratio = f,
                _ => cli::or_exit2::<()>(BIN, Err("--hit-ratio expects 0.0..=1.0".into())),
            },
            "--storm-cases" => match value("--storm-cases").parse() {
                Ok(n) if n >= 1 => storm_cases = n,
                _ => cli::or_exit2::<()>(BIN, Err("--storm-cases expects a count >= 1".into())),
            },
            "--storm-edits" => match value("--storm-edits").parse() {
                Ok(n) if n >= 1 => storm_edits = n,
                _ => cli::or_exit2::<()>(BIN, Err("--storm-edits expects a count >= 1".into())),
            },
            "--storm-hits" => match value("--storm-hits").parse() {
                Ok(n) if n >= 1 => storm_hits = n,
                _ => cli::or_exit2::<()>(BIN, Err("--storm-hits expects a count >= 1".into())),
            },
            "--storm-routines" => match value("--storm-routines").parse() {
                Ok(n) if n >= 2 => storm_routines = n,
                _ => cli::or_exit2::<()>(BIN, Err("--storm-routines expects a count >= 2".into())),
            },
            "--restart-entries" => match value("--restart-entries").parse() {
                Ok(n) if n >= 1 => restart_entries = n,
                _ => cli::or_exit2::<()>(BIN, Err("--restart-entries expects a count >= 1".into())),
            },
            "--out" => out_path = Some(value("--out")),
            _ => cli::or_exit2::<()>(
                BIN,
                Err(format!(
                    "unrecognized argument '{a}' \
                     (usage: bench_serve [--mode classic|edit-storm|restart]... [--threads <n>] \
                     [--requests <m>] [--hit-ratio <f>] [--jobs <n>] [--storm-cases <n>] \
                     [--storm-edits <n>] [--storm-hits <n>] [--storm-routines <n>] \
                     [--restart-entries <n>] [--out <path>])"
                )),
            ),
        }
    }

    let config = ServiceConfig {
        jobs,
        ..ServiceConfig::default()
    };
    let server = gcomm_serve::spawn("127.0.0.1:0", config).expect("bind ephemeral server");
    let addr = server.addr();

    // Warmup: compile the warm set cold, so main-phase "warm" requests hit.
    {
        let mut client = Client::connect(addr).expect("connect warmup client");
        for v in 1..=WARM_SOURCES {
            let resp = client
                .request(&compile_request(
                    v as u64,
                    &source(v),
                    Strategy::Global,
                    None,
                    None,
                ))
                .expect("warmup response");
            assert!(
                resp.contains("\"ok\":true"),
                "warmup compile failed: {resp}"
            );
        }
    }

    // Main phase: N threads, each with its own connection, M requests.
    let t0 = Instant::now();
    let workers: Vec<_> = (0..threads)
        .map(|t| {
            let per_thread = requests;
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect client");
                let mut rng = 0xbe9c_0000 ^ (t as u64);
                let mut warm_us: Vec<f64> = Vec::new();
                let mut cold_us: Vec<f64> = Vec::new();
                let mut errors = 0u64;
                for j in 0..per_thread {
                    let draw = (next_rand(&mut rng) % 1_000_000) as f64;
                    let warm = draw < hit_ratio * 1_000_000.0;
                    let variant = if warm {
                        1 + (next_rand(&mut rng) as usize % WARM_SOURCES)
                    } else {
                        // A globally unique variant: never warmed, never
                        // repeated across threads.
                        WARM_SOURCES + 1 + t * per_thread + j
                    };
                    let req = compile_request(
                        (t * per_thread + j) as u64,
                        &source(variant),
                        Strategy::Global,
                        None,
                        None,
                    );
                    let start = Instant::now();
                    match client.request(&req) {
                        Ok(resp) if resp.contains("\"ok\":true") => {
                            let us = start.elapsed().as_secs_f64() * 1e6;
                            if warm {
                                warm_us.push(us);
                            } else {
                                cold_us.push(us);
                            }
                        }
                        _ => errors += 1,
                    }
                }
                (warm_us, cold_us, errors)
            })
        })
        .collect();
    let mut warm_us = Vec::new();
    let mut cold_us = Vec::new();
    let mut errors = 0u64;
    for w in workers {
        let (w_us, c_us, e) = w.join().expect("worker thread");
        warm_us.extend(w_us);
        cold_us.extend(c_us);
        errors += e;
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let total = threads * requests;

    // The authoritative hit counts come from the server's own registry.
    let stats = fetch_stats(addr);
    let hits = counter(&stats, "cache.hit");
    let misses = counter(&stats, "cache.miss");
    let evicts = counter(&stats, "cache.evict");
    let hit_rate = hits as f64 / ((hits + misses) as f64).max(1.0);
    server.stop().expect("clean server drain");

    let edit_storm = if storm {
        format!(
            ",\"edit_storm\":{}",
            run_storm(jobs, storm_cases, storm_edits, storm_hits, storm_routines)
        )
    } else {
        String::new()
    };
    let restart_block = if restart {
        format!(",\"restart\":{}", run_restart(jobs, restart_entries))
    } else {
        String::new()
    };

    let doc = format!(
        "{{\"schema\":\"gcomm-bench-serve/v3\",\"threads\":{threads},\
         \"requests_per_thread\":{requests},\"total_requests\":{total},\
         \"hit_ratio_target\":{hit_ratio},\"jobs\":{jobs},\
         \"elapsed_s\":{elapsed},\"throughput_rps\":{rps},\
         \"errors\":{errors},\"hit_rate\":{hit_rate},\
         \"cache\":{{\"hit\":{hits},\"miss\":{misses},\"evict\":{evicts}}},\
         \"warm\":{warm},\"cold\":{cold}{edit_storm}{restart_block}}}",
        rps = total as f64 / elapsed.max(1e-9),
        warm = latency_block(warm_us),
        cold = latency_block(cold_us),
    );
    match out_path {
        Some(path) => {
            std::fs::write(&path, format!("{doc}\n")).unwrap_or_else(|e| {
                eprintln!("{BIN}: {path}: {e}");
                std::process::exit(1);
            });
            eprintln!(
                "{BIN}: {total} requests in {elapsed:.2}s, hit rate {hit_rate:.3}, \
                 {errors} errors -> {path}"
            );
        }
        None => println!("{doc}"),
    }
}
