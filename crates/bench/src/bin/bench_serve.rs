//! Load generator for the compile service (DESIGN.md §12): spins up an
//! in-process server, drives it with N client threads × M requests at a
//! configurable cache-hit ratio, and emits the `BENCH_serve.json`
//! artifact (throughput, warm/cold latency percentiles, measured hit
//! rate, error count).
//!
//! "Warm" requests draw from a small set of sources compiled once during
//! warmup, so they hit the content-addressed cache; "cold" requests each
//! append a unique run of trailing newlines to the base source — textually
//! distinct (a different cache key) but semantically identical, so every
//! cold compile does the same pipeline work.
//!
//! Usage: `bench_serve [--threads <n>] [--requests <m>] [--hit-ratio <f>]
//! [--jobs <n>] [--out <path>]` (4 × 250 at 0.5 by default, stdout
//! without `--out`).

use std::time::Instant;

use gcomm_core::Strategy;
use gcomm_serve::cli;
use gcomm_serve::json::Json;
use gcomm_serve::{compile_request, Client, ServiceConfig};

const BIN: &str = "bench_serve";

/// Warm-set size: distinct sources compiled during warmup whose responses
/// the main phase re-requests.
const WARM_SOURCES: usize = 8;

/// The base program every request compiles (cold variants differ only in
/// trailing newlines).
fn source(variant: usize) -> String {
    let mut s = gcomm_kernels::SHALLOW.to_string();
    for _ in 0..variant {
        s.push('\n');
    }
    s
}

/// Deterministic splitmix64 step (no RNG crates; reproducible runs).
fn next_rand(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[idx]
}

fn latency_block(mut us: Vec<f64>) -> String {
    us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    format!(
        "{{\"samples\":{},\"p50_us\":{},\"p95_us\":{},\"p99_us\":{}}}",
        us.len(),
        percentile(&us, 0.50),
        percentile(&us, 0.95),
        percentile(&us, 0.99)
    )
}

fn counter(stats: &Json, name: &str) -> u64 {
    stats
        .get("stats")
        .and_then(|s| s.get("counters"))
        .and_then(|c| c.get(name))
        .and_then(Json::as_u64)
        .unwrap_or(0)
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if cli::take_version_flag(&mut args) {
        println!("{}", cli::version_line(BIN));
        return;
    }
    let jobs = cli::or_exit2(BIN, gcomm_par::take_jobs_flag(&mut args));
    let mut threads = 4usize;
    let mut requests = 250usize;
    let mut hit_ratio = 0.5f64;
    let mut out_path: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{BIN}: {name} expects a value");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--threads" => match value("--threads").parse() {
                Ok(n) if n >= 1 => threads = n,
                _ => cli::or_exit2::<()>(BIN, Err("--threads expects a count >= 1".into())),
            },
            "--requests" => match value("--requests").parse() {
                Ok(n) if n >= 1 => requests = n,
                _ => cli::or_exit2::<()>(BIN, Err("--requests expects a count >= 1".into())),
            },
            "--hit-ratio" => match value("--hit-ratio").parse::<f64>() {
                Ok(f) if (0.0..=1.0).contains(&f) => hit_ratio = f,
                _ => cli::or_exit2::<()>(BIN, Err("--hit-ratio expects 0.0..=1.0".into())),
            },
            "--out" => out_path = Some(value("--out")),
            _ => cli::or_exit2::<()>(
                BIN,
                Err(format!(
                    "unrecognized argument '{a}' \
                     (usage: bench_serve [--threads <n>] [--requests <m>] \
                     [--hit-ratio <f>] [--jobs <n>] [--out <path>])"
                )),
            ),
        }
    }

    let config = ServiceConfig {
        jobs,
        ..ServiceConfig::default()
    };
    let server = gcomm_serve::spawn("127.0.0.1:0", config).expect("bind ephemeral server");
    let addr = server.addr();

    // Warmup: compile the warm set cold, so main-phase "warm" requests hit.
    {
        let mut client = Client::connect(addr).expect("connect warmup client");
        for v in 1..=WARM_SOURCES {
            let resp = client
                .request(&compile_request(
                    v as u64,
                    &source(v),
                    Strategy::Global,
                    None,
                    None,
                ))
                .expect("warmup response");
            assert!(
                resp.contains("\"ok\":true"),
                "warmup compile failed: {resp}"
            );
        }
    }

    // Main phase: N threads, each with its own connection, M requests.
    let t0 = Instant::now();
    let workers: Vec<_> = (0..threads)
        .map(|t| {
            let per_thread = requests;
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect client");
                let mut rng = 0xbe9c_0000 ^ (t as u64);
                let mut warm_us: Vec<f64> = Vec::new();
                let mut cold_us: Vec<f64> = Vec::new();
                let mut errors = 0u64;
                for j in 0..per_thread {
                    let draw = (next_rand(&mut rng) % 1_000_000) as f64;
                    let warm = draw < hit_ratio * 1_000_000.0;
                    let variant = if warm {
                        1 + (next_rand(&mut rng) as usize % WARM_SOURCES)
                    } else {
                        // A globally unique variant: never warmed, never
                        // repeated across threads.
                        WARM_SOURCES + 1 + t * per_thread + j
                    };
                    let req = compile_request(
                        (t * per_thread + j) as u64,
                        &source(variant),
                        Strategy::Global,
                        None,
                        None,
                    );
                    let start = Instant::now();
                    match client.request(&req) {
                        Ok(resp) if resp.contains("\"ok\":true") => {
                            let us = start.elapsed().as_secs_f64() * 1e6;
                            if warm {
                                warm_us.push(us);
                            } else {
                                cold_us.push(us);
                            }
                        }
                        _ => errors += 1,
                    }
                }
                (warm_us, cold_us, errors)
            })
        })
        .collect();
    let mut warm_us = Vec::new();
    let mut cold_us = Vec::new();
    let mut errors = 0u64;
    for w in workers {
        let (w_us, c_us, e) = w.join().expect("worker thread");
        warm_us.extend(w_us);
        cold_us.extend(c_us);
        errors += e;
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let total = threads * requests;

    // The authoritative hit counts come from the server's own registry.
    let stats = {
        let mut client = Client::connect(addr).expect("connect stats client");
        let resp = client
            .request(r#"{"op":"stats","id":0,"stable":true}"#)
            .expect("stats response");
        Json::parse(&resp).expect("stats parses")
    };
    let hits = counter(&stats, "cache.hit");
    let misses = counter(&stats, "cache.miss");
    let evicts = counter(&stats, "cache.evict");
    let hit_rate = hits as f64 / ((hits + misses) as f64).max(1.0);
    server.stop().expect("clean server drain");

    let doc = format!(
        "{{\"schema\":\"gcomm-bench-serve/v1\",\"threads\":{threads},\
         \"requests_per_thread\":{requests},\"total_requests\":{total},\
         \"hit_ratio_target\":{hit_ratio},\"jobs\":{jobs},\
         \"elapsed_s\":{elapsed},\"throughput_rps\":{rps},\
         \"errors\":{errors},\"hit_rate\":{hit_rate},\
         \"cache\":{{\"hit\":{hits},\"miss\":{misses},\"evict\":{evicts}}},\
         \"warm\":{warm},\"cold\":{cold}}}",
        rps = total as f64 / elapsed.max(1e-9),
        warm = latency_block(warm_us),
        cold = latency_block(cold_us),
    );
    match out_path {
        Some(path) => {
            std::fs::write(&path, format!("{doc}\n")).unwrap_or_else(|e| {
                eprintln!("{BIN}: {path}: {e}");
                std::process::exit(1);
            });
            eprintln!(
                "{BIN}: {total} requests in {elapsed:.2}s, hit rate {hit_rate:.3}, \
                 {errors} errors -> {path}"
            );
        }
        None => println!("{doc}"),
    }
}
