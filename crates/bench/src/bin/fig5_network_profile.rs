//! Regenerates Figure 5: buffer-copying and network bandwidth vs. size for
//! the SP2/MPL and NOW/MPICH machine models (log-spaced x axis).
//!
//! Usage: `cargo run -p gcomm-bench --bin fig5_network_profile [--json]`

use gcomm_bench::json;
use gcomm_machine::profile::{default_sizes, profile};
use gcomm_machine::NetworkModel;
use gcomm_serve::cli;

fn main() {
    const BIN: &str = "fig5_network_profile";
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if cli::take_version_flag(&mut args) {
        println!("{}", cli::version_line(BIN));
        return;
    }
    let _stats = cli::or_exit2(BIN, cli::StatsOpts::extract(&mut args)).install();
    let json = args.iter().any(|a| a == "--json");
    let sizes = default_sizes();
    for net in [NetworkModel::sp2(), NetworkModel::now_myrinet()] {
        let pts = profile(&net, &sizes);
        if json {
            println!("{}", json::profile_points(&pts));
            continue;
        }
        println!("== Figure 5: {} ==", net.name);
        println!(
            "{:>9}  {:>10}  {:>10}  {:>10}",
            "bytes", "bcopy MB/s", "inject MB/s", "recv MB/s"
        );
        for p in &pts {
            println!(
                "{:>9}  {:>10.2}  {:>10.2}  {:>10.2}",
                p.bytes, p.bcopy_mb, p.inject_mb, p.recv_mb
            );
        }
        // The observation §3 draws from this plot:
        let cache = net.cache_bytes;
        let near = pts
            .iter()
            .filter(|p| p.bytes <= cache / 4)
            .map(|p| p.recv_mb)
            .fold(0.0f64, f64::max);
        println!(
            "-- startup amortization: {:.0}% of peak bandwidth reached at 1/4 cache size ({} KB cache)\n",
            100.0 * near / net.peak_bw_mb,
            cache / 1024
        );
    }
}
