//! Collective-algorithm crossover tables (DESIGN.md §17).
//!
//! Sweeps the collective backend's algorithm library over message sizes
//! on each hierarchical topology and prints, per size, the exact
//! simulator cost of every applicable algorithm plus the `auto` winner —
//! the Figure-10-style evidence that no single algorithm dominates:
//! latency-optimal trees win small messages, bandwidth-optimal rings win
//! bulk, and the crossover point moves with the topology.
//!
//! A second section prices the paper's seven kernels end-to-end under
//! `--coll auto` versus `--coll p2p` on each topology: auto must never
//! lose (the selection sweeps the exact per-message cost with ties to
//! p2p).
//!
//! Usage:
//!   bench_collective                 # text tables
//!   bench_collective --json <path>   # also write the JSON artifact
//!
//! The JSON document (`gcomm-bench-coll/v1`, committed as
//! `BENCH_collective.json`) records every swept cell, the pareto
//! frontier membership, the winner crossovers, and the kernel matrix;
//! the CI `coll-smoke` job asserts a ring/tree crossover per topology
//! and the auto-never-loses inequality from it.

use gcomm_coll::{pareto, sweep, Algo, CollChoice, CollConfig, PatternShape, Topology};
use gcomm_core::{compile, lower_to_sim, Compiled, SimConfig, Strategy};
use gcomm_machine::{simulate, NetworkModel, ProcGrid};

/// Swept message sizes, 64 B to 4 MiB.
const SIZES: [f64; 9] = [
    64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0, 262144.0, 1048576.0, 4194304.0,
];

struct TopoCase {
    topo: Topology,
    /// Tree fan-in: the rank count the topology actually hosts.
    parts: u64,
}

fn topo_cases() -> Vec<TopoCase> {
    vec![
        TopoCase {
            topo: Topology::parse("fat-tree:4x4").unwrap(),
            parts: 16,
        },
        TopoCase {
            topo: Topology::parse("torus:5x5").unwrap(),
            parts: 25,
        },
    ]
}

/// One swept size: every candidate plus the winner under the exact cost.
struct SweepRow {
    bytes: f64,
    cands: Vec<(gcomm_coll::Candidate, bool)>, // (candidate, on pareto frontier)
    winner: Algo,
}

fn sweep_topology(topo: &Topology, parts: u64, net: &NetworkModel) -> Vec<SweepRow> {
    SIZES
        .iter()
        .map(|&bytes| {
            let cands = sweep(topo, net, PatternShape::Tree { parts }, bytes);
            let frontier = pareto(&cands);
            let mut winner = Algo::P2p;
            let mut best = f64::INFINITY;
            for c in &cands {
                if c.cost_us < best {
                    best = c.cost_us;
                    winner = c.algo;
                }
            }
            let cands = cands
                .into_iter()
                .map(|c| {
                    let on_frontier = frontier.iter().any(|f| f.algo == c.algo);
                    (c, on_frontier)
                })
                .collect();
            SweepRow {
                bytes,
                cands,
                winner,
            }
        })
        .collect()
}

/// Winner changes between adjacent sizes: `(at_bytes, from, to)`.
fn crossovers(rows: &[SweepRow]) -> Vec<(f64, Algo, Algo)> {
    rows.windows(2)
        .filter(|w| w[0].winner != w[1].winner)
        .map(|w| (w[1].bytes, w[0].winner, w[1].winner))
        .collect()
}

fn is_tree(a: Algo) -> bool {
    matches!(a, Algo::Rdbl | Algo::Bine)
}

/// The seven paper programs: the six benchmark routines plus Figure 4's
/// running example.
fn paper_programs() -> Vec<(String, &'static str)> {
    let mut v: Vec<(String, &'static str)> = gcomm_kernels::all_kernels()
        .into_iter()
        .map(|(b, r, src)| (format!("{b}/{r}"), src))
        .collect();
    v.push(("fig4/running".into(), gcomm_kernels::FIG4_RUNNING));
    v
}

fn grid_rank(c: &Compiled) -> usize {
    c.prog
        .arrays
        .iter()
        .map(|a| a.distributed_dims().len())
        .max()
        .unwrap_or(1)
        .max(1)
}

fn comm_us(c: &Compiled, net: &NetworkModel, topo: &Topology, choice: CollChoice) -> f64 {
    let cfg = SimConfig::uniform(c, ProcGrid::balanced(25, grid_rank(c)), 64)
        .with("nsteps", 2)
        .with_coll(CollConfig::new(topo.clone(), choice, net.clone()));
    simulate(&lower_to_sim(c, &cfg), net).comm_us
}

fn main() {
    use gcomm_serve::cli;
    const BIN: &str = "bench_collective";
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if cli::take_version_flag(&mut args) {
        println!("{}", cli::version_line(BIN));
        return;
    }
    let mut json_path: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json_path = it.next(),
            _ => {
                eprintln!("usage: bench_collective [--json <path>]");
                std::process::exit(2);
            }
        }
    }

    let net = NetworkModel::sp2();
    let mut topo_docs = Vec::new();
    for case in topo_cases() {
        let rows = sweep_topology(&case.topo, case.parts, &net);
        let xs = crossovers(&rows);

        println!(
            "== Collective crossover: {}, reduction/broadcast tree (parts={}), {} ==",
            case.topo.describe(),
            case.parts,
            net.name
        );
        println!(
            "   (exact simulator cost per algorithm, us; * = pareto frontier, > = auto's pick)"
        );
        print!("{:>9}", "bytes");
        for a in gcomm_coll::ALL_ALGOS {
            print!("{:>14}", a.name());
        }
        println!();
        for row in &rows {
            print!("{:>9}", row.bytes as u64);
            for a in gcomm_coll::ALL_ALGOS {
                match row.cands.iter().find(|(c, _)| c.algo == a) {
                    Some((c, on_frontier)) => {
                        let mark = match (row.winner == a, on_frontier) {
                            (true, _) => ">",
                            (false, true) => "*",
                            (false, false) => " ",
                        };
                        print!("{:>13}{mark}", format!("{:.1}", c.cost_us));
                    }
                    None => print!("{:>14}", "-"),
                }
            }
            println!();
        }
        for (at, from, to) in &xs {
            println!(
                "   crossover at {} B: {} -> {}",
                *at as u64,
                from.name(),
                to.name()
            );
        }
        println!();

        let row_json: Vec<String> = rows
            .iter()
            .map(|row| {
                let cands: Vec<String> = row
                    .cands
                    .iter()
                    .map(|(c, on_frontier)| {
                        format!(
                            "{{\"algo\":\"{}\",\"cost_us\":{:.3},\"latency_us\":{:.3},\
                             \"transfer_us\":{:.3},\"steps\":{},\"pareto\":{}}}",
                            c.algo.name(),
                            c.cost_us,
                            c.latency_us,
                            c.transfer_us,
                            c.steps,
                            on_frontier
                        )
                    })
                    .collect();
                format!(
                    "{{\"bytes\":{},\"winner\":\"{}\",\"candidates\":[{}]}}",
                    row.bytes as u64,
                    row.winner.name(),
                    cands.join(",")
                )
            })
            .collect();
        let x_json: Vec<String> = xs
            .iter()
            .map(|(at, from, to)| {
                format!(
                    "{{\"at_bytes\":{},\"from\":\"{}\",\"to\":\"{}\"}}",
                    *at as u64,
                    from.name(),
                    to.name(),
                )
            })
            .collect();
        // The regime handoff the paper-style table demonstrates: a tree
        // algorithm wins the latency end, ring wins the bandwidth end.
        let tree_wins = rows.iter().any(|r| is_tree(r.winner));
        let ring_wins = rows.iter().any(|r| r.winner == Algo::Ring);
        topo_docs.push(format!(
            "{{\"topo\":\"{}\",\"parts\":{},\"pattern\":\"tree\",\
             \"tree_wins\":{tree_wins},\"ring_wins\":{ring_wins},\
             \"sizes\":[{}],\"crossovers\":[{}]}}",
            case.topo.describe(),
            case.parts,
            row_json.join(","),
            x_json.join(",")
        ));
    }

    println!("== Paper kernels: --coll auto vs --coll p2p (sp2, P=25, n=64) ==");
    let mut kernel_docs = Vec::new();
    for (name, src) in paper_programs() {
        let c = compile(src, Strategy::Global).expect("paper kernel compiles");
        for case in topo_cases() {
            let p2p = comm_us(&c, &net, &case.topo, CollChoice::Fixed(Algo::P2p));
            let auto = comm_us(&c, &net, &case.topo, CollChoice::Auto);
            assert!(
                auto <= p2p + 1e-9 * p2p.abs() + 1e-6,
                "{name} on {}: auto ({auto} us) lost to p2p ({p2p} us)",
                case.topo.describe()
            );
            println!(
                "{name:<18} {:<13} comm p2p {:>12.1} us   auto {:>12.1} us   ({:.3}x)",
                case.topo.describe(),
                p2p,
                auto,
                if auto > 0.0 { p2p / auto } else { 1.0 }
            );
            kernel_docs.push(format!(
                "{{\"kernel\":\"{name}\",\"topo\":\"{}\",\"p2p_us\":{:.3},\"auto_us\":{:.3}}}",
                case.topo.describe(),
                p2p,
                auto
            ));
        }
    }

    if let Some(path) = json_path {
        let doc = format!(
            "{{\"schema\":\"gcomm-bench-coll/v1\",\"net\":\"{}\",\
             \"topologies\":[{}],\"kernels\":[{}]}}",
            net.name,
            topo_docs.join(","),
            kernel_docs.join(",")
        );
        std::fs::write(&path, doc).unwrap_or_else(|e| {
            eprintln!("bench_collective: {path}: {e}");
            std::process::exit(1);
        });
    }
}
