//! Extension experiment (§6.1): greedy heuristic vs. exhaustive optimum.
//!
//! Optimal candidate selection is NP-hard (Claim 6.1); this binary measures
//! how far the §4.7 greedy lands from the true optimum on procedures small
//! enough to enumerate, scoring both with the machine simulator.

use gcomm_core::optimal::comm_cost;
use gcomm_core::{compile, optimal_placement, CombinePolicy, SimConfig, Strategy};
use gcomm_machine::{NetworkModel, ProcGrid};

fn main() {
    let cases: Vec<(&str, &str, usize)> = vec![
        ("fig3-f90", gcomm_kernels::FIG3_F90, 2),
        ("fig3-scalarized", gcomm_kernels::FIG3_SCALARIZED, 2),
        ("fig4-running", gcomm_kernels::FIG4_RUNNING, 2),
        ("trimesh-gauss", gcomm_kernels::TRIMESH_GAUSS, 2),
        ("hydflo-hydro", gcomm_kernels::HYDFLO_HYDRO, 3),
    ];
    println!(
        "{:<16} {:>10} {:>10} {:>8} {:>9} {:>10}",
        "kernel", "greedy us", "best us", "gap", "tried", "exhausted"
    );
    for (name, src, axes) in cases {
        let c = compile(src, Strategy::Global).expect("compiles");
        let cfg = SimConfig::uniform(&c, ProcGrid::balanced(8, axes), 48).with("nsteps", 4);
        let net = NetworkModel::sp2();
        let greedy = comm_cost(&c, &cfg, &net);
        let Some(opt) = optimal_placement(&c, &CombinePolicy::default(), &cfg, &net, 250_000)
        else {
            println!("{name:<16} (no communication)");
            continue;
        };
        let gap = (greedy - opt.comm_us) / opt.comm_us * 100.0;
        println!(
            "{:<16} {:>10.1} {:>10.1} {:>+7.2}% {:>9} {:>10}",
            name,
            greedy,
            opt.comm_us,
            gap,
            opt.tried,
            if opt.truncated { "no" } else { "yes" }
        );
    }
    println!("\ngap = greedy communication time above the best assignment found");
}
