//! Extension experiment (§6.1): greedy heuristic vs. exhaustive optimum.
//!
//! Optimal candidate selection is NP-hard (Claim 6.1); this binary measures
//! how far the §4.7 greedy lands from the true optimum on procedures small
//! enough to enumerate, scoring both with the machine simulator. The
//! enumeration budget defaults to the golden-file setting; pass
//! `--budget <n>` for a deeper search.

use gcomm_bench::reports;
use gcomm_serve::cli;

fn main() {
    const BIN: &str = "compare_optimal";
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if cli::take_version_flag(&mut args) {
        println!("{}", cli::version_line(BIN));
        return;
    }
    let jobs = cli::or_exit2(BIN, gcomm_par::take_jobs_flag(&mut args));
    let _stats = cli::or_exit2(BIN, cli::StatsOpts::extract(&mut args)).install();
    // NOTE: `--budget <n>` here is the *enumeration* budget (a bare step
    // count), not the shared `--budget <spec>` analysis budget.
    let mut budget = reports::DEFAULT_OPTIMAL_BUDGET;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--budget" {
            budget = it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                eprintln!("usage: compare_optimal [--budget <n>] [--jobs <n>]");
                std::process::exit(2);
            });
        }
    }
    print!("{}", reports::compare_optimal_text(budget, jobs));
}
