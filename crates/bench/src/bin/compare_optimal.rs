//! Extension experiment (§6.1): greedy heuristic vs. certified optimum.
//!
//! Optimal candidate selection is NP-hard (Claim 6.1); this binary measures
//! how far the §4.7 greedy lands from the true optimum, found by the
//! branch-and-bound search of DESIGN.md §16 and scored with the machine
//! simulator. `--budget <n>` bounds **search nodes expanded** (entry
//! bindings) — it used to bound assignments scored; a node is strictly
//! cheaper, so the same number now certifies far larger programs. The
//! default is the golden-file setting. `--json <path>` additionally runs
//! the retained exhaustive enumeration at the same budget and writes a
//! `BENCH_optimal.json` comparison (nodes, prune counts, wall times).

use gcomm_bench::reports;
use gcomm_serve::cli;

fn main() {
    const BIN: &str = "compare_optimal";
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if cli::take_version_flag(&mut args) {
        println!("{}", cli::version_line(BIN));
        return;
    }
    let jobs = cli::or_exit2(BIN, gcomm_par::take_jobs_flag(&mut args));
    let _stats = cli::or_exit2(BIN, cli::StatsOpts::extract(&mut args)).install();
    // NOTE: `--budget <n>` here is the *search node* budget (a bare count
    // of nodes expanded), not the shared `--budget <spec>` analysis budget.
    let mut budget = reports::DEFAULT_OPTIMAL_BUDGET;
    let mut json_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--budget" => {
                budget = it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!(
                        "usage: compare_optimal [--budget <nodes>] [--jobs <n>] [--json <path>]"
                    );
                    std::process::exit(2);
                });
            }
            "--json" => {
                json_path = Some(it.next().cloned().unwrap_or_else(|| {
                    eprintln!(
                        "usage: compare_optimal [--budget <nodes>] [--jobs <n>] [--json <path>]"
                    );
                    std::process::exit(2);
                }));
            }
            _ => {}
        }
    }
    print!("{}", reports::compare_optimal_text(budget, jobs));
    if let Some(path) = json_path {
        let json = reports::compare_optimal_json(budget, jobs);
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("{BIN}: write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("{BIN}: wrote {path}");
    }
}
