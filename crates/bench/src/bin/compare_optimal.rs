//! Extension experiment (§6.1): greedy heuristic vs. exhaustive optimum.
//!
//! Optimal candidate selection is NP-hard (Claim 6.1); this binary measures
//! how far the §4.7 greedy lands from the true optimum on procedures small
//! enough to enumerate, scoring both with the machine simulator. The
//! enumeration budget defaults to the golden-file setting; pass
//! `--budget <n>` for a deeper search.

use gcomm_bench::{reports, statscli::StatsOpts};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let jobs = gcomm_par::take_jobs_flag(&mut args).unwrap_or_else(|e| {
        eprintln!("compare_optimal: {e}");
        std::process::exit(2);
    });
    let _stats = StatsOpts::extract(&mut args).install();
    let mut budget = reports::DEFAULT_OPTIMAL_BUDGET;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--budget" {
            budget = it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                eprintln!("usage: compare_optimal [--budget <n>] [--jobs <n>]");
                std::process::exit(2);
            });
        }
    }
    print!("{}", reports::compare_optimal_text(budget, jobs));
}
