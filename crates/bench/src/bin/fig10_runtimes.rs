//! Regenerates the Figure 10 runtime bar charts: normalized running times
//! of the three code versions (orig / nored / comb) with the communication
//! segment drawn dark, per problem size.
//!
//! Usage:
//!   cargo run -p gcomm-bench --bin fig10_runtimes            # all panels
//!   cargo run -p gcomm-bench --bin fig10_runtimes -- sp2 shallow
//!   cargo run -p gcomm-bench --bin fig10_runtimes -- --json

use gcomm_bench::{bar, paper_sizes, runtime_row, runtime_source, Platform};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let filt: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();

    let panels: Vec<(Platform, &str, &str)> = vec![
        (Platform::Sp2, "shallow", "(a) SP2 shallow, P=25, n x n"),
        (Platform::Sp2, "gravity", "(b) SP2 gravity, P=25, n^3"),
        (Platform::Now, "shallow", "(c) NOW shallow, P=8, n x n"),
        (Platform::Now, "gravity", "(d) NOW gravity, P=8, n^3"),
        (Platform::Sp2, "hydflo", "(e) SP2 hydflo, P=25, n^3"),
        (Platform::Now, "trimesh", "(f) NOW trimesh, P=8, n x n"),
    ];

    for (pf, bench, title) in panels {
        if !filt.is_empty() {
            let pf_name = match pf {
                Platform::Sp2 => "sp2",
                Platform::Now => "now",
            };
            if !(filt.iter().any(|f| *f == pf_name) && filt.iter().any(|f| *f == bench)) {
                continue;
            }
        }
        let Some(src) = runtime_source(bench) else {
            continue;
        };
        if !json {
            println!("== Figure 10 {title} ==");
            println!("   ('#' = network time, '-' = CPU time; orig normalized to 1.0)");
        }
        let mut rows = Vec::new();
        for n in paper_sizes(pf, bench) {
            let row = runtime_row(src, pf, n).expect("kernel compiles");
            if json {
                rows.push(row);
                continue;
            }
            for (name, r) in [("orig", &row.orig), ("nored", &row.nored), ("comb", &row.comb)] {
                let norm = row.normalized(r);
                let dark = r.comm_us / row.orig.total_us();
                println!("n={:<5} {:<6} {:<5.3} |{}", row.n, name, norm, bar(norm, dark));
            }
            println!(
                "        comm cut {:.2}x, overall gain {:.1}%",
                row.comm_speedup(),
                100.0 * (1.0 - row.normalized(&row.comb))
            );
        }
        if json {
            println!("{}", serde_json::to_string(&rows).expect("serialize"));
        } else {
            println!();
        }
    }
}
