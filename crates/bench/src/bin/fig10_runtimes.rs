//! Regenerates the Figure 10 runtime bar charts: normalized running times
//! of the three code versions (orig / nored / comb) with the communication
//! segment drawn dark, per problem size.
//!
//! Usage:
//!   cargo run -p gcomm-bench --bin fig10_runtimes            # all panels
//!   cargo run -p gcomm-bench --bin fig10_runtimes -- sp2 shallow
//!   cargo run -p gcomm-bench --bin fig10_runtimes -- --json
//!   cargo run -p gcomm-bench --bin fig10_runtimes -- --faults seed=42,loss=0.01

use gcomm_bench::{
    bar, fault_row, json, paper_sizes, runtime_row, runtime_source, FaultRow, Platform,
};
use gcomm_machine::FaultPlan;
use gcomm_serve::cli;

fn main() {
    const BIN: &str = "fig10_runtimes";
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if cli::take_version_flag(&mut args) {
        println!("{}", cli::version_line(BIN));
        return;
    }
    let _stats = cli::or_exit2(BIN, cli::StatsOpts::extract(&mut args)).install();
    let json_out = args.iter().any(|a| a == "--json");
    let mut plan = FaultPlan::quiet();
    let mut filt: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => {}
            "--faults" => {
                let Some(spec) = it.next() else {
                    eprintln!("--faults requires a spec (e.g. seed=42,loss=0.01)");
                    std::process::exit(2);
                };
                plan = match FaultPlan::parse(spec) {
                    Ok(p) => p,
                    Err(e) => {
                        eprintln!("{e}");
                        std::process::exit(2);
                    }
                };
            }
            _ if a.starts_with("--") => {
                eprintln!("unknown flag {a}");
                std::process::exit(2);
            }
            _ => filt.push(a),
        }
    }

    let panels: Vec<(Platform, &str, &str)> = vec![
        (Platform::Sp2, "shallow", "(a) SP2 shallow, P=25, n x n"),
        (Platform::Sp2, "gravity", "(b) SP2 gravity, P=25, n^3"),
        (Platform::Now, "shallow", "(c) NOW shallow, P=8, n x n"),
        (Platform::Now, "gravity", "(d) NOW gravity, P=8, n^3"),
        (Platform::Sp2, "hydflo", "(e) SP2 hydflo, P=25, n^3"),
        (Platform::Now, "trimesh", "(f) NOW trimesh, P=8, n x n"),
    ];

    for (pf, bench, title) in panels {
        if !filt.is_empty() {
            let pf_name = match pf {
                Platform::Sp2 => "sp2",
                Platform::Now => "now",
            };
            if !(filt.iter().any(|f| *f == pf_name) && filt.iter().any(|f| *f == bench)) {
                continue;
            }
        }
        let Some(src) = runtime_source(bench) else {
            continue;
        };
        if plan.is_quiet() {
            run_clean_panel(src, pf, bench, title, json_out);
        } else {
            run_fault_panel(src, pf, bench, title, json_out, &plan);
        }
    }
}

fn run_clean_panel(src: &str, pf: Platform, bench: &str, title: &str, json_out: bool) {
    if !json_out {
        println!("== Figure 10 {title} ==");
        println!("   ('#' = network time, '-' = CPU time; orig normalized to 1.0)");
    }
    let mut rows = Vec::new();
    for n in paper_sizes(pf, bench) {
        let row = runtime_row(src, pf, n).expect("kernel compiles");
        if json_out {
            rows.push(row);
            continue;
        }
        for (name, r) in [
            ("orig", &row.orig),
            ("nored", &row.nored),
            ("comb", &row.comb),
        ] {
            let norm = row.normalized(r);
            let dark = r.comm_us / row.orig.total_us();
            println!(
                "n={:<5} {:<6} {:<5.3} |{}",
                row.n,
                name,
                norm,
                bar(norm, dark)
            );
        }
        println!(
            "        comm cut {:.2}x, overall gain {:.1}%",
            row.comm_speedup(),
            100.0 * (1.0 - row.normalized(&row.comb))
        );
    }
    if json_out {
        println!("{}", json::runtime_rows(&rows));
    } else {
        println!();
    }
}

fn run_fault_panel(
    src: &str,
    pf: Platform,
    bench: &str,
    title: &str,
    json_out: bool,
    plan: &FaultPlan,
) {
    if !json_out {
        println!("== Figure 10 {title} [fault-injected] ==");
        println!("   (orig normalized to 1.0; rexmit = retransmitted rounds)");
    }
    let mut rows: Vec<FaultRow> = Vec::new();
    for n in paper_sizes(pf, bench) {
        let row = fault_row(src, pf, n, plan).expect("kernel compiles");
        if json_out {
            rows.push(row);
            continue;
        }
        for (name, r) in [
            ("orig", &row.orig),
            ("nored", &row.nored),
            ("comb", &row.comb),
        ] {
            let norm = row.normalized(r);
            let dark = r.result.comm_us / row.orig.total_us();
            println!(
                "n={:<5} {:<6} {:<5.3} |{:<40} rexmit {:<6} timeouts {:<5} backoff {:>9.1}us fallbacks {}",
                row.n,
                name,
                norm,
                bar(norm, dark),
                r.faults.retransmits,
                r.faults.timeouts,
                r.faults.backoff_us,
                r.faults.fallbacks
            );
        }
    }
    if json_out {
        println!("{}", json::fault_rows(&rows));
    } else {
        println!();
    }
}
