//! Ablation A2: the combining size threshold of §4.7 (paper: 20 KB on the
//! SP2, "beyond which combining messages leads to diminishing returns").
//!
//! Symbolic-size kernels use the paper's rules of thumb, so the threshold
//! is exercised on a *concrete-size* stencil family: `k` fields of a fixed
//! `m × m` extent all read with the same shift. As the threshold shrinks,
//! the fields stop fitting into one combined message and split into more
//! groups; the simulator then prices each schedule.

use gcomm_core::{compile_with_policy, lower_to_sim, CombinePolicy, SimConfig, Strategy};
use gcomm_machine::{simulate, NetworkModel, ProcGrid};

/// Builds a concrete-size kernel: `k` arrays of `m × m` doubles, all read
/// with a west shift by one consumer statement each.
fn kernel(k: usize, m: usize) -> String {
    let mut decls = String::new();
    let mut body = String::new();
    for i in 0..k {
        decls.push_str(&format!(
            "real a{i}({m},{m}), c{i}({m},{m}) distribute (block, block)\n"
        ));
        body.push_str(&format!(
            "  c{i}(2:{m}, 1:{m}) = a{i}(1:{mm}, 1:{m})\n",
            mm = m - 1
        ));
    }
    format!("program thresh\nparam nsteps\n{decls}do t = 1, nsteps\n{body}enddo\nend\n")
}

fn run(src: &str, m: usize, threshold: u64) -> (usize, f64) {
    let policy = CombinePolicy {
        max_combined_bytes: threshold,
        ..CombinePolicy::default()
    };
    let c = compile_with_policy(src, Strategy::Global, &policy).expect("compiles");
    let cfg = SimConfig::uniform(&c, ProcGrid::balanced(25, 2), m as i64).with("nsteps", 1);
    let r = simulate(&lower_to_sim(&c, &cfg), &NetworkModel::sp2());
    (c.static_messages(), r.comm_us)
}

fn main() {
    use gcomm_serve::cli;
    const BIN: &str = "ablation_threshold";
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if cli::take_version_flag(&mut args) {
        println!("{}", cli::version_line(BIN));
        return;
    }
    let jobs = cli::or_exit2(BIN, gcomm_par::take_jobs_flag(&mut args));
    let _stats = cli::or_exit2(BIN, cli::StatsOpts::extract(&mut args)).install();
    let k = 8;
    let m = 16;
    let src = kernel(k, m);
    println!("ablation A2: {k} fields of {m}x{m} doubles, west-shift ghost exchange, P=25");
    println!(
        "{:>12} {:>8} {:>12} {:>12}",
        "threshold(B)", "messages", "comm us/step", "vs 20KB"
    );
    let (_, base) = run(&src, m, 20 * 1024);
    let thresholds = [512u64, 2 * 1024, 8 * 1024, 20 * 1024, 64 * 1024, 1 << 20];
    let table = gcomm_bench::reports::par_report(jobs, &thresholds, |&threshold| {
        let (msgs, comm) = run(&src, m, threshold);
        format!(
            "{:>12} {:>8} {:>12.1} {:>+11.1}%\n",
            threshold,
            msgs,
            comm,
            100.0 * (comm - base) / base
        )
    });
    print!("{table}");
}
