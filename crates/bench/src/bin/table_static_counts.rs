//! Regenerates the static message count table (Figure 10, top).
use gcomm_core::{compile, CommKind, Strategy};

fn main() {
    println!(
        "{:<10} {:<9} {:<5} {:>6} {:>7} {:>6}",
        "Benchmark", "Routine", "Type", "orig", "nored", "comb"
    );
    for (bench, routine, src) in gcomm_kernels::all_kernels() {
        let orig = compile(src, Strategy::Original).expect("compile orig");
        let nored = compile(src, Strategy::EarliestRE).expect("compile nored");
        let comb = compile(src, Strategy::Global).expect("compile comb");
        for (ty, kind) in [("NNC", CommKind::Nnc), ("SUM", CommKind::Reduction)] {
            let o = orig.schedule.count_kind(kind);
            if o == 0 {
                continue;
            }
            println!(
                "{:<10} {:<9} {:<5} {:>6} {:>7} {:>6}",
                bench,
                routine,
                ty,
                o,
                nored.schedule.count_kind(kind),
                comb.schedule.count_kind(kind)
            );
        }
        let og = orig.schedule.count_kind(CommKind::General);
        if og > 0 {
            println!(
                "{bench:<10} {routine:<9} GEN   {og:>6} {:>7} {:>6}",
                nored.schedule.count_kind(CommKind::General),
                comb.schedule.count_kind(CommKind::General)
            );
        }
        if std::env::args().any(|a| a == "-v") {
            println!(
                "--- {bench}:{routine} global placement ---\n{}",
                comb.report()
            );
        }
    }
}
