//! Regenerates the static message count table (Figure 10, top).
use gcomm_bench::reports;
use gcomm_serve::cli;

fn main() {
    const BIN: &str = "table_static_counts";
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if cli::take_version_flag(&mut args) {
        println!("{}", cli::version_line(BIN));
        return;
    }
    let jobs = cli::or_exit2(BIN, gcomm_par::take_jobs_flag(&mut args));
    let _stats = cli::or_exit2(BIN, cli::StatsOpts::extract(&mut args)).install();
    let verbose = args.iter().any(|a| a == "-v");
    print!("{}", reports::table_static_counts_text(verbose, jobs));
}
