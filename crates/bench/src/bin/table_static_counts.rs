//! Regenerates the static message count table (Figure 10, top).
use gcomm_bench::{reports, statscli::StatsOpts};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let jobs = gcomm_par::take_jobs_flag(&mut args).unwrap_or_else(|e| {
        eprintln!("table_static_counts: {e}");
        std::process::exit(2);
    });
    let _stats = StatsOpts::extract(&mut args).install();
    let verbose = args.iter().any(|a| a == "-v");
    print!("{}", reports::table_static_counts_text(verbose, jobs));
}
