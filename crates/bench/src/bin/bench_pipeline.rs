//! Pipeline observability baseline: compiles every kernel under every
//! strategy with stats collection on and emits per-kernel pass wall times
//! and counters as JSON (the `BENCH_pipeline.json` artifact). Each
//! kernel × strategy cell also records its end-to-end compile wall time
//! (`wall_ns_total`), and the document totals the whole matrix — the
//! before/after evidence for the `--jobs` speedup.
//!
//! Usage: `bench_pipeline [--out <path>] [--jobs <n>]` (stdout by default;
//! jobs defaults to the available cores, or `GCOMM_JOBS`).

use std::time::Instant;

use gcomm_core::{compile_stats, Strategy};

fn main() {
    use gcomm_serve::cli;
    const BIN: &str = "bench_pipeline";
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if cli::take_version_flag(&mut args) {
        println!("{}", cli::version_line(BIN));
        return;
    }
    let jobs = cli::or_exit2(BIN, gcomm_par::take_jobs_flag(&mut args));
    let mut out_path: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out_path = it.next(),
            _ => {
                eprintln!("usage: bench_pipeline [--out <path>] [--jobs <n>]");
                std::process::exit(2);
            }
        }
    }

    let strategies = [
        ("orig", Strategy::Original),
        ("nored", Strategy::EarliestRE),
        ("comb", Strategy::Global),
    ];
    let mut work = Vec::new();
    for (bench, routine, src) in gcomm_kernels::all_kernels() {
        for (sname, strategy) in strategies {
            work.push((bench, routine, src, sname, strategy));
        }
    }
    let t0 = Instant::now();
    let items = gcomm_par::map(jobs, &work, |_, &(bench, routine, src, sname, strategy)| {
        // `compile_stats` installs a fresh registry per compile, so every
        // cell's stats are isolated and identical for any worker count.
        let cell0 = Instant::now();
        let c = compile_stats(src, strategy).expect("kernel compiles");
        format!(
            "{{\"bench\":\"{bench}\",\"routine\":\"{routine}\",\
             \"strategy\":\"{sname}\",\"static_messages\":{},\
             \"wall_ns_total\":{},\"stats\":{}}}",
            c.static_messages(),
            cell0.elapsed().as_nanos(),
            c.stats.to_json()
        )
    });
    let doc = format!(
        "{{\"schema\":\"gcomm-bench-pipeline/v1\",\"jobs\":{jobs},\
         \"wall_ns_total\":{},\"kernels\":[{}]}}",
        t0.elapsed().as_nanos(),
        items.join(",")
    );
    match out_path {
        Some(p) => std::fs::write(&p, doc).unwrap_or_else(|e| {
            eprintln!("bench_pipeline: {p}: {e}");
            std::process::exit(1);
        }),
        None => println!("{doc}"),
    }
}
