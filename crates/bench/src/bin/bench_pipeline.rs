//! Pipeline observability baseline: compiles every kernel under every
//! strategy with stats collection on and emits per-kernel pass wall times
//! and counters as JSON (the `BENCH_pipeline.json` artifact).
//!
//! Usage: `bench_pipeline [--out <path>]` (stdout by default).

use gcomm_core::{compile_stats, Strategy};

fn main() {
    let mut args = std::env::args().skip(1);
    let mut out_path: Option<String> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = args.next(),
            _ => {
                eprintln!("usage: bench_pipeline [--out <path>]");
                std::process::exit(2);
            }
        }
    }

    let strategies = [
        ("orig", Strategy::Original),
        ("nored", Strategy::EarliestRE),
        ("comb", Strategy::Global),
    ];
    let mut items = Vec::new();
    for (bench, routine, src) in gcomm_kernels::all_kernels() {
        for (sname, strategy) in strategies {
            let c = compile_stats(src, strategy).expect("kernel compiles");
            items.push(format!(
                "{{\"bench\":\"{bench}\",\"routine\":\"{routine}\",\
                 \"strategy\":\"{sname}\",\"static_messages\":{},\"stats\":{}}}",
                c.static_messages(),
                c.stats.to_json()
            ));
        }
    }
    let doc = format!(
        "{{\"schema\":\"gcomm-bench-pipeline/v1\",\"kernels\":[{}]}}",
        items.join(",")
    );
    match out_path {
        Some(p) => std::fs::write(&p, doc).unwrap_or_else(|e| {
            eprintln!("bench_pipeline: {p}: {e}");
            std::process::exit(1);
        }),
        None => println!("{doc}"),
    }
}
