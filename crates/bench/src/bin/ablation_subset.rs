//! Ablation A3: subset elimination (§4.5) on vs. off.
//!
//! Subset elimination prunes candidate positions without losing combining
//! or redundancy opportunities under the paper's objective; §6 notes it
//! would have to be dropped if CPU–network overlap entered the objective.
//! This ablation verifies the result quality is unchanged and measures the
//! analysis-time effect of the pruning.

use std::time::Instant;

use gcomm_core::{commgen, strategy, AnalysisCtx, CombinePolicy};

fn main() {
    use gcomm_serve::cli;
    const BIN: &str = "ablation_subset";
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if cli::take_version_flag(&mut args) {
        println!("{}", cli::version_line(BIN));
        return;
    }
    let jobs = cli::or_exit2(BIN, gcomm_par::take_jobs_flag(&mut args));
    let _stats = cli::or_exit2(BIN, cli::StatsOpts::extract(&mut args)).install();
    println!(
        "{:<10} {:<9} {:>9} {:>9} {:>12} {:>12}",
        "Benchmark", "Routine", "msgs(on)", "msgs(off)", "time on(us)", "time off(us)"
    );
    let kernels = gcomm_kernels::all_kernels();
    let table = gcomm_bench::reports::par_report(jobs, &kernels, |&(bench, routine, src)| {
        let ast = gcomm_lang::parse_program(src).expect("parses");
        let prog = gcomm_ir::lower(&ast).expect("lowers");
        let policy = CombinePolicy::default();

        let run = |subset: bool| {
            let entries = commgen::number(commgen::generate(&prog));
            let ctx = AnalysisCtx::new(&prog);
            let t0 = Instant::now();
            let sched = strategy::run_global_ablation(&ctx, entries, &policy, subset);
            (sched.static_messages(), t0.elapsed().as_micros())
        };
        let (on_msgs, on_us) = run(true);
        let (off_msgs, off_us) = run(false);
        assert_eq!(
            on_msgs, off_msgs,
            "{bench}:{routine}: subset elimination must not change quality"
        );
        format!(
            "{:<10} {:<9} {:>9} {:>9} {:>12} {:>12}\n",
            bench, routine, on_msgs, off_msgs, on_us, off_us
        )
    });
    print!("{table}");
    println!("\nresult quality identical with and without subset elimination (Claim 4.7)");
}
