//! Golden-file tests: regenerate the `results/*.txt` report artifacts and
//! fail on any drift from the checked-in copies. To accept an intentional
//! change, rerun with blessing enabled:
//!
//! ```text
//! GCOMM_BLESS=1 cargo test -p gcomm-bench --test golden
//! ```

use std::path::PathBuf;

use gcomm_bench::reports;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../results")
        .join(name)
}

fn check_golden(name: &str, regenerated: &str) {
    let path = golden_path(name);
    if std::env::var_os("GCOMM_BLESS").is_some() {
        std::fs::write(&path, regenerated).expect("write blessed golden");
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read {}: {e} (run with GCOMM_BLESS=1 to create)", name));
    if golden != regenerated {
        let diff: Vec<String> = golden
            .lines()
            .zip(regenerated.lines())
            .enumerate()
            .filter(|(_, (a, b))| a != b)
            .map(|(i, (a, b))| format!("  line {}:\n  - {a}\n  + {b}", i + 1))
            .collect();
        panic!(
            "results/{name} drifted from the regenerated report \
             (GCOMM_BLESS=1 to accept):\n{}{}",
            diff.join("\n"),
            if golden.lines().count() != regenerated.lines().count() {
                format!(
                    "\n  (line count {} -> {})",
                    golden.lines().count(),
                    regenerated.lines().count()
                )
            } else {
                String::new()
            }
        );
    }
}

#[test]
fn table_static_counts_matches_golden() {
    // Runs at the ambient worker count (`GCOMM_JOBS` in CI): the golden
    // file doubles as the jobs-1-vs-N determinism check, since it was
    // blessed from a serial run.
    check_golden(
        "table_static_counts.txt",
        &reports::table_static_counts_text(false, gcomm_par::default_jobs()),
    );
}

#[test]
fn compare_optimal_matches_golden() {
    check_golden(
        "compare_optimal.txt",
        &reports::compare_optimal_text(reports::DEFAULT_OPTIMAL_BUDGET, gcomm_par::default_jobs()),
    );
}
