//! Token kinds produced by the lexer.

use std::borrow::Cow;
use std::fmt;

/// A lexical token with its 1-based source line, borrowing identifier
/// text from the source string where possible.
#[derive(Debug, Clone, PartialEq)]
pub struct Token<'s> {
    /// Token kind and payload.
    pub kind: TokenKind<'s>,
    /// 1-based source line the token starts on.
    pub line: u32,
}

/// The kind of a lexical token.
///
/// Keywords are case-insensitive in the source (`DO`, `do`, and `Do` all lex
/// to [`TokenKind::Do`]); identifiers are lowercased by the lexer so that the
/// rest of the pipeline is case-insensitive, matching Fortran convention.
/// An identifier that is already lowercase in the source — the common case —
/// borrows its text from the input instead of allocating.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind<'s> {
    /// Identifier (already lowercased).
    Ident(Cow<'s, str>),
    /// Integer literal.
    Int(i64),
    /// Floating point literal.
    Float(f64),

    // Keywords.
    /// `program`
    Program,
    /// `end`
    End,
    /// `real`
    Real,
    /// `param`
    Param,
    /// `distribute`
    Distribute,
    /// `do`
    Do,
    /// `enddo`
    EndDo,
    /// `if`
    If,
    /// `then`
    Then,
    /// `else`
    Else,
    /// `endif`
    EndIf,
    /// `sum`
    Sum,
    /// `align`
    Align,

    // Punctuation and operators.
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `/=` (Fortran inequality)
    Ne,
    /// End of statement (newline or `;`).
    Newline,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Int(v) => write!(f, "integer `{v}`"),
            TokenKind::Float(v) => write!(f, "float `{v}`"),
            TokenKind::Program => write!(f, "`program`"),
            TokenKind::End => write!(f, "`end`"),
            TokenKind::Real => write!(f, "`real`"),
            TokenKind::Param => write!(f, "`param`"),
            TokenKind::Distribute => write!(f, "`distribute`"),
            TokenKind::Do => write!(f, "`do`"),
            TokenKind::EndDo => write!(f, "`enddo`"),
            TokenKind::If => write!(f, "`if`"),
            TokenKind::Then => write!(f, "`then`"),
            TokenKind::Else => write!(f, "`else`"),
            TokenKind::EndIf => write!(f, "`endif`"),
            TokenKind::Sum => write!(f, "`sum`"),
            TokenKind::Align => write!(f, "`align`"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Colon => write!(f, "`:`"),
            TokenKind::Assign => write!(f, "`=`"),
            TokenKind::Plus => write!(f, "`+`"),
            TokenKind::Minus => write!(f, "`-`"),
            TokenKind::Star => write!(f, "`*`"),
            TokenKind::Slash => write!(f, "`/`"),
            TokenKind::Lt => write!(f, "`<`"),
            TokenKind::Gt => write!(f, "`>`"),
            TokenKind::Le => write!(f, "`<=`"),
            TokenKind::Ge => write!(f, "`>=`"),
            TokenKind::EqEq => write!(f, "`==`"),
            TokenKind::Ne => write!(f, "`/=`"),
            TokenKind::Newline => write!(f, "end of line"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// Maps an identifier to a keyword kind, if it is one.
pub(crate) fn keyword(ident: &str) -> Option<TokenKind<'static>> {
    Some(match ident {
        "program" => TokenKind::Program,
        "end" => TokenKind::End,
        "real" => TokenKind::Real,
        "param" => TokenKind::Param,
        "distribute" => TokenKind::Distribute,
        "do" => TokenKind::Do,
        "enddo" => TokenKind::EndDo,
        "if" => TokenKind::If,
        "then" => TokenKind::Then,
        "else" => TokenKind::Else,
        "endif" => TokenKind::EndIf,
        "sum" => TokenKind::Sum,
        "align" => TokenKind::Align,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup() {
        assert_eq!(keyword("do"), Some(TokenKind::Do));
        assert_eq!(keyword("sum"), Some(TokenKind::Sum));
        assert_eq!(keyword("shallow"), None);
    }

    #[test]
    fn display_is_nonempty() {
        for k in [
            TokenKind::Ident("x".into()),
            TokenKind::Int(3),
            TokenKind::Do,
            TokenKind::Newline,
            TokenKind::Eof,
        ] {
            assert!(!k.to_string().is_empty());
        }
    }
}
