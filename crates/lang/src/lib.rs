//! # gcomm-lang — a mini-HPF frontend
//!
//! This crate implements the source language consumed by the `gcomm`
//! communication optimizer: a small, Fortran-90/HPF-flavoured data-parallel
//! language with
//!
//! * `real` array declarations with per-dimension bounds,
//! * HPF `distribute (block, cyclic, *)` directives,
//! * symbolic size parameters (`param n, nx`),
//! * F90 array-section assignments (`c(2:n) = a(1:n-1) + b(1:n-1)`),
//! * `do` loops, `if`/`else`, and `sum(...)` reductions.
//!
//! The language is deliberately small but expresses every construct used by
//! the motivating codes and benchmarks of *Global Communication Analysis and
//! Optimization* (Chakrabarti, Gupta, Choi; PLDI 1996): nearest-neighbour
//! shift patterns, global reductions, loop nests, and control flow.
//!
//! # Example
//!
//! ```
//! use gcomm_lang::parse_program;
//!
//! let src = r#"
//! program saxpy
//!   param n
//!   real a(n), b(n), c(n) distribute (block)
//!   c(2:n) = a(1:n-1) + b(1:n-1)
//! end
//! "#;
//! let prog = parse_program(src)?;
//! assert_eq!(prog.name, "saxpy");
//! assert_eq!(prog.arrays.len(), 3);
//! # Ok::<(), gcomm_lang::LangError>(())
//! ```

pub mod ast;
pub mod builder;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod token;
pub mod transform;
pub mod validate;

pub use ast::{
    ArrayDecl, ArrayRef, Assign, BinOp, DeclDim, Dist, DoLoop, Expr, IfStmt, Program, Stmt,
    Subscript,
};
pub use builder::ProgramBuilder;
pub use error::LangError;
pub use parser::Parser;
pub use transform::{fuse_loops, scalarize};

/// Parses a complete mini-HPF program from source text and validates it.
///
/// This is the main entry point of the crate: it lexes, parses, and runs the
/// semantic validator (declared names, ranks, distribution arity).
///
/// # Errors
///
/// Returns [`LangError`] describing the first lexical, syntactic, or semantic
/// problem encountered, with a line number where available.
pub fn parse_program(src: &str) -> Result<Program, LangError> {
    let _t = gcomm_obs::time("lang.parse");
    let mut parser = Parser::new(src)?;
    gcomm_obs::count("lang.tokens", parser.token_count() as u64);
    let prog = parser.parse_program().inspect_err(|_| {
        gcomm_obs::count("lang.parse_errors", 1);
    })?;
    gcomm_obs::count("lang.stmts", prog.stmt_count() as u64);
    validate::validate(&prog)?;
    Ok(prog)
}

/// Parses a program, recovering at statement boundaries to collect every
/// independent syntax error instead of stopping at the first one. A clean
/// parse is then validated (declared names, ranks, distribution arity).
///
/// # Errors
///
/// Returns all diagnostics found, each with a line number where available.
pub fn parse_program_diagnostics(src: &str) -> Result<Program, Vec<LangError>> {
    let _t = gcomm_obs::time("lang.parse");
    let mut parser = match Parser::new(src) {
        Ok(p) => p,
        Err(e) => {
            gcomm_obs::count("lang.parse_errors", 1);
            return Err(vec![e]);
        }
    };
    gcomm_obs::count("lang.tokens", parser.token_count() as u64);
    let (prog, mut errs) = parser.parse_program_recovering();
    gcomm_obs::count("lang.stmts", prog.stmt_count() as u64);
    gcomm_obs::count("lang.parse_errors", errs.len() as u64);
    if errs.is_empty() {
        if let Err(e) = validate::validate(&prog) {
            errs.push(e);
        }
    }
    if errs.is_empty() {
        Ok(prog)
    } else {
        Err(errs)
    }
}
