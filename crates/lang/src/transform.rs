//! Source-to-source transformations: scalarization and loop fusion.
//!
//! The paper's §2.3 discussion of *syntax sensitivity* revolves around two
//! front-end passes of the pHPF compiler:
//!
//! * the **scalarizer** turns F90 array-section assignments into explicit
//!   element loops ("the current IBM HPF scalarizer will translate the
//!   F90-style source to the scalarized form in the second column"), and
//! * **loop fusion** can merge adjacent compatible loops, re-unifying
//!   earliest placement points ("if loop fusion can be performed before
//!   this analysis, the problem can be avoided — but this is not always
//!   possible").
//!
//! Both passes are value-preserving (checked against the reference
//! interpreter in the workspace tests). Scalarization handles the aliasing
//! hazard of overlapping reads of the assigned array by choosing the loop
//! direction from the read offsets, exactly as classical scalarizers do;
//! statements it cannot prove safe are left in array form.

use crate::ast::*;

/// Scalarizes every array-section assignment it can prove safe, leaving
/// the rest untouched. Returns the transformed program.
pub fn scalarize(prog: &Program) -> Program {
    let mut counter = 0usize;
    let mut out = prog.clone();
    out.body = scalarize_stmts(prog, &prog.body, &mut counter);
    out
}

fn scalarize_stmts(prog: &Program, stmts: &[Stmt], counter: &mut usize) -> Vec<Stmt> {
    let mut out = Vec::with_capacity(stmts.len());
    for s in stmts {
        match s {
            Stmt::Assign(a) => match scalarize_assign(prog, a, counter) {
                Some(replacement) => out.push(replacement),
                None => out.push(s.clone()),
            },
            Stmt::Do(d) => {
                let mut d2 = d.clone();
                d2.body = scalarize_stmts(prog, &d.body, counter);
                out.push(Stmt::Do(d2));
            }
            Stmt::If(i) => {
                let mut i2 = i.clone();
                i2.then_body = scalarize_stmts(prog, &i.then_body, counter);
                i2.else_body = scalarize_stmts(prog, &i.else_body, counter);
                out.push(Stmt::If(i2));
            }
        }
    }
    out
}

/// The resolved triplet of one range dimension.
#[derive(Clone)]
struct Triplet {
    lo: Expr,
    hi: Expr,
    step: i64,
}

fn decl_bounds(prog: &Program, array: &str, dim: usize) -> Option<(Expr, Expr)> {
    let d = prog.array(array)?;
    let dd = d.dims.get(dim)?;
    Some((dd.lo.clone(), dd.hi.clone()))
}

fn triplet_of(prog: &Program, array: &str, dim: usize, s: &Subscript) -> Option<Triplet> {
    match s {
        Subscript::Index(_) => None,
        Subscript::Range { lo, hi, step } => {
            let (dlo, dhi) = decl_bounds(prog, array, dim)?;
            Some(Triplet {
                lo: lo.clone().unwrap_or(dlo),
                hi: hi.clone().unwrap_or(dhi),
                step: *step,
            })
        }
    }
}

/// Builds `base + (var - lo)` — the element index of a co-iterated range.
fn co_index(base: &Expr, var: &str, lo: &Expr) -> Expr {
    Expr::Bin(
        BinOp::Add,
        Box::new(base.clone()),
        Box::new(Expr::Bin(
            BinOp::Sub,
            Box::new(Expr::name(var)),
            Box::new(lo.clone()),
        )),
    )
}

fn scalarize_assign(prog: &Program, a: &Assign, counter: &mut usize) -> Option<Stmt> {
    // Collect the lhs triplets (the iteration space).
    let decl = prog.array(&a.lhs.array)?;
    if a.lhs.subs.is_empty() || decl.rank() == 0 {
        return None;
    }
    let lhs_trips: Vec<(usize, Triplet)> = a
        .lhs
        .subs
        .iter()
        .enumerate()
        .filter_map(|(d, s)| triplet_of(prog, &a.lhs.array, d, s).map(|t| (d, t)))
        .collect();
    if lhs_trips.is_empty() {
        return None; // already elementwise
    }

    // Every rhs reference must co-iterate: equal range count with equal
    // steps per position. Compute, per iteration dimension, the set of
    // same-array read offsets to choose a safe loop direction.
    let mut same_array_deltas: Vec<Vec<i64>> = vec![Vec::new(); lhs_trips.len()];
    let mut scalarizable = true;
    a.rhs.for_each_ref(&mut |r, in_sum| {
        if in_sum || !scalarizable {
            return; // sum() arguments stay whole-section
        }
        if r.subs.is_empty() {
            // Whole-array or scalar name: scalars are fine; whole arrays
            // would need rank checks — only allow rank 0 names here.
            if prog.array(&r.array).map(|d| d.rank()) == Some(0) || prog.array(&r.array).is_none() {
                return;
            }
            scalarizable = false;
            return;
        }
        let trips: Vec<(usize, Triplet)> = r
            .subs
            .iter()
            .enumerate()
            .filter_map(|(d, s)| triplet_of(prog, &r.array, d, s).map(|t| (d, t)))
            .collect();
        if trips.len() != lhs_trips.len() {
            scalarizable = false;
            return;
        }
        for (k, ((_, rt), (_, lt))) in trips.iter().zip(lhs_trips.iter()).enumerate() {
            if rt.step != lt.step {
                scalarizable = false;
                return;
            }
            if r.array == a.lhs.array {
                // Offset between read and write positions, when constant.
                match const_diff(&rt.lo, &lt.lo) {
                    Some(d) => same_array_deltas[k].push(d),
                    None => scalarizable = false,
                }
            }
        }
    });
    if !scalarizable {
        return None;
    }

    // Choose a direction per dimension: reads strictly below the write can
    // iterate upward... actually the safe direction writes elements whose
    // sources have already NOT been overwritten: with read offset d<0
    // (reading lower indices), iterate downward; d>0, iterate upward;
    // mixed signs are unsafe.
    let mut directions = Vec::with_capacity(lhs_trips.len());
    for deltas in &same_array_deltas {
        let has_neg = deltas.iter().any(|&d| d < 0);
        let has_pos = deltas.iter().any(|&d| d > 0);
        match (has_neg, has_pos) {
            (true, true) => return None, // needs a temporary
            (true, false) => directions.push(-1i64),
            _ => directions.push(1i64),
        }
    }

    // Fresh loop variables.
    let vars: Vec<String> = (0..lhs_trips.len())
        .map(|_| {
            *counter += 1;
            let mut name = format!("sc{counter}");
            while prog.array(&name).is_some() || prog.params.contains(&name) {
                *counter += 1;
                name = format!("sc{counter}");
            }
            name
        })
        .collect();

    // Rewrite the statement body: each range becomes a co-iterated index.
    let rewrite_ref = |r: &ArrayRef| -> ArrayRef {
        let mut ki = 0usize;
        let subs = r
            .subs
            .iter()
            .enumerate()
            .map(|(d, s)| match triplet_of(prog, &r.array, d, s) {
                Some(t) => {
                    let k = ki;
                    ki += 1;
                    let (_, lt) = &lhs_trips[k];
                    Subscript::Index(co_index(&t.lo, &vars[k], &lt.lo))
                }
                None => s.clone(),
            })
            .collect();
        ArrayRef {
            array: r.array.clone(),
            subs,
        }
    };

    fn rewrite_expr(e: &Expr, f: &dyn Fn(&ArrayRef) -> ArrayRef) -> Expr {
        match e {
            Expr::Int(_) | Expr::Num(_) => e.clone(),
            Expr::Neg(a) => Expr::Neg(Box::new(rewrite_expr(a, f))),
            Expr::Bin(op, a, b) => Expr::Bin(
                *op,
                Box::new(rewrite_expr(a, f)),
                Box::new(rewrite_expr(b, f)),
            ),
            Expr::Sum(r) => Expr::Sum(r.clone()), // whole-section reduction
            Expr::Ref(r) => {
                if r.subs.is_empty() {
                    Expr::Ref(r.clone())
                } else {
                    Expr::Ref(f(r))
                }
            }
        }
    }

    let new_lhs = rewrite_ref(&a.lhs);
    let new_rhs = rewrite_expr(&a.rhs, &rewrite_ref);

    // Build the loop nest, innermost = last range dimension.
    let mut nest = Stmt::Assign(Assign {
        lhs: new_lhs,
        rhs: new_rhs,
        line: a.line,
    });
    for k in (0..lhs_trips.len()).rev() {
        let (_, t) = &lhs_trips[k];
        let (lo, hi, step) = if directions[k] >= 0 {
            (t.lo.clone(), t.hi.clone(), t.step)
        } else {
            (t.hi.clone(), t.lo.clone(), -t.step)
        };
        nest = Stmt::Do(DoLoop {
            var: vars[k].clone(),
            lo,
            hi,
            step,
            body: vec![nest],
        });
    }
    Some(nest)
}

/// Constant difference of two bound expressions, when syntactically
/// decidable (integer literals and matching names).
fn const_diff(a: &Expr, b: &Expr) -> Option<i64> {
    fn split(e: &Expr) -> Option<(String, i64)> {
        match e {
            Expr::Int(v) => Some((String::new(), *v)),
            Expr::Ref(r) if r.subs.is_empty() => Some((r.array.clone(), 0)),
            Expr::Bin(BinOp::Add, x, y) => {
                let (nx, kx) = split(x)?;
                let (ny, ky) = split(y)?;
                match (nx.is_empty(), ny.is_empty()) {
                    (true, _) => Some((ny, kx + ky)),
                    (_, true) => Some((nx, kx + ky)),
                    _ => None,
                }
            }
            Expr::Bin(BinOp::Sub, x, y) => {
                let (nx, kx) = split(x)?;
                let (ny, ky) = split(y)?;
                if ny.is_empty() {
                    Some((nx, kx - ky))
                } else {
                    None
                }
            }
            _ => None,
        }
    }
    let (na, ka) = split(a)?;
    let (nb, kb) = split(b)?;
    (na == nb).then_some(ka - kb)
}

/// Fuses adjacent loops with identical bounds and step whose bodies touch
/// disjoint arrays (the conservative, always-legal case). Applied
/// recursively; returns the transformed program.
pub fn fuse_loops(prog: &Program) -> Program {
    let mut out = prog.clone();
    out.body = fuse_stmts(&prog.body);
    out
}

fn fuse_stmts(stmts: &[Stmt]) -> Vec<Stmt> {
    let mut out: Vec<Stmt> = Vec::with_capacity(stmts.len());
    for s in stmts {
        let s = match s {
            Stmt::Do(d) => {
                let mut d2 = d.clone();
                d2.body = fuse_stmts(&d.body);
                Stmt::Do(d2)
            }
            Stmt::If(i) => {
                let mut i2 = i.clone();
                i2.then_body = fuse_stmts(&i.then_body);
                i2.else_body = fuse_stmts(&i.else_body);
                Stmt::If(i2)
            }
            other => other.clone(),
        };
        if let (Some(Stmt::Do(prev)), Stmt::Do(cur)) = (out.last(), &s) {
            if prev.lo == cur.lo
                && prev.hi == cur.hi
                && prev.step == cur.step
                && arrays_disjoint(prev, cur)
            {
                // Fuse: rename the second loop's variable to the first's.
                let renamed = rename_var(&cur.body, &cur.var, &prev.var);
                if let Some(Stmt::Do(prev)) = out.last_mut() {
                    prev.body.extend(renamed);
                }
                continue;
            }
        }
        out.push(s);
    }
    out
}

fn touched_arrays(body: &[Stmt], acc: &mut Vec<String>) {
    for s in body {
        match s {
            Stmt::Assign(a) => {
                acc.push(a.lhs.array.clone());
                a.rhs.for_each_ref(&mut |r, _| acc.push(r.array.clone()));
            }
            Stmt::Do(d) => touched_arrays(&d.body, acc),
            Stmt::If(i) => {
                i.cond.for_each_ref(&mut |r, _| acc.push(r.array.clone()));
                touched_arrays(&i.then_body, acc);
                touched_arrays(&i.else_body, acc);
            }
        }
    }
}

fn arrays_disjoint(a: &DoLoop, b: &DoLoop) -> bool {
    let mut ta = Vec::new();
    let mut tb = Vec::new();
    touched_arrays(&a.body, &mut ta);
    touched_arrays(&b.body, &mut tb);
    ta.iter().all(|x| !tb.contains(x))
}

fn rename_var(body: &[Stmt], from: &str, to: &str) -> Vec<Stmt> {
    fn rex(e: &Expr, from: &str, to: &str) -> Expr {
        match e {
            Expr::Int(_) | Expr::Num(_) => e.clone(),
            Expr::Neg(a) => Expr::Neg(Box::new(rex(a, from, to))),
            Expr::Bin(op, a, b) => {
                Expr::Bin(*op, Box::new(rex(a, from, to)), Box::new(rex(b, from, to)))
            }
            Expr::Sum(r) => Expr::Sum(rref(r, from, to)),
            Expr::Ref(r) => {
                if r.subs.is_empty() && r.array == from {
                    Expr::name(to)
                } else {
                    Expr::Ref(rref(r, from, to))
                }
            }
        }
    }
    fn rsub(s: &Subscript, from: &str, to: &str) -> Subscript {
        match s {
            Subscript::Index(e) => Subscript::Index(rex(e, from, to)),
            Subscript::Range { lo, hi, step } => Subscript::Range {
                lo: lo.as_ref().map(|e| rex(e, from, to)),
                hi: hi.as_ref().map(|e| rex(e, from, to)),
                step: *step,
            },
        }
    }
    fn rref(r: &ArrayRef, from: &str, to: &str) -> ArrayRef {
        ArrayRef {
            array: r.array.clone(),
            subs: r.subs.iter().map(|s| rsub(s, from, to)).collect(),
        }
    }
    body.iter()
        .map(|s| match s {
            Stmt::Assign(a) => Stmt::Assign(Assign {
                lhs: rref(&a.lhs, from, to),
                rhs: rex(&a.rhs, from, to),
                line: a.line,
            }),
            Stmt::Do(d) if d.var != from => Stmt::Do(DoLoop {
                var: d.var.clone(),
                lo: rex(&d.lo, from, to),
                hi: rex(&d.hi, from, to),
                step: d.step,
                body: rename_var(&d.body, from, to),
            }),
            Stmt::Do(d) => Stmt::Do(d.clone()), // inner shadowing: stop
            Stmt::If(i) => Stmt::If(IfStmt {
                cond: rex(&i.cond, from, to),
                then_body: rename_var(&i.then_body, from, to),
                else_body: rename_var(&i.else_body, from, to),
            }),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    #[test]
    fn scalarizes_simple_section() {
        let p = parse_program(
            "program t\nparam n\nreal a(n), b(n) distribute (block)\nb(2:n) = a(1:n-1)\nend",
        )
        .unwrap();
        let s = scalarize(&p);
        assert_eq!(s.body.len(), 1);
        match &s.body[0] {
            Stmt::Do(d) => {
                assert_eq!(d.step, 1);
                assert_eq!(d.body.len(), 1);
                match &d.body[0] {
                    Stmt::Assign(a) => {
                        assert!(matches!(a.lhs.subs[0], Subscript::Index(_)));
                    }
                    _ => panic!("expected elementwise assign"),
                }
            }
            _ => panic!("expected loop"),
        }
        // The result re-validates.
        crate::validate::validate(&s).unwrap();
    }

    #[test]
    fn overlapping_self_read_iterates_safely() {
        // a(2:n) = a(1:n-1): reading below the write — downward loop.
        let p = parse_program(
            "program t\nparam n\nreal a(n) distribute (block)\na(2:n) = a(1:n-1)\nend",
        )
        .unwrap();
        let s = scalarize(&p);
        match &s.body[0] {
            Stmt::Do(d) => assert_eq!(d.step, -1, "must iterate downward"),
            _ => panic!("expected loop"),
        }
    }

    #[test]
    fn mixed_direction_self_read_left_alone() {
        // Reads both above and below the write: needs a temporary; the
        // statement stays in array form.
        let p = parse_program(
            "program t\nparam n\nreal a(n) distribute (block)\na(2:n-1) = a(1:n-2) + a(3:n)\nend",
        )
        .unwrap();
        let s = scalarize(&p);
        assert!(matches!(s.body[0], Stmt::Assign(_)));
    }

    #[test]
    fn strided_sections_scalarize_with_stride() {
        let p = parse_program(
            "program t\nparam n\nreal b(n,n) distribute (block,block)\nb(1:n, 1:n:2) = 1\nend",
        )
        .unwrap();
        let s = scalarize(&p);
        match &s.body[0] {
            Stmt::Do(outer) => match &outer.body[0] {
                Stmt::Do(inner) => assert_eq!(inner.step, 2),
                _ => panic!("expected inner loop"),
            },
            _ => panic!("expected loop nest"),
        }
    }

    #[test]
    fn fuses_independent_adjacent_loops() {
        let p = parse_program(
            "
program t
param n
real a(n), b(n) distribute (block)
do i = 1, n
  a(i) = 3
enddo
do j = 1, n
  b(j) = 4
enddo
end",
        )
        .unwrap();
        let f = fuse_loops(&p);
        assert_eq!(f.body.len(), 1, "loops must fuse");
        match &f.body[0] {
            Stmt::Do(d) => assert_eq!(d.body.len(), 2),
            _ => panic!("expected fused loop"),
        }
        crate::validate::validate(&f).unwrap();
    }

    #[test]
    fn dependent_loops_do_not_fuse() {
        let p = parse_program(
            "
program t
param n
real a(n), b(n) distribute (block)
do i = 1, n
  a(i) = 3
enddo
do j = 1, n
  b(j) = a(j)
enddo
end",
        )
        .unwrap();
        let f = fuse_loops(&p);
        assert_eq!(f.body.len(), 2, "shared array blocks fusion");
    }

    #[test]
    fn mismatched_bounds_do_not_fuse() {
        let p = parse_program(
            "
program t
param n
real a(n), b(n) distribute (block)
do i = 1, n
  a(i) = 3
enddo
do j = 2, n
  b(j) = 4
enddo
end",
        )
        .unwrap();
        assert_eq!(fuse_loops(&p).body.len(), 2);
    }
}
