//! Semantic validation of a parsed program.
//!
//! Checks performed:
//!
//! * every referenced name is declared (array, scalar, parameter, or an
//!   in-scope loop variable),
//! * subscripted references match the declared rank,
//! * assignment targets are arrays or scalars (not parameters or loop
//!   variables),
//! * no name is declared twice, and loop variables do not shadow arrays or
//!   parameters,
//! * `sum(...)` takes an array argument.

use std::collections::HashSet;

use crate::ast::*;
use crate::error::LangError;

/// Validates a program. See the module docs for the list of checks.
///
/// # Errors
///
/// Returns [`LangError`] describing the first violation found.
pub fn validate(prog: &Program) -> Result<(), LangError> {
    let mut v = Validator {
        prog,
        loop_vars: Vec::new(),
    };
    v.check_decls()?;
    v.check_stmts(&prog.body)
}

struct Validator<'a> {
    prog: &'a Program,
    loop_vars: Vec<String>,
}

impl<'a> Validator<'a> {
    fn check_decls(&self) -> Result<(), LangError> {
        let mut seen = HashSet::new();
        for p in &self.prog.params {
            if !seen.insert(p.as_str()) {
                return Err(LangError::general(format!(
                    "duplicate declaration of `{p}`"
                )));
            }
        }
        for a in &self.prog.arrays {
            if !seen.insert(a.name.as_str()) {
                return Err(LangError::general(format!(
                    "duplicate declaration of `{}`",
                    a.name
                )));
            }
            if !a.dist.is_empty() && a.dist.len() != a.dims.len() {
                return Err(LangError::general(format!(
                    "array `{}`: distribute clause arity mismatch",
                    a.name
                )));
            }
            for d in &a.dims {
                self.check_size_expr(&d.lo)?;
                self.check_size_expr(&d.hi)?;
            }
        }
        Ok(())
    }

    /// Bound expressions in declarations may reference only parameters and
    /// integer literals.
    fn check_size_expr(&self, e: &Expr) -> Result<(), LangError> {
        match e {
            Expr::Int(_) => Ok(()),
            Expr::Num(_) => Err(LangError::general(
                "array bounds must be integer expressions",
            )),
            Expr::Ref(r) => {
                if r.subs.is_empty() && self.prog.params.contains(&r.array) {
                    Ok(())
                } else {
                    Err(LangError::general(format!(
                        "array bound references `{}`, which is not a parameter",
                        r.array
                    )))
                }
            }
            Expr::Bin(_, a, b) => {
                self.check_size_expr(a)?;
                self.check_size_expr(b)
            }
            Expr::Neg(a) => self.check_size_expr(a),
            Expr::Sum(_) => Err(LangError::general("array bounds cannot contain sum()")),
        }
    }

    fn check_stmts(&mut self, stmts: &[Stmt]) -> Result<(), LangError> {
        for s in stmts {
            match s {
                Stmt::Assign(a) => self.check_assign(a)?,
                Stmt::Do(d) => {
                    if self.is_declared(&d.var) {
                        return Err(LangError::general(format!(
                            "loop variable `{}` shadows a declared name",
                            d.var
                        )));
                    }
                    self.check_expr(&d.lo, a_line(stmts))?;
                    self.check_expr(&d.hi, a_line(stmts))?;
                    self.loop_vars.push(d.var.clone());
                    self.check_stmts(&d.body)?;
                    self.loop_vars.pop();
                }
                Stmt::If(i) => {
                    self.check_expr(&i.cond, 0)?;
                    self.check_stmts(&i.then_body)?;
                    self.check_stmts(&i.else_body)?;
                }
            }
        }
        Ok(())
    }

    fn check_assign(&self, a: &Assign) -> Result<(), LangError> {
        // LHS must be an array or scalar.
        let decl = self.prog.array(&a.lhs.array).ok_or_else(|| {
            LangError::at(
                a.line,
                format!("assignment to undeclared name `{}`", a.lhs.array),
            )
        })?;
        self.check_ref_against(decl, &a.lhs, a.line)?;
        self.check_expr(&a.rhs, a.line)
    }

    fn check_ref_against(
        &self,
        decl: &ArrayDecl,
        r: &ArrayRef,
        line: u32,
    ) -> Result<(), LangError> {
        if !r.subs.is_empty() && r.subs.len() != decl.rank() {
            return Err(LangError::at(
                line,
                format!(
                    "`{}` has rank {} but is referenced with {} subscripts",
                    r.array,
                    decl.rank(),
                    r.subs.len()
                ),
            ));
        }
        for s in &r.subs {
            match s {
                Subscript::Index(e) => self.check_expr(e, line)?,
                Subscript::Range { lo, hi, .. } => {
                    if let Some(e) = lo {
                        self.check_expr(e, line)?;
                    }
                    if let Some(e) = hi {
                        self.check_expr(e, line)?;
                    }
                }
            }
        }
        Ok(())
    }

    fn is_declared(&self, name: &str) -> bool {
        self.prog.params.iter().any(|p| p == name)
            || self.prog.array(name).is_some()
            || self.loop_vars.iter().any(|v| v == name)
    }

    fn check_expr(&self, e: &Expr, line: u32) -> Result<(), LangError> {
        match e {
            Expr::Int(_) | Expr::Num(_) => Ok(()),
            Expr::Neg(a) => self.check_expr(a, line),
            Expr::Bin(_, a, b) => {
                self.check_expr(a, line)?;
                self.check_expr(b, line)
            }
            Expr::Sum(r) => {
                let decl = self.prog.array(&r.array).ok_or_else(|| {
                    LangError::at(line, format!("sum() of undeclared array `{}`", r.array))
                })?;
                if decl.rank() == 0 {
                    return Err(LangError::at(
                        line,
                        format!("sum() argument `{}` is a scalar", r.array),
                    ));
                }
                self.check_ref_against(decl, r, line)
            }
            Expr::Ref(r) => {
                if r.subs.is_empty() {
                    if self.is_declared(&r.array) {
                        Ok(())
                    } else {
                        Err(LangError::at(
                            line,
                            format!("reference to undeclared name `{}`", r.array),
                        ))
                    }
                } else {
                    let decl = self.prog.array(&r.array).ok_or_else(|| {
                        LangError::at(line, format!("reference to undeclared array `{}`", r.array))
                    })?;
                    self.check_ref_against(decl, r, line)
                }
            }
        }
    }
}

/// Best-effort line number for loop-bound diagnostics.
fn a_line(stmts: &[Stmt]) -> u32 {
    stmts
        .iter()
        .find_map(|s| match s {
            Stmt::Assign(a) => Some(a.line),
            _ => None,
        })
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use crate::parse_program;

    #[test]
    fn rejects_undeclared_reference() {
        let e = parse_program("program t\nparam n\nreal a(n) distribute (block)\na(1:n) = q\nend")
            .unwrap_err();
        assert!(e.message.contains("undeclared"));
    }

    #[test]
    fn rejects_rank_mismatch() {
        let e = parse_program(
            "program t\nparam n\nreal a(n,n) distribute (block,block)\na(1) = 0\nend",
        )
        .unwrap_err();
        assert!(e.message.contains("rank"));
    }

    #[test]
    fn rejects_duplicate_declaration() {
        let e = parse_program("program t\nparam n, n\nend").unwrap_err();
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn rejects_loop_var_shadowing() {
        let e = parse_program(
            "program t\nparam n\nreal i(n) distribute (block)\ndo i = 1, n\nenddo\nend",
        )
        .unwrap_err();
        assert!(e.message.contains("shadows"));
    }

    #[test]
    fn rejects_sum_of_scalar() {
        let e = parse_program("program t\nreal s, q\ns = sum(q)\nend").unwrap_err();
        assert!(e.message.contains("scalar"));
    }

    #[test]
    fn rejects_nonparam_array_bound() {
        let e = parse_program("program t\nreal s\nreal a(s)\nend").unwrap_err();
        assert!(e.message.contains("parameter"));
    }

    #[test]
    fn accepts_loop_vars_in_subscripts() {
        assert!(parse_program(
            "program t\nparam n\nreal a(n,n) distribute (block,block)\ndo i = 1, n\na(i, 1:n) = i\nenddo\nend",
        )
        .is_ok());
    }
}
