//! Recursive-descent parser for the mini-HPF language.

use crate::ast::*;
use crate::error::LangError;
use crate::lexer::lex;
use crate::token::{Token, TokenKind};

/// A recursive-descent parser over the token stream of one source file.
///
/// Most users should call [`crate::parse_program`] instead, which also runs
/// semantic validation.
/// Maximum grammar nesting depth (parenthesized/unary expression nesting
/// and `do`/`if` block nesting combined). Recursive descent burns one call
/// stack frame per level, so unbounded input would overflow the stack;
/// past this limit the parser reports a spanned diagnostic instead.
pub const MAX_NESTING: usize = 256;

pub struct Parser<'s> {
    toks: Vec<Token<'s>>,
    pos: usize,
    depth: usize,
}

impl<'s> Parser<'s> {
    /// Lexes `src` and prepares a parser borrowing token text from it.
    ///
    /// # Errors
    ///
    /// Returns [`LangError`] if lexing fails.
    pub fn new(src: &'s str) -> Result<Self, LangError> {
        Ok(Parser {
            toks: lex(src)?,
            pos: 0,
            depth: 0,
        })
    }

    /// Number of tokens produced by the lexer (including the end marker).
    pub fn token_count(&self) -> usize {
        self.toks.len()
    }

    fn peek(&self) -> &TokenKind<'s> {
        &self.toks[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind<'s> {
        let i = (self.pos + 1).min(self.toks.len() - 1);
        &self.toks[i].kind
    }

    fn line(&self) -> u32 {
        self.toks[self.pos].line
    }

    fn bump(&mut self) -> TokenKind<'s> {
        let k = self.toks[self.pos].kind.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        k
    }

    fn eat(&mut self, k: &TokenKind<'_>) -> bool {
        if self.peek() == k {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, k: TokenKind<'_>) -> Result<(), LangError> {
        if self.peek() == &k {
            self.bump();
            Ok(())
        } else {
            Err(LangError::at(
                self.line(),
                format!("expected {k}, found {}", self.peek()),
            ))
        }
    }

    fn expect_ident(&mut self) -> Result<String, LangError> {
        match self.bump() {
            TokenKind::Ident(s) => Ok(s.into_owned()),
            other => Err(LangError::at(
                self.line(),
                format!("expected identifier, found {other}"),
            )),
        }
    }

    fn skip_newlines(&mut self) {
        while self.eat(&TokenKind::Newline) {}
    }

    /// Enters one grammar nesting level; errors out (with the offending
    /// line) instead of risking a call-stack overflow past [`MAX_NESTING`].
    /// On success the caller owes one `self.depth -= 1` after the guarded
    /// production returns (error or not) — the recovering parser keeps
    /// parsing after errors, so a leaked level would poison subsequent
    /// statements. On failure the depth is left untouched.
    fn enter(&mut self, what: &str) -> Result<(), LangError> {
        if self.depth >= MAX_NESTING {
            return Err(LangError::at(
                self.line(),
                format!("{what} nesting exceeds the supported depth of {MAX_NESTING}"),
            ));
        }
        self.depth += 1;
        Ok(())
    }

    fn end_of_stmt(&mut self) -> Result<(), LangError> {
        if self.peek() == &TokenKind::Eof || self.eat(&TokenKind::Newline) {
            Ok(())
        } else {
            Err(LangError::at(
                self.line(),
                format!("expected end of statement, found {}", self.peek()),
            ))
        }
    }

    /// Parses a complete program.
    ///
    /// # Errors
    ///
    /// Returns [`LangError`] on the first syntax error.
    pub fn parse_program(&mut self) -> Result<Program, LangError> {
        self.skip_newlines();
        self.expect(TokenKind::Program)?;
        let name = self.expect_ident()?;
        self.end_of_stmt()?;
        self.skip_newlines();

        let mut prog = Program {
            name,
            ..Program::default()
        };

        // Declarations: any number of `param` / `real` lines.
        loop {
            match self.peek() {
                TokenKind::Param => {
                    self.bump();
                    loop {
                        prog.params.push(self.expect_ident()?);
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                    self.end_of_stmt()?;
                    self.skip_newlines();
                }
                TokenKind::Real => {
                    self.bump();
                    let decls = self.array_decl_group()?;
                    prog.arrays.extend(decls);
                    self.end_of_stmt()?;
                    self.skip_newlines();
                }
                _ => break,
            }
        }

        prog.body = self.stmts()?;
        self.expect(TokenKind::End)?;
        // Optional trailing `end <name>` or `end program`.
        if let TokenKind::Ident(_) | TokenKind::Program = self.peek() {
            self.bump();
        }
        self.skip_newlines();
        if self.peek() != &TokenKind::Eof {
            return Err(LangError::at(
                self.line(),
                format!("unexpected {} after `end`", self.peek()),
            ));
        }
        Ok(prog)
    }

    /// Parses a complete program while recovering from statement-level
    /// errors: after each failed declaration or statement the parser
    /// resynchronizes to the next newline and continues, so one pass
    /// collects every independent syntax error. Returns the (possibly
    /// partial) program and all diagnostics; an empty vector means a clean
    /// parse.
    ///
    /// Error recovery is best-effort: an error inside a `do`/`if` body
    /// abandons the enclosing construct, which may cascade into an
    /// "unmatched `enddo`" follow-up. Diagnostics are capped at
    /// [`Self::MAX_ERRORS`].
    pub fn parse_program_recovering(&mut self) -> (Program, Vec<LangError>) {
        let mut errs: Vec<LangError> = Vec::new();
        let mut prog = Program::default();

        self.skip_newlines();
        match (|p: &mut Self| -> Result<String, LangError> {
            p.expect(TokenKind::Program)?;
            let name = p.expect_ident()?;
            p.end_of_stmt()?;
            Ok(name)
        })(self)
        {
            Ok(name) => prog.name = name,
            Err(e) => {
                errs.push(e);
                self.sync_to_newline();
            }
        }
        self.skip_newlines();

        loop {
            let before = self.pos;
            match self.peek() {
                TokenKind::Param => {
                    self.bump();
                    let r = (|p: &mut Self| -> Result<Vec<String>, LangError> {
                        let mut names = Vec::new();
                        loop {
                            names.push(p.expect_ident()?);
                            if !p.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                        p.end_of_stmt()?;
                        Ok(names)
                    })(self);
                    match r {
                        Ok(names) => prog.params.extend(names),
                        Err(e) => {
                            errs.push(e);
                            self.sync_to_newline();
                        }
                    }
                    self.skip_newlines();
                }
                TokenKind::Real => {
                    self.bump();
                    let r = (|p: &mut Self| -> Result<Vec<ArrayDecl>, LangError> {
                        let decls = p.array_decl_group()?;
                        p.end_of_stmt()?;
                        Ok(decls)
                    })(self);
                    match r {
                        Ok(decls) => prog.arrays.extend(decls),
                        Err(e) => {
                            errs.push(e);
                            self.sync_to_newline();
                        }
                    }
                    self.skip_newlines();
                }
                _ => break,
            }
            if self.pos == before && self.peek() == &TokenKind::Eof {
                break;
            }
            if errs.len() >= Self::MAX_ERRORS {
                return (prog, errs);
            }
        }

        loop {
            self.skip_newlines();
            let before = self.pos;
            let r = match self.peek() {
                TokenKind::End | TokenKind::Eof => break,
                TokenKind::EndDo | TokenKind::EndIf | TokenKind::Else => {
                    errs.push(LangError::at(
                        self.line(),
                        format!("unmatched `{}`", self.peek()),
                    ));
                    self.bump();
                    self.sync_to_newline();
                    if errs.len() >= Self::MAX_ERRORS {
                        return (prog, errs);
                    }
                    continue;
                }
                TokenKind::Do => self.do_loop(),
                TokenKind::If => self.if_stmt(),
                _ => self.assign(),
            };
            match r {
                Ok(s) => prog.body.push(s),
                Err(e) => {
                    errs.push(e);
                    self.sync_to_newline();
                    if errs.len() >= Self::MAX_ERRORS {
                        return (prog, errs);
                    }
                }
            }
            // Guarantee forward progress even on a zero-consumption error.
            if self.pos == before {
                if self.peek() == &TokenKind::Eof {
                    break;
                }
                self.bump();
            }
        }

        if let Err(e) = self.expect(TokenKind::End) {
            errs.push(e);
        } else {
            if let TokenKind::Ident(_) | TokenKind::Program = self.peek() {
                self.bump();
            }
            self.skip_newlines();
            if self.peek() != &TokenKind::Eof {
                errs.push(LangError::at(
                    self.line(),
                    format!("unexpected {} after `end`", self.peek()),
                ));
            }
        }
        (prog, errs)
    }

    /// Hard cap on diagnostics collected by
    /// [`Self::parse_program_recovering`].
    pub const MAX_ERRORS: usize = 20;

    /// Skips to just past the next newline (or stops at end of input).
    fn sync_to_newline(&mut self) {
        while !matches!(self.peek(), TokenKind::Newline | TokenKind::Eof) {
            self.bump();
        }
        self.eat(&TokenKind::Newline);
    }

    /// `adecl ("," adecl)* ["distribute" "(" dist,... ")"]`
    fn array_decl_group(&mut self) -> Result<Vec<ArrayDecl>, LangError> {
        let mut decls = Vec::new();
        loop {
            let name = self.expect_ident()?;
            let mut dims = Vec::new();
            if self.eat(&TokenKind::LParen) {
                loop {
                    dims.push(self.decl_dim()?);
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(TokenKind::RParen)?;
            }
            decls.push(ArrayDecl {
                name,
                dims,
                dist: Vec::new(),
                align: Vec::new(),
            });
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        if self.eat(&TokenKind::Distribute) {
            self.expect(TokenKind::LParen)?;
            let mut dist = Vec::new();
            loop {
                dist.push(self.dist_format()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(TokenKind::RParen)?;
            for d in &mut decls {
                if d.dims.len() != dist.len() {
                    return Err(LangError::at(
                        self.line(),
                        format!(
                            "array `{}` has rank {} but distribute clause has {} entries",
                            d.name,
                            d.dims.len(),
                            dist.len()
                        ),
                    ));
                }
                d.dist = dist.clone();
            }
        }
        if self.eat(&TokenKind::Align) {
            self.expect(TokenKind::LParen)?;
            let mut align = Vec::new();
            loop {
                align.push(self.const_int()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(TokenKind::RParen)?;
            for d in &mut decls {
                if d.dims.len() != align.len() {
                    return Err(LangError::at(
                        self.line(),
                        format!(
                            "array `{}` has rank {} but align clause has {} entries",
                            d.name,
                            d.dims.len(),
                            align.len()
                        ),
                    ));
                }
                d.align = align.clone();
            }
        }
        Ok(decls)
    }

    fn decl_dim(&mut self) -> Result<DeclDim, LangError> {
        let first = self.expr()?;
        if self.eat(&TokenKind::Colon) {
            let hi = self.expr()?;
            Ok(DeclDim { lo: first, hi })
        } else {
            Ok(DeclDim::extent(first))
        }
    }

    fn dist_format(&mut self) -> Result<Dist, LangError> {
        match self.bump() {
            TokenKind::Star => Ok(Dist::Collapsed),
            TokenKind::Ident(s) if s == "block" => Ok(Dist::Block),
            TokenKind::Ident(s) if s == "cyclic" => Ok(Dist::Cyclic),
            other => Err(LangError::at(
                self.line(),
                format!("expected `block`, `cyclic`, or `*`, found {other}"),
            )),
        }
    }

    /// Parses statements until a block terminator (`end`, `enddo`, `endif`,
    /// `else`, or end of input) is seen (the terminator is not consumed).
    fn stmts(&mut self) -> Result<Vec<Stmt>, LangError> {
        self.enter("block")?;
        let r = self.stmts_tail();
        self.depth -= 1;
        r
    }

    fn stmts_tail(&mut self) -> Result<Vec<Stmt>, LangError> {
        let mut out = Vec::new();
        loop {
            self.skip_newlines();
            match self.peek() {
                TokenKind::End
                | TokenKind::EndDo
                | TokenKind::EndIf
                | TokenKind::Else
                | TokenKind::Eof => break,
                TokenKind::Do => out.push(self.do_loop()?),
                TokenKind::If => out.push(self.if_stmt()?),
                _ => out.push(self.assign()?),
            }
        }
        Ok(out)
    }

    fn do_loop(&mut self) -> Result<Stmt, LangError> {
        self.expect(TokenKind::Do)?;
        let var = self.expect_ident()?;
        self.expect(TokenKind::Assign)?;
        let lo = self.expr()?;
        self.expect(TokenKind::Comma)?;
        let hi = self.expr()?;
        let mut step = 1i64;
        if self.eat(&TokenKind::Comma) {
            step = self.const_int()?;
            if step == 0 {
                return Err(LangError::at(self.line(), "loop step must be non-zero"));
            }
        }
        self.end_of_stmt()?;
        let body = self.stmts()?;
        self.expect_end_of("do", TokenKind::EndDo, TokenKind::Do)?;
        self.end_of_stmt()?;
        Ok(Stmt::Do(DoLoop {
            var,
            lo,
            hi,
            step,
            body,
        }))
    }

    fn if_stmt(&mut self) -> Result<Stmt, LangError> {
        self.expect(TokenKind::If)?;
        self.expect(TokenKind::LParen)?;
        let cond = self.expr()?;
        self.expect(TokenKind::RParen)?;
        self.expect(TokenKind::Then)?;
        self.end_of_stmt()?;
        let then_body = self.stmts()?;
        let mut else_body = Vec::new();
        if self.eat(&TokenKind::Else) {
            self.end_of_stmt()?;
            else_body = self.stmts()?;
        }
        self.expect_end_of("if", TokenKind::EndIf, TokenKind::If)?;
        self.end_of_stmt()?;
        Ok(Stmt::If(IfStmt {
            cond,
            then_body,
            else_body,
        }))
    }

    /// Accepts either the fused terminator (`enddo`) or split (`end do`).
    fn expect_end_of(
        &mut self,
        what: &str,
        fused: TokenKind<'_>,
        split_second: TokenKind<'_>,
    ) -> Result<(), LangError> {
        if self.eat(&fused) {
            return Ok(());
        }
        if self.peek() == &TokenKind::End && self.peek2() == &split_second {
            self.bump();
            self.bump();
            return Ok(());
        }
        Err(LangError::at(
            self.line(),
            format!("expected `end {what}`, found {}", self.peek()),
        ))
    }

    fn assign(&mut self) -> Result<Stmt, LangError> {
        let line = self.line();
        let lhs = self.array_ref()?;
        self.expect(TokenKind::Assign)?;
        let rhs = self.expr()?;
        self.end_of_stmt()?;
        Ok(Stmt::Assign(Assign { lhs, rhs, line }))
    }

    fn array_ref(&mut self) -> Result<ArrayRef, LangError> {
        let array = self.expect_ident()?;
        let mut subs = Vec::new();
        if self.eat(&TokenKind::LParen) {
            loop {
                subs.push(self.subscript()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(TokenKind::RParen)?;
        }
        Ok(ArrayRef { array, subs })
    }

    /// `sub := [expr] [":" [expr] [":" const]]`
    fn subscript(&mut self) -> Result<Subscript, LangError> {
        let lo = if matches!(self.peek(), TokenKind::Colon) {
            None
        } else {
            Some(self.expr()?)
        };
        if !self.eat(&TokenKind::Colon) {
            return match lo {
                Some(e) => Ok(Subscript::Index(e)),
                None => Err(LangError::at(self.line(), "expected subscript")),
            };
        }
        let hi = if matches!(
            self.peek(),
            TokenKind::Comma | TokenKind::RParen | TokenKind::Colon
        ) {
            None
        } else {
            Some(self.expr()?)
        };
        let mut step = 1i64;
        if self.eat(&TokenKind::Colon) {
            step = self.const_int()?;
            if step == 0 {
                return Err(LangError::at(
                    self.line(),
                    "section stride must be non-zero",
                ));
            }
        }
        Ok(Subscript::Range { lo, hi, step })
    }

    fn const_int(&mut self) -> Result<i64, LangError> {
        let neg = self.eat(&TokenKind::Minus);
        match self.bump() {
            TokenKind::Int(v) => Ok(if neg { -v } else { v }),
            other => Err(LangError::at(
                self.line(),
                format!("expected integer constant, found {other}"),
            )),
        }
    }

    /// Full expression (comparisons allowed; the validator restricts where).
    fn expr(&mut self) -> Result<Expr, LangError> {
        self.enter("expression")?;
        let r = self.expr_tail();
        self.depth -= 1;
        r
    }

    fn expr_tail(&mut self) -> Result<Expr, LangError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            TokenKind::Lt => BinOp::Lt,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::Le => BinOp::Le,
            TokenKind::Ge => BinOp::Ge,
            TokenKind::EqEq => BinOp::Eq,
            TokenKind::Ne => BinOp::Ne,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.add_expr()?;
        Ok(Expr::Bin(op, Box::new(lhs), Box::new(rhs)))
    }

    fn add_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, LangError> {
        // A chain of unary minuses recurses without passing through
        // `expr`, so it needs its own depth guard.
        if self.eat(&TokenKind::Minus) {
            self.enter("expression")?;
            let r = self.unary_expr().map(|e| Expr::Neg(Box::new(e)));
            self.depth -= 1;
            return r;
        }
        self.atom()
    }

    fn atom(&mut self) -> Result<Expr, LangError> {
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr::Int(v))
            }
            TokenKind::Float(v) => {
                self.bump();
                Ok(Expr::Num(v))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Sum => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let r = self.array_ref()?;
                self.expect(TokenKind::RParen)?;
                Ok(Expr::Sum(r))
            }
            TokenKind::Ident(_) => Ok(Expr::Ref(self.array_ref()?)),
            other => Err(LangError::at(
                self.line(),
                format!("expected expression, found {other}"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    #[test]
    fn parses_minimal_program() {
        let p = parse_program("program t\nend").unwrap();
        assert_eq!(p.name, "t");
        assert!(p.body.is_empty());
    }

    #[test]
    fn deep_parenthesized_expression_is_a_diagnostic_not_a_stack_overflow() {
        // 10_000 nesting levels would overflow the parser's call stack
        // without the depth guard.
        let src = format!(
            "program t\nparam n\nreal s\ns = {}1{}\nend",
            "(".repeat(10_000),
            ")".repeat(10_000)
        );
        let err = parse_program(&src).unwrap_err();
        assert_eq!(err.line, 4, "{err:?}");
        assert!(err.message.contains("nesting exceeds"), "{err:?}");
    }

    #[test]
    fn deep_unary_chain_is_a_diagnostic_not_a_stack_overflow() {
        let src = format!(
            "program t\nparam n\nreal s\ns = {}1\nend",
            "-".repeat(10_000)
        );
        let err = parse_program(&src).unwrap_err();
        assert!(err.message.contains("nesting exceeds"), "{err:?}");
    }

    #[test]
    fn deep_block_nesting_is_a_diagnostic_not_a_stack_overflow() {
        let mut src = String::from("program t\nparam n\nreal s\n");
        for i in 0..10_000 {
            src.push_str(&format!("do i{i} = 1, n\n"));
        }
        src.push_str("s = 1\n");
        for _ in 0..10_000 {
            src.push_str("enddo\n");
        }
        src.push_str("end\n");
        let err = parse_program(&src).unwrap_err();
        assert!(err.message.contains("nesting exceeds"), "{err:?}");
    }

    #[test]
    fn nesting_within_the_limit_still_parses() {
        let src = format!(
            "program t\nparam n\nreal s\ns = {}1{}\nend",
            "(".repeat(100),
            ")".repeat(100)
        );
        parse_program(&src).unwrap();
    }

    #[test]
    fn parses_declarations() {
        let p = parse_program(
            "program t\nparam n, m\nreal a(n,m), b(n,m) distribute (block, *)\nreal s\nend",
        )
        .unwrap();
        assert_eq!(p.params, vec!["n", "m"]);
        assert_eq!(p.arrays.len(), 3);
        assert_eq!(p.arrays[0].dist, vec![Dist::Block, Dist::Collapsed]);
        assert_eq!(p.arrays[1].dist, vec![Dist::Block, Dist::Collapsed]);
        assert_eq!(p.arrays[2].rank(), 0);
    }

    #[test]
    fn parses_bounds_declaration() {
        let p =
            parse_program("program t\nparam n\nreal g(0:n+1, 1:n) distribute (block, block)\nend")
                .unwrap();
        let g = p.array("g").unwrap();
        assert_eq!(g.dims[0].lo, Expr::Int(0));
    }

    #[test]
    fn parses_sections() {
        let p = parse_program(
            "program t\nparam n\nreal a(n), c(n) distribute (block)\nc(2:n) = a(1:n-1)\nend",
        )
        .unwrap();
        match &p.body[0] {
            Stmt::Assign(a) => {
                assert!(matches!(a.lhs.subs[0], Subscript::Range { .. }));
            }
            _ => panic!("expected assignment"),
        }
    }

    #[test]
    fn parses_full_and_strided_sections() {
        let p = parse_program(
            "program t\nparam n\nreal b(n,n) distribute (block,block)\nb(:, 1:n:2) = 1\nend",
        )
        .unwrap();
        match &p.body[0] {
            Stmt::Assign(a) => {
                assert_eq!(a.lhs.subs[0], Subscript::full());
                assert!(
                    matches!(a.lhs.subs[1], Subscript::Range { step: 2, .. }),
                    "expected stride-2 section"
                );
            }
            _ => panic!("expected assignment"),
        }
    }

    #[test]
    fn parses_nested_loops_and_if() {
        let src = "
program t
param n
real a(n,n), d(n,n) distribute (block,block)
real cond
do i = 2, n
  if (cond > 0) then
    a(i, 1:n) = 3
  else
    a(i, 1:n) = d(i, 1:n)
  endif
end do
end
";
        let p = parse_program(src).unwrap();
        assert_eq!(p.stmt_count(), 4);
    }

    #[test]
    fn parses_sum_reduction() {
        let p = parse_program(
            "program t\nparam n\nreal g(n,n) distribute (block,block)\nreal s\ns = sum(g(1, :))\nend",
        )
        .unwrap();
        match &p.body[0] {
            Stmt::Assign(a) => assert!(matches!(a.rhs, Expr::Sum(_))),
            _ => panic!("expected assignment"),
        }
    }

    #[test]
    fn parses_negative_step_loop() {
        let p = parse_program("program t\nparam n\nreal a(n) distribute (block)\ndo i = n, 1, -1\na(i) = 0\nenddo\nend").unwrap();
        match &p.body[0] {
            Stmt::Do(d) => assert_eq!(d.step, -1),
            _ => panic!("expected do"),
        }
    }

    #[test]
    fn error_on_rank_mismatch_distribute() {
        let e = parse_program("program t\nparam n\nreal a(n) distribute (block, block)\nend")
            .unwrap_err();
        assert!(e.message.contains("rank"));
    }

    #[test]
    fn error_on_missing_enddo() {
        assert!(parse_program("program t\ndo i = 1, 4\nend").is_err());
    }

    #[test]
    fn error_on_garbage_after_end() {
        assert!(parse_program("program t\nend\nx = 1").is_err());
    }

    #[test]
    fn recovery_collects_multiple_errors() {
        // Two independent bad statements plus one good one.
        let src = "program t\nparam n\nreal a(n), c(n) distribute (block)\n\
                   c(2:n) = a(1:n-1\nc(1) = 0\na(1) = = 2\nend";
        let errs = crate::parse_program_diagnostics(src).unwrap_err();
        assert!(errs.len() >= 2, "got {errs:?}");
        assert!(errs.iter().all(|e| e.line > 0));
    }

    #[test]
    fn recovery_matches_clean_parse_on_valid_input() {
        let src = "program t\nparam n\nreal a(n), c(n) distribute (block)\nc(2:n) = a(1:n-1)\nend";
        let p = crate::parse_program_diagnostics(src).unwrap();
        let q = crate::parse_program(src).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn recovery_reports_unmatched_terminators() {
        let errs = crate::parse_program_diagnostics("program t\nenddo\nend").unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("unmatched")));
    }

    #[test]
    fn recovery_surfaces_validation_errors() {
        let errs = crate::parse_program_diagnostics("program t\nq = 1\nend").unwrap_err();
        assert_eq!(errs.len(), 1);
    }

    #[test]
    fn recovery_caps_error_count() {
        let mut src = String::from("program t\n");
        for _ in 0..100 {
            src.push_str("x = = 1\n");
        }
        src.push_str("end");
        let errs = crate::parse_program_diagnostics(&src).unwrap_err();
        assert!(errs.len() <= Parser::MAX_ERRORS);
    }

    #[test]
    fn precedence_mul_over_add() {
        let p = parse_program("program t\nreal s, q\ns = 1 + q * 2\nend").unwrap();
        match &p.body[0] {
            Stmt::Assign(a) => match &a.rhs {
                Expr::Bin(BinOp::Add, _, rhs) => {
                    assert!(matches!(**rhs, Expr::Bin(BinOp::Mul, _, _)));
                }
                other => panic!("unexpected tree {other:?}"),
            },
            _ => panic!("expected assignment"),
        }
    }
}
