//! Fluent builder for constructing programs programmatically.
//!
//! Benchmarks and property tests construct many small programs; the builder
//! avoids string templating and keeps construction type-checked.
//!
//! ```
//! use gcomm_lang::{ProgramBuilder, Dist, Expr};
//!
//! let prog = ProgramBuilder::new("stencil")
//!     .param("n")
//!     .array_1d("a", "n", Dist::Block)
//!     .array_1d("c", "n", Dist::Block)
//!     .assign_src("c(2:n) = a(1:n-1)")?
//!     .build()?;
//! assert_eq!(prog.arrays.len(), 2);
//! # Ok::<(), gcomm_lang::LangError>(())
//! ```

use crate::ast::*;
use crate::error::LangError;
use crate::parser::Parser;
use crate::validate;

/// Incrementally builds a [`Program`]; `build` validates the result.
#[derive(Debug, Clone, Default)]
pub struct ProgramBuilder {
    prog: Program,
    open_bodies: Vec<Vec<Stmt>>,
    open_loops: Vec<(String, Expr, Expr, i64)>,
}

impl ProgramBuilder {
    /// Starts a program named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder {
            prog: Program {
                name: name.into(),
                ..Program::default()
            },
            open_bodies: vec![Vec::new()],
            open_loops: Vec::new(),
        }
    }

    /// Declares a symbolic size parameter.
    pub fn param(mut self, name: impl Into<String>) -> Self {
        self.prog.params.push(name.into());
        self
    }

    /// Declares a scalar.
    pub fn scalar(mut self, name: impl Into<String>) -> Self {
        self.prog.arrays.push(ArrayDecl {
            name: name.into(),
            dims: Vec::new(),
            dist: Vec::new(),
            align: Vec::new(),
        });
        self
    }

    /// Declares a 1-d array `name(extent)` with the given distribution.
    pub fn array_1d(mut self, name: impl Into<String>, extent: &str, dist: Dist) -> Self {
        self.prog.arrays.push(ArrayDecl {
            name: name.into(),
            dims: vec![DeclDim::extent(Expr::name(extent))],
            dist: vec![dist],
            align: Vec::new(),
        });
        self
    }

    /// Declares a 2-d array `name(e1, e2)` with the given distributions.
    pub fn array_2d(
        mut self,
        name: impl Into<String>,
        e1: &str,
        e2: &str,
        d1: Dist,
        d2: Dist,
    ) -> Self {
        self.prog.arrays.push(ArrayDecl {
            name: name.into(),
            dims: vec![
                DeclDim::extent(Expr::name(e1)),
                DeclDim::extent(Expr::name(e2)),
            ],
            dist: vec![d1, d2],
            align: Vec::new(),
        });
        self
    }

    /// Declares a 3-d array with the given distributions.
    #[allow(clippy::too_many_arguments)]
    pub fn array_3d(
        mut self,
        name: impl Into<String>,
        e1: &str,
        e2: &str,
        e3: &str,
        d1: Dist,
        d2: Dist,
        d3: Dist,
    ) -> Self {
        self.prog.arrays.push(ArrayDecl {
            name: name.into(),
            dims: vec![
                DeclDim::extent(Expr::name(e1)),
                DeclDim::extent(Expr::name(e2)),
                DeclDim::extent(Expr::name(e3)),
            ],
            dist: vec![d1, d2, d3],
            align: Vec::new(),
        });
        self
    }

    /// Adds an already-constructed statement to the current (innermost open)
    /// body.
    pub fn stmt(mut self, s: Stmt) -> Self {
        self.current_body().push(s);
        self
    }

    /// Parses `src` as a single assignment statement and adds it, e.g.
    /// `"c(2:n) = a(1:n-1) + b(1:n-1)"`.
    ///
    /// # Errors
    ///
    /// Returns [`LangError`] if `src` does not parse as an assignment.
    pub fn assign_src(mut self, src: &str) -> Result<Self, LangError> {
        let wrapped = format!("program x\n{src}\nend");
        let parsed = Parser::new(&wrapped)?.parse_program()?;
        let stmt = parsed
            .body
            .into_iter()
            .next()
            .ok_or_else(|| LangError::general("empty assignment source"))?;
        self.current_body().push(stmt);
        Ok(self)
    }

    /// Opens a `do var = lo, hi` loop; statements added next go to its body.
    pub fn open_do(mut self, var: impl Into<String>, lo: Expr, hi: Expr) -> Self {
        self.open_loops.push((var.into(), lo, hi, 1));
        self.open_bodies.push(Vec::new());
        self
    }

    /// Closes the innermost open loop.
    ///
    /// # Panics
    ///
    /// Panics if no loop is open (builder misuse is a programming error).
    pub fn close_do(mut self) -> Self {
        let body = self.open_bodies.pop().expect("no open body");
        let (var, lo, hi, step) = self.open_loops.pop().expect("close_do without open_do");
        self.current_body().push(Stmt::Do(DoLoop {
            var,
            lo,
            hi,
            step,
            body,
        }));
        self
    }

    /// Adds an `if (cond) then ... else ... endif` statement from two bodies.
    pub fn if_stmt(mut self, cond: Expr, then_body: Vec<Stmt>, else_body: Vec<Stmt>) -> Self {
        self.current_body().push(Stmt::If(IfStmt {
            cond,
            then_body,
            else_body,
        }));
        self
    }

    fn current_body(&mut self) -> &mut Vec<Stmt> {
        self.open_bodies
            .last_mut()
            .expect("builder has no open body")
    }

    /// Finishes the program and validates it.
    ///
    /// # Errors
    ///
    /// Returns [`LangError`] if loops are left open or validation fails.
    pub fn build(mut self) -> Result<Program, LangError> {
        if !self.open_loops.is_empty() {
            return Err(LangError::general(format!(
                "{} loop(s) left open in builder",
                self.open_loops.len()
            )));
        }
        self.prog.body = self.open_bodies.pop().unwrap_or_default();
        validate::validate(&self.prog)?;
        Ok(self.prog)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_loop_nest() {
        let p = ProgramBuilder::new("b")
            .param("n")
            .array_2d("a", "n", "n", Dist::Block, Dist::Block)
            .open_do("i", Expr::Int(2), Expr::name("n"))
            .assign_src("a(i, 1:n) = a(i-1, 1:n)")
            .unwrap()
            .close_do()
            .build()
            .unwrap();
        assert_eq!(p.stmt_count(), 2);
    }

    #[test]
    fn unclosed_loop_is_error() {
        let e = ProgramBuilder::new("b")
            .open_do("i", Expr::Int(1), Expr::Int(4))
            .build()
            .unwrap_err();
        assert!(e.message.contains("open"));
    }

    #[test]
    fn builder_result_validates() {
        // Reference to undeclared array must be caught at build().
        let e = ProgramBuilder::new("b")
            .param("n")
            .array_1d("a", "n", Dist::Block)
            .assign_src("a(1:n) = zz(1:n)")
            .unwrap()
            .build()
            .unwrap_err();
        assert!(e.message.contains("undeclared"));
    }
}
