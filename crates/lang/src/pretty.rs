//! Pretty printer: renders an AST back to parseable source text.
//!
//! The printer is exercised by round-trip tests (`parse(pretty(p)) == p`
//! modulo line numbers) and is handy when debugging kernels built with
//! [`crate::ProgramBuilder`].

use std::fmt::Write as _;

use crate::ast::*;

/// Renders `prog` as source text that [`crate::parse_program`] accepts.
pub fn pretty(prog: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "program {}", prog.name);
    if !prog.params.is_empty() {
        let _ = writeln!(out, "param {}", prog.params.join(", "));
    }
    for a in &prog.arrays {
        let mut line = format!("real {}", a.name);
        if !a.dims.is_empty() {
            line.push('(');
            for (i, d) in a.dims.iter().enumerate() {
                if i > 0 {
                    line.push_str(", ");
                }
                if d.lo == Expr::Int(1) {
                    line.push_str(&expr(&d.hi));
                } else {
                    let _ = write!(line, "{}:{}", expr(&d.lo), expr(&d.hi));
                }
            }
            line.push(')');
        }
        if !a.dist.is_empty() {
            line.push_str(" distribute (");
            for (i, d) in a.dist.iter().enumerate() {
                if i > 0 {
                    line.push_str(", ");
                }
                line.push_str(match d {
                    Dist::Block => "block",
                    Dist::Cyclic => "cyclic",
                    Dist::Collapsed => "*",
                });
            }
            line.push(')');
        }
        if !a.align.is_empty() && a.align.iter().any(|&o| o != 0) {
            line.push_str(" align (");
            for (i, o) in a.align.iter().enumerate() {
                if i > 0 {
                    line.push_str(", ");
                }
                let _ = write!(line, "{o}");
            }
            line.push(')');
        }
        let _ = writeln!(out, "{line}");
    }
    stmts(&mut out, &prog.body, 0);
    out.push_str("end\n");
    out
}

fn stmts(out: &mut String, body: &[Stmt], indent: usize) {
    let pad = "  ".repeat(indent);
    for s in body {
        match s {
            Stmt::Assign(a) => {
                let _ = writeln!(out, "{pad}{} = {}", aref(&a.lhs), expr(&a.rhs));
            }
            Stmt::Do(d) => {
                if d.step == 1 {
                    let _ = writeln!(out, "{pad}do {} = {}, {}", d.var, expr(&d.lo), expr(&d.hi));
                } else {
                    let _ = writeln!(
                        out,
                        "{pad}do {} = {}, {}, {}",
                        d.var,
                        expr(&d.lo),
                        expr(&d.hi),
                        d.step
                    );
                }
                stmts(out, &d.body, indent + 1);
                let _ = writeln!(out, "{pad}enddo");
            }
            Stmt::If(i) => {
                let _ = writeln!(out, "{pad}if ({}) then", expr(&i.cond));
                stmts(out, &i.then_body, indent + 1);
                if !i.else_body.is_empty() {
                    let _ = writeln!(out, "{pad}else");
                    stmts(out, &i.else_body, indent + 1);
                }
                let _ = writeln!(out, "{pad}endif");
            }
        }
    }
}

/// Renders an array reference.
pub fn aref(r: &ArrayRef) -> String {
    if r.subs.is_empty() {
        return r.array.clone();
    }
    let subs: Vec<String> = r.subs.iter().map(sub).collect();
    format!("{}({})", r.array, subs.join(", "))
}

fn sub(s: &Subscript) -> String {
    match s {
        Subscript::Index(e) => expr(e),
        Subscript::Range { lo, hi, step } => {
            let mut t = String::new();
            if let Some(e) = lo {
                t.push_str(&expr(e));
            }
            t.push(':');
            if let Some(e) = hi {
                t.push_str(&expr(e));
            }
            if *step != 1 {
                let _ = write!(t, ":{step}");
            }
            t
        }
    }
}

/// Renders an expression with full parenthesization of nested operations.
pub fn expr(e: &Expr) -> String {
    match e {
        Expr::Int(v) => v.to_string(),
        Expr::Num(v) => {
            // Always keep a decimal point so the value re-lexes as a float.
            let s = v.to_string();
            if s.contains('.') || s.contains('e') {
                s
            } else {
                format!("{s}.0")
            }
        }
        Expr::Ref(r) => aref(r),
        Expr::Sum(r) => format!("sum({})", aref(r)),
        Expr::Neg(a) => format!("(-{})", expr(a)),
        Expr::Bin(op, a, b) => {
            let o = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::Lt => "<",
                BinOp::Gt => ">",
                BinOp::Le => "<=",
                BinOp::Ge => ">=",
                BinOp::Eq => "==",
                BinOp::Ne => "/=",
            };
            format!("({} {} {})", expr(a), o, expr(b))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    /// Strips line numbers so round-trip comparison is structural.
    fn strip_lines(p: &mut Program) {
        fn walk(stmts: &mut [Stmt]) {
            for s in stmts {
                match s {
                    Stmt::Assign(a) => a.line = 0,
                    Stmt::Do(d) => walk(&mut d.body),
                    Stmt::If(i) => {
                        walk(&mut i.then_body);
                        walk(&mut i.else_body);
                    }
                }
            }
        }
        walk(&mut p.body);
    }

    #[test]
    fn round_trip_structured_program() {
        let src = "
program rt
param n, m
real a(n,m), b(n,m) distribute (block, *)
real g(0:n+1, m) distribute (block, block)
real s
do i = 2, n
  if (s > 0) then
    a(i, 1:m) = b(i-1, 1:m) * 2.0
  else
    a(i, 1:m) = 0
  endif
  s = sum(g(i, :))
enddo
b(:, 1:m:2) = a(:, 1:m:2)
end
";
        let mut p1 = parse_program(src).unwrap();
        let text = pretty(&p1);
        let mut p2 = parse_program(&text).unwrap();
        strip_lines(&mut p1);
        strip_lines(&mut p2);
        assert_eq!(p1, p2, "pretty-printed text:\n{text}");
    }

    #[test]
    fn float_literals_keep_decimal_point() {
        assert_eq!(expr(&Expr::Num(3.0)), "3.0");
        assert_eq!(expr(&Expr::Num(0.5)), "0.5");
    }
}
