//! Hand-written lexer for the mini-HPF language.
//!
//! Newlines are significant (they terminate statements), `!` starts a comment
//! running to end of line, and `&` at end of line continues the statement on
//! the next line, as in free-form Fortran.
//!
//! The scanner walks byte indices over the source and tokens borrow their
//! text from it: an identifier that is already lowercase (the common case)
//! is a zero-copy slice, so lexing allocates nothing beyond the token
//! vector itself.

use std::borrow::Cow;

use crate::error::LangError;
use crate::token::{keyword, Token, TokenKind};

/// Lexes `src` into a token stream terminated by [`TokenKind::Eof`].
///
/// Consecutive newlines are collapsed into a single [`TokenKind::Newline`].
///
/// # Errors
///
/// Returns [`LangError`] on an unrecognized character or malformed number.
pub fn lex(src: &str) -> Result<Vec<Token<'_>>, LangError> {
    Lexer::new(src).run()
}

struct Lexer<'s> {
    src: &'s str,
    pos: usize,
    line: u32,
    out: Vec<Token<'s>>,
}

impl<'s> Lexer<'s> {
    fn new(src: &'s str) -> Self {
        Lexer {
            src,
            pos: 0,
            line: 1,
            out: Vec::new(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.as_bytes().get(self.pos).copied()
    }

    fn push(&mut self, kind: TokenKind<'s>) {
        self.out.push(Token {
            kind,
            line: self.line,
        });
    }

    fn push_newline(&mut self) {
        // Collapse consecutive newlines; never emit a leading newline.
        if matches!(
            self.out.last(),
            None | Some(Token {
                kind: TokenKind::Newline,
                ..
            })
        ) {
            return;
        }
        self.push(TokenKind::Newline);
    }

    fn run(mut self) -> Result<Vec<Token<'s>>, LangError> {
        while let Some(c) = self.peek() {
            match c {
                b' ' | b'\t' | b'\r' => self.pos += 1,
                b'\n' => {
                    self.pos += 1;
                    self.push_newline();
                    self.line += 1;
                }
                b'!' => {
                    // Comment to end of line.
                    while !matches!(self.peek(), None | Some(b'\n')) {
                        self.pos += 1;
                    }
                }
                b'&' => {
                    // Line continuation: swallow '&', the rest of the line,
                    // and the newline itself.
                    self.pos += 1;
                    while let Some(c2) = self.peek() {
                        self.pos += 1;
                        if c2 == b'\n' {
                            self.line += 1;
                            break;
                        }
                    }
                }
                b';' => {
                    self.pos += 1;
                    self.push_newline();
                }
                b'(' => self.single(TokenKind::LParen),
                b')' => self.single(TokenKind::RParen),
                b',' => self.single(TokenKind::Comma),
                b':' => self.single(TokenKind::Colon),
                b'+' => self.single(TokenKind::Plus),
                b'-' => self.single(TokenKind::Minus),
                b'*' => self.single(TokenKind::Star),
                b'/' => self.two(b'=', TokenKind::Ne, TokenKind::Slash),
                b'=' => self.two(b'=', TokenKind::EqEq, TokenKind::Assign),
                b'<' => self.two(b'=', TokenKind::Le, TokenKind::Lt),
                b'>' => self.two(b'=', TokenKind::Ge, TokenKind::Gt),
                c if c.is_ascii_digit() || c == b'.' => self.number()?,
                c if c.is_ascii_alphabetic() || c == b'_' => self.ident(),
                _ => {
                    // Only ASCII is ever consumed above, so `pos` sits on a
                    // char boundary and the offending char decodes cleanly.
                    let other = self.src[self.pos..].chars().next().unwrap_or('\u{fffd}');
                    return Err(LangError::at(
                        self.line,
                        format!("unrecognized character `{other}`"),
                    ));
                }
            }
        }
        self.push_newline();
        self.push(TokenKind::Eof);
        Ok(self.out)
    }

    fn single(&mut self, kind: TokenKind<'s>) {
        self.pos += 1;
        self.push(kind);
    }

    /// Consumes one char, then `follow` if present: `long` on the pair,
    /// `short` otherwise.
    fn two(&mut self, follow: u8, long: TokenKind<'s>, short: TokenKind<'s>) {
        self.pos += 1;
        if self.peek() == Some(follow) {
            self.pos += 1;
            self.push(long);
        } else {
            self.push(short);
        }
    }

    fn number(&mut self) -> Result<(), LangError> {
        let start = self.pos;
        let bytes = self.src.as_bytes();
        let mut is_float = false;
        loop {
            match bytes.get(self.pos) {
                Some(c) if c.is_ascii_digit() => self.pos += 1,
                Some(b'.') if !is_float => {
                    // Lookahead: `1.5` is a float; but `2:` after `1.` is not
                    // possible in this grammar, so a bare dot always means
                    // float.
                    is_float = true;
                    self.pos += 1;
                }
                Some(b'e' | b'E') if self.pos > start => {
                    // Exponent part; `e` not followed by digits (or a signed
                    // digit) is an identifier boundary instead.
                    match bytes.get(self.pos + 1) {
                        Some(d) if d.is_ascii_digit() || matches!(d, b'+' | b'-') => {
                            is_float = true;
                            self.pos += 1;
                            if matches!(bytes.get(self.pos), Some(b'+' | b'-')) {
                                self.pos += 1;
                            }
                        }
                        _ => break,
                    }
                }
                _ => break,
            }
        }
        let text = &self.src[start..self.pos];
        if text == "." {
            return Err(LangError::at(self.line, "malformed number `.`"));
        }
        if is_float {
            let v: f64 = text
                .parse()
                .map_err(|_| LangError::at(self.line, format!("malformed float `{text}`")))?;
            self.push(TokenKind::Float(v));
        } else {
            let v: i64 = text
                .parse()
                .map_err(|_| LangError::at(self.line, format!("malformed integer `{text}`")))?;
            self.push(TokenKind::Int(v));
        }
        Ok(())
    }

    fn ident(&mut self) {
        let start = self.pos;
        let bytes = self.src.as_bytes();
        while matches!(bytes.get(self.pos), Some(c) if c.is_ascii_alphanumeric() || *c == b'_') {
            self.pos += 1;
        }
        let raw = &self.src[start..self.pos];
        // Zero-copy when the source is already lowercase (the common case).
        let text: Cow<'s, str> = if raw.bytes().any(|c| c.is_ascii_uppercase()) {
            Cow::Owned(raw.to_ascii_lowercase())
        } else {
            Cow::Borrowed(raw)
        };
        match keyword(&text) {
            Some(k) => self.push(k),
            None => self.push(TokenKind::Ident(text)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind<'_>> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_assignment() {
        assert_eq!(
            kinds("a(i) = b(i-1) + 2.5"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::LParen,
                TokenKind::Ident("i".into()),
                TokenKind::RParen,
                TokenKind::Assign,
                TokenKind::Ident("b".into()),
                TokenKind::LParen,
                TokenKind::Ident("i".into()),
                TokenKind::Minus,
                TokenKind::Int(1),
                TokenKind::RParen,
                TokenKind::Plus,
                TokenKind::Float(2.5),
                TokenKind::Newline,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert_eq!(
            kinds("DO I = 1, N"),
            vec![
                TokenKind::Do,
                TokenKind::Ident("i".into()),
                TokenKind::Assign,
                TokenKind::Int(1),
                TokenKind::Comma,
                TokenKind::Ident("n".into()),
                TokenKind::Newline,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_and_blank_lines_collapse() {
        let k = kinds("a = 1 ! set a\n\n\nb = 2");
        let newlines = k.iter().filter(|k| **k == TokenKind::Newline).count();
        assert_eq!(newlines, 2);
    }

    #[test]
    fn continuation_joins_lines() {
        let k = kinds("a = 1 + &\n 2");
        assert!(!k[..k.len() - 2].contains(&TokenKind::Newline));
    }

    #[test]
    fn semicolon_separates_statements() {
        let k = kinds("a = 1; b = 2");
        assert_eq!(k.iter().filter(|k| **k == TokenKind::Newline).count(), 2);
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds("a <= b >= c == d /= e < f > g")[..13]
                .iter()
                .filter(|k| matches!(
                    k,
                    TokenKind::Le
                        | TokenKind::Ge
                        | TokenKind::EqEq
                        | TokenKind::Ne
                        | TokenKind::Lt
                        | TokenKind::Gt
                ))
                .count(),
            6
        );
    }

    #[test]
    fn rejects_unknown_character() {
        assert!(lex("a = #").is_err());
    }

    #[test]
    fn exponent_floats() {
        assert_eq!(kinds("1e3")[0], TokenKind::Float(1000.0));
        assert_eq!(kinds("2.5e-2")[0], TokenKind::Float(0.025));
        // `e` not followed by digits is an identifier boundary, not exponent.
        assert_eq!(
            kinds("2e")[..2],
            [TokenKind::Int(2), TokenKind::Ident("e".into())]
        );
    }

    #[test]
    fn line_numbers_advance() {
        let toks = lex("a = 1\nb = 2").unwrap();
        let b = toks
            .iter()
            .find(|t| t.kind == TokenKind::Ident("b".into()))
            .unwrap();
        assert_eq!(b.line, 2);
    }
}
