//! Hand-written lexer for the mini-HPF language.
//!
//! Newlines are significant (they terminate statements), `!` starts a comment
//! running to end of line, and `&` at end of line continues the statement on
//! the next line, as in free-form Fortran.

use crate::error::LangError;
use crate::token::{keyword, Token, TokenKind};

/// Lexes `src` into a token stream terminated by [`TokenKind::Eof`].
///
/// Consecutive newlines are collapsed into a single [`TokenKind::Newline`].
///
/// # Errors
///
/// Returns [`LangError`] on an unrecognized character or malformed number.
pub fn lex(src: &str) -> Result<Vec<Token>, LangError> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: u32,
    out: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            chars: src.chars().peekable(),
            line: 1,
            out: Vec::new(),
        }
    }

    fn push(&mut self, kind: TokenKind) {
        self.out.push(Token {
            kind,
            line: self.line,
        });
    }

    fn push_newline(&mut self) {
        // Collapse consecutive newlines; never emit a leading newline.
        if matches!(
            self.out.last(),
            None | Some(Token {
                kind: TokenKind::Newline,
                ..
            })
        ) {
            return;
        }
        self.push(TokenKind::Newline);
    }

    fn run(mut self) -> Result<Vec<Token>, LangError> {
        while let Some(&c) = self.chars.peek() {
            match c {
                ' ' | '\t' | '\r' => {
                    self.chars.next();
                }
                '\n' => {
                    self.chars.next();
                    self.push_newline();
                    self.line += 1;
                }
                '!' => {
                    // Comment to end of line.
                    while let Some(&c2) = self.chars.peek() {
                        if c2 == '\n' {
                            break;
                        }
                        self.chars.next();
                    }
                }
                '&' => {
                    // Line continuation: swallow '&', the rest of the line,
                    // and the newline itself.
                    self.chars.next();
                    while let Some(&c2) = self.chars.peek() {
                        self.chars.next();
                        if c2 == '\n' {
                            self.line += 1;
                            break;
                        }
                    }
                }
                ';' => {
                    self.chars.next();
                    self.push_newline();
                }
                '(' => self.single(TokenKind::LParen),
                ')' => self.single(TokenKind::RParen),
                ',' => self.single(TokenKind::Comma),
                ':' => self.single(TokenKind::Colon),
                '+' => self.single(TokenKind::Plus),
                '-' => self.single(TokenKind::Minus),
                '*' => self.single(TokenKind::Star),
                '/' => {
                    self.chars.next();
                    if self.chars.peek() == Some(&'=') {
                        self.chars.next();
                        self.push(TokenKind::Ne);
                    } else {
                        self.push(TokenKind::Slash);
                    }
                }
                '=' => {
                    self.chars.next();
                    if self.chars.peek() == Some(&'=') {
                        self.chars.next();
                        self.push(TokenKind::EqEq);
                    } else {
                        self.push(TokenKind::Assign);
                    }
                }
                '<' => {
                    self.chars.next();
                    if self.chars.peek() == Some(&'=') {
                        self.chars.next();
                        self.push(TokenKind::Le);
                    } else {
                        self.push(TokenKind::Lt);
                    }
                }
                '>' => {
                    self.chars.next();
                    if self.chars.peek() == Some(&'=') {
                        self.chars.next();
                        self.push(TokenKind::Ge);
                    } else {
                        self.push(TokenKind::Gt);
                    }
                }
                c if c.is_ascii_digit() || c == '.' => self.number()?,
                c if c.is_ascii_alphabetic() || c == '_' => self.ident(),
                other => {
                    return Err(LangError::at(
                        self.line,
                        format!("unrecognized character `{other}`"),
                    ));
                }
            }
        }
        self.push_newline();
        self.push(TokenKind::Eof);
        Ok(self.out)
    }

    fn single(&mut self, kind: TokenKind) {
        self.chars.next();
        self.push(kind);
    }

    fn number(&mut self) -> Result<(), LangError> {
        let mut text = String::new();
        let mut is_float = false;
        while let Some(&c) = self.chars.peek() {
            if c.is_ascii_digit() {
                text.push(c);
                self.chars.next();
            } else if c == '.' && !is_float {
                // Lookahead: `1.5` is a float; but `2:` after `1.` is not
                // possible in this grammar, so a bare dot always means float.
                is_float = true;
                text.push(c);
                self.chars.next();
            } else if (c == 'e' || c == 'E') && !text.is_empty() {
                // Exponent part.
                let mut clone = self.chars.clone();
                clone.next();
                match clone.peek() {
                    Some(&d) if d.is_ascii_digit() || d == '+' || d == '-' => {
                        is_float = true;
                        text.push('e');
                        self.chars.next();
                        if let Some(&sign) = self.chars.peek() {
                            if sign == '+' || sign == '-' {
                                text.push(sign);
                                self.chars.next();
                            }
                        }
                    }
                    _ => break,
                }
            } else {
                break;
            }
        }
        if text == "." {
            return Err(LangError::at(self.line, "malformed number `.`"));
        }
        if is_float {
            let v: f64 = text
                .parse()
                .map_err(|_| LangError::at(self.line, format!("malformed float `{text}`")))?;
            self.push(TokenKind::Float(v));
        } else {
            let v: i64 = text
                .parse()
                .map_err(|_| LangError::at(self.line, format!("malformed integer `{text}`")))?;
            self.push(TokenKind::Int(v));
        }
        Ok(())
    }

    fn ident(&mut self) {
        let mut text = String::new();
        while let Some(&c) = self.chars.peek() {
            if c.is_ascii_alphanumeric() || c == '_' {
                text.push(c.to_ascii_lowercase());
                self.chars.next();
            } else {
                break;
            }
        }
        match keyword(&text) {
            Some(k) => self.push(k),
            None => self.push(TokenKind::Ident(text)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_assignment() {
        assert_eq!(
            kinds("a(i) = b(i-1) + 2.5"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::LParen,
                TokenKind::Ident("i".into()),
                TokenKind::RParen,
                TokenKind::Assign,
                TokenKind::Ident("b".into()),
                TokenKind::LParen,
                TokenKind::Ident("i".into()),
                TokenKind::Minus,
                TokenKind::Int(1),
                TokenKind::RParen,
                TokenKind::Plus,
                TokenKind::Float(2.5),
                TokenKind::Newline,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert_eq!(
            kinds("DO I = 1, N"),
            vec![
                TokenKind::Do,
                TokenKind::Ident("i".into()),
                TokenKind::Assign,
                TokenKind::Int(1),
                TokenKind::Comma,
                TokenKind::Ident("n".into()),
                TokenKind::Newline,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_and_blank_lines_collapse() {
        let k = kinds("a = 1 ! set a\n\n\nb = 2");
        let newlines = k.iter().filter(|k| **k == TokenKind::Newline).count();
        assert_eq!(newlines, 2);
    }

    #[test]
    fn continuation_joins_lines() {
        let k = kinds("a = 1 + &\n 2");
        assert!(!k[..k.len() - 2].contains(&TokenKind::Newline));
    }

    #[test]
    fn semicolon_separates_statements() {
        let k = kinds("a = 1; b = 2");
        assert_eq!(k.iter().filter(|k| **k == TokenKind::Newline).count(), 2);
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds("a <= b >= c == d /= e < f > g")[..13]
                .iter()
                .filter(|k| matches!(
                    k,
                    TokenKind::Le
                        | TokenKind::Ge
                        | TokenKind::EqEq
                        | TokenKind::Ne
                        | TokenKind::Lt
                        | TokenKind::Gt
                ))
                .count(),
            6
        );
    }

    #[test]
    fn rejects_unknown_character() {
        assert!(lex("a = #").is_err());
    }

    #[test]
    fn exponent_floats() {
        assert_eq!(kinds("1e3")[0], TokenKind::Float(1000.0));
        assert_eq!(kinds("2.5e-2")[0], TokenKind::Float(0.025));
        // `e` not followed by digits is an identifier boundary, not exponent.
        assert_eq!(
            kinds("2e")[..2],
            [TokenKind::Int(2), TokenKind::Ident("e".into())]
        );
    }

    #[test]
    fn line_numbers_advance() {
        let toks = lex("a = 1\nb = 2").unwrap();
        let b = toks
            .iter()
            .find(|t| t.kind == TokenKind::Ident("b".into()))
            .unwrap();
        assert_eq!(b.line, 2);
    }
}
