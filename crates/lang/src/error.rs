//! Error type shared by the lexer, parser, and validator.

use std::fmt;

/// An error produced while lexing, parsing, or validating a program.
///
/// The `line` field is 1-based; `0` means "no specific location".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LangError {
    /// 1-based source line of the error, or 0 when unknown.
    pub line: u32,
    /// Human-readable description (lowercase, no trailing punctuation).
    pub message: String,
}

impl LangError {
    /// Creates an error at a specific source line.
    pub fn at(line: u32, message: impl Into<String>) -> Self {
        LangError {
            line,
            message: message.into(),
        }
    }

    /// Creates an error without location information.
    pub fn general(message: impl Into<String>) -> Self {
        LangError {
            line: 0,
            message: message.into(),
        }
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: {}", self.line, self.message)
        } else {
            write!(f, "{}", self.message)
        }
    }
}

impl std::error::Error for LangError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_with_line() {
        let e = LangError::at(3, "unexpected token");
        assert_eq!(e.to_string(), "line 3: unexpected token");
    }

    #[test]
    fn display_without_line() {
        let e = LangError::general("empty program");
        assert_eq!(e.to_string(), "empty program");
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(LangError::general("x"));
        assert_eq!(e.to_string(), "x");
    }
}
