//! Abstract syntax tree for the mini-HPF language.
//!
//! Names are kept as (lowercased) strings at this level; the IR crate
//! resolves them to dense ids. All nodes implement `Debug`, `Clone`, and
//! `PartialEq` so tests can compare trees structurally.

/// A complete program: size parameters, array declarations, and a statement
/// body.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Program name from the `program` header.
    pub name: String,
    /// Symbolic size parameters (e.g. `n`, `nx`), in declaration order.
    pub params: Vec<String>,
    /// Array (and scalar, rank-0) declarations.
    pub arrays: Vec<ArrayDecl>,
    /// Top-level statements.
    pub body: Vec<Stmt>,
}

impl Program {
    /// Looks up an array declaration by name.
    pub fn array(&self, name: &str) -> Option<&ArrayDecl> {
        self.arrays.iter().find(|a| a.name == name)
    }

    /// Total number of statements, counting nested loop and branch bodies.
    pub fn stmt_count(&self) -> usize {
        fn count(stmts: &[Stmt]) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    Stmt::Assign(_) => 1,
                    Stmt::Do(d) => 1 + count(&d.body),
                    Stmt::If(i) => 1 + count(&i.then_body) + count(&i.else_body),
                })
                .sum()
        }
        count(&self.body)
    }
}

/// Declaration of an array (or scalar when `dims` is empty), with its HPF
/// distribution directive.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayDecl {
    /// Array name (lowercase).
    pub name: String,
    /// Per-dimension bounds; empty for scalars.
    pub dims: Vec<DeclDim>,
    /// Per-dimension distribution; empty means fully replicated (scalars,
    /// or arrays without a `distribute` clause).
    pub dist: Vec<Dist>,
    /// Per-dimension alignment offsets onto the shared template (HPF
    /// `ALIGN` with constant offsets; empty means zero offsets).
    pub align: Vec<i64>,
}

impl ArrayDecl {
    /// Rank of the array (0 for scalars).
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// True if no dimension is distributed (replicated data).
    pub fn is_replicated(&self) -> bool {
        self.dist.iter().all(|d| *d == Dist::Collapsed) || self.dist.is_empty()
    }
}

/// Declared bounds of one array dimension: `lo : hi` (Fortran-style,
/// inclusive). A bare extent `n` means `1 : n`.
#[derive(Debug, Clone, PartialEq)]
pub struct DeclDim {
    /// Inclusive lower bound.
    pub lo: Expr,
    /// Inclusive upper bound.
    pub hi: Expr,
}

impl DeclDim {
    /// Builds the Fortran-default dimension `1:hi`.
    pub fn extent(hi: Expr) -> Self {
        DeclDim {
            lo: Expr::Int(1),
            hi,
        }
    }
}

/// HPF distribution format for one dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dist {
    /// `BLOCK`: contiguous chunks, one per processor along this grid axis.
    Block,
    /// `CYCLIC`: round-robin assignment of indices to processors.
    Cyclic,
    /// `*`: dimension collapsed (not distributed).
    Collapsed,
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Array-section or scalar assignment.
    Assign(Assign),
    /// Counted `do` loop.
    Do(DoLoop),
    /// Two-armed conditional.
    If(IfStmt),
}

/// An assignment `lhs = rhs`. The left-hand side is an array reference
/// (possibly with section subscripts) or a scalar (empty subscripts).
#[derive(Debug, Clone, PartialEq)]
pub struct Assign {
    /// Destination reference.
    pub lhs: ArrayRef,
    /// Source expression.
    pub rhs: Expr,
    /// 1-based source line (0 when synthesized).
    pub line: u32,
}

/// A counted loop `do var = lo, hi[, step] ... enddo`. `step` is a compile-
/// time integer (the analyses need a known sign).
#[derive(Debug, Clone, PartialEq)]
pub struct DoLoop {
    /// Loop index variable name.
    pub var: String,
    /// Lower bound expression.
    pub lo: Expr,
    /// Upper bound expression (inclusive).
    pub hi: Expr,
    /// Constant step (non-zero).
    pub step: i64,
    /// Loop body.
    pub body: Vec<Stmt>,
}

/// A conditional `if (cond) then ... [else ...] endif`.
#[derive(Debug, Clone, PartialEq)]
pub struct IfStmt {
    /// Branch condition.
    pub cond: Expr,
    /// Statements of the `then` arm.
    pub then_body: Vec<Stmt>,
    /// Statements of the `else` arm (possibly empty).
    pub else_body: Vec<Stmt>,
}

/// A reference to an array (or scalar) with subscripts.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayRef {
    /// Referenced array name.
    pub array: String,
    /// One subscript per dimension; empty for scalars or whole-array refs
    /// written without parentheses.
    pub subs: Vec<Subscript>,
}

impl ArrayRef {
    /// Builds a whole-array (or scalar) reference.
    pub fn whole(array: impl Into<String>) -> Self {
        ArrayRef {
            array: array.into(),
            subs: Vec::new(),
        }
    }
}

/// One subscript position: either a single index expression or an `lo:hi:step`
/// section (triplet). `None` bounds mean "declared bound".
#[derive(Debug, Clone, PartialEq)]
pub enum Subscript {
    /// Single element index.
    Index(Expr),
    /// Regular section `lo : hi : step`.
    Range {
        /// Lower bound, `None` = declared lower bound.
        lo: Option<Expr>,
        /// Upper bound, `None` = declared upper bound.
        hi: Option<Expr>,
        /// Constant stride (non-zero).
        step: i64,
    },
}

impl Subscript {
    /// The full-dimension section `:`.
    pub fn full() -> Self {
        Subscript::Range {
            lo: None,
            hi: None,
            step: 1,
        }
    }
}

/// Binary operators. Comparisons are only legal in `if` conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `/=`
    Ne,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Floating literal.
    Num(f64),
    /// Reference to a parameter, loop variable, or scalar/array. The parser
    /// cannot always distinguish these; the validator and IR resolve them.
    Ref(ArrayRef),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary negation.
    Neg(Box<Expr>),
    /// `sum(section)` global reduction.
    Sum(ArrayRef),
}

impl Expr {
    /// Convenience constructor for a bare name reference.
    pub fn name(n: impl Into<String>) -> Self {
        Expr::Ref(ArrayRef::whole(n))
    }

    /// Calls `f` on every [`ArrayRef`] in this expression, including those
    /// inside `sum(...)`, in left-to-right order.
    pub fn for_each_ref<'a>(&'a self, f: &mut impl FnMut(&'a ArrayRef, bool)) {
        match self {
            Expr::Int(_) | Expr::Num(_) => {}
            Expr::Ref(r) => f(r, false),
            Expr::Bin(_, a, b) => {
                a.for_each_ref(f);
                b.for_each_ref(f);
            }
            Expr::Neg(a) => a.for_each_ref(f),
            Expr::Sum(r) => f(r, true),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stmt_count_recurses() {
        let inner = Stmt::Assign(Assign {
            lhs: ArrayRef::whole("a"),
            rhs: Expr::Int(1),
            line: 0,
        });
        let prog = Program {
            name: "t".into(),
            params: vec![],
            arrays: vec![],
            body: vec![Stmt::Do(DoLoop {
                var: "i".into(),
                lo: Expr::Int(1),
                hi: Expr::Int(10),
                step: 1,
                body: vec![inner.clone(), inner],
            })],
        };
        assert_eq!(prog.stmt_count(), 3);
    }

    #[test]
    fn for_each_ref_visits_sum() {
        let e = Expr::Bin(
            BinOp::Add,
            Box::new(Expr::name("a")),
            Box::new(Expr::Sum(ArrayRef::whole("b"))),
        );
        let mut seen = Vec::new();
        e.for_each_ref(&mut |r, in_sum| seen.push((r.array.clone(), in_sum)));
        assert_eq!(seen, vec![("a".into(), false), ("b".into(), true)]);
    }

    #[test]
    fn replicated_detection() {
        let d = ArrayDecl {
            name: "s".into(),
            dims: vec![],
            dist: vec![],
            align: vec![],
        };
        assert!(d.is_replicated());
        let d2 = ArrayDecl {
            name: "a".into(),
            dims: vec![DeclDim::extent(Expr::name("n"))],
            dist: vec![Dist::Block],
            align: vec![],
        };
        assert!(!d2.is_replicated());
    }
}
