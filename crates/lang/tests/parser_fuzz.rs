//! Fuzz-style property tests: the frontend must never panic, whatever
//! bytes it is fed — it returns diagnostics instead. Covers raw random
//! bytes, random token soup (keyword-dense input that gets much deeper
//! into the parser), and mutated valid programs.

use proptest::prelude::*;

use gcomm_lang::{parse_program, parse_program_diagnostics};

fn token_soup() -> BoxedStrategy<String> {
    let word = prop::sample::select(vec![
        "program",
        "end",
        "enddo",
        "endif",
        "do",
        "if",
        "then",
        "else",
        "param",
        "real",
        "distribute",
        "align",
        "block",
        "cyclic",
        "sum",
        "n",
        "a",
        "x1",
        "(",
        ")",
        ",",
        ":",
        "=",
        "+",
        "-",
        "*",
        "/",
        "<",
        ">",
        "<=",
        ">=",
        "==",
        "!=",
        "1",
        "42",
        "-3",
        "2.5",
        "\n",
        "  ",
        "!",
        "@",
    ]);
    prop::collection::vec(word, 0..60)
        .prop_map(|ws| {
            ws.iter()
                .map(|w| w.to_string())
                .collect::<Vec<_>>()
                .join(" ")
        })
        .boxed()
}

const SEED_PROGRAM: &str = "program t
param n
real a(n,n), b(n,n) distribute (block, block)
do i = 2, n
  b(i, 1:n) = a(i-1, 1:n)
enddo
end";

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parser_never_panics_on_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        let src = String::from_utf8_lossy(&bytes);
        let _ = parse_program(&src);
        let _ = parse_program_diagnostics(&src);
    }

    #[test]
    fn parser_never_panics_on_token_soup(src in token_soup()) {
        let _ = parse_program(&src);
        let _ = parse_program_diagnostics(&src);
    }

    #[test]
    fn parser_never_panics_on_mutated_programs(
        cut_at in 0usize..SEED_PROGRAM.len(),
        insert_at in 0usize..SEED_PROGRAM.len(),
        junk_bytes in prop::collection::vec(32u8..127, 0..10),
    ) {
        // Truncations and random splices of a valid program.
        let truncated = &SEED_PROGRAM[..cut_at];
        let _ = parse_program(truncated);
        let _ = parse_program_diagnostics(truncated);

        let junk = String::from_utf8_lossy(&junk_bytes).into_owned();
        let mut spliced = String::with_capacity(SEED_PROGRAM.len() + junk.len());
        spliced.push_str(&SEED_PROGRAM[..insert_at]);
        spliced.push_str(&junk);
        spliced.push_str(&SEED_PROGRAM[insert_at..]);
        let _ = parse_program(&spliced);
        let _ = parse_program_diagnostics(&spliced);
    }

    #[test]
    fn diagnostics_agree_with_plain_parse_on_success(src in token_soup()) {
        // Whenever the strict parser accepts, the recovering parser must
        // accept with no diagnostics and produce the same program.
        if let Ok(p) = parse_program(&src) {
            match parse_program_diagnostics(&src) {
                Ok(q) => prop_assert_eq!(p, q),
                Err(errs) => prop_assert!(
                    false,
                    "recovering parser rejected input the strict parser accepts: {errs:?}"
                ),
            }
        }
    }
}
