//! Property test: pretty-printing a generated AST and re-parsing it yields
//! the same tree (modulo source line numbers), and scalarization of the
//! generated programs always re-validates.

use proptest::prelude::*;

use gcomm_lang::{
    parse_program, pretty::pretty, scalarize, ArrayRef, Assign, BinOp, DeclDim, Dist, DoLoop, Expr,
    IfStmt, Program, Stmt, Subscript,
};

const ARRAYS: [&str; 3] = ["aa", "bb", "cc"];

fn subscript(depth: u32) -> impl Strategy<Value = Subscript> {
    let idx = index_expr(depth);
    prop_oneof![
        idx.clone().prop_map(Subscript::Index),
        (
            prop::option::of(idx.clone()),
            prop::option::of(idx),
            1i64..=2
        )
            .prop_map(|(lo, hi, step)| Subscript::Range { lo, hi, step }),
    ]
}

fn index_expr(depth: u32) -> BoxedStrategy<Expr> {
    // Loop variables are deliberately excluded: the generated statements
    // may land outside the loop, where `ii` would be undeclared.
    let leaf = prop_oneof![(1i64..5).prop_map(Expr::Int), Just(Expr::name("n")),];
    if depth == 0 {
        return leaf.boxed();
    }
    leaf.prop_recursive(depth, 8, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Bin(
                BinOp::Add,
                Box::new(a),
                Box::new(b)
            )),
            (inner.clone(), (1i64..4)).prop_map(|(a, k)| Expr::Bin(
                BinOp::Sub,
                Box::new(a),
                Box::new(Expr::Int(k))
            )),
        ]
    })
    .boxed()
}

fn rhs_expr() -> impl Strategy<Value = Expr> {
    let aref = || {
        (
            prop::sample::select(ARRAYS.to_vec()),
            subscript(1),
            subscript(1),
        )
            .prop_map(|(a, s1, s2)| {
                Expr::Ref(ArrayRef {
                    array: a.to_string(),
                    subs: vec![s1, s2],
                })
            })
    };
    prop_oneof![
        (1..100i64).prop_map(Expr::Int),
        (0.5f64..8.0).prop_map(Expr::Num),
        aref(),
        (aref(), aref()).prop_map(|(a, b)| Expr::Bin(BinOp::Mul, Box::new(a), Box::new(b))),
        aref().prop_map(|a| Expr::Neg(Box::new(a))),
    ]
}

fn stmt() -> impl Strategy<Value = Stmt> {
    (
        prop::sample::select(ARRAYS.to_vec()),
        subscript(0),
        subscript(0),
        rhs_expr(),
    )
        .prop_map(|(a, s1, s2, rhs)| {
            Stmt::Assign(Assign {
                lhs: ArrayRef {
                    array: a.to_string(),
                    subs: vec![s1, s2],
                },
                rhs,
                line: 0,
            })
        })
}

fn program() -> impl Strategy<Value = Program> {
    (
        prop::collection::vec(stmt(), 1..5),
        prop::collection::vec(stmt(), 0..3),
        any::<bool>(),
    )
        .prop_map(|(body, loop_body, wrap)| {
            let mut stmts = body;
            if !loop_body.is_empty() {
                stmts.push(Stmt::Do(DoLoop {
                    var: "ii".into(),
                    lo: Expr::Int(1),
                    hi: Expr::name("n"),
                    step: 1,
                    body: loop_body,
                }));
            }
            if wrap {
                stmts = vec![Stmt::If(IfStmt {
                    cond: Expr::Bin(
                        BinOp::Gt,
                        Box::new(Expr::name("ss")),
                        Box::new(Expr::Int(0)),
                    ),
                    then_body: stmts,
                    else_body: vec![],
                })];
            }
            Program {
                name: "gen".into(),
                params: vec!["n".into()],
                arrays: ARRAYS
                    .iter()
                    .map(|a| gcomm_lang::ArrayDecl {
                        name: a.to_string(),
                        dims: vec![
                            DeclDim::extent(Expr::name("n")),
                            DeclDim::extent(Expr::name("n")),
                        ],
                        dist: vec![Dist::Block, Dist::Block],
                        align: vec![],
                    })
                    .chain(std::iter::once(gcomm_lang::ArrayDecl {
                        name: "ss".into(),
                        dims: vec![],
                        dist: vec![],
                        align: vec![],
                    }))
                    .collect(),
                body: stmts,
            }
        })
}

fn strip_lines(p: &mut Program) {
    fn walk(stmts: &mut [Stmt]) {
        for s in stmts {
            match s {
                Stmt::Assign(a) => a.line = 0,
                Stmt::Do(d) => walk(&mut d.body),
                Stmt::If(i) => {
                    walk(&mut i.then_body);
                    walk(&mut i.else_body);
                }
            }
        }
    }
    walk(&mut p.body);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// parse(pretty(ast)) == ast, modulo line numbers. Generated indices
    /// may be out of bounds at runtime — irrelevant for the syntax layer.
    #[test]
    fn pretty_parse_roundtrip(p in program()) {
        let text = pretty(&p);
        let mut parsed = parse_program(&text)
            .unwrap_or_else(|e| panic!("pretty output failed to parse: {e}\n{text}"));
        let mut orig = p.clone();
        strip_lines(&mut parsed);
        strip_lines(&mut orig);
        prop_assert_eq!(parsed, orig, "round-trip mismatch for\n{}", text);
    }

    /// Scalarization output always re-validates and re-parses.
    #[test]
    fn scalarize_output_valid(p in program()) {
        let s = scalarize(&p);
        gcomm_lang::validate::validate(&s)
            .unwrap_or_else(|e| panic!("scalarized program invalid: {e}\n{}", pretty(&s)));
        let text = pretty(&s);
        parse_program(&text).unwrap();
    }
}
